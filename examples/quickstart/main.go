// Quickstart: the smallest end-to-end RichNote program.
//
// It builds a streaming Live service with one user on a 10 MB/week data
// plan, publishes a handful of music notifications on a friend-feed topic
// and runs a day of hourly scheduling rounds. The run prints what was
// delivered at which presentation level — demonstrating that the scheduler
// adapts presentation richness to the budget instead of dropping items.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	live, err := richnote.NewLive(richnote.LiveConfig{Seed: 1})
	if err != nil {
		return err
	}

	const alice richnote.UserID = 1
	if err := live.AddUser(richnote.LiveUserConfig{
		User:              alice,
		Strategy:          richnote.StrategyRichNote,
		WeeklyBudgetBytes: 10 << 20, // 10 MB per week
	}); err != nil {
		return err
	}

	// Alice follows her friend Bob's listening feed.
	bobFeed := richnote.Topic(richnote.TopicFriendFeed, 42)
	if err := live.Subscribe(alice, bobFeed); err != nil {
		return err
	}

	// Bob streams five tracks; each play publishes a notification.
	for i := 0; i < 5; i++ {
		live.Publish(bobFeed, richnote.Item{
			ID:        richnote.ItemID(100 + i),
			Kind:      richnote.KindAudio,
			Topic:     richnote.TopicFriendFeed,
			Sender:    42,
			CreatedAt: time.Date(2015, 1, 1, 9, 0, 0, 0, time.UTC),
			Meta: richnote.Metadata{
				TrackID:         int64(1000 + i),
				TrackPopularity: float64(20 * (i + 1)),
				URL:             fmt.Sprintf("https://open.example.com/track/%d", 1000+i),
			},
		})
	}

	// Run one day of hourly scheduling rounds.
	if err := live.RunRounds(24); err != nil {
		return err
	}

	report := live.Collector().Aggregate()
	fmt.Printf("delivered %d of %d notifications (%.0f%%)\n",
		report.Delivered, report.Arrived, 100*report.DeliveryRatio())
	fmt.Printf("bytes %d, energy %.1f J, avg queuing delay %.1f rounds\n",
		report.DeliveredBytes, report.EnergyJ, report.AvgDelayRounds())
	fmt.Println("presentation mix:")
	labels := map[int]string{1: "metadata", 2: "meta+5s", 3: "meta+10s", 4: "meta+20s", 5: "meta+30s", 6: "meta+40s"}
	for lvl := 1; lvl <= 6; lvl++ {
		if n := report.LevelCounts[lvl]; n > 0 {
			fmt.Printf("  level %d (%s): %d\n", lvl, labels[lvl], n)
		}
	}
	return nil
}
