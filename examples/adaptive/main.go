// Adaptive: watch RichNote react to changing conditions mid-run.
//
// One device lives through three phases of a simulated day while a steady
// stream of music notifications arrives:
//
//  1. commuting on cellular with an accumulating data budget,
//  2. reaching home WiFi (bytes stop billing the data plan),
//  3. going offline (notifications queue, nothing is lost).
//
// The per-round log shows the scheduler's presentation choices tracking the
// environment — the adaptivity the paper demonstrates in Figure 5.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

// phase pins the connectivity for a stretch of rounds.
type phase struct {
	name   string
	matrix richnote.NetworkMatrix
	start  richnote.NetworkState
	rounds int
}

func run() error {
	alwaysWifi := richnote.NetworkMatrix{{0, 0, 1}, {0, 0, 1}, {0, 0, 1}}
	alwaysOff := richnote.NetworkMatrix{{1, 0, 0}, {1, 0, 0}, {1, 0, 0}}
	phases := []phase{
		{"cellular commute", richnote.AlwaysCellMatrix(), richnote.StateCell, 8},
		{"home wifi", alwaysWifi, richnote.StateWifi, 8},
		{"offline (flight mode)", alwaysOff, richnote.StateOff, 8},
		{"cellular again", richnote.AlwaysCellMatrix(), richnote.StateCell, 8},
	}

	const user richnote.UserID = 1
	feed := richnote.Topic(richnote.TopicFriendFeed, 9)

	live, err := richnote.NewLive(richnote.LiveConfig{Seed: 5})
	if err != nil {
		return err
	}
	m := phases[0].matrix
	if err := live.AddUser(richnote.LiveUserConfig{
		User:              user,
		WeeklyBudgetBytes: 30 << 20,
		NetworkMatrix:     &m,
	}); err != nil {
		return err
	}
	if err := live.Subscribe(user, feed); err != nil {
		return err
	}

	device, err := live.Device(user)
	if err != nil {
		return err
	}

	itemID := richnote.ItemID(1)
	publishBatch := func(n int, hour int) {
		for i := 0; i < n; i++ {
			live.Publish(feed, richnote.Item{
				ID:        itemID,
				Kind:      richnote.KindAudio,
				Topic:     richnote.TopicFriendFeed,
				Sender:    9,
				CreatedAt: time.Date(2015, 1, 1, hour, 0, 0, 0, time.UTC),
				Meta: richnote.Metadata{
					TrackID:         int64(itemID),
					TrackPopularity: 50,
				},
			})
			itemID++
		}
	}

	prevDelivered := 0
	prevBytes := int64(0)
	for _, ph := range phases {
		fmt.Printf("== %s ==\n", ph.name)
		if err := live.SetNetwork(user, ph.matrix, ph.start); err != nil {
			return err
		}
		for r := 0; r < ph.rounds; r++ {
			publishBatch(2, (live.Round())%24)
			if err := live.StepRound(); err != nil {
				return err
			}
			report := live.Collector().Aggregate()
			fmt.Printf("  round %2d: queue %2d  delivered %2d (+%d)  bytes %8d (+%d)\n",
				live.Round()-1, device.QueueLen(),
				report.Delivered, report.Delivered-prevDelivered,
				report.DeliveredBytes, report.DeliveredBytes-prevBytes)
			prevDelivered = report.Delivered
			prevBytes = report.DeliveredBytes
		}
	}

	report := live.Collector().Aggregate()
	fmt.Printf("\ntotal: %d of %d delivered, %.1f MB, %.0f J\n",
		report.Delivered, report.Arrived,
		float64(report.DeliveredBytes)/(1<<20), report.EnergyJ)
	fmt.Println("note the offline stretch: the queue grows, then drains when connectivity returns.")
	return nil
}
