// Musicfeed: the paper's full Spotify-style scenario end to end.
//
// It generates a synthetic week-long notification trace over a social
// graph and music catalog, trains the Random Forest content-utility model
// on the trace's click/hover labels, and compares the RichNote scheduler
// against the FIFO and UTIL baselines at several weekly data budgets —
// a miniature of the paper's Figures 3 and 4.
//
//	go run ./examples/musicfeed
package main

import (
	"fmt"
	"os"

	"github.com/richnote/richnote"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "musicfeed:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("generating a week of notifications for 100 users and training the utility model...")
	pipeline, err := richnote.BuildPipeline(richnote.PipelineConfig{
		Trace:  richnote.TraceConfig{Users: 100, Rounds: 168, Seed: 7},
		Scorer: richnote.ScorerForest,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d notifications, %.1f%% clicked\n\n",
		pipeline.Trace.TotalNotifications(), 100*pipeline.Trace.ClickRate())

	configs := []richnote.RunConfig{
		{Strategy: richnote.StrategyRichNote},
		{Strategy: richnote.StrategyFIFO, FixedLevel: 3},
		{Strategy: richnote.StrategyUtil, FixedLevel: 3},
	}
	for _, budgetMB := range []int64{3, 20, 100} {
		fmt.Printf("== weekly budget %d MB ==\n", budgetMB)
		for _, cfg := range configs {
			cfg.WeeklyBudgetBytes = budgetMB << 20
			res, err := pipeline.Run(cfg)
			if err != nil {
				return err
			}
			r := res.Report
			fmt.Printf("  %-10s delivery %.2f  recall %.2f  precision %.2f  utility %7.1f  delay %5.1f rounds\n",
				res.Name, r.DeliveryRatio(), r.Recall(), r.Precision(),
				r.TrueUtilitySum, r.AvgDelayRounds())
		}
		fmt.Println()
	}
	fmt.Println("RichNote sustains ~100% delivery at every budget by downgrading presentations,")
	fmt.Println("while the fixed-level baselines trade delivery ratio against the budget.")
	return nil
}
