// Newsfeed: rich notifications beyond audio.
//
// The paper's presentation-generator abstraction (Section III-B) is
// content-type agnostic: any ladder of strictly growing size and monotone
// utility works. This example runs a mixed photo-and-video news feed
// through the Live service, using the image thumbnail ladder and the video
// preview ladder, with a tight budget on one device and a loose budget on
// another — the same story carried at different richness per user.
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/richnote/richnote"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "newsfeed:", err)
		os.Exit(1)
	}
}

// mixedGenerator routes items to the image or video ladder by kind.
type mixedGenerator struct {
	image richnote.Generator
	video richnote.Generator
}

func (g *mixedGenerator) Generate(item richnote.Item) ([]richnote.Presentation, error) {
	if item.Kind == richnote.KindVideo {
		return g.video.Generate(item)
	}
	return g.image.Generate(item)
}

func run() error {
	live, err := richnote.NewLive(richnote.LiveConfig{
		Seed: 3,
		Generator: &mixedGenerator{
			image: richnote.NewImageGenerator(),
			video: richnote.NewVideoGenerator(),
		},
	})
	if err != nil {
		return err
	}

	const (
		commuter richnote.UserID = 1 // 5 MB/week: thumbnails only
		homebody richnote.UserID = 2 // 200 MB/week: full media
	)
	for _, u := range []struct {
		id     richnote.UserID
		budget int64
	}{{commuter, 5 << 20}, {homebody, 200 << 20}} {
		if err := live.AddUser(richnote.LiveUserConfig{
			User:              u.id,
			Strategy:          richnote.StrategyRichNote,
			WeeklyBudgetBytes: u.budget,
		}); err != nil {
			return err
		}
	}

	newsDesk := richnote.Topic(richnote.TopicArtistPage, 1)
	for _, u := range []richnote.UserID{commuter, homebody} {
		if err := live.Subscribe(u, newsDesk); err != nil {
			return err
		}
	}

	// A day's worth of stories: photos and video clips.
	kinds := []richnote.ContentKind{
		richnote.KindImage, richnote.KindVideo, richnote.KindImage,
		richnote.KindImage, richnote.KindVideo,
	}
	for i, kind := range kinds {
		live.Publish(newsDesk, richnote.Item{
			ID:        richnote.ItemID(200 + i),
			Kind:      kind,
			Topic:     richnote.TopicArtistPage,
			CreatedAt: time.Date(2015, 1, 1, 8+i, 0, 0, 0, time.UTC),
			Meta:      richnote.Metadata{URL: fmt.Sprintf("https://news.example.com/story/%d", i)},
		})
	}

	if err := live.RunRounds(48); err != nil {
		return err
	}

	report := live.Collector().Aggregate()
	fmt.Printf("delivered %d of %d stories across both devices\n", report.Delivered, report.Arrived)
	fmt.Println("presentation mix (level 1 = metadata; higher = larger thumbnails / longer clips):")
	for lvl := 1; lvl <= 6; lvl++ {
		if n := report.LevelCounts[lvl]; n > 0 {
			fmt.Printf("  level %d: %d deliveries\n", lvl, n)
		}
	}
	fmt.Println("\nthe 5 MB commuter receives compact presentations; the 200 MB device full media —")
	fmt.Println("the same selection machinery, swapped generators.")
	return nil
}
