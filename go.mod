module github.com/richnote/richnote

go 1.22
