package richnote

// This file holds one benchmark per table and figure of the paper's
// evaluation (Section V), as indexed in DESIGN.md. Each bench regenerates
// its experiment's series at the quick scale and reports domain metrics
// (utility, delivery ratio, precision) alongside time/op, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. cmd/richnote-bench produces the
// full-scale CSVs.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/experiments"
	"github.com/richnote/richnote/internal/trace"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

// suite builds the shared workload (trace + trained forest) once per
// process; individual benches then reuse its run cache.
func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite, benchErr = experiments.NewSuite(experiments.QuickScale())
	})
	if benchErr != nil {
		b.Fatalf("building suite: %v", benchErr)
	}
	return benchSuite
}

// seriesEnd returns the last value of the named series, for metric
// reporting.
func seriesEnd(r experiments.Result, name string) float64 {
	for _, s := range r.Series {
		if s.Name == name && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return 0
}

func benchExperiment(b *testing.B, run func() (experiments.Result, error), report func(*testing.B, experiments.Result)) {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if report != nil {
		report(b, last)
	}
}

// BenchmarkBuildPipeline measures the full build phase (trace synthesis,
// forest training, ladder enrichment) at the quick scale across worker
// counts. The forest and the enriched arrivals are identical for every
// worker count (see TestBuildPipelineWorkerCountInvariant), so the
// sub-benchmarks differ only in wall clock.
func BenchmarkBuildPipeline(b *testing.B) {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n >= 4 {
		counts = append(counts, 4)
		if n > 4 {
			counts = append(counts, n)
		}
	}
	scale := experiments.QuickScale()
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := core.BuildPipeline(core.PipelineConfig{
					Trace: trace.Config{
						Users:  scale.Users,
						Rounds: scale.Rounds,
						Seed:   scale.Seed,
					},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if p.Trace.TotalNotifications() == 0 {
					b.Fatal("empty trace")
				}
			}
		})
	}
}

// BenchmarkT1Classifier regenerates the Section V-A classifier table
// (paper: precision 0.700, accuracy 0.689 under 5-fold CV).
func BenchmarkT1Classifier(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.T1, func(b *testing.B, r experiments.Result) {
		// Aggregate fold metrics for the report.
		var prec, acc float64
		for _, v := range r.Series[0].Y {
			prec += v
		}
		for _, v := range r.Series[1].Y {
			acc += v
		}
		b.ReportMetric(prec/float64(len(r.Series[0].Y)), "precision")
		b.ReportMetric(acc/float64(len(r.Series[1].Y)), "accuracy")
	})
}

// BenchmarkF2aPareto regenerates Figure 2(a): useful presentations.
func BenchmarkF2aPareto(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F2a, func(b *testing.B, r experiments.Result) {
		useful := 0.0
		for _, y := range r.Series[1].Y {
			if y > 0 {
				useful++
			}
		}
		b.ReportMetric(useful, "useful-presentations")
	})
}

// BenchmarkF2bFit regenerates Figure 2(b): survey CDF and model fits.
func BenchmarkF2bFit(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F2b, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "survey-cdf"), "cdf-at-40s")
	})
}

// BenchmarkF3aDeliveryRatio regenerates Figure 3(a).
func BenchmarkF3aDeliveryRatio(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F3a, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-ratio")
		b.ReportMetric(seriesEnd(r, "util-L3"), "util-ratio")
	})
}

// BenchmarkF3bDataDelivered regenerates Figure 3(b).
func BenchmarkF3bDataDelivered(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F3b, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-MB")
	})
}

// BenchmarkF3cRecall regenerates Figure 3(c).
func BenchmarkF3cRecall(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F3c, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-recall")
		b.ReportMetric(seriesEnd(r, "fifo-L3"), "fifo-recall")
	})
}

// BenchmarkF3dPrecision regenerates Figure 3(d).
func BenchmarkF3dPrecision(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F3d, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-precision")
	})
}

// BenchmarkF4aUtility regenerates Figure 4(a).
func BenchmarkF4aUtility(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F4a, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-utility")
		b.ReportMetric(seriesEnd(r, "util-L3"), "util-utility")
		b.ReportMetric(seriesEnd(r, "fifo-L3"), "fifo-utility")
	})
}

// BenchmarkF4bClickedUtility regenerates Figure 4(b).
func BenchmarkF4bClickedUtility(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F4b, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-clicked")
	})
}

// BenchmarkF4cEnergy regenerates Figure 4(c).
func BenchmarkF4cEnergy(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F4c, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-J")
		b.ReportMetric(seriesEnd(r, "util-L3"), "util-J")
	})
}

// BenchmarkF4dQueuingDelay regenerates Figure 4(d).
func BenchmarkF4dQueuingDelay(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F4d, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-rounds")
		b.ReportMetric(seriesEnd(r, "fifo-L3"), "fifo-rounds")
	})
}

// BenchmarkF5aFixedLevels regenerates Figure 5(a).
func BenchmarkF5aFixedLevels(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F5a, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-utility")
		b.ReportMetric(seriesEnd(r, "util-L6"), "fixed40s-utility")
	})
}

// BenchmarkF5bPresentationMix regenerates Figure 5(b).
func BenchmarkF5bPresentationMix(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F5b, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(r.Series[0].Y[0], "meta-share-lowbudget")
		b.ReportMetric(seriesEnd(r, "meta+40s"), "rich-share-highbudget")
	})
}

// BenchmarkF5cWifiMix regenerates Figure 5(c).
func BenchmarkF5cWifiMix(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F5c, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "meta+40s"), "wifi-40s-share")
	})
}

// BenchmarkF5dUserCategories regenerates Figure 5(d).
func BenchmarkF5dUserCategories(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.F5d, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "mean-utility"), "heavy-user-utility")
	})
}

// BenchmarkS5VSensitivity regenerates the V-sensitivity study.
func BenchmarkS5VSensitivity(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.S5, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "utility-per-user"), "utility-at-V10000")
	})
}

// BenchmarkA1MCKPQuality regenerates the MCKP ablation.
func BenchmarkA1MCKPQuality(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.A1, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "greedy/exact"), "greedy-ratio")
	})
}

// BenchmarkA2LyapunovAblation regenerates the Lyapunov ablation.
func BenchmarkA2LyapunovAblation(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.A2, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "lyapunov-V1000-utility"), "lyapunov-utility")
		b.ReportMetric(seriesEnd(r, "utility-only-V1e9-utility"), "utilityonly-utility")
	})
}

// BenchmarkA3BaselineDiscipline regenerates the baseline-discipline
// ablation.
func BenchmarkA3BaselineDiscipline(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.A3, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote"), "richnote-utility")
		b.ReportMetric(seriesEnd(r, "util-queued"), "strongest-baseline-utility")
	})
}

// BenchmarkA4HindsightBound regenerates the offline-bound comparison.
func BenchmarkA4HindsightBound(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.A4, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "richnote/bound"), "online-share-of-optimum")
	})
}

// BenchmarkA5MCKPVariant regenerates the in-scheduler MCKP-variant
// ablation.
func BenchmarkA5MCKPVariant(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.A5, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "level-by-level"), "plain-utility")
		b.ReportMetric(seriesEnd(r, "lp-dominance"), "dominance-utility")
	})
}

// BenchmarkA6ScorerAblation regenerates the content-utility model
// ablation.
func BenchmarkA6ScorerAblation(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.A6, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "forest"), "forest-utility")
		b.ReportMetric(seriesEnd(r, "oracle"), "oracle-utility")
		b.ReportMetric(seriesEnd(r, "constant"), "constant-utility")
	})
}

// BenchmarkE1SurveyConvergence regenerates the survey-scale study.
func BenchmarkE1SurveyConvergence(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.E1, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "abs-error-B (vs 0.352)"), "B-error-at-5120")
	})
}

// BenchmarkE2OutOfSample regenerates the temporal-generalization study.
func BenchmarkE2OutOfSample(b *testing.B) {
	s := suite(b)
	benchExperiment(b, s.E2, func(b *testing.B, r experiments.Result) {
		b.ReportMetric(seriesEnd(r, "in-sample"), "in-sample-utility")
		b.ReportMetric(seriesEnd(r, "out-of-sample"), "out-of-sample-utility")
	})
}
