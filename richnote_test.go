package richnote_test

import (
	"math"
	"testing"
	"time"

	"github.com/richnote/richnote"
)

// TestPublicPipelineAPI drives the batch-evaluation entry point exactly as
// the package documentation advertises.
func TestPublicPipelineAPI(t *testing.T) {
	p, err := richnote.BuildPipeline(richnote.PipelineConfig{
		Trace:  richnote.TraceConfig{Users: 20, Rounds: 48, Seed: 9},
		Scorer: richnote.ScorerOracle,
	})
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	res, err := p.Run(richnote.RunConfig{
		Strategy:          richnote.StrategyRichNote,
		WeeklyBudgetBytes: 20 << 20,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Report.DeliveryRatio() < 0.9 {
		t.Fatalf("delivery ratio %.3f, want >= 0.9", res.Report.DeliveryRatio())
	}
	if res.Report.Recall() < 0.9 {
		t.Fatalf("recall %.3f, want >= 0.9", res.Report.Recall())
	}
}

// TestPublicLiveAPI drives the streaming entry point end to end.
func TestPublicLiveAPI(t *testing.T) {
	live, err := richnote.NewLive(richnote.LiveConfig{Seed: 4})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	m := richnote.AlwaysCellMatrix()
	if err := live.AddUser(richnote.LiveUserConfig{
		User:              1,
		WeeklyBudgetBytes: 10 << 20,
		NetworkMatrix:     &m,
	}); err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	topic := richnote.Topic(richnote.TopicFriendFeed, 42)
	if err := live.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < 3; i++ {
		live.Publish(topic, richnote.Item{
			ID:        richnote.ItemID(i + 1),
			Kind:      richnote.KindAudio,
			Topic:     richnote.TopicFriendFeed,
			CreatedAt: time.Date(2015, 1, 1, 9, 0, 0, 0, time.UTC),
			Meta:      richnote.Metadata{TrackID: int64(i + 1), TrackPopularity: 40},
		})
	}
	if err := live.RunRounds(6); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	rep := live.Collector().Aggregate()
	if rep.Delivered != 3 {
		t.Fatalf("delivered %d, want 3", rep.Delivered)
	}
}

// TestUtilityCurves checks the re-exported fitted models.
func TestUtilityCurves(t *testing.T) {
	if got := richnote.Equation8(40); math.Abs(got-0.910) > 0.001 {
		t.Fatalf("Equation8(40) = %f, want ~0.910", got)
	}
	if got := richnote.Equation9(0); math.Abs(got-0.253) > 1e-9 {
		t.Fatalf("Equation9(0) = %f, want 0.253", got)
	}
}

// TestGenerators checks the re-exported presentation generators.
func TestGenerators(t *testing.T) {
	g, err := richnote.NewAudioGenerator(richnote.AudioConfig{Utility: richnote.Equation8})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	ps, err := g.Generate(richnote.Item{Kind: richnote.KindAudio})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ps) != 6 {
		t.Fatalf("%d levels, want 6", len(ps))
	}
	if richnote.NewImageGenerator() == nil || richnote.NewVideoGenerator() == nil {
		t.Fatal("nil generators")
	}
}

// TestNetworkMatrices checks the re-exported connectivity models.
func TestNetworkMatrices(t *testing.T) {
	for _, m := range []richnote.NetworkMatrix{
		richnote.AlwaysCellMatrix(),
		richnote.CellOnlyMatrix(),
		richnote.PaperNetworkMatrix(),
	} {
		if err := m.Validate(); err != nil {
			t.Fatalf("exported matrix invalid: %v", err)
		}
	}
	if richnote.StateWifi.String() != "WIFI" || !richnote.StateCell.Online() {
		t.Fatal("state re-exports wrong")
	}
}
