package pubsub

import (
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func TestSubscribeCadenceValidation(t *testing.T) {
	b := NewBroker()
	if err := b.SubscribeCadence(1, topicA(), ModeRound, 0, func([]notif.Item) {}); err == nil {
		t.Fatal("cadence 0 accepted")
	}
	if err := b.SubscribeCadence(1, topicA(), ModeRound, -3, func([]notif.Item) {}); err == nil {
		t.Fatal("negative cadence accepted")
	}
}

func TestCadenceDrainsOnMultiplesOnly(t *testing.T) {
	b := NewBroker()
	var batches [][]notif.Item
	if err := b.SubscribeCadence(1, topicA(), ModeRound, 3, func(items []notif.Item) {
		batches = append(batches, items)
	}); err != nil {
		t.Fatalf("SubscribeCadence: %v", err)
	}
	// One publication per round over 9 rounds: drains at rounds 0, 3, 6.
	for round := 0; round < 9; round++ {
		b.Publish(topicA(), item(int64(round)))
		b.EndRoundIndex(round)
	}
	if len(batches) != 3 {
		t.Fatalf("%d drains, want 3 (rounds 0, 3, 6)", len(batches))
	}
	// Round 0 drains the single item published that round; later drains
	// carry the accumulated three rounds.
	if len(batches[0]) != 1 || len(batches[1]) != 3 || len(batches[2]) != 3 {
		t.Fatalf("batch sizes %d/%d/%d, want 1/3/3",
			len(batches[0]), len(batches[1]), len(batches[2]))
	}
}

func TestCadenceOneMatchesEveryRound(t *testing.T) {
	b := NewBroker()
	drains := 0
	if err := b.Subscribe(1, topicA(), ModeRound, func([]notif.Item) { drains++ }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for round := 0; round < 5; round++ {
		b.Publish(topicA(), item(int64(round)))
		b.EndRoundIndex(round)
	}
	if drains != 5 {
		t.Fatalf("%d drains with cadence 1, want 5", drains)
	}
}

func TestMixedCadencesAreIndependent(t *testing.T) {
	b := NewBroker()
	fast, slow := 0, 0
	if err := b.SubscribeCadence(1, topicA(), ModeRound, 1, func(items []notif.Item) {
		fast += len(items)
	}); err != nil {
		t.Fatalf("SubscribeCadence: %v", err)
	}
	other := TopicID{Kind: notif.TopicArtistPage, Entity: 8}
	if err := b.SubscribeCadence(1, other, ModeRound, 4, func(items []notif.Item) {
		slow += len(items)
	}); err != nil {
		t.Fatalf("SubscribeCadence: %v", err)
	}
	for round := 0; round < 8; round++ {
		b.Publish(topicA(), item(int64(round)))
		b.Publish(other, item(int64(100+round)))
		b.EndRoundIndex(round)
	}
	if fast != 8 {
		t.Fatalf("fast topic delivered %d, want all 8", fast)
	}
	// Cadence 4 drains at rounds 0 and 4: rounds 0..4 published 5 items by
	// round 4's drain; rounds 5..7 remain pending.
	if slow != 5 {
		t.Fatalf("slow topic delivered %d, want 5 (pending ones wait)", slow)
	}
	// EndRound (unfiltered) flushes the stragglers.
	b.EndRound()
	if slow != 8 {
		t.Fatalf("slow topic delivered %d after full flush, want 8", slow)
	}
}

func TestResubscribeUpdatesCadence(t *testing.T) {
	b := NewBroker()
	drains := 0
	h := func([]notif.Item) { drains++ }
	if err := b.SubscribeCadence(1, topicA(), ModeRound, 5, h); err != nil {
		t.Fatalf("SubscribeCadence: %v", err)
	}
	if err := b.SubscribeCadence(1, topicA(), ModeRound, 1, h); err != nil {
		t.Fatalf("re-SubscribeCadence: %v", err)
	}
	b.Publish(topicA(), item(1))
	b.EndRoundIndex(1) // not a multiple of 5; must drain under cadence 1
	if drains != 1 {
		t.Fatalf("resubscription kept the old cadence")
	}
}
