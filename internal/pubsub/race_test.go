package pubsub

import (
	"sync"
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

// TestConcurrentPublishDrain guards the live server's drain path: a
// round-mode subscription is drained repeatedly while concurrent
// publishers are active. Every publication must reach the handler exactly
// once — none lost, none duplicated — and the run must be clean under the
// race detector.
func TestConcurrentPublishDrain(t *testing.T) {
	const (
		publishers   = 8
		perPublisher = 500
		drains       = 200
	)
	b := NewBroker()
	topic := TopicID{Kind: notif.TopicFriendFeed, Entity: 1}

	var mu sync.Mutex
	seen := make(map[notif.ItemID]int)
	err := b.Subscribe(77, topic, ModeRound, func(items []notif.Item) {
		mu.Lock()
		defer mu.Unlock()
		for _, it := range items {
			seen[it.ID]++
		}
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				id := notif.ItemID(p*perPublisher + i + 1)
				b.Publish(topic, notif.Item{ID: id, Kind: notif.KindAudio, Topic: notif.TopicFriendFeed})
			}
		}(p)
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for round := 0; round < drains; round++ {
			b.EndRoundIndex(round)
		}
	}()

	wg.Wait()
	<-drained
	// Publishers and the drain loop have stopped; one final drain flushes
	// whatever the concurrent drains did not catch.
	b.EndRound()

	mu.Lock()
	defer mu.Unlock()
	const total = publishers * perPublisher
	if len(seen) != total {
		t.Fatalf("handler saw %d distinct publications, want %d", len(seen), total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d delivered %d times, want exactly once", id, n)
		}
	}
	stats := b.Stats()
	if stats.Published != total || stats.Delivered != total {
		t.Fatalf("stats %+v, want published=delivered=%d", stats, total)
	}
	if stats.Pending != 0 || b.PendingRound() != 0 {
		t.Fatalf("pending %d / %d after final drain, want 0", stats.Pending, b.PendingRound())
	}
}

func TestPendingRound(t *testing.T) {
	b := NewBroker()
	topic := TopicID{Kind: notif.TopicArtistPage, Entity: 9}
	if err := b.Subscribe(1, topic, ModeRound, func([]notif.Item) {}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := b.Subscribe(2, topic, ModeBatch, func([]notif.Item) {}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topic, notif.Item{ID: 1})
	b.Publish(topic, notif.Item{ID: 2})
	if got := b.PendingRound(); got != 2 {
		t.Fatalf("PendingRound = %d, want 2 (batch backlog excluded)", got)
	}
	if got := b.Stats().Pending; got != 4 {
		t.Fatalf("Stats.Pending = %d, want 4 (round + batch)", got)
	}
	b.EndRound()
	if got := b.PendingRound(); got != 0 {
		t.Fatalf("PendingRound after drain = %d, want 0", got)
	}
}
