// Package pubsub implements the topic-based publish/subscribe substrate of
// Section II: the hybrid engine Spotify deploys for notification delivery.
// Topics correspond to friends (friend feeds), artist pages and public
// playlists. Publications are notifications about friends streaming
// tracks, album releases and playlist updates.
//
// Three delivery modes are supported, mirroring the paper:
//
//   - RealTime: the publication is handed to subscribers immediately.
//   - Batch: publications accumulate and are handed over on explicit Flush
//     (Spotify's batch mode for albums/playlists).
//   - Round: the middle ground RichNote introduces — publications are
//     buffered and drained once per scheduling round.
//
// The broker is safe for concurrent publishers; handlers are invoked on
// the publishing (or flushing) goroutine.
package pubsub

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/richnote/richnote/internal/notif"
)

// TopicID names a topic: a kind plus the entity it concerns (the friend,
// artist or playlist).
type TopicID struct {
	Kind   notif.TopicKind
	Entity int64
}

// String renders the topic.
func (t TopicID) String() string { return fmt.Sprintf("%s:%d", t.Kind, t.Entity) }

// Mode selects how publications reach a subscriber.
type Mode int

// Delivery modes.
const (
	ModeRealTime Mode = iota + 1
	ModeBatch
	ModeRound
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case ModeRealTime:
		return "real-time"
	case ModeBatch:
		return "batch"
	case ModeRound:
		return "round"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Handler consumes publications for one subscriber. Batched modes receive
// multiple items per call.
type Handler func(items []notif.Item)

// Errors returned by the broker.
var (
	ErrNilHandler    = errors.New("pubsub: nil handler")
	ErrBadMode       = errors.New("pubsub: invalid delivery mode")
	ErrNotSubscribed = errors.New("pubsub: not subscribed")
)

type subscription struct {
	user    notif.UserID
	mode    Mode
	handler Handler
	pending []notif.Item
	// cadence applies to round mode: the subscription drains every
	// cadence-th round (Section II: round duration proportional to feed
	// frequency — friend feeds every round, artist/playlist feeds every
	// few). Always >= 1.
	cadence int
}

// subKey identifies one subscription for dirty tracking.
type subKey struct {
	topic TopicID
	user  notif.UserID
}

// Broker is a topic-based pub/sub broker.
type Broker struct {
	mu     sync.Mutex
	topics map[TopicID]map[notif.UserID]*subscription

	published uint64
	delivered uint64

	// dirty tracks exactly the subscriptions holding buffered items, so a
	// flush walks O(dirty) instead of O(all topics) — on a million-user
	// shard almost every subscription is idle almost every round. The
	// counters keep Stats.Pending and PendingRound O(1); all three are
	// maintained at every pending-buffer mutation. dirtyKeys is flush
	// scratch, reused across rounds.
	dirty        map[subKey]struct{}
	dirtyKeys    []subKey
	pendingAll   int
	pendingRound int
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics: make(map[TopicID]map[notif.UserID]*subscription),
		dirty:  make(map[subKey]struct{}),
	}
}

// dropPending forgets a subscription's buffered items, maintaining the
// dirty set and pending counters. Caller holds b.mu.
func (b *Broker) dropPending(topic TopicID, sub *subscription) {
	if len(sub.pending) == 0 {
		return
	}
	b.pendingAll -= len(sub.pending)
	if sub.mode == ModeRound {
		b.pendingRound -= len(sub.pending)
	}
	delete(b.dirty, subKey{topic: topic, user: sub.user})
	sub.pending = nil
}

// Subscribe registers the user on a topic with the given mode and handler.
// Re-subscribing replaces the previous subscription (pending items are
// retained only when the mode is unchanged).
func (b *Broker) Subscribe(user notif.UserID, topic TopicID, mode Mode, h Handler) error {
	return b.SubscribeCadence(user, topic, mode, 1, h)
}

// ErrBadCadence is returned for non-positive round cadences.
var ErrBadCadence = errors.New("pubsub: cadence must be >= 1")

// SubscribeCadence registers a subscription whose round-mode drains only
// every cadence-th round, implementing the paper's per-feed round tuning:
// frequent feeds (friend activity) drain every round, infrequent ones
// (album releases, playlist updates) every few rounds. Cadence is ignored
// for real-time and batch modes.
func (b *Broker) SubscribeCadence(user notif.UserID, topic TopicID, mode Mode, cadence int, h Handler) error {
	if h == nil {
		return ErrNilHandler
	}
	if mode != ModeRealTime && mode != ModeBatch && mode != ModeRound {
		return fmt.Errorf("%w: %d", ErrBadMode, int(mode))
	}
	if cadence < 1 {
		return fmt.Errorf("%w: %d", ErrBadCadence, cadence)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.topics[topic]
	if subs == nil {
		subs = make(map[notif.UserID]*subscription)
		b.topics[topic] = subs
	}
	if prev, ok := subs[user]; ok {
		if prev.mode == mode {
			prev.handler = h
			prev.cadence = cadence
			return nil
		}
		// Mode change replaces the subscription and drops its pending items.
		b.dropPending(topic, prev)
	}
	subs[user] = &subscription{user: user, mode: mode, handler: h, cadence: cadence}
	return nil
}

// Unsubscribe removes the user's subscription from the topic. Pending
// batched items are dropped.
func (b *Broker) Unsubscribe(user notif.UserID, topic TopicID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := b.topics[topic]
	sub, ok := subs[user]
	if !ok {
		return fmt.Errorf("%w: user %d topic %s", ErrNotSubscribed, user, topic)
	}
	b.dropPending(topic, sub)
	delete(subs, user)
	if len(subs) == 0 {
		delete(b.topics, topic)
	}
	return nil
}

// Publish delivers the item on a topic. Real-time subscribers are invoked
// synchronously; batch and round subscribers accumulate the item.
func (b *Broker) Publish(topic TopicID, item notif.Item) {
	b.mu.Lock()
	b.published++
	var immediate []*subscription
	for _, sub := range b.topics[topic] {
		switch sub.mode {
		case ModeRealTime:
			immediate = append(immediate, sub)
			b.delivered++
		default:
			sub.pending = append(sub.pending, item)
			b.pendingAll++
			if sub.mode == ModeRound {
				b.pendingRound++
			}
			if len(sub.pending) == 1 {
				b.dirty[subKey{topic: topic, user: sub.user}] = struct{}{}
			}
		}
	}
	b.mu.Unlock()
	// Invoke handlers outside the lock: handlers may re-enter the broker.
	for _, sub := range immediate {
		sub.handler([]notif.Item{item})
	}
}

// topicLess orders topics by kind then entity: the canonical topic order
// used for flush draining and state export.
func topicLess(a, b TopicID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Entity < b.Entity
}

// sortedTopics returns the broker's topic IDs in canonical order. Caller
// holds b.mu.
func (b *Broker) sortedTopics() []TopicID {
	ids := make([]TopicID, 0, len(b.topics))
	for t := range b.topics {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return topicLess(ids[i], ids[j]) })
	return ids
}

// sortedSubUsers returns a topic's subscriber IDs ascending. Caller holds
// b.mu.
func sortedSubUsers(subs map[notif.UserID]*subscription) []notif.UserID {
	users := make([]notif.UserID, 0, len(subs))
	for u := range subs {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return users
}

// flushModes drains pending items of subscriptions matching the predicate,
// grouped per subscription. Only the dirty set — subscriptions actually
// holding buffered items — is visited, sorted into the same canonical
// order the historical all-topics walk produced (topic by kind/entity,
// then user ascending), so handler invocation order — and therefore any
// downstream queue order — is deterministic and unchanged while the cost
// drops from O(all topics) to O(dirty log dirty). Dirty entries whose
// subscription does not match (a cadence-gated round feed, a batch feed
// during EndRound) keep their mark for a later flush.
func (b *Broker) flushModes(match func(*subscription) bool) {
	type flushUnit struct {
		handler Handler
		items   []notif.Item
	}
	b.mu.Lock()
	keys := b.dirtyKeys[:0]
	for k := range b.dirty {
		keys = append(keys, k)
	}
	b.dirtyKeys = keys
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].topic != keys[j].topic {
			return topicLess(keys[i].topic, keys[j].topic)
		}
		return keys[i].user < keys[j].user
	})
	var units []flushUnit
	for _, k := range keys {
		sub := b.topics[k.topic][k.user]
		if sub == nil || len(sub.pending) == 0 {
			delete(b.dirty, k) // defensive: a stale mark cannot survive
			continue
		}
		if !match(sub) {
			continue
		}
		units = append(units, flushUnit{handler: sub.handler, items: sub.pending})
		b.delivered += uint64(len(sub.pending))
		b.pendingAll -= len(sub.pending)
		if sub.mode == ModeRound {
			b.pendingRound -= len(sub.pending)
		}
		sub.pending = nil
		delete(b.dirty, k)
	}
	b.mu.Unlock()
	for _, u := range units {
		u.handler(u.items)
	}
}

// FlushBatch drains batch-mode subscriptions (Spotify's batch delivery).
func (b *Broker) FlushBatch() {
	b.flushModes(func(s *subscription) bool { return s.mode == ModeBatch })
}

// EndRound drains every round-mode subscription regardless of cadence.
func (b *Broker) EndRound() {
	b.flushModes(func(s *subscription) bool { return s.mode == ModeRound })
}

// EndRoundIndex drains round-mode subscriptions whose cadence divides the
// given round index; the Live scheduler calls this once per round.
func (b *Broker) EndRoundIndex(round int) {
	b.flushModes(func(s *subscription) bool {
		return s.mode == ModeRound && round%s.cadence == 0
	})
}

// Stats reports broker counters.
type Stats struct {
	Published uint64
	Delivered uint64
	Topics    int
	// Pending counts publications buffered in batch- and round-mode
	// subscriptions, awaiting a flush. The live server exposes it as a
	// queue-depth gauge and consults it for backpressure.
	Pending int
}

// Stats returns a snapshot of broker counters. Pending is a maintained
// counter, so the call is O(1) regardless of topic count.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Published: b.published, Delivered: b.delivered, Topics: len(b.topics), Pending: b.pendingAll}
}

// PendingState is one subscription's buffered publications in canonical
// exported form.
type PendingState struct {
	Topic TopicID
	User  notif.UserID
	Items []notif.Item
}

// BrokerState is the broker's replay-relevant state: the counters and every
// non-empty pending buffer, in canonical order (topic by kind/entity, then
// user ascending). Subscriptions themselves — modes, cadences, handlers —
// are NOT captured: they are code plus registration calls, and restore
// expects the caller to have re-registered them first.
type BrokerState struct {
	Published uint64
	Delivered uint64
	Pending   []PendingState
}

// ExportState captures the broker's counters and pending buffers.
func (b *Broker) ExportState() BrokerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BrokerState{Published: b.published, Delivered: b.delivered}
	for _, t := range b.sortedTopics() {
		subs := b.topics[t]
		for _, u := range sortedSubUsers(subs) {
			sub := subs[u]
			if len(sub.pending) == 0 {
				continue
			}
			s.Pending = append(s.Pending, PendingState{
				Topic: t,
				User:  u,
				Items: append([]notif.Item(nil), sub.pending...),
			})
		}
	}
	return s
}

// RestoreState overwrites the counters and installs pending buffers into
// already-registered subscriptions. Every PendingState must reference an
// existing subscription: pending items cannot outlive the handler that
// would drain them, so restore order is subscribe-then-restore.
func (b *Broker) RestoreState(s BrokerState) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range s.Pending {
		sub := b.topics[p.Topic][p.User]
		if sub == nil {
			return fmt.Errorf("%w: restore pending for user %d topic %s", ErrNotSubscribed, p.User, p.Topic)
		}
		sub.pending = append([]notif.Item(nil), p.Items...)
	}
	b.published = s.Published
	b.delivered = s.Delivered
	// Rebuild the dirty set and pending counters from the ground truth; the
	// walk is O(all topics) but restore is a once-per-recovery event.
	clear(b.dirty)
	b.pendingAll, b.pendingRound = 0, 0
	for t, subs := range b.topics {
		for u, sub := range subs {
			if len(sub.pending) == 0 {
				continue
			}
			b.dirty[subKey{topic: t, user: u}] = struct{}{}
			b.pendingAll += len(sub.pending)
			if sub.mode == ModeRound {
				b.pendingRound += len(sub.pending)
			}
		}
	}
	return nil
}

// PendingRound counts publications buffered in round-mode subscriptions
// only — the backlog the next EndRound drain will hand to handlers. A
// maintained counter: O(1), called once per round by the server's
// snapshot path.
func (b *Broker) PendingRound() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pendingRound
}
