package pubsub

import (
	"sync"
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func topicA() TopicID { return TopicID{Kind: notif.TopicFriendFeed, Entity: 1} }

func item(id int64) notif.Item { return notif.Item{ID: notif.ItemID(id)} }

func TestSubscribeValidation(t *testing.T) {
	b := NewBroker()
	if err := b.Subscribe(1, topicA(), ModeRealTime, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if err := b.Subscribe(1, topicA(), Mode(99), func([]notif.Item) {}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestRealTimeDelivery(t *testing.T) {
	b := NewBroker()
	var got []notif.Item
	if err := b.Subscribe(1, topicA(), ModeRealTime, func(items []notif.Item) {
		got = append(got, items...)
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(10))
	b.Publish(topicA(), item(11))
	if len(got) != 2 || got[0].ID != 10 || got[1].ID != 11 {
		t.Fatalf("real-time delivery got %+v", got)
	}
}

func TestBatchModeBuffersUntilFlush(t *testing.T) {
	b := NewBroker()
	var got []notif.Item
	if err := b.Subscribe(1, topicA(), ModeBatch, func(items []notif.Item) {
		got = append(got, items...)
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	b.Publish(topicA(), item(2))
	if len(got) != 0 {
		t.Fatalf("batch items delivered before flush: %v", got)
	}
	b.FlushBatch()
	if len(got) != 2 {
		t.Fatalf("flush delivered %d items, want 2", len(got))
	}
	// Flush again: nothing pending.
	got = nil
	b.FlushBatch()
	if len(got) != 0 {
		t.Fatal("second flush redelivered items")
	}
}

func TestRoundModeDrainedByEndRound(t *testing.T) {
	b := NewBroker()
	var rounds [][]notif.Item
	if err := b.Subscribe(1, topicA(), ModeRound, func(items []notif.Item) {
		rounds = append(rounds, items)
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	b.EndRound()
	b.Publish(topicA(), item(2))
	b.Publish(topicA(), item(3))
	b.EndRound()
	if len(rounds) != 2 {
		t.Fatalf("%d round handoffs, want 2", len(rounds))
	}
	if len(rounds[0]) != 1 || len(rounds[1]) != 2 {
		t.Fatalf("round sizes %d/%d, want 1/2", len(rounds[0]), len(rounds[1]))
	}
	// FlushBatch must not touch round-mode subscriptions.
	b.Publish(topicA(), item(4))
	b.FlushBatch()
	if len(rounds) != 2 {
		t.Fatal("FlushBatch drained a round-mode subscription")
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	b := NewBroker()
	other := TopicID{Kind: notif.TopicArtistPage, Entity: 7}
	var gotA, gotB int
	if err := b.Subscribe(1, topicA(), ModeRealTime, func(items []notif.Item) { gotA += len(items) }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := b.Subscribe(1, other, ModeRealTime, func(items []notif.Item) { gotB += len(items) }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	if gotA != 1 || gotB != 0 {
		t.Fatalf("cross-topic leak: a=%d b=%d", gotA, gotB)
	}
}

func TestMultipleSubscribersReceiveSameItem(t *testing.T) {
	b := NewBroker()
	var got1, got2 int
	if err := b.Subscribe(1, topicA(), ModeRealTime, func(items []notif.Item) { got1 += len(items) }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := b.Subscribe(2, topicA(), ModeRealTime, func(items []notif.Item) { got2 += len(items) }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	if got1 != 1 || got2 != 1 {
		t.Fatalf("fanout got %d/%d, want 1/1", got1, got2)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBroker()
	got := 0
	if err := b.Subscribe(1, topicA(), ModeRealTime, func(items []notif.Item) { got += len(items) }); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := b.Unsubscribe(1, topicA()); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	if got != 0 {
		t.Fatal("unsubscribed handler invoked")
	}
	if err := b.Unsubscribe(1, topicA()); err == nil {
		t.Fatal("double unsubscribe accepted")
	}
}

func TestResubscribeChangesMode(t *testing.T) {
	b := NewBroker()
	var got []notif.Item
	h := func(items []notif.Item) { got = append(got, items...) }
	if err := b.Subscribe(1, topicA(), ModeBatch, h); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	// Switch to real-time: pending batch item is dropped with the old
	// subscription, new publications arrive immediately.
	if err := b.Subscribe(1, topicA(), ModeRealTime, h); err != nil {
		t.Fatalf("re-Subscribe: %v", err)
	}
	b.Publish(topicA(), item(2))
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after mode switch got %+v, want only item 2", got)
	}
}

func TestHandlerMayReenterBroker(t *testing.T) {
	b := NewBroker()
	reentered := false
	if err := b.Subscribe(1, topicA(), ModeRealTime, func([]notif.Item) {
		if !reentered {
			reentered = true
			b.Publish(TopicID{Kind: notif.TopicPlaylist, Entity: 2}, item(99))
		}
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1)) // must not deadlock
	if !reentered {
		t.Fatal("handler did not run")
	}
}

func TestStats(t *testing.T) {
	b := NewBroker()
	if err := b.Subscribe(1, topicA(), ModeRound, func([]notif.Item) {}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	b.Publish(topicA(), item(1))
	b.Publish(topicA(), item(2))
	st := b.Stats()
	if st.Published != 2 || st.Delivered != 0 || st.Topics != 1 {
		t.Fatalf("stats before drain %+v", st)
	}
	b.EndRound()
	st = b.Stats()
	if st.Delivered != 2 {
		t.Fatalf("delivered %d after drain, want 2", st.Delivered)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := NewBroker()
	var mu sync.Mutex
	count := 0
	if err := b.Subscribe(1, topicA(), ModeRealTime, func(items []notif.Item) {
		mu.Lock()
		count += len(items)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	var wg sync.WaitGroup
	const publishers, per = 8, 200
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(topicA(), item(int64(i)))
			}
		}()
	}
	wg.Wait()
	if count != publishers*per {
		t.Fatalf("delivered %d, want %d", count, publishers*per)
	}
	if st := b.Stats(); st.Published != publishers*per {
		t.Fatalf("published %d, want %d", st.Published, publishers*per)
	}
}
