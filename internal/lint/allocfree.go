package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// AllocFree enforces the // richnote:allocfree marker on hot-path
// functions: the per-round planner, the forest batch scorer and the WAL
// append path are called once per round per shard, and a steady-state
// allocation there turns into GC pressure that shows up directly in the
// round-latency histogram. The marker makes the no-alloc property a
// reviewed, lint-checked contract instead of a benchmark regression.
//
// Flagged constructs: make/new, slice and map literals, address-of
// composite literals, closures, go statements, string concatenation and
// string<->[]byte/[]rune conversions, map assignments (which may grow
// the table), implicit variadic slices, and arguments boxed into
// interface parameters. Pointer-shaped values (pointers, channels,
// maps, funcs) store directly in an interface word and are exempt from
// the boxing rule — sort.Stable(&s.incs) stays clean.
//
// Two idioms are deliberately permitted: append (amortized growth into
// a reused buffer is the hot-path pattern, not a steady-state alloc)
// and anything under an if statement whose condition tests nil or
// cap/len — the standard shapes of error paths and warm-up allocations
// ("if cap(buf) < n { buf = make(...) }"), which run off the steady
// state.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "functions marked // richnote:allocfree must contain no " +
		"steady-state allocating constructs; warm-up allocations belong " +
		"behind a cap/len or nil guard",
	IncludeTests: false,
	Run:          runAllocFree,
}

var allocfreeRE = regexp.MustCompile(`richnote:allocfree\b`)

func runAllocFree(p *Pass) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			if !allocfreeRE.MatchString(fd.Doc.Text()) {
				continue
			}
			p.checkAllocFree(fd)
		}
	}
}

func (p *Pass) checkAllocFree(fd *ast.FuncDecl) {
	name := fd.Name.Name
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if allocGuarded(stack) {
			return
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			p.checkAllocCall(v, name, stack)
		case *ast.CompositeLit:
			switch p.typeOf(v).Underlying().(type) {
			case *types.Slice:
				p.Reportf(v.Pos(), "slice literal allocates inside richnote:allocfree function %s", name)
			case *types.Map:
				p.Reportf(v.Pos(), "map literal allocates inside richnote:allocfree function %s", name)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
					p.Reportf(v.Pos(), "address of a composite literal allocates on the heap inside richnote:allocfree function %s", name)
				}
			}
		case *ast.FuncLit:
			p.Reportf(v.Pos(), "closure allocates inside richnote:allocfree function %s", name)
		case *ast.GoStmt:
			p.Reportf(v.Pos(), "go statement allocates a goroutine inside richnote:allocfree function %s", name)
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringType(p.typeOf(v)) {
				p.Reportf(v.Pos(), "string concatenation allocates inside richnote:allocfree function %s", name)
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := p.typeOf(idx.X).Underlying().(*types.Map); isMap {
						p.Reportf(idx.Pos(), "map assignment may grow the map inside richnote:allocfree function %s", name)
					}
				}
			}
		}
	})
}

// checkAllocCall classifies one call inside an allocfree body:
// allocating builtins, allocating conversions, implicit variadic
// slices and interface boxing of arguments.
func (p *Pass) checkAllocCall(call *ast.CallExpr, name string, stack []ast.Node) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				p.Reportf(call.Pos(), "call to %s allocates inside richnote:allocfree function %s", b.Name(), name)
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copies.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, p.typeOf(call.Args[0])
		if (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src)) {
			p.Reportf(call.Pos(), "conversion between string and byte/rune slice allocates inside richnote:allocfree function %s", name)
		}
		return
	}

	sig, _ := p.typeOf(call.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return
	}

	// Implicit variadic slice (append's amortized growth is exempt).
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		p.Reportf(call.Pos(), "implicit variadic slice allocates inside richnote:allocfree function %s", name)
		return
	}

	// Interface boxing at argument positions.
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok && call.Ellipsis == token.NoPos {
				param = s.Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := p.typeOf(arg)
		if at == nil || types.IsInterface(at) || isDirectIface(at) {
			continue
		}
		if tv, ok := p.TypesInfo.Types[arg]; ok && tv.IsNil() {
			continue
		}
		p.Reportf(arg.Pos(), "argument %s is boxed into an interface inside richnote:allocfree function %s", types.ExprString(arg), name)
	}
}

// allocGuarded reports whether any enclosing if statement's condition
// tests nil or cap/len — the error-path and warm-up shapes the analyzer
// exempts.
func allocGuarded(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op == token.EQL || v.Op == token.NEQ {
					for _, side := range []ast.Expr{v.X, v.Y} {
						if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == "nil" {
							guarded = true
						}
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// isDirectIface reports whether values of the type are stored directly
// in an interface word, so converting them to an interface does not
// allocate.
func isDirectIface(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
