package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the typed half of the driver: it discovers packages with
// `go list -json`, parses them once, type-checks them bottom-up with
// go/types + go/importer (source mode — the only stdlib importer that
// works without compiled export data), and hands each analyzer a
// *types.Info. Results are cached process-wide so repeated Run calls
// (the repo test, the wall-clock budget test, cmd/richnote-lint) pay
// for go list, parsing and type checking exactly once per tree.

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// parsedFile pairs a syntax tree with whether it came from a _test.go
// file, which some analyzers exempt.
type parsedFile struct {
	ast  *ast.File
	test bool
}

// PackageInfo is one type-checked analysis unit: a package's files plus
// the go/types results for them. The in-package test unit re-checks the
// compiled files together with the _test.go files; external test files
// (package foo_test) form their own unit.
type PackageInfo struct {
	Fset  *token.FileSet
	Path  string
	Files []*ast.File
	// Pkg is the type-checked package. It is non-nil even when the
	// package has type errors (go/types returns what it could).
	Pkg *types.Package
	// Info holds the resolution maps for Files. Always non-nil; on a
	// package with type errors some entries are missing and analyzers
	// degrade to their syntactic fallbacks.
	Info *types.Info
	// TypeErrors collects every error the type checker reported for
	// this unit, in source order.
	TypeErrors []error

	graphOnce sync.Once
	graph     *CallGraph
}

// CallGraph returns the package-local call graph for the unit, built on
// first use.
func (pi *PackageInfo) CallGraph() *CallGraph {
	pi.graphOnce.Do(func() { pi.graph = buildCallGraph(pi) })
	return pi.graph
}

// unit is a PackageInfo plus the per-file test flags the driver uses to
// gate IncludeTests.
type unit struct {
	pi    *PackageInfo
	files []parsedFile
}

// loadedPackage is one matched package with its analysis units: the
// primary unit (compiled files, plus in-package test files when
// present) and, when the package has external tests, the xtest unit.
type loadedPackage struct {
	importPath string
	units      []*unit
}

// load is everything Run needs for one (dir, patterns) invocation.
type load struct {
	fset     *token.FileSet
	pkgs     []*loadedPackage
	allows   []allowDirective
	findings []Finding // parse/typecheck failures, pseudo-analyzer "lint"
}

var (
	loadMu    sync.Mutex
	loadCache = map[string]*load{}

	// The file set, source importer and its package cache are shared
	// across loads so the standard library is type-checked from source
	// once per process, not once per Run.
	sharedFset     *token.FileSet
	sharedStdlib   types.ImporterFrom
	disableCgoOnce sync.Once
)

// loadPackages returns the cached load for (dir, patterns), building it
// on first use.
func loadPackages(dir string, patterns []string) (*load, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	key := abs + "\x00" + strings.Join(patterns, "\x00")
	if ld, ok := loadCache[key]; ok {
		return ld, nil
	}
	ld, err := loadUncached(abs, patterns)
	if err != nil {
		return nil, err
	}
	loadCache[key] = ld
	return ld, nil
}

// loadUncached builds a load from scratch. Callers must hold loadMu.
func loadUncached(dir string, patterns []string) (*load, error) {
	// go/importer's source mode resolves imports through go/build; with
	// cgo enabled it would try to run the cgo tool on packages like net.
	// The analyses never need cgo-generated code, so pin the build
	// context to pure Go before the first import.
	disableCgoOnce.Do(func() { build.Default.CgoEnabled = false })
	if sharedFset == nil {
		sharedFset = token.NewFileSet()
		sharedStdlib = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}

	matched, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	modulePath, err := goListModule(dir)
	if err != nil {
		return nil, err
	}
	local, order, err := resolveLocalClosure(dir, modulePath, matched)
	if err != nil {
		return nil, err
	}

	ld := &load{fset: sharedFset}
	matchedSet := make(map[string]bool, len(matched))
	for _, pkg := range matched {
		matchedSet[pkg.ImportPath] = true
	}

	imp := &moduleImporter{
		modulePath: modulePath,
		local:      make(map[string]*types.Package),
		fallback:   sharedStdlib,
	}

	// Pass 1: type-check every local package's compiled files bottom-up
	// and publish the results to the importer, so later packages (and
	// test units) resolve module-local imports from this cache instead
	// of re-checking them.
	type checked struct {
		pkg      *listPackage
		compiled []parsedFile
		base     *PackageInfo
	}
	baseByPath := make(map[string]*checked, len(order))
	for _, path := range order {
		pkg := local[path]
		compiled := parseFiles(ld, pkg, append(append([]string(nil), pkg.GoFiles...), pkg.CgoFiles...), false)
		if len(compiled) == 0 {
			baseByPath[path] = &checked{pkg: pkg}
			continue
		}
		base := typecheckUnit(ld, imp, path, compiled)
		if base.Pkg != nil {
			imp.local[path] = base.Pkg
		}
		baseByPath[path] = &checked{pkg: pkg, compiled: compiled, base: base}
		if matchedSet[path] {
			reportTypeErrors(ld, path, base)
		}
	}

	// Pass 2: build analysis units for the matched packages. In-package
	// tests are re-checked together with the compiled files under a
	// throwaway package so test-only symbols resolve without polluting
	// the import cache pass 1 built.
	for _, pkg := range matched {
		c := baseByPath[pkg.ImportPath]
		if c == nil {
			continue
		}
		lp := &loadedPackage{importPath: pkg.ImportPath}
		scanAllowFiles(ld, c.compiled)

		if len(pkg.TestGoFiles) > 0 {
			testFiles := parseFiles(ld, c.pkg, pkg.TestGoFiles, true)
			scanAllowFiles(ld, testFiles)
			all := append(append([]parsedFile(nil), c.compiled...), testFiles...)
			full := typecheckUnit(ld, imp, pkg.ImportPath, all)
			reportTypeErrors(ld, pkg.ImportPath, full)
			lp.units = append(lp.units, &unit{pi: full, files: all})
		} else if c.base != nil {
			lp.units = append(lp.units, &unit{pi: c.base, files: c.compiled})
		}

		if len(pkg.XTestGoFiles) > 0 {
			xFiles := parseFiles(ld, c.pkg, pkg.XTestGoFiles, true)
			scanAllowFiles(ld, xFiles)
			xt := typecheckUnit(ld, imp, pkg.ImportPath+"_test", xFiles)
			reportTypeErrors(ld, pkg.ImportPath+"_test", xt)
			xt.Path = pkg.ImportPath // scope gating keys on the real path
			lp.units = append(lp.units, &unit{pi: xt, files: xFiles})
		}

		if len(lp.units) > 0 {
			ld.pkgs = append(ld.pkgs, lp)
		}
	}
	return ld, nil
}

// LoadFixture parses and type-checks one standalone fixture directory
// against the standard library — the linttest entry point. The unit's
// import path is the directory's base name; fixtures may import only
// the standard library. Unlike loadUncached, errors here are returned,
// not recorded as findings: a fixture that fails to parse or resolve is
// a broken test, not an analyzable package.
func LoadFixture(dir string) (*PackageInfo, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	disableCgoOnce.Do(func() { build.Default.CgoEnabled = false })
	if sharedFset == nil {
		sharedFset = token.NewFileSet()
		sharedStdlib = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	var files []parsedFile
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, parsedFile{ast: f})
	}
	imp := &moduleImporter{local: make(map[string]*types.Package), fallback: sharedStdlib}
	return typecheckUnit(&load{fset: sharedFset}, imp, filepath.Base(dir), files), nil
}

// parseFiles parses the named files of a package, recording parse
// failures as findings and keeping whatever partial syntax the parser
// salvaged.
func parseFiles(ld *load, pkg *listPackage, names []string, test bool) []parsedFile {
	var out []parsedFile
	for _, name := range names {
		path := filepath.Join(pkg.Dir, name)
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.findings = append(ld.findings, Finding{
				Analyzer: "lint",
				Pos:      token.Position{Filename: path},
				Message:  fmt.Sprintf("package %s does not parse: %v", pkg.ImportPath, firstLine(err.Error())),
			})
		}
		if f != nil {
			out = append(out, parsedFile{ast: f, test: test})
		}
	}
	return out
}

// scanAllowFiles collects //lint:allow directives (and malformed-
// directive findings) from already-parsed files.
func scanAllowFiles(ld *load, files []parsedFile) {
	for _, pf := range files {
		a, bad := scanAllows(ld.fset, pf.ast)
		ld.allows = append(ld.allows, a...)
		ld.findings = append(ld.findings, bad...)
	}
}

// typecheckUnit runs go/types over one set of files, collecting rather
// than aborting on errors so a broken package still yields partial
// resolution maps for best-effort analysis.
func typecheckUnit(ld *load, imp *moduleImporter, path string, files []parsedFile) *PackageInfo {
	pi := &PackageInfo{
		Fset: ld.fset,
		Path: path,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	asts := make([]*ast.File, 0, len(files))
	for _, pf := range files {
		asts = append(asts, pf.ast)
	}
	pi.Files = asts
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pi.TypeErrors = append(pi.TypeErrors, err) },
	}
	pkg, err := conf.Check(path, ld.fset, asts, pi.Info)
	if err != nil && len(pi.TypeErrors) == 0 {
		pi.TypeErrors = append(pi.TypeErrors, err)
	}
	pi.Pkg = pkg
	return pi
}

// reportTypeErrors converts a unit's type errors into a single driver
// finding (satellite: a package that fails to type-check is a finding,
// not a run-aborting error). Analysis still runs on the partial maps.
func reportTypeErrors(ld *load, path string, pi *PackageInfo) {
	if len(pi.TypeErrors) == 0 {
		return
	}
	first := pi.TypeErrors[0]
	pos := token.Position{}
	if te, ok := first.(types.Error); ok {
		pos = te.Fset.Position(te.Pos)
	}
	extra := ""
	if n := len(pi.TypeErrors); n > 1 {
		extra = fmt.Sprintf(" (and %d more)", n-1)
	}
	ld.findings = append(ld.findings, Finding{
		Analyzer: "lint",
		Pos:      pos,
		Message: fmt.Sprintf("package %s does not type-check: %v%s; typed analysis for it is partial",
			path, firstLine(first.Error()), extra),
	})
}

// moduleImporter resolves module-local imports from the packages the
// loader has already checked and everything else (the standard library)
// through the shared source importer.
type moduleImporter struct {
	modulePath string
	local      map[string]*types.Package
	fallback   types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		return nil, fmt.Errorf("module package %s has not been type-checked (does it build?)", path)
	}
	return m.fallback.ImportFrom(path, srcDir, mode)
}

// goList shells out to the go tool for package discovery — the
// stdlib-only stand-in for go/packages.Load.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		pkg := new(listPackage)
		if err := dec.Decode(pkg); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goListModule returns the module path for dir.
func goListModule(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go list -m: %w\n%s", err, stderr.String())
	}
	return strings.TrimSpace(stdout.String()), nil
}

// resolveLocalClosure expands the matched packages to the full
// module-local import closure (including test imports of the matched
// packages) and returns it in dependency order, so pass 1 can check
// each package after everything it imports.
func resolveLocalClosure(dir, modulePath string, matched []*listPackage) (map[string]*listPackage, []string, error) {
	isLocal := func(path string) bool {
		return path == modulePath || strings.HasPrefix(path, modulePath+"/")
	}
	local := make(map[string]*listPackage, len(matched))
	var queue []string
	enqueue := func(paths ...string) {
		for _, p := range paths {
			if isLocal(p) {
				if _, ok := local[p]; !ok {
					queue = append(queue, p)
				}
			}
		}
	}
	for _, pkg := range matched {
		local[pkg.ImportPath] = pkg
	}
	for _, pkg := range matched {
		enqueue(pkg.Imports...)
		enqueue(pkg.TestImports...)
		enqueue(pkg.XTestImports...)
	}
	for len(queue) > 0 {
		var missing []string
		for _, p := range queue {
			if _, ok := local[p]; !ok {
				missing = append(missing, p)
			}
		}
		queue = nil
		if len(missing) == 0 {
			continue
		}
		extra, err := goList(dir, missing)
		if err != nil {
			return nil, nil, err
		}
		for _, pkg := range extra {
			if _, ok := local[pkg.ImportPath]; ok {
				continue
			}
			local[pkg.ImportPath] = pkg
			// Dependency-only packages contribute their compiled
			// imports; their tests are never analyzed or checked.
			enqueue(pkg.Imports...)
		}
	}

	// Topological sort by compiled imports; ties (and the impossible
	// cycle case, which type checking will report anyway) break by path
	// so the order — and therefore finding order — is deterministic.
	order := make([]string, 0, len(local))
	state := make(map[string]int, len(local)) // 0 new, 1 visiting, 2 done
	paths := make([]string, 0, len(local))
	for p := range local {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var visit func(string)
	visit = func(p string) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		deps := append([]string(nil), local[p].Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := local[d]; ok && state[d] == 0 {
				visit(d)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return local, order, nil
}

// firstLine truncates a multi-line error to its first line.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
