// Package linttest runs a lint.Analyzer over a fixture directory and
// checks its findings against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expecting a finding carries a comment with one or more
// backquoted (or double-quoted) regular expressions:
//
//	rand.Seed(42) // want `rand\.Seed`
//
// Every want must be matched by a distinct finding on its line and
// every finding must be covered by a want; anything else fails the
// test. Fixtures are parsed, not compiled, so they may reference
// nothing outside the standard library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/richnote/richnote/internal/lint"
)

// wantRE pulls the expectation list out of a comment; quotedRE then
// extracts each pattern.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies the analyzer to every .go file in dir and diffs the
// findings against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	wants, err := collectWants(t, fset, files)
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.RunAnalyzer(a, fset, filepath.Base(dir), files)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("linttest: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("linttest: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					text := q[1]
					if text == "" {
						text = q[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// claim marks the first unmatched want covering the finding.
func claim(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
