// Package linttest runs a lint.Analyzer over a fixture directory and
// checks its findings against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expecting a finding carries a comment with one or more
// backquoted (or double-quoted) regular expressions:
//
//	rand.Seed(42) // want `rand\.Seed`
//
// Every want must be matched by a distinct finding on its line and
// every finding must be covered by a want; anything else fails the
// test. Fixtures are type-checked against the standard library (and
// only the standard library), matching the typed driver: a fixture that
// does not resolve fails the test before any analyzer runs, so want
// comments always exercise the analyzer's typed path rather than its
// degraded syntactic fallback.
package linttest

import (
	"fmt"
	"regexp"
	"testing"

	"github.com/richnote/richnote/internal/lint"
)

// wantRE pulls the expectation list out of a comment; quotedRE then
// extracts each pattern.
var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run type-checks the fixture directory, applies the analyzer and diffs
// the findings against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pi, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pi.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	if len(pi.TypeErrors) > 0 {
		t.FailNow()
	}
	wants, err := collectWants(pi)
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.RunAnalyzer(a, pi, nil)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

func collectWants(pi *lint.PackageInfo) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pi.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pi.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					text := q[1]
					if text == "" {
						text = q[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %w", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// claim marks the first unmatched want covering the finding.
func claim(wants []*expectation, f lint.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
