package lint

import "testing"

func TestUnitSuffix(t *testing.T) {
	cases := map[string]string{
		"WeeklyBudgetBytes": "bytes",
		"sizeBytes":         "bytes",
		"bytesPerMB":        "MB",
		"quotaMB":           "MB",
		"CellPerKB":         "KB",
		"transferJ":         "J",
		"EnergyJ":           "J",
		"CellRampJ":         "J",
		"totalJoules":       "J",
		"kb":                "KB",
		"mb":                "MB",
		"bytes":             "bytes",
		"J":                 "J",
		"MB":                "MB",
		// Camel-case boundaries that must NOT read as units.
		"RGB":       "",
		"FOOJ":      "",
		"thumb":     "",
		"need":      "",
		"Size":      "",
		"Buckets":   "",
		"remaining": "",
	}
	for name, want := range cases {
		if got := unitSuffix(name); got != want {
			t.Errorf("unitSuffix(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestScopeMatches(t *testing.T) {
	cases := []struct {
		scope []string
		path  string
		want  bool
	}{
		{nil, "github.com/richnote/richnote/internal/energy", true},
		{[]string{"sim"}, "github.com/richnote/richnote/internal/sim", true},
		{[]string{"ml"}, "github.com/richnote/richnote/internal/ml/eval", true},
		{[]string{"sim"}, "github.com/richnote/richnote/cmd/richnote-sim", false},
		{[]string{"server"}, "github.com/richnote/richnote/internal/server", true},
		{[]string{"trace"}, "github.com/richnote/richnote", false},
	}
	for _, c := range cases {
		a := &Analyzer{Scope: c.scope}
		if got := scopeMatches(a, c.path); got != c.want {
			t.Errorf("scopeMatches(%v, %q) = %v, want %v", c.scope, c.path, got, c.want)
		}
	}
}

func TestDefaultImportName(t *testing.T) {
	cases := map[string]string{
		"math/rand":    "rand",
		"math/rand/v2": "rand",
		"sync/atomic":  "atomic",
		"time":         "time",
	}
	for path, want := range cases {
		if got := defaultImportName(path); got != want {
			t.Errorf("defaultImportName(%q) = %q, want %q", path, got, want)
		}
	}
}
