package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/richnote/richnote/internal/lint"
)

// TestRepoIsClean is the smoke test behind the CI step: the full
// richnote-lint suite over the whole repository must come back empty.
// Every intentional wall-clock or confinement exception in the tree
// carries a //lint:allow directive; anything this test prints is a
// regression against an enforced invariant (DESIGN.md §9).
func TestRepoIsClean(t *testing.T) {
	root := repoRoot(t)
	findings, err := lint.Run(root, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// repoRoot walks up from the test's working directory to the module
// root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
