package lint

import "go/ast"

// randImports are the package paths whose ambient top-level state the
// analyzer polices. math/rand/v2 has no Seed, but its top-level
// functions draw from an unseedable global and are equally forbidden.
var randImports = []string{"math/rand", "math/rand/v2"}

// seedRandGlobals are the top-level math/rand (and /v2) functions that
// read the shared package-level source.
var seedRandGlobals = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// SeedRand forbids ambient randomness in the deterministic packages:
// pipeline builds must be byte-identical at any worker count (PR 1) and
// shards must never share RNG state (PR 2), so every random draw has to
// come from an injected, seed-derived *rand.Rand. Calls resolve through
// the type checker, so a method named Intn on an injected generator is
// never confused with the package-level function.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc: "forbid global math/rand functions, rand.Seed and time-derived RNG " +
		"sources in deterministic packages; randomness must flow through an " +
		"injected *rand.Rand constructed from a configured seed " +
		"(see network.NewModelSeeded)",
	Scope:        []string{"catalog", "trace", "network", "ml", "sim", "server"},
	IncludeTests: true,
	Run:          runSeedRand,
}

func runSeedRand(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := p.pkgCall(file, call, randImports...)
			if !ok {
				return true
			}
			switch {
			case name == "Seed":
				p.Reportf(call.Pos(),
					"rand.Seed mutates the process-wide source; construct an injected *rand.Rand from a configured seed instead")
			case seedRandGlobals[name]:
				p.Reportf(call.Pos(),
					"global math/rand.%s draws from the shared ambient source and is nondeterministic under concurrency; use an injected *rand.Rand", name)
			case name == "NewSource" || name == "NewPCG" || name == "NewChaCha8":
				if tn, ok := p.timeDerived(file, call.Args); ok {
					p.Reportf(call.Pos(),
						"RNG source seeded from time.%s is irreproducible; derive the seed from configuration", tn)
				}
			case name == "New":
				// rand.New(rand.NewSource(...)) is handled by the
				// NewSource case above; only flag time leaking into New
				// through some other construction.
				if p.hasNestedSourceCtor(file, call.Args) {
					return true
				}
				if tn, ok := p.timeDerived(file, call.Args); ok {
					p.Reportf(call.Pos(),
						"RNG seeded from time.%s is irreproducible; derive the seed from configuration", tn)
				}
			}
			return true
		})
	}
}

// timeDerived reports whether any expression in args references the
// time package (time.Now().UnixNano() and friends), returning the
// selected name.
func (p *Pass) timeDerived(f *ast.File, args []ast.Expr) (string, bool) {
	var name string
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if path, ok := p.pkgNameOf(f, id); ok && path == "time" && name == "" {
				name = sel.Sel.Name
			}
			return true
		})
	}
	return name, name != ""
}

// hasNestedSourceCtor reports whether args contain a rand source
// constructor call (which the NewSource/NewPCG case already checks).
func (p *Pass) hasNestedSourceCtor(f *ast.File, args []ast.Expr) bool {
	found := false
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := p.pkgCall(f, call, randImports...); ok {
				if name == "NewSource" || name == "NewPCG" || name == "NewChaCha8" {
					found = true
				}
			}
			return true
		})
	}
	return found
}
