package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// CodecSym verifies that every hand-written binary encoder has a
// decoder reading exactly the byte sequence it writes — the invariant
// all of crash recovery, shard handoff and the cluster RPC layer rest
// on. A codec asymmetry becomes a lint finding instead of a
// corrupted-handoff debugging session.
//
// The analyzer abstracts each codec function into its *op sequence*:
// calls to the fixed-width primitives of a type named Encoder or
// Decoder (U8/U32/U64/I64/F64/Bool/Str/Time, with Decoder.Count
// normalizing to the u32 the count occupies on the wire), calls to
// other paired codec functions (encodeItem inside encodeQueued), and
// the loop/branch structure around them. Ops are collected in Go
// evaluation order — composite-literal fields, if-statement inits and
// return expressions included — and the writer's sequence must mirror
// the reader's node for node. Local helpers that take the codec but are
// not pair members are inlined; calls that do not carry an Encoder or
// Decoder argument cannot move bytes and are ignored.
//
// Pairs are recognized three ways:
//
//   - by name: encodeX ↔ decodeX (same X, same package);
//   - by convention: a method Encode/Save/Marshal on T paired with a
//     package function Decode/Load/Unmarshal returning T or *T;
//   - by annotation: declarations sharing // richnote:codecpair(<key>)
//     form a pair regardless of name (the shard's encodeState ↔
//     restoreState, logPublish ↔ decodeEnvelope).
//
// An encodeX/decodeX function that moves bytes but has no counterpart
// is reported as an orphan, and a package declaring both an Encoder and
// a Decoder type must give them mirrored primitive method sets.
//
// Out of scope, deliberately: codecs built on raw byte-slice helpers
// with no Encoder/Decoder value (internal/transport's frame header —
// pinned by its round-trip tests) and intentionally asymmetric framings
// (the snapshot CRC trailer, which the writer appends to the same
// buffer but the reader strips before constructing its decoder).
var CodecSym = &Analyzer{
	Name: "codecsym",
	Doc: "pair hand-written encoders with their decoders (by encodeX/decodeX " +
		"name, Encode/Decode convention or richnote:codecpair annotation) and " +
		"verify the read sequence mirrors the write sequence in field order " +
		"and width",
	IncludeTests: false,
	Run:          runCodecSym,
}

// codecpairRE extracts the pair key from a declaration comment.
var codecpairRE = regexp.MustCompile(`richnote:codecpair\(([^)]*)\)`)

// codecPrims maps primitive method names to their canonical wire shape.
// Count reads the u32 an encoder writes with U32(len(...)).
var codecPrims = map[string]string{
	"U8": "u8", "U32": "u32", "U64": "u64", "I64": "i64",
	"F64": "f64", "Bool": "bool", "Str": "str", "Time": "time",
	"Count": "u32",
}

// op kinds.
const (
	opPrim = iota // one fixed-width primitive
	opCall        // a call into another recognized codec pair
	opLoop        // a repeated body
	opCond        // branched bodies (if/switch)
)

// op is one node of a codec function's abstract byte sequence.
type op struct {
	kind     int
	text     string // canonical prim name, or the callee pair key
	side     string // for prims: "enc" or "dec", by receiver type
	pos      token.Pos
	branches [][]op // loop: one; cond: then/else or switch cases
}

func (o op) String() string {
	switch o.kind {
	case opPrim:
		return o.text
	case opCall:
		return "<" + o.text + ">"
	case opLoop:
		return "loop{" + renderOps(o.branches[0]) + "}"
	default:
		parts := make([]string, 0, len(o.branches))
		for _, b := range o.branches {
			parts = append(parts, renderOps(b))
		}
		return "if{" + strings.Join(parts, " | ") + "}"
	}
}

func renderOps(ops []op) string {
	parts := make([]string, 0, len(ops))
	for _, o := range ops {
		parts = append(parts, o.String())
	}
	return strings.Join(parts, " ")
}

// codecFn is one declaration participating in pair matching.
type codecFn struct {
	decl *ast.FuncDecl
	fn   *types.Func
	ops  []op
}

func runCodecSym(p *Pass) {
	c := &codecChecker{p: p, extracted: make(map[*types.Func][]op)}
	c.collect()
	c.matchAnnotated()
	c.matchByName()
	c.matchByConvention()
	c.checkMirror()
}

type codecChecker struct {
	p         *Pass
	decls     []*ast.FuncDecl
	extracted map[*types.Func][]op
	// paired marks declarations consumed by a rule, so the orphan check
	// and later rules skip them.
	paired map[*ast.FuncDecl]bool
}

func (c *codecChecker) collect() {
	c.paired = make(map[*ast.FuncDecl]bool)
	for _, f := range c.p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.decls = append(c.decls, fd)
			}
		}
	}
}

func (c *codecChecker) funcOf(decl *ast.FuncDecl) *types.Func {
	fn, _ := c.p.TypesInfo.Defs[decl.Name].(*types.Func)
	return fn
}

// annotationKey returns the richnote:codecpair key on a declaration.
func annotationKey(decl *ast.FuncDecl) string {
	if decl.Doc == nil {
		return ""
	}
	if m := codecpairRE.FindStringSubmatch(decl.Doc.Text()); m != nil {
		return strings.TrimSpace(m[1])
	}
	return ""
}

// matchAnnotated pairs declarations sharing a codecpair key.
func (c *codecChecker) matchAnnotated() {
	groups := make(map[string][]*ast.FuncDecl)
	var keys []string
	for _, decl := range c.decls {
		if key := annotationKey(decl); key != "" {
			if len(groups[key]) == 0 {
				keys = append(keys, key)
			}
			groups[key] = append(groups[key], decl)
		}
	}
	for _, key := range keys {
		g := groups[key]
		for _, decl := range g {
			c.paired[decl] = true
		}
		if len(g) != 2 {
			c.p.Reportf(g[0].Pos(),
				"richnote:codecpair(%s) must annotate exactly one encoder and one decoder; found %d declarations", key, len(g))
			continue
		}
		a, b := c.fnFor(g[0]), c.fnFor(g[1])
		if a == nil || b == nil {
			continue
		}
		writer, reader := a, b
		if roleOf(b.ops) == "enc" || roleOf(a.ops) == "dec" {
			writer, reader = b, a
		}
		if roleOf(writer.ops) == "dec" || roleOf(reader.ops) == "enc" {
			c.p.Reportf(g[0].Pos(),
				"richnote:codecpair(%s) needs one writing and one reading side; could not classify %s and %s",
				key, g[0].Name.Name, g[1].Name.Name)
			continue
		}
		c.compare("codecpair("+key+")", writer, reader)
	}
}

// roleOf classifies an op sequence by the side tags the extractor
// recorded on its primitives: a writer's prims come from an Encoder,
// a reader's from a Decoder. Mixed or prim-free sequences return "".
func roleOf(ops []op) string {
	enc, dec := 0, 0
	var count func([]op)
	count = func(ops []op) {
		for _, o := range ops {
			if o.kind == opPrim {
				switch o.side {
				case "enc":
					enc++
				case "dec":
					dec++
				}
			}
			for _, b := range o.branches {
				count(b)
			}
		}
	}
	count(ops)
	switch {
	case enc > 0 && dec == 0:
		return "enc"
	case dec > 0 && enc == 0:
		return "dec"
	}
	return ""
}

// fnFor extracts (once) the op sequence for a declaration.
func (c *codecChecker) fnFor(decl *ast.FuncDecl) *codecFn {
	fn := c.funcOf(decl)
	if fn == nil {
		return nil
	}
	ops, ok := c.extracted[fn]
	if !ok {
		x := &opExtractor{p: c.p, visited: map[*types.Func]bool{fn: true}}
		ops = x.stmts(decl.Body.List)
		c.extracted[fn] = ops
	}
	return &codecFn{decl: decl, fn: fn, ops: ops}
}

// matchByName pairs encodeX with decodeX and reports orphans that move
// bytes without a counterpart.
func (c *codecChecker) matchByName() {
	encs := make(map[string]*ast.FuncDecl)
	decs := make(map[string]*ast.FuncDecl)
	var order []string
	add := func(m map[string]*ast.FuncDecl, key string, decl *ast.FuncDecl) {
		if _, ok := m[key]; !ok {
			m[key] = decl
			order = append(order, key)
		}
	}
	for _, decl := range c.decls {
		if c.paired[decl] {
			continue
		}
		name := decl.Name.Name
		if suffix, ok := cutAnyPrefix(name, "encode", "Encode"); ok && suffix != "" {
			add(encs, suffix, decl)
		} else if suffix, ok := cutAnyPrefix(name, "decode", "Decode"); ok && suffix != "" {
			add(decs, suffix, decl)
		}
	}
	seen := make(map[string]bool)
	for _, key := range order {
		if seen[key] {
			continue
		}
		seen[key] = true
		enc, dec := encs[key], decs[key]
		switch {
		case enc != nil && dec != nil:
			c.paired[enc], c.paired[dec] = true, true
			w, r := c.fnFor(enc), c.fnFor(dec)
			if w != nil && r != nil {
				c.compare(enc.Name.Name+"/"+dec.Name.Name, w, r)
			}
		case enc != nil:
			if f := c.fnFor(enc); f != nil && len(f.ops) > 0 {
				c.p.Reportf(enc.Pos(),
					"encoder %s moves bytes but has no matching decode%s in this package; pair it or annotate both sides with richnote:codecpair",
					enc.Name.Name, key)
			}
		case dec != nil:
			if f := c.fnFor(dec); f != nil && len(f.ops) > 0 {
				c.p.Reportf(dec.Pos(),
					"decoder %s moves bytes but has no matching encode%s in this package; pair it or annotate both sides with richnote:codecpair",
					dec.Name.Name, key)
			}
		}
	}
}

func cutAnyPrefix(s string, prefixes ...string) (string, bool) {
	for _, p := range prefixes {
		if rest, ok := strings.CutPrefix(s, p); ok {
			return rest, true
		}
	}
	return "", false
}

// matchByConvention pairs a method Encode/Save/Marshal on T with the
// package-level function Decode/Load/Unmarshal returning T or *T.
func (c *codecChecker) matchByConvention() {
	conventions := [][2]string{{"Encode", "Decode"}, {"Save", "Load"}, {"Marshal", "Unmarshal"}}
	for _, decl := range c.decls {
		if c.paired[decl] || decl.Recv == nil || len(decl.Recv.List) == 0 {
			continue
		}
		var counterpart string
		for _, conv := range conventions {
			if decl.Name.Name == conv[0] {
				counterpart = conv[1]
			}
		}
		if counterpart == "" {
			continue
		}
		fn := c.funcOf(decl)
		recv := receiverTypeName(fn)
		if recv == nil {
			continue
		}
		for _, cand := range c.decls {
			if c.paired[cand] || cand.Recv != nil || cand.Name.Name != counterpart {
				continue
			}
			cfn := c.funcOf(cand)
			if cfn == nil || !resultsInclude(cfn, recv) {
				continue
			}
			c.paired[decl], c.paired[cand] = true, true
			w, r := c.fnFor(decl), c.fnFor(cand)
			if w != nil && r != nil {
				c.compare(recv.Name()+"."+decl.Name.Name+"/"+cand.Name.Name, w, r)
			}
			break
		}
	}
}

// resultsInclude reports whether the function returns T or *T.
func resultsInclude(fn *types.Func, tn *types.TypeName) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named := namedOf(sig.Results().At(i).Type()); named != nil && named.Obj() == tn {
			return true
		}
	}
	return false
}

// compare walks the writer's and reader's op trees in lockstep and
// reports the first divergence.
func (c *codecChecker) compare(pair string, w, r *codecFn) {
	if desc, wpos, ok := diffOps(w.ops, r.ops, ""); !ok {
		pos := wpos
		if pos == token.NoPos {
			pos = w.decl.Pos()
		}
		c.p.Reportf(pos,
			"codec asymmetry in %s: %s (reader at %s); writer sequence [%s], reader sequence [%s]",
			pair, desc, c.p.Fset.Position(r.decl.Pos()), renderOps(w.ops), renderOps(r.ops))
	}
}

// diffOps returns a description of the first mismatch between the two
// sequences, the writer-side position to report it at, and whether the
// sequences agree.
func diffOps(w, r []op, path string) (string, token.Pos, bool) {
	n := len(w)
	if len(r) < n {
		n = len(r)
	}
	for i := 0; i < n; i++ {
		a, b := w[i], r[i]
		at := fmt.Sprintf("step %s%d", path, i+1)
		if a.kind != b.kind || a.text != b.text {
			return fmt.Sprintf("at %s the writer emits %s but the reader consumes %s", at, a, b), a.pos, false
		}
		if len(a.branches) != len(b.branches) {
			return fmt.Sprintf("at %s the writer has %d branches but the reader %d", at, len(a.branches), len(b.branches)), a.pos, false
		}
		for bi := range a.branches {
			sub := path + fmt.Sprintf("%d.", i+1)
			if len(a.branches) > 1 {
				sub = path + fmt.Sprintf("%d[%d].", i+1, bi+1)
			}
			if desc, pos, ok := diffOps(a.branches[bi], b.branches[bi], sub); !ok {
				return desc, pos, false
			}
		}
	}
	if len(w) != len(r) {
		var pos token.Pos
		desc := ""
		if len(w) > len(r) {
			pos = w[n].pos
			desc = fmt.Sprintf("the writer emits %d op(s) the reader never consumes, starting with %s", len(w)-n, w[n])
		} else {
			pos = r[n].pos
			desc = fmt.Sprintf("the reader consumes %d op(s) the writer never emits, starting with %s", len(r)-n, r[n])
		}
		return desc, pos, false
	}
	return "", token.NoPos, true
}

// checkMirror enforces the primitive method-set mirror on packages that
// define both an Encoder and a Decoder type: every width the writer can
// emit must be readable, and vice versa (Count is decoder-only by
// design — it is the validated read of an encoder's U32 length).
func (c *codecChecker) checkMirror() {
	encMethods := make(map[string]token.Pos)
	decMethods := make(map[string]token.Pos)
	sawEnc, sawDec := false, false
	for _, f := range c.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if ts, ok := n.(*ast.TypeSpec); ok {
				switch ts.Name.Name {
				case "Encoder":
					sawEnc = true
				case "Decoder":
					sawDec = true
				}
			}
			return true
		})
	}
	if !sawEnc || !sawDec {
		return
	}
	for _, decl := range c.decls {
		if decl.Recv == nil || len(decl.Recv.List) == 0 {
			continue
		}
		if _, ok := codecPrims[decl.Name.Name]; !ok {
			continue
		}
		switch baseTypeName(decl.Recv.List[0].Type) {
		case "Encoder":
			encMethods[decl.Name.Name] = decl.Pos()
		case "Decoder":
			decMethods[decl.Name.Name] = decl.Pos()
		}
	}
	for name, pos := range encMethods {
		if _, ok := decMethods[name]; !ok {
			c.p.Reportf(pos,
				"Encoder.%s has no Decoder.%s; every primitive the writer can emit must be readable", name, name)
		}
	}
	for name, pos := range decMethods {
		if name == "Count" {
			continue
		}
		if _, ok := encMethods[name]; !ok {
			c.p.Reportf(pos,
				"Decoder.%s has no Encoder.%s; the reader consumes a primitive no writer emits", name, name)
		}
	}
}

// ---- op extraction ----------------------------------------------------

// opExtractor builds the abstract byte sequence of one function body in
// Go evaluation order.
type opExtractor struct {
	p       *Pass
	visited map[*types.Func]bool
	depth   int
}

func (x *opExtractor) stmts(list []ast.Stmt) []op {
	var ops []op
	for _, s := range list {
		ops = append(ops, x.stmt(s)...)
	}
	return ops
}

func (x *opExtractor) stmt(s ast.Stmt) []op {
	switch v := s.(type) {
	case nil:
		return nil
	case *ast.ExprStmt:
		return x.expr(v.X)
	case *ast.AssignStmt:
		var ops []op
		for _, lhs := range v.Lhs {
			ops = append(ops, x.expr(lhs)...)
		}
		for _, rhs := range v.Rhs {
			ops = append(ops, x.expr(rhs)...)
		}
		return ops
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		var ops []op
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, val := range vs.Values {
					ops = append(ops, x.expr(val)...)
				}
			}
		}
		return ops
	case *ast.ReturnStmt:
		var ops []op
		for _, e := range v.Results {
			ops = append(ops, x.expr(e)...)
		}
		return ops
	case *ast.IfStmt:
		ops := x.stmt(v.Init)
		ops = append(ops, x.expr(v.Cond)...)
		thenOps := x.stmts(v.Body.List)
		elseOps := x.stmt(v.Else)
		if len(thenOps) == 0 && len(elseOps) == 0 {
			return ops
		}
		return append(ops, op{kind: opCond, pos: v.Pos(), branches: [][]op{thenOps, elseOps}})
	case *ast.BlockStmt:
		return x.stmts(v.List)
	case *ast.ForStmt:
		ops := x.stmt(v.Init)
		body := x.expr(v.Cond)
		body = append(body, x.stmts(v.Body.List)...)
		body = append(body, x.stmt(v.Post)...)
		if len(body) == 0 {
			return ops
		}
		return append(ops, op{kind: opLoop, pos: v.Pos(), branches: [][]op{body}})
	case *ast.RangeStmt:
		ops := x.expr(v.X)
		body := x.stmts(v.Body.List)
		if len(body) == 0 {
			return ops
		}
		return append(ops, op{kind: opLoop, pos: v.Pos(), branches: [][]op{body}})
	case *ast.SwitchStmt:
		ops := x.stmt(v.Init)
		ops = append(ops, x.expr(v.Tag)...)
		return x.caseBranches(ops, v.Pos(), v.Body)
	case *ast.TypeSwitchStmt:
		ops := x.stmt(v.Init)
		ops = append(ops, x.stmt(v.Assign)...)
		return x.caseBranches(ops, v.Pos(), v.Body)
	case *ast.SendStmt:
		return append(x.expr(v.Chan), x.expr(v.Value)...)
	case *ast.IncDecStmt:
		return x.expr(v.X)
	case *ast.GoStmt:
		return x.expr(v.Call)
	case *ast.DeferStmt:
		return x.expr(v.Call)
	case *ast.LabeledStmt:
		return x.stmt(v.Stmt)
	}
	return nil
}

func (x *opExtractor) caseBranches(ops []op, pos token.Pos, body *ast.BlockStmt) []op {
	var branches [][]op
	any := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		b := x.stmts(cc.Body)
		if len(b) > 0 {
			any = true
		}
		branches = append(branches, b)
	}
	if !any {
		return ops
	}
	return append(ops, op{kind: opCond, pos: pos, branches: branches})
}

func (x *opExtractor) exprs(list []ast.Expr) []op {
	var ops []op
	for _, e := range list {
		ops = append(ops, x.expr(e)...)
	}
	return ops
}

func (x *opExtractor) expr(e ast.Expr) []op {
	switch v := e.(type) {
	case nil:
		return nil
	case *ast.CallExpr:
		return x.call(v)
	case *ast.BinaryExpr:
		return append(x.expr(v.X), x.expr(v.Y)...)
	case *ast.UnaryExpr:
		return x.expr(v.X)
	case *ast.StarExpr:
		return x.expr(v.X)
	case *ast.ParenExpr:
		return x.expr(v.X)
	case *ast.SelectorExpr:
		return x.expr(v.X)
	case *ast.IndexExpr:
		return append(x.expr(v.X), x.expr(v.Index)...)
	case *ast.SliceExpr:
		ops := x.expr(v.X)
		ops = append(ops, x.expr(v.Low)...)
		ops = append(ops, x.expr(v.High)...)
		ops = append(ops, x.expr(v.Max)...)
		return ops
	case *ast.KeyValueExpr:
		return append(x.expr(v.Key), x.expr(v.Value)...)
	case *ast.CompositeLit:
		return x.exprs(v.Elts)
	case *ast.TypeAssertExpr:
		return x.expr(v.X)
	case *ast.FuncLit:
		return nil // closure bodies run elsewhere (callbacks)
	}
	return nil
}

// call classifies one call expression: a codec primitive, a pair
// member, an inlined local helper carrying the codec, or byte-neutral
// noise.
func (x *opExtractor) call(call *ast.CallExpr) []op {
	// Receiver and arguments evaluate before the call acts.
	var pre []op
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		pre = x.expr(sel.X)
	}
	pre = append(pre, x.exprs(call.Args)...)

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if side := x.codecSide(sel.X); side != "" {
			if canon, ok := codecPrims[sel.Sel.Name]; ok {
				return append(pre, op{kind: opPrim, text: canon, side: side, pos: call.Pos()})
			}
			// Err/Bytes/Reset/Remaining/Len: byte-neutral codec methods.
			return pre
		}
	}

	if !x.carriesCodec(call) {
		return pre
	}
	callee := calleeOf(x.p.TypesInfo, call)
	if callee == nil {
		return pre
	}
	if key := pairKeyOf(callee); key != "" {
		return append(pre, op{kind: opCall, text: key, pos: call.Pos()})
	}
	// A local helper that takes the codec but is no pair member: inline
	// its ops so idioms like decodeErr(d, ...) need no special casing.
	decl := x.p.CallGraph().DeclOf(callee)
	if decl == nil || decl.Body == nil || x.visited[callee] || x.depth >= 8 {
		return pre
	}
	x.visited[callee] = true
	x.depth++
	ops := append(pre, x.stmts(decl.Body.List)...)
	x.depth--
	delete(x.visited, callee)
	return ops
}

// codecSide reports whether the expression is an Encoder ("enc") or
// Decoder ("dec") value, by defined type name.
func (x *opExtractor) codecSide(e ast.Expr) string {
	return codecSideOf(x.p.typeOf(e))
}

func codecSideOf(t types.Type) string {
	named := namedOf(t)
	if named == nil {
		return ""
	}
	switch named.Obj().Name() {
	case "Encoder":
		return "enc"
	case "Decoder":
		return "dec"
	}
	return ""
}

// carriesCodec reports whether any argument (or the method receiver)
// is an Encoder or Decoder value — the filter separating byte-moving
// calls from everything else.
func (x *opExtractor) carriesCodec(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x.codecSide(sel.X) != "" {
			return true
		}
	}
	for _, arg := range call.Args {
		if x.codecSide(arg) != "" {
			return true
		}
	}
	return false
}

// pairKeyOf returns the canonical pair key a callee contributes as a
// nested op: encodeItem and decodeItem both map to "Item", and
// annotated pair members map to their annotation key. Non-members
// return "".
func pairKeyOf(fn *types.Func) string {
	name := fn.Name()
	if suffix, ok := cutAnyPrefix(name, "encode", "Encode", "decode", "Decode"); ok && suffix != "" {
		return suffix
	}
	return ""
}
