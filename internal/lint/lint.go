// Package lint implements richnote-lint, the repo's in-house static
// analyzers. They machine-check the invariants that keep the system
// deterministic, goroutine-confined and budget-correct — properties
// that previously lived only in doc comments (network.Model is not
// concurrency-safe; RNGs are injected and seeded; radio overhead is
// charged only after an affordable selection is confirmed).
//
// The Analyzer/Pass shapes deliberately mirror
// golang.org/x/tools/go/analysis so each analyzer can be ported to a
// real multichecker unchanged if that dependency is ever vendored; the
// build here is stdlib-only, so the driver loads packages with
// `go list -json` and go/parser instead of go/packages.
//
// Analyses are syntactic (no go/types): package references are resolved
// through each file's import table, which is exact for this codebase.
// The one theoretical gap — shadowing an imported package name with a
// local variable — is not an idiom this repo uses.
//
// Intentional violations are suppressed with a directive on the same
// line or the line directly above:
//
//	start := time.Now() //lint:allow wallclock round latency is telemetry
//
// The analyzer name and a non-empty reason are both required; the
// driver reports malformed directives as findings of their own.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check. The shape mirrors
// x/tools/go/analysis.Analyzer minus requires/facts, which these
// checks do not need.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description shown by richnote-lint -list.
	Doc string
	// Scope lists import-path elements the analyzer is restricted to
	// (e.g. "sim" matches .../internal/sim and any package under it).
	// Nil means every package.
	Scope []string
	// IncludeTests controls whether _test.go files are analyzed.
	IncludeTests bool
	// Run reports findings on the pass.
	Run func(*Pass)
}

// Pass hands one analyzer one package worth of parsed files.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path (fixture directory name under
	// linttest).
	Path  string
	Files []*ast.File

	report func(Finding)
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies a single analyzer to already-parsed files,
// without scope gating or //lint:allow filtering (the driver layers
// those on). The linttest fixture runner calls this directly.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, pkgPath string, files []*ast.File) []Finding {
	var out []Finding
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Path:     pkgPath,
		Files:    files,
		report:   func(f Finding) { out = append(out, f) },
	}
	a.Run(pass)
	return out
}

// All returns the full richnote-lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SeedRand, WallClock, SpendCheck, Confined, UnitCheck}
}

// importedAs returns the local name under which f imports importPath,
// or "" if the file does not import it. Blank and dot imports return ""
// (neither can appear as a selector qualifier).
func importedAs(f *ast.File, importPath string) string {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if spec.Name != nil {
			if n := spec.Name.Name; n != "_" && n != "." {
				return n
			}
			continue
		}
		return defaultImportName(p)
	}
	return ""
}

// defaultImportName guesses the package name of an unaliased import:
// the last path element, skipping a major-version suffix such as /v2.
func defaultImportName(importPath string) string {
	base := path.Base(importPath)
	if len(base) > 1 && base[0] == 'v' && strings.TrimLeft(base[1:], "0123456789") == "" {
		base = path.Base(path.Dir(importPath))
	}
	return base
}

// pkgRef reports whether id is a reference to one of the given import
// paths in f, returning the matched path.
func pkgRef(f *ast.File, id *ast.Ident, importPaths ...string) (string, bool) {
	for _, p := range importPaths {
		if name := importedAs(f, p); name != "" && name == id.Name {
			return p, true
		}
	}
	return "", false
}

// pkgFuncCall matches call against qualified calls pkg.Fn for any of
// the given import paths and returns the function name.
func pkgFuncCall(f *ast.File, call *ast.CallExpr, importPaths ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := pkgRef(f, id, importPaths...); !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

// walkStack visits every node under root with its ancestor stack
// (outermost first, excluding the node itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingReceiver returns the base type name of the method receiver
// the stack is inside, or "" when the innermost declared function is
// not a method. Function literals inherit the enclosing method: a
// closure written inside a shard method still runs as shard code.
func enclosingReceiver(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		decl, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if decl.Recv == nil || len(decl.Recv.List) == 0 {
			return ""
		}
		return baseTypeName(decl.Recv.List[0].Type)
	}
	return ""
}

// baseTypeName unwraps pointers and type parameters to the receiver's
// defined type name.
func baseTypeName(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.IndexListExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
