// Package lint implements richnote-lint, the repo's in-house static
// analyzers. They machine-check the invariants that keep the system
// deterministic, goroutine-confined, budget-correct and codec-symmetric
// — properties that previously lived only in doc comments (network.Model
// is not concurrency-safe; RNGs are injected and seeded; radio overhead
// is charged only after an affordable selection is confirmed; every
// encoder has a decoder that reads exactly the bytes it wrote).
//
// The Analyzer/Pass shapes deliberately mirror
// golang.org/x/tools/go/analysis so each analyzer can be ported to a
// real multichecker unchanged if that dependency is ever vendored; the
// build here is stdlib-only, so the driver loads packages with
// `go list -json`, parses them with go/parser and type-checks them with
// go/types + go/importer in source mode (see typecheck.go) instead of
// go/packages.
//
// Analyses are type-aware: every Pass carries a *types.Info and a
// package-local call graph, so package references, method receivers and
// field selections resolve through the type checker rather than name
// matching. On a package with type errors the resolution maps are
// partial; analyzers degrade to their syntactic fallbacks and the
// driver reports the type-check failure as a finding of its own.
//
// Intentional violations are suppressed with a directive on the same
// line or the line directly above:
//
//	start := time.Now() //lint:allow wallclock round latency is telemetry
//
// The analyzer name and a non-empty reason are both required; the
// driver reports malformed directives as findings of their own.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check. The shape mirrors
// x/tools/go/analysis.Analyzer minus requires/facts, which these
// checks do not need.
type Analyzer struct {
	// Name identifies the analyzer in findings and //lint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description shown by richnote-lint -list.
	Doc string
	// Scope lists import-path elements the analyzer is restricted to
	// (e.g. "sim" matches .../internal/sim and any package under it).
	// Nil means every package.
	Scope []string
	// IncludeTests controls whether _test.go files are analyzed.
	IncludeTests bool
	// Run reports findings on the pass.
	Run func(*Pass)
}

// Pass hands one analyzer one type-checked package worth of files.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path (fixture directory name under
	// linttest).
	Path string
	// Files holds the syntax trees the analyzer should walk — already
	// filtered by IncludeTests. The type information below may cover a
	// superset (the whole analysis unit).
	Files []*ast.File
	// Pkg is the type-checked package; nil only when the unit was
	// built without type checking.
	Pkg *types.Package
	// TypesInfo resolves identifiers, selections and expression types
	// for the unit. Never nil, but possibly sparsely populated when
	// the package has type errors.
	TypesInfo *types.Info
	// TypeErrors lists the unit's type-check errors (empty for a clean
	// package).
	TypeErrors []error

	unit   *PackageInfo
	report func(Finding)
}

// CallGraph returns the package-local call graph for the unit the pass
// belongs to, built lazily and shared across analyzers.
func (p *Pass) CallGraph() *CallGraph {
	if p.unit == nil {
		return nil
	}
	return p.unit.CallGraph()
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies a single analyzer to one type-checked unit,
// without scope gating or //lint:allow filtering (the driver layers
// those on). files selects the syntax trees to walk; nil means every
// file in the unit. The linttest fixture runner calls this directly.
func RunAnalyzer(a *Analyzer, unit *PackageInfo, files []*ast.File) []Finding {
	if files == nil {
		files = unit.Files
	}
	info := unit.Info
	if info == nil {
		info = &types.Info{}
	}
	var out []Finding
	pass := &Pass{
		Analyzer:   a,
		Fset:       unit.Fset,
		Path:       unit.Path,
		Files:      files,
		Pkg:        unit.Pkg,
		TypesInfo:  info,
		TypeErrors: unit.TypeErrors,
		unit:       unit,
		report:     func(f Finding) { out = append(out, f) },
	}
	a.Run(pass)
	return out
}

// All returns the full richnote-lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SeedRand, WallClock, SpendCheck, Confined, AtomicCheck,
		CodecSym, AllocFree, UnitCheck,
	}
}

// ---- typed resolution helpers ----------------------------------------

// pkgCall matches call against package-level calls pkg.Fn for any of
// the given import paths and returns the function name. Resolution goes
// through the type information when the callee resolved; on packages
// with type errors it falls back to the file's import table, which is
// exact for unshadowed references.
func (p *Pass) pkgCall(f *ast.File, call *ast.CallExpr, importPaths ...string) (string, bool) {
	if fn := calleeOf(p.TypesInfo, call); fn != nil {
		if fn.Pkg() == nil {
			return "", false
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() != nil {
			return "", false
		}
		for _, path := range importPaths {
			if fn.Pkg().Path() == path {
				return fn.Name(), true
			}
		}
		return "", false
	}
	// Callee did not resolve (type errors, or a selector go/types gave
	// up on): fall back to the syntactic import-table match.
	if p.typesResolved(call.Fun) {
		return "", false
	}
	return pkgFuncCall(f, call, importPaths...)
}

// typesResolved reports whether the expression's operands resolved in
// the unit's Uses map — the signal separating "resolved to something
// that is not the package function we asked about" from "not resolved
// at all" for fallback decisions.
func (p *Pass) typesResolved(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := p.TypesInfo.Uses[v]
		return ok
	case *ast.SelectorExpr:
		_, ok := p.TypesInfo.Uses[v.Sel]
		return ok
	}
	return false
}

// pkgNameOf resolves an identifier used as a selector qualifier to the
// import path it names, with the same typed-then-syntactic fallback as
// pkgCall.
func (p *Pass) pkgNameOf(f *ast.File, id *ast.Ident) (string, bool) {
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return "", false
		}
		return pn.Imported().Path(), true
	}
	for _, spec := range f.Imports {
		ip, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		if importedAs(f, ip) == id.Name {
			return ip, true
		}
	}
	return "", false
}

// typeOf returns the type of an expression, or nil when the unit's
// information does not cover it.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// fieldVarOf resolves a selector (or plain identifier, for selections
// inside method bodies) to the struct field object it denotes, or nil.
func fieldVarOf(info *types.Info, e ast.Expr) *types.Var {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[v.Sel].(*types.Var); ok && obj.IsField() {
			return obj
		}
	case *ast.Ident:
		if obj, ok := info.Uses[v].(*types.Var); ok && obj.IsField() {
			return obj
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch v := t.(type) {
		case *types.Pointer:
			t = v.Elem()
		case *types.Alias:
			t = types.Unalias(v)
		case *types.Named:
			return v
		default:
			return nil
		}
	}
}

// receiverTypeName returns the defined type a method's receiver belongs
// to, or nil for functions.
func receiverTypeName(fn *types.Func) *types.TypeName {
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj()
	}
	return nil
}

// isStdlibPath reports whether an import path belongs to the standard
// library (no dot in the first path element).
func isStdlibPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}

// ---- syntactic helpers (fallbacks and unitcheck) ----------------------

// importedAs returns the local name under which f imports importPath,
// or "" if the file does not import it. Blank and dot imports return ""
// (neither can appear as a selector qualifier).
func importedAs(f *ast.File, importPath string) string {
	for _, spec := range f.Imports {
		p, err := strconv.Unquote(spec.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if spec.Name != nil {
			if n := spec.Name.Name; n != "_" && n != "." {
				return n
			}
			continue
		}
		return defaultImportName(p)
	}
	return ""
}

// defaultImportName guesses the package name of an unaliased import:
// the last path element, skipping a major-version suffix such as /v2.
func defaultImportName(importPath string) string {
	base := path.Base(importPath)
	if len(base) > 1 && base[0] == 'v' && strings.TrimLeft(base[1:], "0123456789") == "" {
		base = path.Base(path.Dir(importPath))
	}
	return base
}

// pkgRef reports whether id is a reference to one of the given import
// paths in f, returning the matched path.
func pkgRef(f *ast.File, id *ast.Ident, importPaths ...string) (string, bool) {
	for _, p := range importPaths {
		if name := importedAs(f, p); name != "" && name == id.Name {
			return p, true
		}
	}
	return "", false
}

// pkgFuncCall matches call against qualified calls pkg.Fn for any of
// the given import paths and returns the function name.
func pkgFuncCall(f *ast.File, call *ast.CallExpr, importPaths ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := pkgRef(f, id, importPaths...); !ok {
		return "", false
	}
	return sel.Sel.Name, true
}

// walkStack visits every node under root with its ancestor stack
// (outermost first, excluding the node itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingReceiver returns the base type name of the method receiver
// the stack is inside, or "" when the innermost declared function is
// not a method. Function literals inherit the enclosing method: a
// closure written inside a shard method still runs as shard code.
func enclosingReceiver(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		decl, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if decl.Recv == nil || len(decl.Recv.List) == 0 {
			return ""
		}
		return baseTypeName(decl.Recv.List[0].Type)
	}
	return ""
}

// enclosingFuncDecl returns the innermost FuncDecl on the stack.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if decl, ok := stack[i].(*ast.FuncDecl); ok {
			return decl
		}
	}
	return nil
}

// baseTypeName unwraps pointers and type parameters to the receiver's
// defined type name.
func baseTypeName(e ast.Expr) string {
	for {
		switch v := e.(type) {
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.IndexListExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
