package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// parsedFile pairs a syntax tree with whether it came from a _test.go
// file, which some analyzers exempt.
type parsedFile struct {
	ast  *ast.File
	test bool
}

// allowDirective is one parsed //lint:allow <analyzer> <reason>
// suppression.
type allowDirective struct {
	file     string
	line     int
	analyzer string
}

// Run loads the packages matched by patterns (relative to dir), applies
// the analyzers and returns the surviving findings sorted by position.
// A finding is suppressed by a well-formed //lint:allow directive for
// its analyzer (or "*") on the same line or the line directly above;
// malformed directives are themselves reported under the pseudo-analyzer
// "lint".
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var findings []Finding
	var allows []allowDirective
	for _, pkg := range pkgs {
		files, err := parsePackage(fset, pkg)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		for _, pf := range files {
			a, bad := scanAllows(fset, pf.ast)
			allows = append(allows, a...)
			findings = append(findings, bad...)
		}
		for _, a := range analyzers {
			if !scopeMatches(a, pkg.ImportPath) {
				continue
			}
			var in []*ast.File
			for _, pf := range files {
				if pf.test && !a.IncludeTests {
					continue
				}
				in = append(in, pf.ast)
			}
			if len(in) == 0 {
				continue
			}
			findings = append(findings, RunAnalyzer(a, fset, pkg.ImportPath, in)...)
		}
	}
	findings = suppress(findings, allows)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// goList shells out to the go tool for package discovery — the
// stdlib-only stand-in for go/packages.Load.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var pkg listPackage
		if err := dec.Decode(&pkg); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parsePackage parses the package's compiled and test files with
// comments (the confined markers and allow directives live there).
func parsePackage(fset *token.FileSet, pkg listPackage) ([]parsedFile, error) {
	var out []parsedFile
	add := func(names []string, test bool) error {
		for _, name := range names {
			path := filepath.Join(pkg.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("lint: %w", err)
			}
			out = append(out, parsedFile{ast: f, test: test})
		}
		return nil
	}
	if err := add(pkg.GoFiles, false); err != nil {
		return nil, err
	}
	if err := add(pkg.CgoFiles, false); err != nil {
		return nil, err
	}
	if err := add(pkg.TestGoFiles, true); err != nil {
		return nil, err
	}
	if err := add(pkg.XTestGoFiles, true); err != nil {
		return nil, err
	}
	return out, nil
}

// scopeMatches reports whether the analyzer applies to the package: nil
// scope means everywhere, otherwise one of the scope entries must
// appear as a path element of the import path.
func scopeMatches(a *Analyzer, importPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, el := range strings.Split(importPath, "/") {
		for _, s := range a.Scope {
			if el == s {
				return true
			}
		}
	}
	return false
}

// scanAllows extracts //lint:allow directives from one file. Malformed
// directives (missing analyzer or reason) are returned as findings so
// a typo cannot silently suppress nothing.
func scanAllows(fset *token.FileSet, f *ast.File) ([]allowDirective, []Finding) {
	var allows []allowDirective
	var bad []Finding
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Analyzer: "lint",
					Pos:      pos,
					Message:  "malformed //lint:allow directive: need `//lint:allow <analyzer> <reason>`",
				})
				continue
			}
			allows = append(allows, allowDirective{
				file:     pos.Filename,
				line:     pos.Line,
				analyzer: fields[0],
			})
		}
	}
	return allows, bad
}

// suppress drops findings covered by an allow directive on the same
// line or the line directly above.
func suppress(findings []Finding, allows []allowDirective) []Finding {
	if len(allows) == 0 {
		return findings
	}
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]string)
	for _, a := range allows {
		k := key{a.file, a.line}
		byLine[k] = append(byLine[k], a.analyzer)
	}
	covered := func(f Finding, line int) bool {
		for _, name := range byLine[key{f.Pos.Filename, line}] {
			if name == f.Analyzer || name == "*" {
				return true
			}
		}
		return false
	}
	kept := findings[:0]
	for _, f := range findings {
		if f.Analyzer != "lint" && (covered(f, f.Pos.Line) || covered(f, f.Pos.Line-1)) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
