package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowDirective is one parsed //lint:allow <analyzer> <reason>
// suppression.
type allowDirective struct {
	file     string
	line     int
	analyzer string
}

// Run loads and type-checks the packages matched by patterns (relative
// to dir), applies the analyzers and returns the surviving findings
// sorted by position. A finding is suppressed by a well-formed
// //lint:allow directive for its analyzer (or "*") on the same line or
// the line directly above; malformed directives are themselves reported
// under the pseudo-analyzer "lint", as are packages that fail to parse
// or type-check (the rest of the run continues either way).
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	ld, err := loadPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	findings := append([]Finding(nil), ld.findings...)
	for _, pkg := range ld.pkgs {
		for _, a := range analyzers {
			if !scopeMatches(a, pkg.importPath) {
				continue
			}
			for _, u := range pkg.units {
				var in []*ast.File
				for _, pf := range u.files {
					if pf.test && !a.IncludeTests {
						continue
					}
					in = append(in, pf.ast)
				}
				if len(in) == 0 {
					continue
				}
				findings = append(findings, RunAnalyzer(a, u.pi, in)...)
			}
		}
	}
	findings = suppress(findings, ld.allows)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// scopeMatches reports whether the analyzer applies to the package: nil
// scope means everywhere, otherwise one of the scope entries must
// appear as a path element of the import path.
func scopeMatches(a *Analyzer, importPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, el := range strings.Split(importPath, "/") {
		for _, s := range a.Scope {
			if el == s {
				return true
			}
		}
	}
	return false
}

// scanAllows extracts //lint:allow directives from one file. Malformed
// directives (missing analyzer or reason) are returned as findings so
// a typo cannot silently suppress nothing.
func scanAllows(fset *token.FileSet, f *ast.File) ([]allowDirective, []Finding) {
	var allows []allowDirective
	var bad []Finding
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) < 2 {
				bad = append(bad, Finding{
					Analyzer: "lint",
					Pos:      pos,
					Message:  "malformed //lint:allow directive: need `//lint:allow <analyzer> <reason>`",
				})
				continue
			}
			allows = append(allows, allowDirective{
				file:     pos.Filename,
				line:     pos.Line,
				analyzer: fields[0],
			})
		}
	}
	return allows, bad
}

// suppress drops findings covered by an allow directive on the same
// line or the line directly above.
func suppress(findings []Finding, allows []allowDirective) []Finding {
	if len(allows) == 0 {
		return findings
	}
	type key struct {
		file string
		line int
	}
	byLine := make(map[key][]string)
	for _, a := range allows {
		k := key{a.file, a.line}
		byLine[k] = append(byLine[k], a.analyzer)
	}
	covered := func(f Finding, line int) bool {
		for _, name := range byLine[key{f.Pos.Filename, line}] {
			if name == f.Analyzer || name == "*" {
				return true
			}
		}
		return false
	}
	kept := append([]Finding(nil), findings...)[:0]
	for _, f := range findings {
		if f.Analyzer != "lint" && (covered(f, f.Pos.Line) || covered(f, f.Pos.Line-1)) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
