package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitCheck flags additive arithmetic, comparisons and assignments that
// mix identifiers carrying different unit suffixes — the Lyapunov
// MB-vs-bytes documentation bug PR 1 fixed, now enforced. The repo's
// naming convention encodes units in the trailing token of a name
// (WeeklyBudgetBytes, bytesPerMB, CellPerKB, transferJ, EnergyJ); when
// two different units meet in a +, -, comparison or assignment, the
// code must go through a named conversion (x / bytesPerMB), whose
// result no longer carries a raw suffix.
//
// Multiplication and division are exempt: they are how units are
// legitimately combined and converted.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc: "flag +, -, comparisons and assignments mixing identifiers with " +
		"different unit suffixes (MB/KB/GB/Bytes/J/Joules) without a named " +
		"conversion helper",
	IncludeTests: true,
	Run:          runUnitCheck,
}

func runUnitCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				switch v.Op {
				case token.ADD, token.SUB,
					token.LSS, token.GTR, token.LEQ, token.GEQ,
					token.EQL, token.NEQ:
					ua, ub := unitOf(v.X), unitOf(v.Y)
					if ua != "" && ub != "" && ua != ub {
						p.Reportf(v.OpPos,
							"arithmetic mixes %s and %s; convert through a named helper so the units agree", ua, ub)
					}
				}
			case *ast.AssignStmt:
				switch v.Tok {
				case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
					if len(v.Lhs) != len(v.Rhs) {
						return true
					}
					for i := range v.Lhs {
						ua, ub := unitOf(v.Lhs[i]), unitOf(v.Rhs[i])
						if ua != "" && ub != "" && ua != ub {
							p.Reportf(v.TokPos,
								"assignment mixes %s and %s; convert through a named helper so the units agree", ua, ub)
						}
					}
				}
			}
			return true
		})
	}
}

// numericConvs are builtin conversions that preserve the unit of their
// single operand (float64(sizeBytes) is still bytes).
var numericConvs = map[string]bool{
	"float64": true, "float32": true,
	"int": true, "int32": true, "int64": true,
	"uint": true, "uint32": true, "uint64": true,
}

// unitOf extracts the unit a value carries from the trailing token of
// its identifier, field or called-function name; "" means unknown.
func unitOf(e ast.Expr) string {
	for {
		if pe, ok := e.(*ast.ParenExpr); ok {
			e = pe.X
			continue
		}
		break
	}
	switch v := e.(type) {
	case *ast.Ident:
		return unitSuffix(v.Name)
	case *ast.SelectorExpr:
		return unitSuffix(v.Sel.Name)
	case *ast.CallExpr:
		switch fn := v.Fun.(type) {
		case *ast.Ident:
			if numericConvs[fn.Name] && len(v.Args) == 1 {
				return unitOf(v.Args[0])
			}
			return unitSuffix(fn.Name)
		case *ast.SelectorExpr:
			return unitSuffix(fn.Sel.Name)
		}
	}
	return ""
}

// unitSuffix maps a name's trailing token to a canonical unit. The
// character before the suffix must be a lower-case letter or digit (a
// camel-case boundary), so RGB does not read as gigabytes.
func unitSuffix(name string) string {
	for _, u := range []struct{ suffix, unit string }{
		{"Bytes", "bytes"}, {"Joules", "J"},
		{"MB", "MB"}, {"KB", "KB"}, {"GB", "GB"}, {"J", "J"},
	} {
		if !strings.HasSuffix(name, u.suffix) {
			continue
		}
		rest := name[:len(name)-len(u.suffix)]
		if rest == "" {
			return u.unit
		}
		if c := rest[len(rest)-1]; c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			return u.unit
		}
	}
	switch name {
	case "bytes", "mb", "kb", "gb", "joules":
		u := strings.ToUpper(name)
		if name == "bytes" {
			return "bytes"
		}
		if name == "joules" {
			return "J"
		}
		return u
	}
	return ""
}
