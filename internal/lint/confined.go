package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// Confined enforces the shard single-goroutine discipline through two
// field markers:
//
//	devices map[...]*sched.Device // richnote:confined(shard)
//	snap    atomic.Pointer[...]   // richnote:atomic
//
// A richnote:confined field may only be touched from methods declared
// on the struct that owns it — the type whose methods all run on the
// owning goroutine (the optional parenthesized label names that
// goroutine for humans). A richnote:atomic field may be touched from
// anywhere, but only through a method call on the field (the
// sync/atomic value types) or by passing its address to a sync/atomic
// function; a bare read or write tears.
//
// The check is syntactic: a selector whose field name matches an
// annotated field is assumed to be that field. Unexported field names
// cannot leak across packages, and within a package the shard's field
// names are unambiguous; a colliding name on an unrelated type would
// need a rename or a //lint:allow.
//
// Test files are exempt: in-package tests poke shard state from the
// test goroutine before the shard loop starts, which is safe and
// routine.
var Confined = &Analyzer{
	Name: "confined",
	Doc: "fields marked richnote:confined(<label>) may only be accessed from " +
		"methods of the owning struct; fields marked richnote:atomic only " +
		"through sync/atomic value methods or helpers",
	IncludeTests: false,
	Run:          runConfined,
}

// markerRE matches the field annotations inside a comment.
var markerRE = regexp.MustCompile(`richnote:(confined|atomic)(?:\(([^)]*)\))?`)

type confinedMark struct {
	owner string // struct type name declaring the field
	kind  string // "confined" or "atomic"
	label string // optional goroutine label
}

func runConfined(p *Pass) {
	marks := collectMarks(p.Files)
	if len(marks) == 0 {
		return
	}
	for _, f := range p.Files {
		file := f
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			ms := marks[sel.Sel.Name]
			if len(ms) == 0 {
				return
			}
			var parent ast.Node
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			// A call f.x(...) selects a method named like the field,
			// not the field itself.
			if call, ok := parent.(*ast.CallExpr); ok && call.Fun == n {
				return
			}
			for _, m := range ms {
				switch m.kind {
				case "confined":
					if enclosingReceiver(stack) == m.owner {
						return
					}
				case "atomic":
					if atomicUse(file, n, stack) {
						return
					}
				}
			}
			// Report against the first mark (multiple owners for one
			// field name would each have allowed the access above).
			m := ms[0]
			switch m.kind {
			case "confined":
				where := m.owner
				if m.label != "" {
					where = m.label
				}
				p.Reportf(sel.Sel.Pos(),
					"field %s is confined to the %s goroutine (richnote:confined); access it only from %s methods",
					sel.Sel.Name, where, m.owner)
			case "atomic":
				p.Reportf(sel.Sel.Pos(),
					"field %s is marked richnote:atomic; access it only through sync/atomic value methods or by address in a sync/atomic call",
					sel.Sel.Name)
			}
		})
	}
}

// collectMarks scans struct declarations for annotated fields.
func collectMarks(files []*ast.File) map[string][]confinedMark {
	marks := make(map[string][]confinedMark)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				m, ok := fieldMark(field)
				if !ok {
					continue
				}
				m.owner = ts.Name.Name
				for _, name := range field.Names {
					marks[name.Name] = append(marks[name.Name], m)
				}
			}
			return true
		})
	}
	return marks
}

// fieldMark extracts a richnote marker from the field's doc or trailing
// comment.
func fieldMark(field *ast.Field) (confinedMark, bool) {
	var text strings.Builder
	if field.Doc != nil {
		text.WriteString(field.Doc.Text())
	}
	if field.Comment != nil {
		text.WriteString(field.Comment.Text())
	}
	sub := markerRE.FindStringSubmatch(text.String())
	if sub == nil {
		return confinedMark{}, false
	}
	return confinedMark{kind: sub[1], label: strings.TrimSpace(sub[2])}, true
}

// atomicUse reports whether the selector is used safely for a
// richnote:atomic field: as the receiver of a method call
// (s.hits.Add(1) on an atomic value type), or as &s.field passed to a
// sync/atomic function.
func atomicUse(f *ast.File, sel ast.Node, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	// s.field.Method(...)
	if outer, ok := parent.(*ast.SelectorExpr); ok && outer.X == sel && len(stack) >= 2 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
			return true
		}
	}
	// atomic.AddUint64(&s.field, 1)
	if unary, ok := parent.(*ast.UnaryExpr); ok && unary.X == sel {
		for i := len(stack) - 2; i >= 0; i-- {
			call, ok := stack[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, ok := pkgFuncCall(f, call, "sync/atomic"); ok {
				return true
			}
			break
		}
	}
	return false
}
