package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Confined enforces the shard single-goroutine discipline through the
// field marker
//
//	devices map[...]*sched.Device // richnote:confined(shard)
//
// A richnote:confined field may only be touched from methods declared
// on the struct that owns it — the type whose methods all run on the
// owning goroutine (the optional parenthesized label names that
// goroutine for humans). The check is type-aware: the selector must
// resolve to the annotated field object, and the enclosing method's
// receiver type must resolve to the owning struct, so a colliding field
// name on an unrelated type is never confused with the marked one.
//
// v2 is also interprocedural within the package: even inside an owner
// method, a reference-typed confined field must not leak off the owning
// goroutine. Flagged escapes are
//
//   - capture by a `go func(){...}()` closure,
//   - being returned from an owner method,
//   - being sent on a channel,
//   - being stored into a package-level variable or a field of a
//     different struct, and
//   - being passed to a same-package function whose body stores the
//     parameter into such a sink (one call level deep, resolved through
//     the package call graph).
//
// Passing a confined value to another package is not flagged — the
// analysis cannot see across package bodies — and values *derived* from
// a confined field (an element of a confined map, a field of a confined
// struct) are out of scope; the invariant tracked is the annotated
// field itself.
//
// Test files are exempt: in-package tests poke shard state from the
// test goroutine before the shard loop starts, which is safe and
// routine.
var Confined = &Analyzer{
	Name: "confined",
	Doc: "fields marked richnote:confined(<label>) may only be accessed from " +
		"methods of the owning struct and must not escape the owning " +
		"goroutine via returns, channel sends, goroutine captures or stores " +
		"into non-confined sinks",
	IncludeTests: false,
	Run:          runConfined,
}

// markerRE matches the field annotations inside a comment.
var markerRE = regexp.MustCompile(`richnote:(confined|atomic)(?:\(([^)]*)\))?`)

// fieldMark is one annotated struct field, resolved to its go/types
// objects.
type fieldMark struct {
	kind  string // "confined" or "atomic"
	label string // optional goroutine label
	owner *types.TypeName
	field *types.Var
}

// collectFieldMarks resolves every annotated field of the given kind
// declared in the pass's files. Fields that did not resolve (type
// errors) are skipped; the driver has already reported the type-check
// failure.
func collectFieldMarks(p *Pass, kind string) map[*types.Var]fieldMark {
	marks := make(map[*types.Var]fieldMark)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, _ := p.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if owner == nil {
				return true
			}
			for _, field := range st.Fields.List {
				k, label, ok := fieldMarkText(field)
				if !ok || k != kind {
					continue
				}
				for _, name := range field.Names {
					v, _ := p.TypesInfo.Defs[name].(*types.Var)
					if v == nil {
						continue
					}
					marks[v] = fieldMark{kind: k, label: label, owner: owner, field: v}
				}
			}
			return true
		})
	}
	return marks
}

// fieldMarkText extracts a richnote marker from the field's doc or
// trailing comment.
func fieldMarkText(field *ast.Field) (kind, label string, ok bool) {
	var text strings.Builder
	if field.Doc != nil {
		text.WriteString(field.Doc.Text())
	}
	if field.Comment != nil {
		text.WriteString(field.Comment.Text())
	}
	sub := markerRE.FindStringSubmatch(text.String())
	if sub == nil {
		return "", "", false
	}
	return sub[1], strings.TrimSpace(sub[2]), true
}

// confinedChecker carries the pass and the resolved mark set through
// the access and escape rules.
type confinedChecker struct {
	p     *Pass
	marks map[*types.Var]fieldMark
}

func runConfined(p *Pass) {
	c := &confinedChecker{p: p, marks: collectFieldMarks(p, "confined")}
	if len(c.marks) == 0 {
		return
	}
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj, _ := p.TypesInfo.Uses[sel.Sel].(*types.Var)
			if obj == nil {
				return
			}
			m, ok := c.marks[obj]
			if !ok {
				return
			}
			c.checkAccess(m, sel, stack)
		})
	}
}

// checkAccess applies the owner-method rule and, inside owner methods,
// the escape rules to one resolved access of a confined field.
func (c *confinedChecker) checkAccess(m fieldMark, sel *ast.SelectorExpr, stack []ast.Node) {
	p := c.p
	name := m.field.Name()
	where := m.owner.Name()
	if m.label != "" {
		where = m.label
	}

	decl := enclosingFuncDecl(stack)
	fn, _ := p.TypesInfo.Defs[funcDeclName(decl)].(*types.Func)
	if receiverTypeName(fn) != m.owner {
		p.Reportf(sel.Sel.Pos(),
			"field %s is confined to the %s goroutine (richnote:confined); access it only from %s methods",
			name, where, m.owner.Name())
		return
	}
	if goCaptured(stack) {
		p.Reportf(sel.Sel.Pos(),
			"confined field %s is captured by a go statement's closure; confined state must stay on the %s goroutine",
			name, where)
		return
	}
	if kind, detail := c.escapeOf(m, sel, stack); kind != "" {
		p.Reportf(sel.Sel.Pos(),
			"confined field %s escapes the %s goroutine: %s%s", name, where, kind, detail)
	}
}

// funcDeclName returns the declaration's name identifier, nil-safe.
func funcDeclName(decl *ast.FuncDecl) *ast.Ident {
	if decl == nil {
		return nil
	}
	return decl.Name
}

// goCaptured reports whether the stack passes through a function
// literal launched directly by a go statement (`go func(){...}()`).
func goCaptured(stack []ast.Node) bool {
	for i, n := range stack {
		lit, ok := n.(*ast.FuncLit)
		if !ok || i < 2 {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || call.Fun != lit {
			continue
		}
		if g, ok := stack[i-2].(*ast.GoStmt); ok && g.Call == call {
			return true
		}
	}
	return false
}

// refKind reports whether values of t have reference semantics — the
// kinds whose escape actually shares confined state. Copies of plain
// scalars and value structs are safe to hand out.
func refKind(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	}
	return false
}

// escapeOf classifies how a confined-field reference inside an owner
// method leaks, or returns "" when the use is safe. expr starts as the
// selector and is widened through &expr, parens and composite literals
// before the verdict.
func (c *confinedChecker) escapeOf(m fieldMark, sel ast.Expr, stack []ast.Node) (kind, detail string) {
	p := c.p
	expr := sel
	t := p.typeOf(sel)
	isRef := refKind(t)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			expr = parent
		case *ast.UnaryExpr:
			if parent.Op.String() != "&" || parent.X != expr {
				return "", ""
			}
			expr = parent
			isRef = true // &field is a pointer into the owner
		case *ast.KeyValueExpr:
			if parent.Value != expr {
				return "", ""
			}
			expr = parent
		case *ast.CompositeLit:
			expr = parent
		case *ast.ReturnStmt:
			if isRef && containsExpr(parent.Results, expr) {
				return "returned from an owner method", ""
			}
			return "", ""
		case *ast.SendStmt:
			if isRef && parent.Value == expr {
				return "sent on a channel", ""
			}
			return "", ""
		case *ast.AssignStmt:
			if !isRef {
				return "", ""
			}
			return c.assignEscape(m, parent, expr)
		case *ast.CallExpr:
			if !isRef || parent.Fun == expr {
				return "", ""
			}
			return c.callEscape(m, parent, expr)
		default:
			return "", ""
		}
	}
	return "", ""
}

// containsExpr reports whether e is one of exprs.
func containsExpr(exprs []ast.Expr, e ast.Expr) bool {
	for _, x := range exprs {
		if x == e {
			return true
		}
	}
	return false
}

// assignEscape checks the target a confined reference is assigned to:
// locals are fine (they stay on the goroutine), confined fields of the
// same owner are fine, anything else is a non-confined sink.
func (c *confinedChecker) assignEscape(m fieldMark, as *ast.AssignStmt, expr ast.Expr) (string, string) {
	p := c.p
	idx := -1
	for i, rhs := range as.Rhs {
		if rhs == expr {
			idx = i
		}
	}
	if idx < 0 || len(as.Lhs) != len(as.Rhs) {
		return "", ""
	}
	target := ast.Unparen(as.Lhs[idx])
	// Store into a struct field: allowed only when the target field is
	// itself confined to the same owner.
	if fv := fieldVarOf(p.TypesInfo, target); fv != nil {
		if tm, ok := c.marks[fv]; ok && tm.owner == m.owner {
			return "", ""
		}
		return "stored into field " + fv.Name(), " (not confined to the same owner)"
	}
	if id, ok := target.(*ast.Ident); ok {
		if v, ok := objectOf(p.TypesInfo, id).(*types.Var); ok {
			if p.Pkg != nil && v.Parent() == p.Pkg.Scope() {
				return "stored into package-level variable " + v.Name(), ""
			}
		}
		return "", "" // local variable: stays on the goroutine
	}
	// Index/deref targets (someMap[k] = sh.field, *ptr = sh.field)
	// store into memory whose confinement is unknown; treat the map or
	// pointer's own confinement as the verdict only when it is simple.
	if _, ok := target.(*ast.IndexExpr); ok {
		return "", "" // writing into a container: tracked via that container's own mark
	}
	return "", ""
}

// objectOf returns Uses[id] or Defs[id].
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// callEscape follows a confined reference passed as an argument to a
// same-package function one level deep: if the callee stores the
// parameter into a global, a field, a channel or a goroutine capture,
// the call site is the escape.
func (c *confinedChecker) callEscape(m fieldMark, call *ast.CallExpr, expr ast.Expr) (string, string) {
	p := c.p
	idx := -1
	for i, arg := range call.Args {
		if arg == expr {
			idx = i
		}
	}
	if idx < 0 {
		return "", ""
	}
	callee := calleeOf(p.TypesInfo, call)
	if callee == nil {
		return "", "" // dynamic or unresolved: out of scope
	}
	if receiverTypeName(callee) == m.owner {
		return "", "" // another owner method: still on the goroutine
	}
	decl := p.CallGraph().DeclOf(callee)
	if decl == nil {
		return "", "" // other package or no body: analysis boundary
	}
	param := paramIdent(decl, idx)
	if param == nil {
		return "", ""
	}
	obj := p.TypesInfo.Defs[param]
	if obj == nil {
		return "", ""
	}
	if why := p.paramEscapes(decl, obj); why != "" {
		return "passed to " + callee.Name() + ", which " + why, ""
	}
	return "", ""
}

// paramIdent maps a call argument index to the callee's parameter name,
// accounting for grouped parameters (a, b int) and variadics.
func paramIdent(decl *ast.FuncDecl, idx int) *ast.Ident {
	var names []*ast.Ident
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			names = append(names, nil)
			continue
		}
		names = append(names, field.Names...)
	}
	if len(names) == 0 {
		return nil
	}
	if idx >= len(names) {
		idx = len(names) - 1 // variadic tail
	}
	return names[idx]
}

// paramEscapes reports how the callee lets the parameter leave the
// calling goroutine, or "" if it does not (one level deep; calls the
// callee makes in turn are an accepted analysis boundary).
func (p *Pass) paramEscapes(decl *ast.FuncDecl, obj types.Object) string {
	var why string
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) {
		if why != "" {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[id] != obj {
			return
		}
		if goCaptured(stack) {
			why = "captures it in a goroutine"
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SendStmt:
			if parent.Value == id {
				why = "sends it on a channel"
			}
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if rhs != ast.Expr(id) || len(parent.Lhs) != len(parent.Rhs) {
					continue
				}
				target := ast.Unparen(parent.Lhs[i])
				if fv := fieldVarOf(p.TypesInfo, target); fv != nil {
					why = "stores it into field " + fv.Name()
				} else if tid, ok := target.(*ast.Ident); ok {
					if v, ok := objectOf(p.TypesInfo, tid).(*types.Var); ok &&
						p.Pkg != nil && v.Parent() == p.Pkg.Scope() {
						why = "stores it into package-level variable " + v.Name()
					}
				}
			}
		}
	})
	return why
}
