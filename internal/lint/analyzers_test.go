package lint_test

import (
	"testing"

	"github.com/richnote/richnote/internal/lint"
	"github.com/richnote/richnote/internal/lint/linttest"
)

// Each fixture seeds at least one violation per analyzer (positive
// cases) next to idiomatic code that must stay silent (negative cases).

func TestSeedRandFixture(t *testing.T) { linttest.Run(t, lint.SeedRand, "testdata/seedrand") }

func TestWallClockFixture(t *testing.T) { linttest.Run(t, lint.WallClock, "testdata/wallclock") }

func TestSpendCheckFixture(t *testing.T) { linttest.Run(t, lint.SpendCheck, "testdata/spendcheck") }

func TestConfinedFixture(t *testing.T) { linttest.Run(t, lint.Confined, "testdata/confined") }

func TestAtomicCheckFixture(t *testing.T) { linttest.Run(t, lint.AtomicCheck, "testdata/atomiccheck") }

func TestCodecSymFixture(t *testing.T) { linttest.Run(t, lint.CodecSym, "testdata/codecsym") }

func TestAllocFreeFixture(t *testing.T) { linttest.Run(t, lint.AllocFree, "testdata/allocfree") }

func TestUnitCheckFixture(t *testing.T) { linttest.Run(t, lint.UnitCheck, "testdata/unitcheck") }
