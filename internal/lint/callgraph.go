package lint

import (
	"go/ast"
	"go/types"
)

// CallGraph is the package-local static call graph: every function or
// method declared in the analysis unit, with the calls its body makes
// whose callee resolves statically through the type information.
// Dynamic calls (function values, interface methods without a concrete
// receiver) resolve to the interface method object or not at all; the
// graph records what go/types can prove, which is exactly the set the
// interprocedural analyzers are allowed to follow.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	calls map[*types.Func][]CallEdge
}

// CallEdge is one resolved call site inside Caller.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Site   *ast.CallExpr
}

// DeclOf returns the syntax of a function declared in this package, or
// nil for external and interface callees.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl {
	if g == nil || fn == nil {
		return nil
	}
	return g.decls[fn]
}

// EdgesFrom returns the resolved call sites inside fn's body.
func (g *CallGraph) EdgesFrom(fn *types.Func) []CallEdge {
	if g == nil {
		return nil
	}
	return g.calls[fn]
}

// buildCallGraph walks every declared function body once.
func buildCallGraph(pi *PackageInfo) *CallGraph {
	g := &CallGraph{
		decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func][]CallEdge),
	}
	for _, f := range pi.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pi.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			g.decls[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeOf(pi.Info, call); callee != nil {
					g.calls[fn] = append(g.calls[fn], CallEdge{Caller: fn, Callee: callee, Site: call})
				}
				return true
			})
		}
	}
	return g
}

// calleeOf statically resolves a call expression to the function or
// method it invokes, or nil for builtins, conversions and dynamic
// calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}
