package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCheck enforces the richnote:atomic field marker:
//
//	snap  atomic.Pointer[ShardSnapshot] // richnote:atomic
//	drops uint64                        // richnote:atomic
//
// A marked field may be touched from any goroutine, but only through a
// method call on the field (the sync/atomic value types) or by passing
// its address to a sync/atomic function; a bare read, write or copy
// tears. Resolution is type-aware: the field is matched through the
// selector's object even at the end of a chain (srv.shard.hits), the
// sync/atomic call is matched by the callee's package path rather than
// the import name, and an alias taken with &s.field is followed through
// its local variable — dereferencing the alias or handing it to a
// non-atomic function is flagged where v1's name matching saw nothing.
//
// Test files are exempt for the same reason as confined: tests poke
// state before any concurrency starts.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc: "fields marked richnote:atomic may only be accessed through " +
		"sync/atomic value methods or by address in a sync/atomic call, " +
		"including through local aliases of the field's address",
	IncludeTests: false,
	Run:          runAtomicCheck,
}

func runAtomicCheck(p *Pass) {
	marks := collectFieldMarks(p, "atomic")
	if len(marks) == 0 {
		return
	}
	for _, f := range p.Files {
		file := f
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			obj, _ := p.TypesInfo.Uses[sel.Sel].(*types.Var)
			if obj == nil {
				return
			}
			if _, ok := marks[obj]; !ok {
				return
			}
			p.checkAtomicUse(file, obj, sel, stack)
		})
	}
}

// checkAtomicUse classifies one resolved use of a richnote:atomic
// field.
func (p *Pass) checkAtomicUse(f *ast.File, field *types.Var, sel *ast.SelectorExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]

	// s.field.Method(...) — a method call on the atomic value type.
	if outer, ok := parent.(*ast.SelectorExpr); ok && outer.X == ast.Expr(sel) {
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(outer) {
				return
			}
		}
		p.Reportf(sel.Sel.Pos(),
			"field %s is marked richnote:atomic; reading %s.%s without a method call tears",
			field.Name(), field.Name(), outer.Sel.Name)
		return
	}

	// &s.field — safe inside a sync/atomic call, followed when stored
	// in a local alias, flagged otherwise.
	if unary, ok := parent.(*ast.UnaryExpr); ok && unary.Op.String() == "&" && unary.X == ast.Expr(sel) {
		p.checkAtomicAddress(f, field, unary, stack[:len(stack)-1])
		return
	}

	p.Reportf(sel.Sel.Pos(),
		"field %s is marked richnote:atomic; access it only through sync/atomic value methods or by address in a sync/atomic call",
		field.Name())
}

// checkAtomicAddress handles &s.field: directly inside a sync/atomic
// call it is the intended idiom; assigned to a local variable the alias
// is traced through the enclosing function; anything else leaks a raw
// pointer to state that must only be touched atomically.
func (p *Pass) checkAtomicAddress(f *ast.File, field *types.Var, addr *ast.UnaryExpr, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if p.isSyncAtomicCall(f, parent) {
			return
		}
		p.Reportf(addr.Pos(),
			"address of richnote:atomic field %s passed to a non-sync/atomic function; the callee can access it non-atomically",
			field.Name())
	case *ast.AssignStmt:
		// p := &s.field — find the alias variable and audit its uses.
		for i, rhs := range parent.Rhs {
			if rhs != ast.Expr(addr) || len(parent.Lhs) != len(parent.Rhs) {
				continue
			}
			id, ok := ast.Unparen(parent.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			alias := objectOf(p.TypesInfo, id)
			if alias == nil {
				continue
			}
			decl := enclosingFuncDecl(stack)
			if decl == nil || decl.Body == nil {
				continue
			}
			p.auditAtomicAlias(f, field, alias, decl.Body)
			return
		}
		p.Reportf(addr.Pos(),
			"address of richnote:atomic field %s escapes into a non-local target; keep atomic addresses inside sync/atomic calls",
			field.Name())
	default:
		p.Reportf(addr.Pos(),
			"address of richnote:atomic field %s taken outside a sync/atomic call", field.Name())
	}
}

// isSyncAtomicCall reports whether the call resolves to a function in
// sync/atomic (AddUint64, LoadPointer, ...).
func (p *Pass) isSyncAtomicCall(f *ast.File, call *ast.CallExpr) bool {
	_, ok := p.pkgCall(f, call, "sync/atomic")
	return ok
}

// auditAtomicAlias flags unsafe uses of a local alias of an atomic
// field's address: dereferences tear, and passing the alias to anything
// but a sync/atomic function or a method call on the alias hands out
// uncontrolled access.
func (p *Pass) auditAtomicAlias(f *ast.File, field *types.Var, alias types.Object, body *ast.BlockStmt) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || p.TypesInfo.Uses[id] != alias {
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.StarExpr:
			if parent.X == ast.Expr(id) {
				p.Reportf(id.Pos(),
					"dereferencing %s, an alias of richnote:atomic field %s, bypasses sync/atomic",
					alias.Name(), field.Name())
			}
		case *ast.SelectorExpr:
			// alias.Load() etc: method call on the aliased value.
			if parent.X == ast.Expr(id) && len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(parent) {
					return
				}
			}
			p.Reportf(id.Pos(),
				"field access through %s, an alias of richnote:atomic field %s, bypasses sync/atomic",
				alias.Name(), field.Name())
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg != ast.Expr(id) {
					continue
				}
				if !p.isSyncAtomicCall(f, parent) {
					p.Reportf(id.Pos(),
						"alias %s of richnote:atomic field %s passed to a non-sync/atomic function",
						alias.Name(), field.Name())
				}
			}
		}
	})
}
