package lint

import (
	"go/ast"
	"go/types"
)

// spendMethods are the budget/battery mutators whose return value is
// the accounting truth: what was *actually* spent, charged or
// replenished, which may be less than what was requested. The WAL
// durability methods (Append, Sync, Commit) belong to the same class:
// their error is the only evidence a record reached stable storage, and
// discarding it silently converts "durable" into "probably durable".
var spendMethods = map[string]string{
	"Spend":     "the joules actually drawn, bounded by remaining charge",
	"Charge":    "the amount actually credited",
	"Replenish": "the post-replenishment virtual queue value",
	"Debit":     "the amount actually debited",
	"Credit":    "the amount actually credited",
	"Refund":    "the amount actually refunded, capped at the outstanding debits",
	"Append":    "the record's sequence number and whether the log accepted it",
	"Sync":      "whether the flush and fsync reached stable storage",
	"Commit":    "whether the round boundary reached stable storage",
}

// SpendCheck flags call statements that discard the result of a budget
// mutator — the exact bug class PR 1 fixed by hand (radio overhead
// charged without checking Battery.Spend). Every spend must be
// reconciled against what the battery or budget could actually afford.
var SpendCheck = &Analyzer{
	Name: "spendcheck",
	Doc: "flag discarded return values of budget/battery mutators " +
		"(Spend, Charge, Replenish, Debit, Credit, Refund) and WAL " +
		"durability methods (Append, Sync, Commit); the amount actually " +
		"moved — or the durability outcome — must be checked",
	IncludeTests: true,
	Run:          runSpendCheck,
}

func runSpendCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			why, ok := spendMethods[sel.Sel.Name]
			if !ok {
				return true
			}
			// With type information the name match is tightened: a
			// standard-library method of the same name (os.File.Sync,
			// bytes.Buffer-style APIs) is not a budget mutator, and a
			// method that returns nothing has nothing to discard.
			if fn := calleeOf(p.TypesInfo, call); fn != nil {
				if fn.Pkg() == nil {
					return true
				}
				if fn.Pkg() != p.Pkg && isStdlibPath(fn.Pkg().Path()) {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 0 {
					return true
				}
			}
			p.Reportf(call.Pos(),
				"result of %s is discarded; it reports %s and must be checked", sel.Sel.Name, why)
			return true
		})
	}
}
