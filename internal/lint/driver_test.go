package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/richnote/richnote/internal/lint"
)

const smokeGoMod = "module lintsmoke\n\ngo 1.22\n"

// smokeViolations is a package in the sim scope that trips every
// analyzer in the suite exactly once.
const smokeViolations = `package sim

import (
	"math/rand"
	"time"
)

type battery struct{ level float64 }

func (b *battery) Spend(j float64) float64 {
	b.level -= j
	return j
}

type shard struct {
	round  int    // richnote:confined(shard)
	legacy uint64 // richnote:atomic
}

type Encoder struct{ buf []byte }

func (e *Encoder) U32(v uint32) {}
func (e *Encoder) U64(v uint64) {}

type Decoder struct{ off int }

func (d *Decoder) U32() uint32 { return 0 }
func (d *Decoder) U64() uint64 { return 0 }

func encodeThing(e *Encoder, v uint64) {
	e.U64(v)
}

func decodeThing(d *Decoder) uint64 {
	return uint64(d.U32())
}

// richnote:allocfree
func hot(n int) []byte {
	return make([]byte, n)
}

func Violate(s *shard, b *battery, sizeBytes int64, quotaMB float64) float64 {
	rand.Seed(7)
	start := time.Now()
	b.Spend(2)
	s.round++
	s.legacy++
	_ = start
	return float64(sizeBytes) + quotaMB
}
`

// smokeAllowed is the same package with every violation either fixed
// or explicitly suppressed, and must lint clean.
const smokeAllowed = `package sim

import (
	"math/rand"
	"sync/atomic"
	"time"
)

type battery struct{ level float64 }

func (b *battery) Spend(j float64) float64 {
	b.level -= j
	return j
}

type shard struct {
	round  int    // richnote:confined(shard)
	legacy uint64 // richnote:atomic
}

func (s *shard) bump() { s.round++ }

func touch(s *shard) { atomic.AddUint64(&s.legacy, 1) }

type Encoder struct{ buf []byte }

func (e *Encoder) U32(v uint32) {}
func (e *Encoder) U64(v uint64) {}

type Decoder struct{ off int }

func (d *Decoder) U32() uint32 { return 0 }
func (d *Decoder) U64() uint64 { return 0 }

func encodeThing(e *Encoder, v uint64) {
	e.U64(v)
}

func decodeThing(d *Decoder) uint64 {
	return d.U64()
}

// richnote:allocfree
func hot(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf[:n]
}

const bytesPerMB = 1 << 20

func Allowed(s *shard, b *battery, sizeBytes int64, quotaMB float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	//lint:allow wallclock latency telemetry, not scheduling time
	start := time.Now()
	spent := b.Spend(rng.Float64())
	s.bump()
	touch(s)
	_ = start
	return float64(sizeBytes)/bytesPerMB + quotaMB + spent
}
`

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestDriverFlagsSeededViolations is the reintroduction guard the CI
// step relies on: a tree with one violation per analyzer must produce a
// nonzero finding count, one per analyzer.
func TestDriverFlagsSeededViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     smokeGoMod,
		"sim/bad.go": smokeViolations,
	})
	findings, err := lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, f := range findings {
		got[f.Analyzer]++
	}
	for _, a := range lint.All() {
		if got[a.Name] != 1 {
			t.Errorf("analyzer %s: %d findings, want 1\nall findings:\n%s",
				a.Name, got[a.Name], render(findings))
		}
	}
	if len(findings) != len(lint.All()) {
		t.Errorf("total findings = %d, want %d:\n%s", len(findings), len(lint.All()), render(findings))
	}
}

// TestDriverHonorsAllowDirectives verifies the suppression contract:
// fixed code plus a well-formed //lint:allow line lints clean.
func TestDriverHonorsAllowDirectives(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":         smokeGoMod,
		"sim/allowed.go": smokeAllowed,
	})
	findings, err := lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("allowed module produced findings:\n%s", render(findings))
	}
}

// TestDriverReportsMalformedAllow: a directive without a reason must
// not suppress anything and is itself a finding.
func TestDriverReportsMalformedAllow(t *testing.T) {
	src := strings.Replace(smokeAllowed,
		"//lint:allow wallclock latency telemetry, not scheduling time",
		"//lint:allow wallclock", 1)
	dir := writeModule(t, map[string]string{
		"go.mod":         smokeGoMod,
		"sim/allowed.go": src,
	})
	findings, err := lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawWallclock bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			sawMalformed = true
		case "wallclock":
			sawWallclock = true
		}
	}
	if !sawMalformed || !sawWallclock {
		t.Errorf("want a malformed-directive finding and an unsuppressed wallclock finding, got:\n%s", render(findings))
	}
}

// TestDriverScopeGating: the same violations outside any scoped path
// only trip the unscoped analyzers.
func TestDriverScopeGating(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      smokeGoMod,
		"util/bad.go": strings.Replace(smokeViolations, "package sim", "package util", 1),
	})
	findings, err := lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "seedrand" || f.Analyzer == "wallclock" {
			t.Errorf("scoped analyzer %s fired outside its scope: %s", f.Analyzer, f)
		}
	}
	got := make(map[string]bool)
	for _, f := range findings {
		got[f.Analyzer] = true
	}
	for _, name := range []string{"spendcheck", "confined", "atomiccheck", "codecsym", "allocfree", "unitcheck"} {
		if !got[name] {
			t.Errorf("unscoped analyzer %s did not fire:\n%s", name, render(findings))
		}
	}
}

// TestDriverContinuesPastTypecheckFailure: a package that does not
// type-check becomes a finding of its own, and analysis of the healthy
// packages still runs (satellite: driver robustness).
func TestDriverContinuesPastTypecheckFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        smokeGoMod,
		"broken/bad.go": "package broken\n\nfunc f() int { return undefinedSymbol }\n",
		"sim/bad.go":    smokeViolations,
	})
	findings, err := lint.Run(dir, []string{"./..."}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	var sawTypeFailure, sawSeedrand bool
	for _, f := range findings {
		if f.Analyzer == "lint" && strings.Contains(f.Message, "does not type-check") {
			sawTypeFailure = true
		}
		if f.Analyzer == "seedrand" {
			sawSeedrand = true
		}
	}
	if !sawTypeFailure {
		t.Errorf("no type-check failure finding for the broken package:\n%s", render(findings))
	}
	if !sawSeedrand {
		t.Errorf("healthy package was not analyzed after the type-check failure:\n%s", render(findings))
	}
}

func render(findings []lint.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("  " + f.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}
