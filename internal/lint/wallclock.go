package lint

import "go/ast"

// wallClockFuncs are the time functions that read or wait on the wall
// clock. time.Duration/time.Time arithmetic and constants are fine —
// virtual-time code manipulates durations constantly; it must not
// *sample* the clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// WallClock forbids wall-clock reads in the virtual-time packages. The
// scheduler's rounds, Lyapunov drift and energy replenishment all run
// on virtual round indices; a stray time.Now() makes replay and the
// byte-identical build guarantee silently false. Round/tick time must
// flow in as a parameter (sched.DeviceConfig.Epoch + RoundLen).
//
// internal/server is in scope on purpose: its shard loop runs virtual
// rounds, and its few deliberate wall-clock sites (self-tick ticker,
// round-latency telemetry, ingest timestamps, load-generator latency)
// carry //lint:allow wallclock directives so every new read is an
// explicit decision.
//
// Test files are exempt: timeouts and latency assertions in tests
// legitimately wait on the real clock.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/Since and timer constructors in virtual-time " +
		"packages; round and tick time must be passed in as a parameter",
	Scope:        []string{"sched", "lyapunov", "mckp", "sim", "energy", "server", "cluster", "transport"},
	IncludeTests: false,
	Run:          runWallClock,
}

func runWallClock(p *Pass) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := p.pkgCall(file, call, "time")
			if !ok || !wallClockFuncs[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock inside a virtual-time package; pass round/tick time in as a parameter", name)
			return true
		})
	}
}
