// Package wallclock exercises the wallclock analyzer: virtual-time
// code must take round/tick time as a parameter, never sample the
// clock.
package wallclock

import "time"

func bad() time.Duration {
	start := time.Now()            // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond) // want `time\.After reads the wall clock`
	return time.Since(start)       // want `time\.Since reads the wall clock`
}

func good(now time.Time, roundLen time.Duration, round int) time.Time {
	deadline := now.Add(time.Duration(round) * roundLen)
	if roundLen > time.Hour {
		return deadline.Truncate(time.Minute)
	}
	return deadline
}
