// Package spendcheck exercises the spendcheck analyzer: the return
// value of a budget mutator is the accounting truth and must be
// checked.
package spendcheck

type battery struct{ level float64 }

func (b *battery) Spend(j float64) float64 {
	if j > b.level {
		j = b.level
	}
	b.level -= j
	return j
}

func (b *battery) Replenish(j float64) float64 {
	b.level += j
	return b.level
}

type ledger struct{ debited, refunded float64 }

func (l *ledger) Debit(n float64) float64 {
	l.debited += n
	return n
}

func (l *ledger) Refund(n float64) float64 {
	if room := l.debited - l.refunded; n > room {
		n = room
	}
	l.refunded += n
	return n
}

func bad(b *battery, l *ledger) {
	b.Spend(3)           // want `result of Spend is discarded`
	defer b.Replenish(1) // want `result of Replenish is discarded`
	go b.Spend(2)        // want `result of Spend is discarded`
	l.Debit(5)           // want `result of Debit is discarded`
	l.Refund(5)          // want `result of Refund is discarded`
}

func good(b *battery, l *ledger) float64 {
	spent := b.Spend(3)
	if spent < 3 {
		return spent
	}
	charged := l.Debit(spent)
	if back := l.Refund(charged); back < charged {
		return back
	}
	return b.Replenish(spent)
}

// walWriter mimics internal/wal.Writer: the error is the only evidence
// a record reached stable storage.
type walWriter struct{ seq uint64 }

func (w *walWriter) Append(typ byte, payload []byte) (uint64, error) {
	w.seq++
	return w.seq, nil
}

func (w *walWriter) Sync() error   { return nil }
func (w *walWriter) Commit() error { return nil }

func badDurability(w *walWriter) {
	w.Append(1, nil) // want `result of Append is discarded`
	w.Sync()         // want `result of Sync is discarded`
	defer w.Commit() // want `result of Commit is discarded`
}

func goodDurability(w *walWriter) error {
	if _, err := w.Append(1, nil); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	return w.Commit()
}
