// Package spendcheck exercises the spendcheck analyzer: the return
// value of a budget mutator is the accounting truth and must be
// checked.
package spendcheck

type battery struct{ level float64 }

func (b *battery) Spend(j float64) float64 {
	if j > b.level {
		j = b.level
	}
	b.level -= j
	return j
}

func (b *battery) Replenish(j float64) float64 {
	b.level += j
	return b.level
}

func bad(b *battery) {
	b.Spend(3)           // want `result of Spend is discarded`
	defer b.Replenish(1) // want `result of Replenish is discarded`
	go b.Spend(2)        // want `result of Spend is discarded`
}

func good(b *battery) float64 {
	spent := b.Spend(3)
	if spent < 3 {
		return spent
	}
	return b.Replenish(spent)
}
