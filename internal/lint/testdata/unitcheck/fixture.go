// Package unitcheck exercises the unitcheck analyzer: additive
// arithmetic and assignments must not mix unit-suffixed names.
package unitcheck

const bytesPerMB = 1 << 20

func bad(sizeBytes int64, quotaMB float64, transferJ float64) float64 {
	total := float64(sizeBytes) + quotaMB // want `mixes bytes and MB`
	if float64(sizeBytes) > quotaMB {     // want `mixes bytes and MB`
		total -= transferJ // no finding: total carries no unit suffix
	}
	var budgetMB float64
	budgetMB = float64(sizeBytes) // want `mixes MB and bytes`
	budgetMB -= quotaMB
	return total + budgetMB
}

func good(sizeBytes int64, quotaMB float64) float64 {
	sizeMB := float64(sizeBytes) / bytesPerMB
	if sizeMB > quotaMB {
		return quotaMB * bytesPerMB
	}
	return sizeMB + quotaMB
}
