// Package confined exercises the confined analyzer: richnote:confined
// fields stay inside the owning type's methods; richnote:atomic fields
// are only touched through sync/atomic values or helpers.
package confined

import "sync/atomic"

// walWriter mimics internal/wal.Writer, a single-owner durability
// handle.
type walWriter struct{ seq uint64 }

func (w *walWriter) Append(b []byte) (uint64, error) { w.seq++; return w.seq, nil }

type shard struct {
	devices map[int]int   // richnote:confined(shard)
	round   int           // richnote:confined(shard)
	log     *walWriter    // richnote:confined(shard)
	hits    atomic.Uint64 // richnote:atomic
	legacy  uint64        // richnote:atomic
}

func (s *shard) runRound() int {
	s.round++
	s.devices[s.round] = s.round
	if s.log != nil {
		if _, err := s.log.Append(nil); err != nil {
			return 0
		}
	}
	s.hits.Add(1)
	return len(s.devices)
}

func poke(s *shard) uint64 {
	s.round++                      // want `confined to the shard goroutine`
	delete(s.devices, 1)           // want `confined to the shard goroutine`
	s.hits.Add(1)                  // ok: method call on an atomic value
	atomic.AddUint64(&s.legacy, 1) // ok: address passed to sync/atomic
	s.legacy++                     // want `marked richnote:atomic`
	return s.hits.Load()
}

// restore mimics a recovery path living outside the owning type: writes
// to confined durability state must go through shard methods, never
// directly.
func restore(s *shard, w *walWriter) error {
	s.log = w                   // want `confined to the shard goroutine`
	_, err := s.log.Append(nil) // want `confined to the shard goroutine`
	return err
}
