// Package confined exercises the confined analyzer: richnote:confined
// fields stay inside the owning type's methods; richnote:atomic fields
// are only touched through sync/atomic values or helpers.
package confined

import "sync/atomic"

type shard struct {
	devices map[int]int   // richnote:confined(shard)
	round   int           // richnote:confined(shard)
	hits    atomic.Uint64 // richnote:atomic
	legacy  uint64        // richnote:atomic
}

func (s *shard) runRound() int {
	s.round++
	s.devices[s.round] = s.round
	s.hits.Add(1)
	return len(s.devices)
}

func poke(s *shard) uint64 {
	s.round++                      // want `confined to the shard goroutine`
	delete(s.devices, 1)           // want `confined to the shard goroutine`
	s.hits.Add(1)                  // ok: method call on an atomic value
	atomic.AddUint64(&s.legacy, 1) // ok: address passed to sync/atomic
	s.legacy++                     // want `marked richnote:atomic`
	return s.hits.Load()
}
