// Package confined exercises the confined analyzer: richnote:confined
// fields stay inside the owning type's methods, and — v2 — must not
// escape the owning goroutine even from owner methods.
package confined

// walWriter mimics internal/wal.Writer, a single-owner durability
// handle.
type walWriter struct{ seq uint64 }

func (w *walWriter) Append(b []byte) (uint64, error) { w.seq++; return w.seq, nil }

type shard struct {
	devices map[int]int // richnote:confined(shard)
	round   int         // richnote:confined(shard)
	log     *walWriter  // richnote:confined(shard)
}

// inspector is an unrelated struct; its fields are non-confined sinks.
type inspector struct{ view map[int]int }

var debugDevices map[int]int

func (s *shard) runRound() int {
	s.round++
	s.devices[s.round] = s.round
	if s.log != nil {
		if _, err := s.log.Append(nil); err != nil {
			return 0
		}
	}
	return len(s.devices)
}

func (s *shard) shareLocal() int {
	m := s.devices // ok: a local alias stays on the goroutine
	return len(m)
}

func (s *shard) roundCopy() int {
	return s.round // ok: a value copy of a scalar cannot share state
}

func (s *shard) leakReturn() map[int]int {
	return s.devices // want `escapes the shard goroutine: returned from an owner method`
}

func (s *shard) leakGo() {
	go func() {
		s.round++ // want `captured by a go statement's closure`
	}()
}

func (s *shard) leakStore() {
	debugDevices = s.devices // want `stored into package-level variable debugDevices`
}

func (s *shard) leakField(i *inspector) {
	i.view = s.devices // want `stored into field view`
}

func (s *shard) leakSend(ch chan map[int]int) {
	ch <- s.devices // want `sent on a channel`
}

func (s *shard) leakCall() {
	stash(s.devices) // want `passed to stash, which stores it into package-level variable debugDevices`
}

func stash(m map[int]int) { debugDevices = m }

func inspect(m map[int]int) int { return len(m) }

func (s *shard) passReadOnly() int {
	return inspect(s.devices) // ok: the callee never lets the parameter leave
}

func poke(s *shard) int {
	s.round++            // want `confined to the shard goroutine`
	delete(s.devices, 1) // want `confined to the shard goroutine`
	return s.round       // want `confined to the shard goroutine`
}

// restore mimics a recovery path living outside the owning type: writes
// to confined durability state must go through shard methods, never
// directly.
func restore(s *shard, w *walWriter) error {
	s.log = w                   // want `confined to the shard goroutine`
	_, err := s.log.Append(nil) // want `confined to the shard goroutine`
	return err
}
