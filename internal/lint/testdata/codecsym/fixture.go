// Package codecsym exercises the codecsym analyzer: hand-written
// encoders pair with decoders (by name, by Encode/Decode convention or
// by richnote:codecpair annotation) and the read sequence must mirror
// the write sequence in field order and width.
package codecsym

// Encoder and Decoder mimic internal/wal's fixed-width codec types.
type Encoder struct{ buf []byte }

func (e *Encoder) U8(v uint8)   {}
func (e *Encoder) U32(v uint32) {}
func (e *Encoder) U64(v uint64) {}
func (e *Encoder) I64(v int64)  {}
func (e *Encoder) Str(s string) {}
func (e *Encoder) Bool(v bool)  {}

type Decoder struct{ buf []byte }

func (d *Decoder) U8() uint8   { return 0 }
func (d *Decoder) U32() uint32 { return 0 }
func (d *Decoder) U64() uint64 { return 0 }
func (d *Decoder) I64() int64  { return 0 }
func (d *Decoder) Str() string { return "" }
func (d *Decoder) Bool() bool  { return false }
func (d *Decoder) Err() error  { return nil }

// Count is decoder-only by design (the validated read of an encoder's
// U32 length) and is excluded from the mirror rule.
func (d *Decoder) Count(minElemSize int, what string) int { return 0 }

// F64 has no encoder counterpart: the mirror rule fires.
func (d *Decoder) F64() float64 { return 0 } // want `Decoder.F64 has no Encoder.F64`

type item struct {
	id   uint64
	name string
}

func encodeItem(e *Encoder, it item) {
	e.U64(it.id)
	e.Str(it.name)
}

func decodeItem(d *Decoder) item {
	return item{id: d.U64(), name: d.Str()} // ok: u64 str mirrors the writer
}

func encodeList(e *Encoder, items []item) {
	e.U32(uint32(len(items)))
	for _, it := range items {
		encodeItem(e, it)
	}
}

func decodeList(d *Decoder) []item {
	n := d.Count(1, "items") // ok: Count reads the writer's u32 length
	out := make([]item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, decodeItem(d))
	}
	return out
}

func encodeBad(e *Encoder, v uint32, t int64) {
	e.U32(v)
	e.I64(t) // want `the writer emits i64 but the reader consumes u64`
}

func decodeBad(d *Decoder) (uint32, int64) {
	v := d.U32()
	t := int64(d.U64())
	return v, t
}

func encodeTrail(e *Encoder, a, b uint32) {
	e.U32(a)
	e.U32(b) // want `the writer emits 1 op\(s\) the reader never consumes`
}

func decodeTrail(d *Decoder) uint32 {
	return d.U32()
}

func encodeOrphan(e *Encoder, v uint32) { // want `has no matching decodeOrphan`
	e.U32(v)
}

// writeHeader and readHeader share no name prefix; the annotation pairs
// them.
//
// richnote:codecpair(header)
func writeHeader(e *Encoder, n uint32) {
	e.U32(n)
	e.Bool(true)
}

// richnote:codecpair(header)
func readHeader(d *Decoder) (uint32, bool) {
	n := d.U32()
	ok := d.Bool()
	return n, ok
}

// richnote:codecpair(halfpair)
func writeHalf(e *Encoder, v uint32) { // want `must annotate exactly one encoder and one decoder`
	e.U32(v)
}

// table exercises the Encode-method / Decode-function convention.
type table struct{ n uint32 }

func (t *table) Encode(e *Encoder) {
	e.U32(t.n)
}

func Decode(d *Decoder) *table {
	return &table{n: d.U32()} // ok: mirrors table.Encode
}
