// Package atomiccheck exercises the atomiccheck analyzer:
// richnote:atomic fields are touched only through sync/atomic value
// methods or by address inside a sync/atomic call, including through
// local aliases of the field's address.
package atomiccheck

import "sync/atomic"

type shard struct {
	hits   atomic.Uint64 // richnote:atomic
	legacy uint64        // richnote:atomic
	round  int
}

func ok(s *shard) uint64 {
	s.hits.Add(1)                  // ok: method call on the atomic value
	atomic.AddUint64(&s.legacy, 1) // ok: address inside a sync/atomic call
	s.round++                      // ok: unmarked field
	return s.hits.Load() + atomic.LoadUint64(&s.legacy)
}

func tears(s *shard) uint64 {
	s.legacy++    // want `marked richnote:atomic`
	v := s.legacy // want `marked richnote:atomic`
	_ = v
	return s.legacy // want `marked richnote:atomic`
}

func leakAddress(s *shard) {
	observe(&s.legacy) // want `passed to a non-sync/atomic function`
}

func observe(p *uint64) { _ = p }

func aliased(s *shard) {
	p := &s.legacy
	atomic.AddUint64(p, 1) // ok: alias used inside a sync/atomic call
	*p = 7                 // want `dereferencing p, an alias of richnote:atomic field legacy`
}

func aliasEscape(s *shard) {
	q := &s.legacy
	observe(q) // want `alias q of richnote:atomic field legacy passed to a non-sync/atomic function`
}
