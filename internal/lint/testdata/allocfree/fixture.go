// Package allocfree exercises the allocfree analyzer: functions marked
// // richnote:allocfree must contain no steady-state allocating
// constructs; warm-up allocations hide behind cap/len or nil guards.
package allocfree

import "sort"

type byIncs []int

func (b byIncs) Len() int           { return len(b) }
func (b byIncs) Less(i, j int) bool { return b[i] < b[j] }
func (b byIncs) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }

type solver struct {
	buf   []byte
	incs  byIncs
	cache map[int]int
}

type point struct{ x int }

func run() {}

func sink(v any) { _ = v }

func variadic(vs ...int) {}

// hot is the steady-state path: every construct here is either
// genuinely alloc-free or one of the two permitted idioms.
//
// richnote:allocfree
func (s *solver) hot(n int) int {
	if cap(s.buf) < n {
		s.buf = make([]byte, 0, n) // ok: warm-up behind a cap guard
	}
	s.buf = s.buf[:0]
	s.buf = append(s.buf, 1) // ok: amortized append into a reused buffer
	sort.Stable(&s.incs)     // ok: pointer-shaped interface value
	q := point{x: n}         // ok: value composite literal stays on the stack
	total := q.x
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// leaky trips every allocating construct the analyzer knows.
//
// richnote:allocfree
func (s *solver) leaky(n int, name string) string {
	b := make([]byte, n) // want `call to make allocates`
	_ = b
	m := map[int]int{} // want `map literal allocates`
	_ = m
	v := []int{1, 2} // want `slice literal allocates`
	_ = v
	p := &point{x: 1} // want `address of a composite literal allocates`
	_ = p
	f := func() {} // want `closure allocates`
	f()
	go run()          // want `go statement allocates a goroutine`
	s.cache[n] = n    // want `map assignment may grow the map`
	sink(n)           // want `boxed into an interface`
	variadic(1, 2)    // want `implicit variadic slice allocates`
	return name + "!" // want `string concatenation allocates`
}

// cold carries no marker: allocate freely.
func cold(n int) []byte { return make([]byte, n) }
