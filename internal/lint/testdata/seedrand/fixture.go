// Package seedrand exercises the seedrand analyzer: ambient randomness
// is forbidden; injected seed-derived *rand.Rand values are fine.
package seedrand

import (
	"math/rand"
	"time"
)

func bad() {
	rand.Seed(42)                                       // want `rand\.Seed mutates the process-wide source`
	_ = rand.Intn(10)                                   // want `global math/rand\.Intn`
	_ = rand.Float64()                                  // want `global math/rand\.Float64`
	rand.Shuffle(3, func(i, j int) {})                  // want `global math/rand\.Shuffle`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `time\.Now is irreproducible`
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	if rng.Intn(2) == 0 {
		return rng.Float64()
	}
	perm := rng.Perm(4)
	return float64(perm[0])
}
