package metrics

import (
	"strconv"
	"strings"
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func expoCollector() *Collector {
	c := NewCollector()
	c.OnArrive(1, true)
	c.OnArrive(1, false)
	c.OnArrive(2, true)
	c.OnDeliver(notif.Delivery{
		Recipient: 1, Level: 3, Size: 1000, Utility: 0.5, EnergyJ: 2,
		ArrivedRound: 0, DeliveredRound: 2,
	}, DeliveryOutcome{Clicked: true, BeforeClick: true})
	c.OnDeliver(notif.Delivery{
		Recipient: 2, Level: 1, Size: 200, Utility: 0.1, EnergyJ: 1,
		ArrivedRound: 1, DeliveredRound: 1,
	}, DeliveryOutcome{Clicked: true, BeforeClick: false})
	return c
}

func TestExpositionCountersAndGauges(t *testing.T) {
	out := expoCollector().Exposition()
	for _, want := range []string{
		"richnote_notifications_arrived_total 3",
		"richnote_notifications_delivered_total 2",
		"richnote_notifications_clicked_total 2",
		"richnote_delivered_bytes_total 1200",
		"richnote_energy_joules_total 3",
		`richnote_deliveries_by_level_total{level="1"} 1`,
		`richnote_deliveries_by_level_total{level="3"} 1`,
		"richnote_users 2",
		"# TYPE richnote_delivery_ratio gauge",
		"richnote_precision 0.5",
		"richnote_recall 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Delivery ratio 2/3 renders as a shortest float.
	if !strings.Contains(out, "richnote_delivery_ratio 0.666666") {
		t.Errorf("exposition missing delivery ratio\n%s", out)
	}
}

func TestExpositionDelayHistogram(t *testing.T) {
	out := expoCollector().Exposition()
	// Delays recorded: 2 rounds and 0 rounds.
	for _, want := range []string{
		`richnote_delivery_delay_rounds_bucket{le="0"} 1`,
		`richnote_delivery_delay_rounds_bucket{le="1"} 1`,
		`richnote_delivery_delay_rounds_bucket{le="2"} 2`,
		`richnote_delivery_delay_rounds_bucket{le="128"} 2`,
		`richnote_delivery_delay_rounds_bucket{le="+Inf"} 2`,
		"richnote_delivery_delay_rounds_sum 2",
		"richnote_delivery_delay_rounds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: each le bound's count is non-decreasing.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "richnote_delivery_delay_rounds_bucket") {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}

func TestCumulativeBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0, 1, 1, 3, 10} {
		h.Add(v)
	}
	got := h.CumulativeBuckets([]float64{4, 0, 1}) // unsorted bounds are sorted
	want := []Bucket{{0, 1}, {1, 3}, {4, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeBuckets(t *testing.T) {
	a := []Bucket{{1, 2}, {2, 5}}
	b := []Bucket{{1, 1}, {2, 1}}
	got, err := MergeBuckets(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != (Bucket{1, 3}) || got[1] != (Bucket{2, 6}) {
		t.Fatalf("merged = %+v", got)
	}
	if _, err := MergeBuckets(a, []Bucket{{9, 1}, {10, 1}}); err == nil {
		t.Fatal("expected bound-mismatch error")
	}
	if _, err := MergeBuckets(a, []Bucket{{1, 1}}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if got, err := MergeBuckets(nil, b); err != nil || len(got) != 2 {
		t.Fatalf("empty-side merge = %+v, %v", got, err)
	}
}

func TestReportMerge(t *testing.T) {
	c1 := NewCollector()
	c1.OnArrive(1, true)
	c1.OnDeliver(notif.Delivery{Recipient: 1, Level: 2, Size: 10, Utility: 0.4, DeliveredRound: 1}, DeliveryOutcome{Clicked: true, BeforeClick: true})
	c2 := NewCollector()
	c2.OnArrive(2, false)
	c2.OnDeliver(notif.Delivery{Recipient: 2, Level: 2, Size: 20, Utility: 0.2}, DeliveryOutcome{})

	r := c1.Aggregate()
	r.Merge(c2.Aggregate())

	// The merged report must match a collector-level merge on every
	// additive field.
	c1.Merge(c2)
	want := c1.Aggregate()
	if r.Users != want.Users || r.Arrived != want.Arrived || r.Delivered != want.Delivered ||
		r.DeliveredBytes != want.DeliveredBytes || r.UtilitySum != want.UtilitySum ||
		r.ClickedAndDelivered != want.ClickedAndDelivered ||
		r.DeliveredBeforeClick != want.DeliveredBeforeClick ||
		r.DelayRoundsSum != want.DelayRoundsSum {
		t.Fatalf("merged report %+v, want %+v", r, want)
	}
	if r.LevelCounts[2] != 2 {
		t.Fatalf("merged level counts %v", r.LevelCounts)
	}
}
