// Package metrics implements the performance metrics of Section V-C:
// delivery ratio, precision and recall against recorded clicks, average
// utility of delivered notifications, download energy and queuing delay —
// plus the per-presentation-level mix that Figures 5(b) and 5(c) stack.
//
// A Collector accumulates per-user counters during a simulation run and
// produces an aggregate Report (metrics averaged across users, as the
// paper reports) as well as per-user slices for the user-category analysis
// of Figure 5(d).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/richnote/richnote/internal/notif"
)

// userCounters tracks one user's tallies.
type userCounters struct {
	arrived              int
	clickedTotal         int
	delivered            int
	deliveredBytes       int64
	utilitySum           float64
	trueUtilitySum       float64
	clickedAndDelivered  int // recall numerator
	deliveredBeforeClick int // precision numerator
	energyJ              float64
	delayRoundsSum       int
	levelCounts          map[int]int

	// Fault-injection tallies. All zero in a fault-free run.
	transferFailures   int
	retriedDeliveries  int
	degradedDeliveries int
	dropped            int
	wastedEnergyJ      float64
}

// Collector accumulates simulation outcomes.
type Collector struct {
	users  map[notif.UserID]*userCounters
	delays Histogram // queuing delay per delivery, in rounds

	// running mirrors the whole-collector fold incrementally: every event
	// updates it alongside the per-user counters, so the per-round snapshot
	// path reads an O(1) Running() instead of the O(users) Aggregate().
	// Integer fields match Aggregate exactly; float sums accumulate in
	// event order rather than Aggregate's sorted-user order, so their low
	// bits may differ — Running is telemetry, Aggregate remains the exact
	// end-of-run fold. runningDelays counts delay samples per
	// DefaultDelayBucketBounds bucket (first bound the sample fits under),
	// with runningDelayOver holding samples above the last bound; together
	// they answer bucket-resolution percentiles and cumulative buckets
	// without sorting the raw sample slice every round.
	running          Report
	runningDelays    []uint64
	runningDelayOver uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		users:         make(map[notif.UserID]*userCounters),
		running:       Report{LevelCounts: make(map[int]int)},
		runningDelays: make([]uint64, len(DefaultDelayBucketBounds)),
	}
}

// DelayHistogram exposes the queuing-delay distribution across all
// recorded deliveries.
func (c *Collector) DelayHistogram() *Histogram { return &c.delays }

// ensureRunning lazily initializes the running-aggregate buffers so a
// collector assembled without NewCollector (none in-tree, but cheap to
// defend) still maintains them.
func (c *Collector) ensureRunning() {
	if c.running.LevelCounts == nil {
		c.running.LevelCounts = make(map[int]int)
	}
	if c.runningDelays == nil {
		c.runningDelays = make([]uint64, len(DefaultDelayBucketBounds))
	}
}

func (c *Collector) user(u notif.UserID) *userCounters {
	uc := c.users[u]
	if uc == nil {
		uc = &userCounters{levelCounts: make(map[int]int)}
		c.users[u] = uc
		c.ensureRunning()
		c.running.Users++
	}
	return uc
}

// OnArrive records a notification entering the broker for a user, with its
// ground-truth click flag.
func (c *Collector) OnArrive(u notif.UserID, clicked bool) {
	uc := c.user(u)
	uc.arrived++
	c.running.Arrived++
	if clicked {
		uc.clickedTotal++
		c.running.ClickedTotal++
	}
}

// OnEnergy charges energy that is not attributable to a single delivery
// (per-round radio ramp/tail overhead) to the user's energy tally.
func (c *Collector) OnEnergy(u notif.UserID, joules float64) {
	c.user(u).energyJ += joules
	c.running.EnergyJ += joules
}

// OnTransferFailure records one failed transfer attempt and the energy the
// radio burned on the partial transfer. The energy counts toward the user's
// total energy tally and is additionally tracked as waste.
func (c *Collector) OnTransferFailure(u notif.UserID, wastedJ float64) {
	uc := c.user(u)
	uc.transferFailures++
	uc.energyJ += wastedJ
	uc.wastedEnergyJ += wastedJ
	c.running.TransferFailures++
	c.running.EnergyJ += wastedJ
	c.running.WastedEnergyJ += wastedJ
}

// OnDrop records an item abandoned after exhausting its retry budget.
func (c *Collector) OnDrop(u notif.UserID) {
	c.user(u).dropped++
	c.running.Dropped++
}

// DeliveryOutcome carries the ground truth needed to score one delivery.
type DeliveryOutcome struct {
	// Clicked is the trace's ground-truth label for the item.
	Clicked bool
	// BeforeClick is true when the delivery round is no later than the
	// recorded click round — the paper's precision counts only these.
	BeforeClick bool
}

// OnDeliver records a delivery and its outcome.
func (c *Collector) OnDeliver(d notif.Delivery, out DeliveryOutcome) {
	uc := c.user(d.Recipient)
	delay := d.QueuingDelayRounds()
	uc.delivered++
	uc.deliveredBytes += d.Size
	uc.utilitySum += d.Utility
	uc.trueUtilitySum += d.TrueUtility
	uc.energyJ += d.EnergyJ
	uc.delayRoundsSum += delay
	c.delays.Add(float64(delay))
	c.recordDelaySample(float64(delay))
	uc.levelCounts[d.Level]++
	c.running.Delivered++
	c.running.DeliveredBytes += d.Size
	c.running.UtilitySum += d.Utility
	c.running.TrueUtilitySum += d.TrueUtility
	c.running.EnergyJ += d.EnergyJ
	c.running.DelayRoundsSum += delay
	c.running.LevelCounts[d.Level]++
	if d.Retries > 0 {
		uc.retriedDeliveries++
		c.running.RetriedDeliveries++
	}
	if d.Degraded {
		uc.degradedDeliveries++
		c.running.DegradedDeliveries++
	}
	if out.Clicked {
		uc.clickedAndDelivered++
		c.running.ClickedAndDelivered++
		if out.BeforeClick {
			uc.deliveredBeforeClick++
			c.running.DeliveredBeforeClick++
		}
	}
}

// recordDelaySample files one delay sample into the running bucket
// counts: the first DefaultDelayBucketBounds bound the sample fits under,
// or the overflow tail.
func (c *Collector) recordDelaySample(v float64) {
	c.ensureRunning()
	for i, b := range DefaultDelayBucketBounds {
		if v <= b {
			c.runningDelays[i]++
			return
		}
	}
	c.runningDelayOver++
}

// Running returns the incrementally maintained aggregate. Integer tallies
// are identical to Aggregate; float sums are accumulated in event order
// (Aggregate folds per sorted user) and the delay percentiles are
// bucket-resolution (nearest-rank over DefaultDelayBucketBounds, clamped
// to the largest bound), so treat it as the per-round telemetry view and
// Aggregate as the exact end-of-run report. O(buckets) per call.
func (c *Collector) Running() Report {
	c.ensureRunning()
	r := c.running
	r.LevelCounts = make(map[int]int, len(c.running.LevelCounts))
	for lvl, n := range c.running.LevelCounts {
		r.LevelCounts[lvl] = n
	}
	r.DelayP50Rounds = c.runningPercentile(50)
	r.DelayP95Rounds = c.runningPercentile(95)
	return r
}

// runningPercentile answers a nearest-rank percentile from the running
// bucket counts: the upper bound of the bucket holding the rank-th
// sample. Samples above the last bound clamp to it (keeping the value
// finite for JSON-rendered snapshots); delays in practice are small
// integers well inside the bounds.
func (c *Collector) runningPercentile(p float64) float64 {
	total := c.runningDelayOver
	for _, n := range c.runningDelays {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, n := range c.runningDelays {
		cum += n
		if cum >= rank {
			return DefaultDelayBucketBounds[i]
		}
	}
	return DefaultDelayBucketBounds[len(DefaultDelayBucketBounds)-1]
}

// RunningDelayBuckets returns the cumulative delay histogram at
// DefaultDelayBucketBounds from the running counts — identical, count for
// count, to DelayHistogram().CumulativeBuckets(DefaultDelayBucketBounds)
// but O(buckets) instead of O(samples × buckets) per call.
func (c *Collector) RunningDelayBuckets() []Bucket {
	c.ensureRunning()
	out := make([]Bucket, len(DefaultDelayBucketBounds))
	cum := uint64(0)
	for i, b := range DefaultDelayBucketBounds {
		cum += c.runningDelays[i]
		out[i] = Bucket{UpperBound: b, Count: cum}
	}
	return out
}

// Report is the aggregate outcome of a run.
type Report struct {
	Users          int
	Arrived        int
	ClickedTotal   int
	Delivered      int
	DeliveredBytes int64
	UtilitySum     float64
	// TrueUtilitySum scores deliveries against ground-truth interest; zero
	// when the workload carries no ground truth.
	TrueUtilitySum       float64
	ClickedAndDelivered  int
	DeliveredBeforeClick int
	EnergyJ              float64
	DelayRoundsSum       int
	// LevelCounts maps presentation level to delivery count; level 1 is
	// metadata-only.
	LevelCounts map[int]int

	// Fault-injection tallies: failed transfer attempts, deliveries that
	// needed at least one retry, deliveries degraded below the scheduler's
	// chosen level, items dropped after MaxAttempts, and the joules burned
	// on transfers that did not complete. All zero in a fault-free run.
	TransferFailures   int
	RetriedDeliveries  int
	DegradedDeliveries int
	Dropped            int
	WastedEnergyJ      float64

	// DelayP50Rounds and DelayP95Rounds summarize the queuing-delay
	// distribution across deliveries.
	DelayP50Rounds float64
	DelayP95Rounds float64
}

// sortedUsers returns the collector's user IDs in ascending order, so
// floating-point aggregation is deterministic regardless of map iteration
// order.
func (c *Collector) sortedUsers() []notif.UserID {
	ids := make([]notif.UserID, 0, len(c.users))
	for u := range c.users {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Merge folds another collector's per-user counters into this one. Users
// must not overlap across the merged collectors (each simulation worker
// owns a disjoint user shard); overlapping users have their counters
// summed.
func (c *Collector) Merge(o *Collector) {
	c.delays.Merge(&o.delays)
	for _, u := range o.sortedUsers() {
		ouc := o.users[u]
		uc := c.user(u)
		uc.arrived += ouc.arrived
		uc.clickedTotal += ouc.clickedTotal
		uc.delivered += ouc.delivered
		uc.deliveredBytes += ouc.deliveredBytes
		uc.utilitySum += ouc.utilitySum
		uc.trueUtilitySum += ouc.trueUtilitySum
		uc.clickedAndDelivered += ouc.clickedAndDelivered
		uc.deliveredBeforeClick += ouc.deliveredBeforeClick
		uc.energyJ += ouc.energyJ
		uc.delayRoundsSum += ouc.delayRoundsSum
		uc.transferFailures += ouc.transferFailures
		uc.retriedDeliveries += ouc.retriedDeliveries
		uc.degradedDeliveries += ouc.degradedDeliveries
		uc.dropped += ouc.dropped
		uc.wastedEnergyJ += ouc.wastedEnergyJ
		for lvl, n := range ouc.levelCounts {
			uc.levelCounts[lvl] += n
		}
	}
	c.recomputeRunning()
}

// recomputeRunning rebuilds the running aggregate from the ground-truth
// per-user counters and raw delay samples. Called after bulk mutations
// (Merge, RestoreState) where maintaining deltas would be error-prone;
// the O(users + samples) cost is paid once per merge/recovery, never per
// round. The rebuilt float sums follow Aggregate's sorted-user order
// rather than the live event order — an allowed divergence, since Running
// is telemetry (its integer fields are what snapshots compare).
func (c *Collector) recomputeRunning() {
	agg := c.Aggregate()
	agg.DelayP50Rounds, agg.DelayP95Rounds = 0, 0
	c.running = agg
	c.runningDelays = make([]uint64, len(DefaultDelayBucketBounds))
	c.runningDelayOver = 0
	for _, v := range c.delays.samples {
		c.recordDelaySample(v)
	}
}

// Aggregate folds all user counters into a Report.
func (c *Collector) Aggregate() Report {
	r := Report{LevelCounts: make(map[int]int)}
	r.Users = len(c.users)
	r.DelayP50Rounds = c.delays.Percentile(50)
	r.DelayP95Rounds = c.delays.Percentile(95)
	for _, u := range c.sortedUsers() {
		uc := c.users[u]
		r.Arrived += uc.arrived
		r.ClickedTotal += uc.clickedTotal
		r.Delivered += uc.delivered
		r.DeliveredBytes += uc.deliveredBytes
		r.UtilitySum += uc.utilitySum
		r.TrueUtilitySum += uc.trueUtilitySum
		r.ClickedAndDelivered += uc.clickedAndDelivered
		r.DeliveredBeforeClick += uc.deliveredBeforeClick
		r.EnergyJ += uc.energyJ
		r.DelayRoundsSum += uc.delayRoundsSum
		r.TransferFailures += uc.transferFailures
		r.RetriedDeliveries += uc.retriedDeliveries
		r.DegradedDeliveries += uc.degradedDeliveries
		r.Dropped += uc.dropped
		r.WastedEnergyJ += uc.wastedEnergyJ
		for lvl, n := range uc.levelCounts {
			r.LevelCounts[lvl] += n
		}
	}
	return r
}

// DeliveryRatio is the fraction of arrived notifications delivered.
func (r Report) DeliveryRatio() float64 {
	if r.Arrived == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Arrived)
}

// Precision is the fraction of deliveries that were clicked on no later
// than their recorded click time.
func (r Report) Precision() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.DeliveredBeforeClick) / float64(r.Delivered)
}

// Recall is the fraction of clicked notifications that were delivered.
func (r Report) Recall() float64 {
	if r.ClickedTotal == 0 {
		return 0
	}
	return float64(r.ClickedAndDelivered) / float64(r.ClickedTotal)
}

// AvgUtility is the mean combined utility per delivered notification.
func (r Report) AvgUtility() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return r.UtilitySum / float64(r.Delivered)
}

// AvgDelayRounds is the mean queuing delay in rounds.
func (r Report) AvgDelayRounds() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.DelayRoundsSum) / float64(r.Delivered)
}

// LevelShare returns the fraction of deliveries at each level, for the
// stacked presentation-mix figures.
func (r Report) LevelShare() map[int]float64 {
	out := make(map[int]float64, len(r.LevelCounts))
	if r.Delivered == 0 {
		return out
	}
	for lvl, n := range r.LevelCounts {
		out[lvl] = float64(n) / float64(r.Delivered)
	}
	return out
}

// String summarizes the headline metrics.
func (r Report) String() string {
	return fmt.Sprintf(
		"users=%d arrived=%d delivered=%d (ratio %.3f) bytes=%d utility=%.1f precision=%.3f recall=%.3f energy=%.0fJ delay=%.2f rounds",
		r.Users, r.Arrived, r.Delivered, r.DeliveryRatio(), r.DeliveredBytes,
		r.UtilitySum, r.Precision(), r.Recall(), r.EnergyJ, r.AvgDelayRounds())
}

// UserBucket is one user-volume category of Figure 5(d).
type UserBucket struct {
	// MinItems..MaxItems bound the arrived-notification count of users in
	// the bucket (MaxItems 0 = unbounded).
	MinItems, MaxItems int
	Users              int
	MeanUtility        float64
	StdDevUtility      float64
}

// BucketByVolume groups users by arrived-item count and reports the mean
// and standard deviation of per-user total delivered utility per bucket.
// bounds are bucket upper edges, e.g. {50, 100, 200} produces buckets
// [0,50], (50,100], (100,200], (200,inf).
func (c *Collector) BucketByVolume(bounds []int) []UserBucket {
	sorted := append([]int(nil), bounds...)
	sort.Ints(sorted)
	buckets := make([]UserBucket, len(sorted)+1)
	for i := range buckets {
		if i == 0 {
			buckets[i].MinItems = 0
		} else {
			buckets[i].MinItems = sorted[i-1] + 1
		}
		if i < len(sorted) {
			buckets[i].MaxItems = sorted[i]
		}
	}
	sums := make([]float64, len(buckets))
	sqs := make([]float64, len(buckets))
	for _, u := range c.sortedUsers() {
		uc := c.users[u]
		bi := len(sorted)
		for i, edge := range sorted {
			if uc.arrived <= edge {
				bi = i
				break
			}
		}
		buckets[bi].Users++
		sums[bi] += uc.utilitySum
		sqs[bi] += uc.utilitySum * uc.utilitySum
	}
	for i := range buckets {
		if buckets[i].Users == 0 {
			continue
		}
		n := float64(buckets[i].Users)
		mean := sums[i] / n
		buckets[i].MeanUtility = mean
		variance := sqs[i]/n - mean*mean
		if variance > 0 {
			buckets[i].StdDevUtility = math.Sqrt(variance)
		}
	}
	return buckets
}

// Table renders rows of (label, values...) as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header line.
func CSV(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteString("\n")
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}
