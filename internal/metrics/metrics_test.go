package metrics

import (
	"math"
	"strings"
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func TestEmptyReport(t *testing.T) {
	c := NewCollector()
	r := c.Aggregate()
	if r.DeliveryRatio() != 0 || r.Precision() != 0 || r.Recall() != 0 ||
		r.AvgUtility() != 0 || r.AvgDelayRounds() != 0 {
		t.Fatalf("empty report has nonzero metrics: %+v", r)
	}
	if len(r.LevelShare()) != 0 {
		t.Fatal("empty report has level shares")
	}
}

func TestCollectorAccumulates(t *testing.T) {
	c := NewCollector()
	c.OnArrive(1, true)
	c.OnArrive(1, false)
	c.OnArrive(2, true)

	c.OnDeliver(notif.Delivery{
		ItemID: 10, Recipient: 1, Level: 2, Size: 1000, Utility: 0.8,
		EnergyJ: 5, ArrivedRound: 0, DeliveredRound: 2,
	}, DeliveryOutcome{Clicked: true, BeforeClick: true})
	c.OnDeliver(notif.Delivery{
		ItemID: 11, Recipient: 1, Level: 1, Size: 200, Utility: 0.1,
		EnergyJ: 1, ArrivedRound: 1, DeliveredRound: 1,
	}, DeliveryOutcome{Clicked: false})
	c.OnDeliver(notif.Delivery{
		ItemID: 12, Recipient: 2, Level: 6, Size: 800_000, Utility: 0.9,
		EnergyJ: 20, ArrivedRound: 0, DeliveredRound: 4,
	}, DeliveryOutcome{Clicked: true, BeforeClick: false})

	r := c.Aggregate()
	if r.Users != 2 || r.Arrived != 3 || r.Delivered != 3 {
		t.Fatalf("aggregate counts wrong: %+v", r)
	}
	if r.ClickedTotal != 2 || r.ClickedAndDelivered != 2 || r.DeliveredBeforeClick != 1 {
		t.Fatalf("click accounting wrong: %+v", r)
	}
	if got := r.DeliveryRatio(); got != 1 {
		t.Fatalf("delivery ratio %f, want 1", got)
	}
	if got := r.Precision(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("precision %f, want 1/3", got)
	}
	if got := r.Recall(); got != 1 {
		t.Fatalf("recall %f, want 1", got)
	}
	if got := r.AvgUtility(); math.Abs(got-(0.8+0.1+0.9)/3) > 1e-12 {
		t.Fatalf("avg utility %f", got)
	}
	if got := r.AvgDelayRounds(); math.Abs(got-(2+0+4)/3.0) > 1e-12 {
		t.Fatalf("avg delay %f", got)
	}
	if r.DeliveredBytes != 801_200 {
		t.Fatalf("bytes %d", r.DeliveredBytes)
	}
	if math.Abs(r.EnergyJ-26) > 1e-12 {
		t.Fatalf("energy %f", r.EnergyJ)
	}
	if r.LevelCounts[1] != 1 || r.LevelCounts[2] != 1 || r.LevelCounts[6] != 1 {
		t.Fatalf("level counts %v", r.LevelCounts)
	}
	share := r.LevelShare()
	if math.Abs(share[6]-1.0/3.0) > 1e-12 {
		t.Fatalf("level 6 share %f", share[6])
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestOnEnergy(t *testing.T) {
	c := NewCollector()
	c.OnEnergy(1, 12.5)
	c.OnEnergy(1, 2.5)
	if got := c.Aggregate().EnergyJ; got != 15 {
		t.Fatalf("energy %f, want 15", got)
	}
}

func TestBucketByVolume(t *testing.T) {
	c := NewCollector()
	// User 1: 2 arrivals, utility 1.0; user 2: 10 arrivals, utility 5.0;
	// user 3: 100 arrivals, utility 20.
	addUser := func(u notif.UserID, arrivals int, utility float64) {
		for i := 0; i < arrivals; i++ {
			c.OnArrive(u, false)
		}
		c.OnDeliver(notif.Delivery{Recipient: u, Level: 1, Utility: utility},
			DeliveryOutcome{})
	}
	addUser(1, 2, 1.0)
	addUser(2, 10, 5.0)
	addUser(3, 100, 20.0)

	buckets := c.BucketByVolume([]int{5, 50})
	if len(buckets) != 3 {
		t.Fatalf("%d buckets, want 3", len(buckets))
	}
	if buckets[0].Users != 1 || buckets[1].Users != 1 || buckets[2].Users != 1 {
		t.Fatalf("bucket membership wrong: %+v", buckets)
	}
	if buckets[0].MeanUtility != 1 || buckets[1].MeanUtility != 5 || buckets[2].MeanUtility != 20 {
		t.Fatalf("bucket means wrong: %+v", buckets)
	}
	// Heavier users earn more utility: the Fig. 5(d) trend.
	if !(buckets[0].MeanUtility < buckets[1].MeanUtility && buckets[1].MeanUtility < buckets[2].MeanUtility) {
		t.Fatal("utility not increasing across volume buckets")
	}
	// Bucket bounds rendered correctly.
	if buckets[0].MaxItems != 5 || buckets[1].MinItems != 6 || buckets[2].MaxItems != 0 {
		t.Fatalf("bucket bounds wrong: %+v", buckets)
	}
}

func TestBucketStdDev(t *testing.T) {
	c := NewCollector()
	// Two users in one bucket with utilities 2 and 4: stddev 1.
	c.OnArrive(1, false)
	c.OnDeliver(notif.Delivery{Recipient: 1, Level: 1, Utility: 2}, DeliveryOutcome{})
	c.OnArrive(2, false)
	c.OnDeliver(notif.Delivery{Recipient: 2, Level: 1, Utility: 4}, DeliveryOutcome{})
	buckets := c.BucketByVolume([]int{10})
	if buckets[0].Users != 2 {
		t.Fatalf("bucket users %d, want 2", buckets[0].Users)
	}
	if math.Abs(buckets[0].MeanUtility-3) > 1e-9 {
		t.Fatalf("mean %f, want 3", buckets[0].MeanUtility)
	}
	if math.Abs(buckets[0].StdDevUtility-1) > 1e-9 {
		t.Fatalf("stddev %f, want 1", buckets[0].StdDevUtility)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table(
		[]string{"method", "utility"},
		[][]string{{"richnote", "123.4"}, {"fifo", "56.7"}},
	)
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4 (header, sep, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[0], "method") || !strings.Contains(lines[2], "richnote") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// Columns align: header and row cells start at the same offset.
	if strings.Index(lines[0], "utility") != strings.Index(lines[2], "123.4") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}
