package metrics

import (
	"fmt"
	"sort"

	"github.com/richnote/richnote/internal/notif"
)

// UserState is one user's counters in canonical exported form: LevelCounts
// is a sorted slice rather than a map so two exports of the same logical
// state are deeply equal (and encode to identical bytes).
type UserState struct {
	User notif.UserID

	Arrived              int
	ClickedTotal         int
	Delivered            int
	DeliveredBytes       int64
	UtilitySum           float64
	TrueUtilitySum       float64
	ClickedAndDelivered  int
	DeliveredBeforeClick int
	EnergyJ              float64
	DelayRoundsSum       int
	LevelCounts          []LevelCount

	TransferFailures   int
	RetriedDeliveries  int
	DegradedDeliveries int
	Dropped            int
	WastedEnergyJ      float64
}

// LevelCount is one presentation level's delivery tally.
type LevelCount struct {
	Level int
	Count int
}

// CollectorState is the complete state of a Collector in canonical form:
// users ascending, level counts ascending, delay samples sorted. Sorting the
// samples is lossless for this collector — Percentile sorts them in place
// anyway, so sample order carries no information.
type CollectorState struct {
	Users        []UserState
	DelaySamples []float64
}

// ExportState captures the collector's state in canonical order.
func (c *Collector) ExportState() CollectorState {
	s := CollectorState{
		Users:        make([]UserState, 0, len(c.users)),
		DelaySamples: append([]float64(nil), c.delays.samples...),
	}
	sort.Float64s(s.DelaySamples)
	for _, u := range c.sortedUsers() {
		uc := c.users[u]
		us := UserState{
			User:                 u,
			Arrived:              uc.arrived,
			ClickedTotal:         uc.clickedTotal,
			Delivered:            uc.delivered,
			DeliveredBytes:       uc.deliveredBytes,
			UtilitySum:           uc.utilitySum,
			TrueUtilitySum:       uc.trueUtilitySum,
			ClickedAndDelivered:  uc.clickedAndDelivered,
			DeliveredBeforeClick: uc.deliveredBeforeClick,
			EnergyJ:              uc.energyJ,
			DelayRoundsSum:       uc.delayRoundsSum,
			TransferFailures:     uc.transferFailures,
			RetriedDeliveries:    uc.retriedDeliveries,
			DegradedDeliveries:   uc.degradedDeliveries,
			Dropped:              uc.dropped,
			WastedEnergyJ:        uc.wastedEnergyJ,
		}
		levels := make([]int, 0, len(uc.levelCounts))
		for lvl := range uc.levelCounts {
			levels = append(levels, lvl)
		}
		sort.Ints(levels)
		us.LevelCounts = make([]LevelCount, 0, len(levels))
		for _, lvl := range levels {
			us.LevelCounts = append(us.LevelCounts, LevelCount{Level: lvl, Count: uc.levelCounts[lvl]})
		}
		s.Users = append(s.Users, us)
	}
	return s
}

// RestoreState overwrites the collector with a previously exported
// snapshot. The collector must be empty (freshly constructed).
func (c *Collector) RestoreState(s CollectorState) error {
	if len(c.users) != 0 || c.delays.Count() != 0 {
		return fmt.Errorf("metrics: restore into non-empty collector (%d users, %d samples)",
			len(c.users), c.delays.Count())
	}
	for i := range s.Users {
		us := &s.Users[i]
		uc := c.user(us.User)
		uc.arrived = us.Arrived
		uc.clickedTotal = us.ClickedTotal
		uc.delivered = us.Delivered
		uc.deliveredBytes = us.DeliveredBytes
		uc.utilitySum = us.UtilitySum
		uc.trueUtilitySum = us.TrueUtilitySum
		uc.clickedAndDelivered = us.ClickedAndDelivered
		uc.deliveredBeforeClick = us.DeliveredBeforeClick
		uc.energyJ = us.EnergyJ
		uc.delayRoundsSum = us.DelayRoundsSum
		uc.transferFailures = us.TransferFailures
		uc.retriedDeliveries = us.RetriedDeliveries
		uc.degradedDeliveries = us.DegradedDeliveries
		uc.dropped = us.Dropped
		uc.wastedEnergyJ = us.WastedEnergyJ
		for _, lc := range us.LevelCounts {
			uc.levelCounts[lc.Level] = lc.Count
		}
	}
	c.delays.samples = append([]float64(nil), s.DelaySamples...)
	c.delays.sorted = false
	c.recomputeRunning()
	return nil
}
