package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the Section V metrics.
// The serving runtime's /metrics endpoint and richnote-bench's -prom flag
// both render through WriteExposition; Collector.WriteTo is the
// convenience io.WriterTo over a live collector.

// DefaultDelayBucketBounds are the cumulative histogram upper bounds (in
// rounds) used for the queuing-delay exposition. Chosen to resolve the
// paper's typical delays (a few rounds) while keeping a tail bucket for
// budget-starved configurations.
var DefaultDelayBucketBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

// Bucket is one cumulative histogram bucket: the count of samples less
// than or equal to UpperBound.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// CumulativeBuckets returns cumulative counts at the given upper bounds,
// Prometheus-style: each bucket counts samples <= its bound, and bounds
// are reported in ascending order. Samples above the last bound appear
// only in the implicit +Inf bucket (the histogram's Count).
func (h *Histogram) CumulativeBuckets(bounds []float64) []Bucket {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	out := make([]Bucket, len(sorted))
	for i, b := range sorted {
		out[i].UpperBound = b
	}
	for _, v := range h.samples {
		for i, b := range sorted {
			if v <= b {
				out[i].Count++
			}
		}
	}
	return out
}

// MergeBuckets sums two cumulative bucket sets with identical bounds.
// Mismatched bounds return an error rather than silently misaligned
// counts.
func MergeBuckets(a, b []Bucket) ([]Bucket, error) {
	if len(a) == 0 {
		return append([]Bucket(nil), b...), nil
	}
	if len(b) == 0 {
		return append([]Bucket(nil), a...), nil
	}
	if len(a) != len(b) {
		return nil, fmt.Errorf("metrics: bucket count mismatch %d vs %d", len(a), len(b))
	}
	out := make([]Bucket, len(a))
	for i := range a {
		if a[i].UpperBound != b[i].UpperBound {
			return nil, fmt.Errorf("metrics: bucket bound mismatch %g vs %g", a[i].UpperBound, b[i].UpperBound)
		}
		out[i] = Bucket{UpperBound: a[i].UpperBound, Count: a[i].Count + b[i].Count}
	}
	return out, nil
}

// Merge sums another report into r: counters add, the level mix adds, and
// the delay percentiles keep r's values (percentiles do not compose; the
// caller that needs merged percentiles merges histograms instead). Used to
// fold per-shard reports into one service-level exposition.
func (r *Report) Merge(o Report) {
	r.Users += o.Users
	r.Arrived += o.Arrived
	r.ClickedTotal += o.ClickedTotal
	r.Delivered += o.Delivered
	r.DeliveredBytes += o.DeliveredBytes
	r.UtilitySum += o.UtilitySum
	r.TrueUtilitySum += o.TrueUtilitySum
	r.ClickedAndDelivered += o.ClickedAndDelivered
	r.DeliveredBeforeClick += o.DeliveredBeforeClick
	r.EnergyJ += o.EnergyJ
	r.DelayRoundsSum += o.DelayRoundsSum
	r.TransferFailures += o.TransferFailures
	r.RetriedDeliveries += o.RetriedDeliveries
	r.DegradedDeliveries += o.DegradedDeliveries
	r.Dropped += o.Dropped
	r.WastedEnergyJ += o.WastedEnergyJ
	if r.LevelCounts == nil && len(o.LevelCounts) > 0 {
		r.LevelCounts = make(map[int]int, len(o.LevelCounts))
	}
	for lvl, n := range o.LevelCounts {
		r.LevelCounts[lvl] += n
	}
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip decimal, with +Inf spelled "+Inf".
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) printf(format string, args ...any) {
	if cw.err != nil {
		return
	}
	n, err := fmt.Fprintf(cw.w, format, args...)
	cw.n += int64(n)
	cw.err = err
}

// WriteExposition writes the report and delay buckets as Prometheus text
// format. Counters carry the richnote_ prefix; the delay histogram uses
// the report's DelayRoundsSum/Delivered as its _sum/_count so the
// exposition stays consistent when reports from several shards are merged.
func WriteExposition(w io.Writer, r Report, delay []Bucket) (int64, error) {
	cw := &countingWriter{w: w}
	counter := func(name, help string, value string) {
		cw.printf("# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, value)
	}
	gauge := func(name, help string, value float64) {
		cw.printf("# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(value))
	}

	counter("richnote_notifications_arrived_total",
		"Notifications that entered the scheduling queues.", strconv.Itoa(r.Arrived))
	counter("richnote_notifications_delivered_total",
		"Notifications delivered at any presentation level.", strconv.Itoa(r.Delivered))
	counter("richnote_notifications_clicked_total",
		"Arrived notifications carrying a ground-truth click.", strconv.Itoa(r.ClickedTotal))
	counter("richnote_delivered_bytes_total",
		"Bytes of delivered presentations.", strconv.FormatInt(r.DeliveredBytes, 10))
	counter("richnote_energy_joules_total",
		"Device energy spent on deliveries and radio overhead.", formatFloat(r.EnergyJ))
	counter("richnote_utility_sum_total",
		"Sum of combined utility U(i,j) over deliveries.", formatFloat(r.UtilitySum))
	counter("richnote_transfer_failures_total",
		"Transfer attempts that failed (outright loss or mid-transfer disconnect).", strconv.Itoa(r.TransferFailures))
	counter("richnote_retried_deliveries_total",
		"Deliveries that needed at least one retry.", strconv.Itoa(r.RetriedDeliveries))
	counter("richnote_degraded_deliveries_total",
		"Deliveries degraded below the scheduler's chosen presentation level.", strconv.Itoa(r.DegradedDeliveries))
	counter("richnote_dropped_total",
		"Items abandoned after exhausting their retry budget.", strconv.Itoa(r.Dropped))
	counter("richnote_wasted_energy_joules_total",
		"Energy burned on transfers that did not complete.", formatFloat(r.WastedEnergyJ))

	// Per-level delivery mix as a labeled counter, levels ascending.
	levels := make([]int, 0, len(r.LevelCounts))
	for lvl := range r.LevelCounts {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	cw.printf("# HELP richnote_deliveries_by_level_total Deliveries per presentation level.\n")
	cw.printf("# TYPE richnote_deliveries_by_level_total counter\n")
	for _, lvl := range levels {
		cw.printf("richnote_deliveries_by_level_total{level=%q} %d\n", strconv.Itoa(lvl), r.LevelCounts[lvl])
	}

	gauge("richnote_users", "Users with recorded activity.", float64(r.Users))
	gauge("richnote_delivery_ratio", "Delivered / arrived notifications.", r.DeliveryRatio())
	gauge("richnote_precision", "Deliveries clicked no later than their click round / deliveries.", r.Precision())
	gauge("richnote_recall", "Clicked notifications delivered / clicked notifications.", r.Recall())

	cw.printf("# HELP richnote_delivery_delay_rounds Queuing delay per delivery, in rounds.\n")
	cw.printf("# TYPE richnote_delivery_delay_rounds histogram\n")
	for _, b := range delay {
		cw.printf("richnote_delivery_delay_rounds_bucket{le=%q} %d\n", formatFloat(b.UpperBound), b.Count)
	}
	cw.printf("richnote_delivery_delay_rounds_bucket{le=\"+Inf\"} %d\n", r.Delivered)
	cw.printf("richnote_delivery_delay_rounds_sum %d\n", r.DelayRoundsSum)
	cw.printf("richnote_delivery_delay_rounds_count %d\n", r.Delivered)
	return cw.n, cw.err
}

// WriteTo implements io.WriterTo: it snapshots the collector (aggregate
// report plus the delay histogram at DefaultDelayBucketBounds) and writes
// the Prometheus exposition. The collector must not be mutated
// concurrently; the serving runtime snapshots per-shard reports on the
// shard goroutine instead of calling this across goroutines.
func (c *Collector) WriteTo(w io.Writer) (int64, error) {
	return WriteExposition(w, c.Aggregate(), c.delays.CumulativeBuckets(DefaultDelayBucketBounds))
}

// Exposition renders WriteTo into a string, for tests and CLI printing.
func (c *Collector) Exposition() string {
	var b strings.Builder
	_, _ = c.WriteTo(&b) // strings.Builder cannot fail
	return b.String()
}
