package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/richnote/richnote/internal/notif"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean %f, want 3", h.Mean())
	}
	if h.Max() != 5 {
		t.Fatalf("max %f, want 5", h.Max())
	}
	if got := h.Percentile(50); got != 3 {
		t.Fatalf("p50 %f, want 3", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Fatalf("p100 %f, want 5", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 %f, want 1 (nearest rank floor)", got)
	}
	// Out-of-range percentiles clamp.
	if h.Percentile(-5) != h.Percentile(0) || h.Percentile(150) != h.Percentile(100) {
		t.Fatal("percentile clamping broken")
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	if h.Percentile(50) != 10 {
		t.Fatal("p50 of single sample")
	}
	h.Add(1) // must re-sort lazily
	if got := h.Percentile(50); got != 1 {
		t.Fatalf("p50 after new sample %f, want 1", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(1)
	a.Add(2)
	b.Add(3)
	b.Add(4)
	a.Merge(&b)
	if a.Count() != 4 || a.Max() != 4 {
		t.Fatalf("merge: count %d max %f", a.Count(), a.Max())
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: percentile is monotone in p and always one of the samples.
func TestHistogramPercentileProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 1 + rng.Intn(200)
		set := map[float64]bool{}
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 100
			h.Add(v)
			set[v] = true
		}
		prev := h.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := h.Percentile(p)
			if cur < prev || !set[cur] {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Percentiles agree with a direct nearest-rank computation.
func TestHistogramAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.Float64() * 50
		h.Add(vals[i])
	}
	sort.Float64s(vals)
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		rank := int(p / 100 * 1000)
		if rank < 1 {
			rank = 1
		}
		want := vals[rank-1]
		// Nearest-rank uses ceil; recompute exactly.
		wantIdx := int((p/100)*1000 + 0.999999)
		if wantIdx < 1 {
			wantIdx = 1
		}
		want = vals[wantIdx-1]
		if got := h.Percentile(p); got != want {
			t.Fatalf("p%.0f = %f, want %f", p, got, want)
		}
	}
}

func TestCollectorDelayPercentiles(t *testing.T) {
	c := NewCollector()
	for i, delay := range []int{0, 0, 1, 2, 10} {
		c.OnDeliver(notif.Delivery{
			ItemID: notif.ItemID(i), Recipient: 1, Level: 1,
			ArrivedRound: 0, DeliveredRound: delay,
		}, DeliveryOutcome{})
	}
	r := c.Aggregate()
	if r.DelayP50Rounds != 1 {
		t.Fatalf("p50 %f, want 1", r.DelayP50Rounds)
	}
	if r.DelayP95Rounds != 10 {
		t.Fatalf("p95 %f, want 10", r.DelayP95Rounds)
	}
	if c.DelayHistogram().Count() != 5 {
		t.Fatalf("histogram count %d", c.DelayHistogram().Count())
	}
}

func TestCollectorDelayMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.OnDeliver(notif.Delivery{Recipient: 1, Level: 1, DeliveredRound: 2}, DeliveryOutcome{})
	b.OnDeliver(notif.Delivery{Recipient: 2, Level: 1, DeliveredRound: 8}, DeliveryOutcome{})
	a.Merge(b)
	if got := a.DelayHistogram().Count(); got != 2 {
		t.Fatalf("merged histogram count %d, want 2", got)
	}
	if got := a.Aggregate().DelayP95Rounds; got != 8 {
		t.Fatalf("merged p95 %f, want 8", got)
	}
}
