package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram collects float64 samples and answers percentile queries. The
// zero value is ready to use. It keeps raw samples (exact percentiles);
// simulation runs produce at most one sample per delivery, so memory is
// proportional to deliveries.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	max := math.Inf(-1)
	for _, v := range h.samples {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (p in [0, 100]) using
// nearest-rank on the sorted samples. Empty histograms return 0.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// Merge folds another histogram's samples into this one.
func (h *Histogram) Merge(o *Histogram) {
	h.samples = append(h.samples, o.samples...)
	h.sorted = false
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Max())
}
