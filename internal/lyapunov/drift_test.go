package lyapunov

import (
	"math"
	"math/rand"
	"testing"
)

// TestDriftNegativeWhenDraining verifies the Lyapunov argument's core
// mechanics empirically: starting from a large backlog, serving faster
// than arrivals makes the one-round drift negative until the queue
// empties.
func TestDriftNegativeWhenDraining(t *testing.T) {
	c, err := New(Config{V: 1000, Kappa: 30})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.OnArrive(10_000); err != nil {
		t.Fatalf("OnArrive: %v", err)
	}
	c.EndRound()
	negative := 0
	for r := 0; r < 50 && c.Q() > 0; r++ {
		if err := c.OnArrive(50); err != nil {
			t.Fatalf("OnArrive: %v", err)
		}
		if err := c.OnDeliver(math.Min(c.Q(), 400), 0); err != nil {
			t.Fatalf("OnDeliver: %v", err)
		}
		before := c.Lyapunov()
		c.EndRound()
		if c.Lyapunov() < before || c.Lyapunov() < 0.5*10_000*10_000 {
			negative++
		}
	}
	st := c.Stats()
	if st.AvgDrift >= 0 {
		t.Fatalf("average drift %.1f while draining, want negative", st.AvgDrift)
	}
}

// TestDriftBalancesAtEquilibrium: with arrivals equal to service, the
// long-run average drift approaches zero.
func TestDriftBalancesAtEquilibrium(t *testing.T) {
	c, err := New(Config{V: 1000, Kappa: 30})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 5000; r++ {
		arrive := 100 + rng.Float64()*20
		if err := c.OnArrive(arrive); err != nil {
			t.Fatalf("OnArrive: %v", err)
		}
		if err := c.OnDeliver(math.Min(c.Q(), 110), 10); err != nil {
			t.Fatalf("OnDeliver: %v", err)
		}
		if _, err := c.Replenish(10); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
		c.EndRound()
	}
	st := c.Stats()
	// Per-round drift must be a vanishing fraction of the Lyapunov scale.
	if math.Abs(st.AvgDrift) > st.FinalLyap/10 {
		t.Fatalf("avg drift %.2f not small relative to L %.2f", st.AvgDrift, st.FinalLyap)
	}
}

// TestVirtualQueueTracksKappa: with replenishment gated at kappa and
// steady spending below it, P oscillates in a band around kappa rather
// than drifting away — the property the paper uses to enforce the energy
// budget on average.
func TestVirtualQueueTracksKappa(t *testing.T) {
	const kappa = 30.0
	c, err := New(Config{V: 1000, Kappa: kappa})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	var minP, maxP = math.Inf(1), math.Inf(-1)
	for r := 0; r < 2000; r++ {
		spend := rng.Float64() * 20 // below the ~30/round replenishment
		if err := c.OnDeliver(0, spend); err != nil {
			t.Fatalf("OnDeliver: %v", err)
		}
		if _, err := c.Replenish(kappa); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
		c.EndRound()
		if r > 100 { // after warmup
			minP = math.Min(minP, c.P())
			maxP = math.Max(maxP, c.P())
		}
	}
	if minP < kappa/2 {
		t.Fatalf("P fell to %.1f, want to stay near kappa %.0f", minP, kappa)
	}
	if maxP > 2*kappa+1 {
		t.Fatalf("P rose to %.1f, want bounded near kappa (replenishment gate)", maxP)
	}
}
