package lyapunov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	c, err := New(Config{V: 1000, Kappa: 3000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{V: 1000, Kappa: 3000}, true},
		{"zero V", Config{V: 0, Kappa: 3000}, false},
		{"negative kappa", Config{V: 1, Kappa: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestQueuesFloorAtZero(t *testing.T) {
	c := newTestController(t)
	if err := c.OnArrive(100); err != nil {
		t.Fatalf("OnArrive: %v", err)
	}
	if err := c.OnDeliver(500, 50); err != nil {
		t.Fatalf("OnDeliver: %v", err)
	}
	if c.Q() != 0 {
		t.Fatalf("Q = %f, want 0 (floored)", c.Q())
	}
	if c.P() != 0 {
		t.Fatalf("P = %f, want 0 (floored)", c.P())
	}
}

func TestNegativeAmountsRejected(t *testing.T) {
	c := newTestController(t)
	if err := c.OnArrive(-1); err == nil {
		t.Error("OnArrive(-1) succeeded")
	}
	if err := c.OnDeliver(-1, 0); err == nil {
		t.Error("OnDeliver(-1, 0) succeeded")
	}
	if _, err := c.Replenish(-1); err == nil {
		t.Error("Replenish(-1) succeeded")
	}
}

func TestReplenishStopsAboveKappa(t *testing.T) {
	c := newTestController(t)
	// Fill up to kappa.
	credited := 0.0
	for i := 0; i < 10; i++ {
		got, err := c.Replenish(1000)
		if err != nil {
			t.Fatalf("Replenish: %v", err)
		}
		credited += got
	}
	// P exceeds kappa after the credit that crossed it; afterwards no more.
	if c.P() > c.Config().Kappa+1000 {
		t.Fatalf("P = %f grew unboundedly past kappa %f", c.P(), c.Config().Kappa)
	}
	got, err := c.Replenish(1000)
	if err != nil {
		t.Fatalf("Replenish: %v", err)
	}
	if got != 0 {
		t.Fatalf("Replenish above kappa credited %f, want 0", got)
	}
	if credited != 4000 {
		t.Fatalf("total credited %f, want 4000 (3 full + crossing credit)", credited)
	}
}

func TestAdjustedUtilityTerms(t *testing.T) {
	c := newTestController(t)
	// Empty queues: Ua = (0)·s + (0−κ)·ρ + V·U.
	ua := c.Adjusted(1000, 2, 0.5)
	want := (0-3000.0)*2 + 1000*0.5
	if math.Abs(ua-want) > 1e-9 {
		t.Fatalf("Adjusted = %f, want %f", ua, want)
	}
	// With backlog, the Q·s term appears.
	if err := c.OnArrive(10_000); err != nil {
		t.Fatalf("OnArrive: %v", err)
	}
	ua = c.Adjusted(1000, 2, 0.5)
	want = 10_000*1000 + (0-3000.0)*2 + 1000*0.5
	if math.Abs(ua-want) > 1e-6 {
		t.Fatalf("Adjusted with backlog = %f, want %f", ua, want)
	}
}

func TestEnergyTermPenalizesWhenBelowTarget(t *testing.T) {
	c := newTestController(t)
	// P = 0 < kappa: richer (more energy) presentations must score lower.
	cheap := c.Adjusted(100, 1, 0.5)
	rich := c.Adjusted(100, 10, 0.5)
	if rich >= cheap {
		t.Fatalf("energy-hungry choice scored %f >= %f with empty energy queue", rich, cheap)
	}
	// P above kappa: spending energy is rewarded.
	for i := 0; i < 5; i++ {
		if _, err := c.Replenish(1000); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
	}
	if c.P() <= c.Config().Kappa {
		t.Fatalf("setup: P = %f not above kappa", c.P())
	}
	cheap = c.Adjusted(100, 1, 0.5)
	rich = c.Adjusted(100, 10, 0.5)
	if rich <= cheap {
		t.Fatalf("energy-hungry choice scored %f <= %f with surplus energy", rich, cheap)
	}
}

func TestLyapunovFunction(t *testing.T) {
	c := newTestController(t)
	// Empty: L = ½κ².
	want := 0.5 * 3000.0 * 3000.0
	if math.Abs(c.Lyapunov()-want) > 1e-9 {
		t.Fatalf("L = %f, want %f", c.Lyapunov(), want)
	}
	if err := c.OnArrive(100); err != nil {
		t.Fatalf("OnArrive: %v", err)
	}
	want += 0.5 * 100 * 100
	if math.Abs(c.Lyapunov()-want) > 1e-9 {
		t.Fatalf("L after arrival = %f, want %f", c.Lyapunov(), want)
	}
}

// The central stability claim: under arrivals bounded below the service
// capacity, the backlog Q(t) remains bounded (does not grow linearly).
func TestQueueStabilityUnderLoad(t *testing.T) {
	c := newTestController(t)
	rng := rand.New(rand.NewSource(1))
	const rounds = 2000
	const serviceCap = 1500.0 // bytes servable per round
	var lateAvg, earlyAvg float64
	for r := 0; r < rounds; r++ {
		// Arrivals average 1000 bytes/round, below capacity.
		if err := c.OnArrive(500 + rng.Float64()*1000); err != nil {
			t.Fatalf("OnArrive: %v", err)
		}
		// Serve up to capacity.
		serve := math.Min(c.Q(), serviceCap)
		if err := c.OnDeliver(serve, 10); err != nil {
			t.Fatalf("OnDeliver: %v", err)
		}
		if _, err := c.Replenish(15); err != nil {
			t.Fatalf("Replenish: %v", err)
		}
		c.EndRound()
		if r < rounds/4 {
			earlyAvg += c.Q()
		}
		if r >= 3*rounds/4 {
			lateAvg += c.Q()
		}
	}
	earlyAvg /= rounds / 4
	lateAvg /= rounds / 4
	// A stable queue's late-window average must not exceed a small multiple
	// of its early-window average.
	if lateAvg > 3*earlyAvg+2000 {
		t.Fatalf("queue appears unstable: early avg %f, late avg %f", earlyAvg, lateAvg)
	}
	st := c.Stats()
	if st.Rounds != rounds {
		t.Fatalf("Stats.Rounds = %d, want %d", st.Rounds, rounds)
	}
	if st.MaxQ < st.AvgQ {
		t.Fatalf("MaxQ %f below AvgQ %f", st.MaxQ, st.AvgQ)
	}
}

func TestStatsDrift(t *testing.T) {
	c := newTestController(t)
	// Constant queue growth gives positive average drift.
	for r := 0; r < 10; r++ {
		if err := c.OnArrive(100); err != nil {
			t.Fatalf("OnArrive: %v", err)
		}
		c.EndRound()
	}
	st := c.Stats()
	if st.AvgDrift <= 0 {
		t.Fatalf("AvgDrift = %f, want positive under pure growth", st.AvgDrift)
	}
}

func TestStatsEmpty(t *testing.T) {
	c := newTestController(t)
	st := c.Stats()
	if st.Rounds != 0 || st.AvgQ != 0 || st.AvgDrift != 0 {
		t.Fatalf("zero-round stats not zero: %+v", st)
	}
}

// Property: queues are never negative after any sequence of operations.
func TestQueuesNonNegativeProperty(t *testing.T) {
	type op struct {
		Kind   uint8
		Amount uint16
		Energy uint16
	}
	prop := func(ops []op) bool {
		c, err := New(Config{V: 1000, Kappa: 3000})
		if err != nil {
			return false
		}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				if err := c.OnArrive(float64(o.Amount)); err != nil {
					return false
				}
			case 1:
				if err := c.OnDeliver(float64(o.Amount), float64(o.Energy)); err != nil {
					return false
				}
			case 2:
				if _, err := c.Replenish(float64(o.Energy)); err != nil {
					return false
				}
			}
			if c.Q() < 0 || c.P() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: larger V always weighs utility more in the adjusted score.
func TestVMonotonicityProperty(t *testing.T) {
	prop := func(size, energy uint16, u8 uint8) bool {
		u := float64(u8) / 255.0
		c1, err1 := New(Config{V: 100, Kappa: 3000})
		c2, err2 := New(Config{V: 10_000, Kappa: 3000})
		if err1 != nil || err2 != nil {
			return false
		}
		a1 := c1.Adjusted(float64(size), float64(energy), u)
		a2 := c2.Adjusted(float64(size), float64(energy), u)
		return a2-a1 >= u*(10_000-100)-1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	var agg Stats
	agg.Add(Stats{Rounds: 5, AvgQ: 2, MaxQ: 4, AvgDrift: 0.5, FinalQ: 3, FinalP: 10, FinalLyap: 50})
	agg.Add(Stats{Rounds: 7, AvgQ: 1, MaxQ: 9, AvgDrift: -0.25, FinalQ: 2, FinalP: 5, FinalLyap: 20})
	if agg.Rounds != 7 {
		t.Fatalf("Rounds = %d, want max 7", agg.Rounds)
	}
	if agg.MaxQ != 9 {
		t.Fatalf("MaxQ = %f, want max 9", agg.MaxQ)
	}
	if agg.AvgQ != 3 || agg.AvgDrift != 0.25 || agg.FinalQ != 5 || agg.FinalP != 15 || agg.FinalLyap != 70 {
		t.Fatalf("sums wrong: %+v", agg)
	}
}
