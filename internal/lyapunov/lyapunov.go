// Package lyapunov implements the Lyapunov-drift control machinery of
// RichNote's scheduler (Section IV of the paper).
//
// Two queues are tracked per user:
//
//   - Q(t): the scheduling-queue backlog in MB (DESIGN.md §6.3: backlogs
//     are measured in MB and energy in J, which keeps the Q² and (P−κ)²
//     terms of the Lyapunov function on comparable scales). Every
//     presentation of a queued item counts toward the backlog; delivering
//     an item at any level removes all of its presentations, so a delivery
//     of item i relieves Q by s(i) = sum_j s(i, j).
//   - P(t): a virtual queue tracking the energy budget. The paper moves the
//     energy constraint (2c) into the objective by keeping P close to a
//     target κ: replenishment e(t) is added only while P <= κ, and each
//     delivery drains P by its energy cost ρ(i, j).
//
// The Lyapunov function is L(t) = ½(Q²(t) + (P(t) − κ)²) and drift
// minimization with utility reward V·U yields the adjusted utility
//
//	Ua(i, j) = Q(t)·s(i) + (P(t) − κ)·ρ(i, j) + V·U(i, j)
//
// which the per-round MCKP maximizes under the data budget B(t).
package lyapunov

import (
	"errors"
	"fmt"
)

// Config holds the control parameters.
type Config struct {
	// V is the utility weight: larger V favors utility over queue backlog.
	// The paper uses V = 1000.
	V float64
	// Kappa is the per-round energy target in joules (paper: 3 kJ/hour).
	Kappa float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.V <= 0 {
		return fmt.Errorf("lyapunov: V must be positive, got %f", c.V)
	}
	if c.Kappa <= 0 {
		return fmt.Errorf("lyapunov: kappa must be positive, got %f", c.Kappa)
	}
	return nil
}

// ErrNegativeAmount is returned when a queue mutation receives a negative
// MB or joule amount.
var ErrNegativeAmount = errors.New("lyapunov: negative amount")

// Controller tracks the per-user queue states and computes adjusted
// utilities. It is not safe for concurrent use; the scheduler owns one
// controller per user and drives it from the simulation loop.
type Controller struct {
	cfg Config

	q float64 // scheduling-queue backlog, MB
	p float64 // virtual energy queue, joules

	// Telemetry.
	maxQ        float64
	sumQ        float64
	rounds      int
	driftSum    float64
	lastL       float64
	initialized bool
}

// New returns a controller with empty queues.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Q returns the current scheduling-queue backlog in MB.
func (c *Controller) Q() float64 { return c.q }

// P returns the current virtual energy queue in joules.
func (c *Controller) P() float64 { return c.p }

// Config returns the control parameters.
func (c *Controller) Config() Config { return c.cfg }

// Lyapunov returns L(t) = ½(Q² + (P−κ)²).
func (c *Controller) Lyapunov() float64 {
	dp := c.p - c.cfg.Kappa
	return 0.5 * (c.q*c.q + dp*dp)
}

// Adjusted returns Ua(i, j) for an item with total presentation size s(i)
// (MB across all levels), per-level energy cost ρ(i, j) (joules) and
// combined utility U(i, j).
//
// The Q·s(i) term rewards relieving the backlog (it is identical across a
// given item's levels, so it biases which items are selected, not which
// level). The (P−κ)·ρ term penalizes energy-hungry levels when the energy
// queue is below target and rewards spending when above it.
func (c *Controller) Adjusted(itemTotalSize, energy, utility float64) float64 {
	return c.q*itemTotalSize + (c.p-c.cfg.Kappa)*energy + c.cfg.V*utility
}

// OnArrive adds ν(t) MB of new presentations to the scheduling queue.
func (c *Controller) OnArrive(mb float64) error {
	if mb < 0 {
		return fmt.Errorf("%w: arrive %f MB", ErrNegativeAmount, mb)
	}
	c.q += mb
	return nil
}

// OnDeliver applies a delivery: the item's total presentation size leaves
// Q and the spent energy leaves P. Both queues floor at zero, matching the
// [·]+ in the paper's queue-update equations (4) and (5).
func (c *Controller) OnDeliver(itemTotalSize, energy float64) error {
	if itemTotalSize < 0 || energy < 0 {
		return fmt.Errorf("%w: deliver size %f energy %f", ErrNegativeAmount, itemTotalSize, energy)
	}
	c.q -= itemTotalSize
	if c.q < 0 {
		c.q = 0
	}
	c.p -= energy
	if c.p < 0 {
		c.p = 0
	}
	return nil
}

// OnTransferFailure applies a failed delivery attempt: the energy actually
// burned (partial bytes plus radio ramp) leaves P, but Q is untouched — the
// item is still queued, so its backlog contribution stands and the data-plan
// deduction is refunded by the scheduler. P floors at zero like OnDeliver.
func (c *Controller) OnTransferFailure(energy float64) error {
	if energy < 0 {
		return fmt.Errorf("%w: transfer failure energy %f", ErrNegativeAmount, energy)
	}
	c.p -= energy
	if c.p < 0 {
		c.p = 0
	}
	return nil
}

// OnDrop removes an abandoned item's total presentation size from Q without
// touching P: giving up after MaxAttempts relieves the backlog exactly as a
// delivery would, but no transfer happened so no energy is drained beyond
// what the failed attempts already charged via OnTransferFailure.
func (c *Controller) OnDrop(itemTotalSize float64) error {
	if itemTotalSize < 0 {
		return fmt.Errorf("%w: drop size %f", ErrNegativeAmount, itemTotalSize)
	}
	c.q -= itemTotalSize
	if c.q < 0 {
		c.q = 0
	}
	return nil
}

// Replenish adds e(t) joules to the virtual energy queue, but only while P
// is at or below the target κ (Algorithm 2, step 2). It returns the amount
// actually credited.
func (c *Controller) Replenish(energy float64) (float64, error) {
	if energy < 0 {
		return 0, fmt.Errorf("%w: replenish %f", ErrNegativeAmount, energy)
	}
	if c.p > c.cfg.Kappa {
		return 0, nil
	}
	c.p += energy
	return energy, nil
}

// EndRound records end-of-round telemetry: average/max backlog and the
// empirical Lyapunov drift Δ(L). Call once per round after all queue
// mutations.
func (c *Controller) EndRound() {
	l := c.Lyapunov()
	if c.initialized {
		c.driftSum += l - c.lastL
	}
	c.lastL = l
	c.initialized = true
	c.rounds++
	c.sumQ += c.q
	if c.q > c.maxQ {
		c.maxQ = c.q
	}
}

// Quiescent reports whether an idle round (no arrivals, no deliveries)
// leaves the controller unchanged except for round telemetry. That holds
// exactly when the backlog is zero (nothing accrues to sumQ or drift) and
// the virtual energy queue sits strictly above κ, where Replenish is a
// no-op by Algorithm 2's step-2 gate — so Q and P are both fixed points,
// L(t) is constant, and the per-round drift term is +0.0. The lastL
// check guards the closed form in FastForward: after any EndRound it is
// tautologically true, so a quiescent controller stays quiescent until
// an arrival perturbs Q. Shards park a device only while its controller
// is quiescent (DESIGN.md §14).
func (c *Controller) Quiescent() bool {
	return c.q == 0 && c.p > c.cfg.Kappa && c.initialized && c.lastL == c.Lyapunov()
}

// FastForward advances the controller across k idle rounds in one step.
// For a quiescent controller the per-round updates collapse to a closed
// form: Replenish is gated off (P > κ), sumQ accrues k·0, maxQ cannot
// grow, and driftSum accrues k·(L−lastL) = k·(+0.0) — so only the round
// counter moves. Adding +0.0 to a float is the identity unless the
// target is -0.0, and driftSum can never be -0.0 (each drift term is
// either nonzero or x−x = +0.0), so skipping the additions entirely is
// bit-identical to k EndRound calls. Non-quiescent controllers (only
// reachable if a caller ignores the parking contract) replay EndRound
// k times, which is still exact provided P > κ keeps Replenish silent.
//
// richnote:allocfree
func (c *Controller) FastForward(k int) {
	if k <= 0 {
		return
	}
	if c.Quiescent() {
		c.rounds += k
		return
	}
	for i := 0; i < k; i++ {
		c.EndRound()
	}
}

// State is the complete mutable state of a Controller, exported for
// snapshot/restore. Config is excluded: restore happens into a controller
// rebuilt from the same configuration.
type State struct {
	Q           float64
	P           float64
	MaxQ        float64
	SumQ        float64
	Rounds      int
	DriftSum    float64
	LastL       float64
	Initialized bool
}

// ExportState captures the controller's mutable state.
func (c *Controller) ExportState() State {
	return State{
		Q:           c.q,
		P:           c.p,
		MaxQ:        c.maxQ,
		SumQ:        c.sumQ,
		Rounds:      c.rounds,
		DriftSum:    c.driftSum,
		LastL:       c.lastL,
		Initialized: c.initialized,
	}
}

// RestoreState overwrites the controller's mutable state with a previously
// exported snapshot. The controller must have been built with the same
// Config as the exporting one for the restored trajectory to match.
func (c *Controller) RestoreState(s State) error {
	if s.Q < 0 || s.P < 0 {
		return fmt.Errorf("lyapunov: restore negative queues q=%f p=%f", s.Q, s.P)
	}
	if s.Rounds < 0 {
		return fmt.Errorf("lyapunov: restore negative rounds %d", s.Rounds)
	}
	c.q = s.Q
	c.p = s.P
	c.maxQ = s.MaxQ
	c.sumQ = s.SumQ
	c.rounds = s.Rounds
	c.driftSum = s.DriftSum
	c.lastL = s.LastL
	c.initialized = s.Initialized
	return nil
}

// Stats is a snapshot of controller telemetry.
type Stats struct {
	Rounds    int
	AvgQ      float64 // average backlog in MB over rounds
	MaxQ      float64 // peak backlog in MB
	AvgDrift  float64 // average empirical one-round Lyapunov drift
	FinalQ    float64
	FinalP    float64
	FinalLyap float64
}

// Add folds another controller's snapshot into s, aggregating across
// users: queue totals (AvgQ, AvgDrift, FinalQ, FinalP, FinalLyap) sum,
// peaks (MaxQ) take the max, and Rounds takes the max (a shard steps its
// users in lockstep). The live server folds every device's snapshot into
// one Stats per shard to expose aggregate Q(t)/P(t) gauges; after adding
// n users, AvgQ reads as the shard's total average backlog in MB.
func (s *Stats) Add(o Stats) {
	if o.Rounds > s.Rounds {
		s.Rounds = o.Rounds
	}
	if o.MaxQ > s.MaxQ {
		s.MaxQ = o.MaxQ
	}
	s.AvgQ += o.AvgQ
	s.AvgDrift += o.AvgDrift
	s.FinalQ += o.FinalQ
	s.FinalP += o.FinalP
	s.FinalLyap += o.FinalLyap
}

// Stats returns accumulated telemetry.
func (c *Controller) Stats() Stats {
	s := Stats{
		Rounds:    c.rounds,
		MaxQ:      c.maxQ,
		FinalQ:    c.q,
		FinalP:    c.p,
		FinalLyap: c.Lyapunov(),
	}
	if c.rounds > 0 {
		s.AvgQ = c.sumQ / float64(c.rounds)
	}
	if c.rounds > 1 {
		s.AvgDrift = c.driftSum / float64(c.rounds-1)
	}
	return s
}
