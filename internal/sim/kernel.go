// Package sim implements the discrete-event simulation kernel that drives
// trace replay: a virtual clock, a time-ordered event heap, and a
// round-based driver. It replaces the custom Java event-based simulator the
// paper uses for its evaluation (Section V-C).
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Handler is an event callback. It runs at its scheduled virtual time and
// may schedule further events.
type Handler func(k *Kernel)

type event struct {
	at  time.Duration
	seq uint64
	fn  Handler
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift operations
// are concrete-typed — container/heap would box every pushed and popped
// event into an interface, allocating once per scheduled event on the
// kernel's hottest path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}

// push appends ev and restores the heap property by sifting it up.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the relocated root down within the shrunk prefix [0, n).
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	ev := s[n]
	s[n] = event{} // release the handler closure
	*h = s[:n]
	return ev
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Kernel is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with NewKernel.
type Kernel struct {
	now    time.Duration
	seq    uint64
	events eventHeap

	// Epoch is the real-world time that virtual time zero maps to. It is
	// used to render virtual instants as time.Time for traces and metrics.
	epoch time.Time

	processed uint64
	stopped   bool
}

// NewKernel returns a kernel whose virtual clock starts at zero, anchored
// at the given epoch.
func NewKernel(epoch time.Time) *Kernel {
	return &Kernel{epoch: epoch}
}

// Now returns the current virtual time as an offset from the epoch.
func (k *Kernel) Now() time.Duration { return k.now }

// NowWall returns the current virtual time as a wall-clock instant.
func (k *Kernel) NowWall() time.Time { return k.epoch.Add(k.now) }

// Epoch returns the wall-clock anchor of virtual time zero.
func (k *Kernel) Epoch() time.Time { return k.epoch }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events not yet executed.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at virtual time t. Scheduling at the current time
// is allowed; scheduling in the past is an error.
func (k *Kernel) At(t time.Duration, fn Handler) error {
	if t < k.now {
		return fmt.Errorf("%w: at %s, now %s", ErrPastEvent, t, k.now)
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
	return nil
}

// After schedules fn to run d after the current virtual time. Negative
// delays are clamped to zero.
func (k *Kernel) After(d time.Duration, fn Handler) {
	if d < 0 {
		d = 0
	}
	// Scheduling at now+d with d >= 0 can never be in the past.
	_ = k.At(k.now+d, fn)
}

// Every schedules fn at start and then every period thereafter, until the
// kernel stops or the optional until bound (exclusive) is reached. A
// non-positive period is an error.
func (k *Kernel) Every(start, period time.Duration, until time.Duration, fn Handler) error {
	if period <= 0 {
		return fmt.Errorf("sim: non-positive period %s", period)
	}
	var tick Handler
	next := start
	tick = func(kk *Kernel) {
		fn(kk)
		next += period
		if until > 0 && next >= until {
			return
		}
		_ = kk.At(next, tick)
	}
	return k.At(start, tick)
}

// Stop halts the run loop after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the event heap is empty or Stop
// is called.
func (k *Kernel) Run() {
	k.RunUntil(-1)
}

// RunUntil executes events whose time is <= horizon. A negative horizon
// means "run to exhaustion". The clock is left at the time of the last
// executed event (or at the horizon if it is beyond the last event).
func (k *Kernel) RunUntil(horizon time.Duration) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if horizon >= 0 && k.events[0].at > horizon {
			k.now = horizon
			return
		}
		ev := k.events.pop()
		k.now = ev.at
		k.processed++
		ev.fn(k)
	}
	if horizon >= 0 && k.now < horizon {
		k.now = horizon
	}
}
