package sim

import (
	"testing"
	"time"
)

// TestKernelReentrantScheduling: handlers scheduling further events model
// the round-driver pattern used by core.Live; verify chains execute fully
// and in order.
func TestKernelReentrantScheduling(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	var order []int
	var chain Handler
	depth := 0
	chain = func(kk *Kernel) {
		order = append(order, depth)
		depth++
		if depth < 10 {
			kk.After(time.Minute, chain)
		}
	}
	k.After(0, chain)
	k.Run()
	if len(order) != 10 {
		t.Fatalf("chain ran %d times, want 10", len(order))
	}
	if k.Now() != 9*time.Minute {
		t.Fatalf("clock at %s, want 9m", k.Now())
	}
}

// TestKernelInterleavedPeriodics: two periodic drivers with different
// cadences interleave deterministically.
func TestKernelInterleavedPeriodics(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	var events []string
	if err := k.Every(0, 2*time.Hour, 12*time.Hour, func(kk *Kernel) {
		events = append(events, "slow")
	}); err != nil {
		t.Fatalf("Every: %v", err)
	}
	if err := k.Every(0, time.Hour, 12*time.Hour, func(kk *Kernel) {
		events = append(events, "fast")
	}); err != nil {
		t.Fatalf("Every: %v", err)
	}
	k.Run()
	// 12 fast ticks (0..11h) and 6 slow ticks (0,2,..,10h).
	fast, slow := 0, 0
	for _, e := range events {
		if e == "fast" {
			fast++
		} else {
			slow++
		}
	}
	if fast != 12 || slow != 6 {
		t.Fatalf("fast=%d slow=%d, want 12/6", fast, slow)
	}
	// At t=0 the slow driver was scheduled first, so it fires first.
	if events[0] != "slow" || events[1] != "fast" {
		t.Fatalf("FIFO tie-break violated: %v", events[:2])
	}
}

// TestKernelStopInsideEveryThenResume: Stop pauses the loop; RunUntil
// resumes from where it left off.
func TestKernelStopInsideEveryThenResume(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	ticks := 0
	if err := k.Every(0, time.Hour, 10*time.Hour, func(kk *Kernel) {
		ticks++
		if ticks == 4 {
			kk.Stop()
		}
	}); err != nil {
		t.Fatalf("Every: %v", err)
	}
	k.Run()
	if ticks != 4 {
		t.Fatalf("ticks before stop %d, want 4", ticks)
	}
	k.Run() // resume
	if ticks != 10 {
		t.Fatalf("ticks after resume %d, want 10", ticks)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending %d after exhaustion", k.Pending())
	}
	if k.Processed() != 10 {
		t.Fatalf("processed %d, want 10", k.Processed())
	}
}
