package sim

import (
	"math/rand"
)

// RNG stream identifiers. Each subsystem draws from its own deterministic
// stream so that, for a fixed master seed, changing how one subsystem
// consumes randomness does not perturb the others. This keeps experiment
// sweeps comparable across configurations.
const (
	StreamCatalog = iota + 1
	StreamSocialGraph
	StreamTrace
	StreamLabels
	StreamNetwork
	StreamEnergy
	StreamSurvey
	StreamForest
	StreamShuffle
	StreamWorkload
	// StreamFaults feeds per-user transfer fault models. It is appended
	// after the original streams: stream identifiers are positional seeds,
	// so inserting it earlier would shift every downstream stream's seed
	// and silently change all existing experiment outputs.
	StreamFaults
)

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used to derive well-separated stream seeds from a single master seed.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StreamSeed derives a deterministic sub-seed for the given stream from a
// master seed.
func StreamSeed(master int64, stream int) int64 {
	state := uint64(master) ^ 0x5851f42d4c957f2d
	for i := 0; i <= stream; i++ {
		splitMix64(&state)
	}
	out := splitMix64(&state)
	return int64(out & 0x7fffffffffffffff) // math/rand seeds must be usable as-is
}

// NewRNG returns a rand.Rand seeded for the given (master seed, stream)
// pair.
func NewRNG(master int64, stream int) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(master, stream)))
}
