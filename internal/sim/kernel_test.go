package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	var got []time.Duration
	times := []time.Duration{5 * time.Second, time.Second, 3 * time.Second, 2 * time.Second}
	for _, at := range times {
		at := at
		if err := k.At(at, func(*Kernel) { got = append(got, at) }); err != nil {
			t.Fatalf("At(%s): %v", at, err)
		}
	}
	k.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("processed %d events, want %d", len(got), len(times))
	}
}

func TestKernelSimultaneousEventsAreFIFO(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if err := k.At(time.Second, func(*Kernel) { got = append(got, i) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestKernelRejectsPastEvents(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	if err := k.At(2*time.Second, func(kk *Kernel) {
		if err := kk.At(time.Second, func(*Kernel) {}); err == nil {
			t.Error("scheduling in the past succeeded, want error")
		}
	}); err != nil {
		t.Fatalf("At: %v", err)
	}
	k.Run()
}

func TestKernelAfterClampsNegativeDelay(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	fired := false
	k.After(-time.Second, func(*Kernel) { fired = true })
	k.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %s, want 0", k.Now())
	}
}

func TestKernelRunUntilHorizon(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	var fired []time.Duration
	for _, at := range []time.Duration{1, 2, 3, 4, 5} {
		at := at * time.Second
		if err := k.At(at, func(*Kernel) { fired = append(fired, at) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	k.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock at %s, want 3s", k.Now())
	}
	k.RunUntil(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("clock at %s, want horizon 10s", k.Now())
	}
}

func TestKernelEvery(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	var ticks []time.Duration
	err := k.Every(0, time.Hour, 5*time.Hour, func(kk *Kernel) {
		ticks = append(ticks, kk.Now())
	})
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	k.Run()
	want := []time.Duration{0, time.Hour, 2 * time.Hour, 3 * time.Hour, 4 * time.Hour}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks (%v), want %d", len(ticks), ticks, len(want))
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %s, want %s", i, ticks[i], want[i])
		}
	}
}

func TestKernelEveryRejectsNonPositivePeriod(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	if err := k.Every(0, 0, time.Hour, func(*Kernel) {}); err == nil {
		t.Fatal("Every with zero period succeeded, want error")
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(time.Unix(0, 0))
	count := 0
	if err := k.Every(0, time.Second, 0, func(kk *Kernel) {
		count++
		if count == 3 {
			kk.Stop()
		}
	}); err != nil {
		t.Fatalf("Every: %v", err)
	}
	k.Run()
	if count != 3 {
		t.Fatalf("ran %d ticks after Stop, want 3", count)
	}
}

func TestKernelNowWall(t *testing.T) {
	epoch := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	k := NewKernel(epoch)
	var wall time.Time
	if err := k.At(90*time.Minute, func(kk *Kernel) { wall = kk.NowWall() }); err != nil {
		t.Fatalf("At: %v", err)
	}
	k.Run()
	want := epoch.Add(90 * time.Minute)
	if !wall.Equal(want) {
		t.Fatalf("NowWall = %s, want %s", wall, want)
	}
}

// Property: for any batch of event offsets, the kernel executes exactly one
// event per scheduled offset and in non-decreasing time order.
func TestKernelOrderProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		k := NewKernel(time.Unix(0, 0))
		var got []time.Duration
		for _, r := range raw {
			at := time.Duration(r) * time.Millisecond
			if err := k.At(at, func(*Kernel) { got = append(got, at) }); err != nil {
				return false
			}
		}
		k.Run()
		if len(got) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSeedsAreDistinctAndDeterministic(t *testing.T) {
	seen := map[int64]int{}
	for stream := StreamCatalog; stream <= StreamWorkload; stream++ {
		s1 := StreamSeed(42, stream)
		s2 := StreamSeed(42, stream)
		if s1 != s2 {
			t.Fatalf("stream %d seed not deterministic: %d vs %d", stream, s1, s2)
		}
		if prev, dup := seen[s1]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, stream, s1)
		}
		seen[s1] = stream
	}
}

func TestStreamSeedDiffersAcrossMasters(t *testing.T) {
	if StreamSeed(1, StreamTrace) == StreamSeed(2, StreamTrace) {
		t.Fatal("different master seeds produced identical stream seeds")
	}
}

func TestNewRNGReproducible(t *testing.T) {
	a := NewRNG(7, StreamTrace)
	b := NewRNG(7, StreamTrace)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed RNG streams diverged")
		}
	}
}

func TestNewRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(7, StreamTrace)
	b := NewRNG(7, StreamNetwork)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct streams produced %d identical draws", same)
	}
}

func BenchmarkKernelScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	offsets := make([]time.Duration, 10_000)
	for i := range offsets {
		offsets[i] = time.Duration(rng.Intn(1_000_000)) * time.Microsecond
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		k := NewKernel(time.Unix(0, 0))
		for _, at := range offsets {
			_ = k.At(at, func(*Kernel) {})
		}
		k.Run()
	}
}
