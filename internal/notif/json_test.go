package notif

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// Trace files and model exports serialize these types; the JSON shape is
// a compatibility surface.
func TestItemJSONRoundTrip(t *testing.T) {
	item := Item{
		ID: 42, Kind: KindAudio, Topic: TopicArtistPage,
		Sender: 7, Recipient: 9,
		CreatedAt: time.Date(2015, 1, 3, 18, 30, 0, 0, time.UTC),
		Meta: Metadata{
			TrackID: 1, AlbumID: 2, ArtistID: 3,
			TrackPopularity: 55.5, AlbumPopularity: 44.4, ArtistPopularity: 99,
			Genre: 4, URL: "https://open.example.com/track/1",
		},
		TieStrength: 0.75,
	}
	data, err := json.Marshal(item)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got Item
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != item {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", item, got)
	}
}

func TestItemJSONFieldNames(t *testing.T) {
	data, err := json.Marshal(Item{ID: 1, TieStrength: 0.5})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, key := range []string{`"id"`, `"tie_strength"`, `"meta"`, `"created_at"`} {
		if !containsBytes(data, key) {
			t.Errorf("serialized item missing %s: %s", key, data)
		}
	}
}

func TestDeliveryJSONOmitsEmptyTrueUtility(t *testing.T) {
	data, err := json.Marshal(Delivery{ItemID: 1, Level: 2})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if containsBytes(data, `"true_utility"`) {
		t.Errorf("zero TrueUtility serialized: %s", data)
	}
	data, err = json.Marshal(Delivery{ItemID: 1, Level: 2, TrueUtility: 0.4})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !containsBytes(data, `"true_utility"`) {
		t.Errorf("nonzero TrueUtility dropped: %s", data)
	}
}

func TestPresentationJSONOmitsAudioFieldsForMeta(t *testing.T) {
	data, err := json.Marshal(Presentation{Level: 1, Size: 200, Utility: 0.01, Label: "meta"})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, absent := range []string{`"duration_sec"`, `"sample_rate_hz"`, `"bitrate_kbps"`} {
		if containsBytes(data, absent) {
			t.Errorf("metadata-only presentation serialized %s: %s", absent, data)
		}
	}
}

func containsBytes(data []byte, sub string) bool {
	return bytes.Contains(data, []byte(sub))
}
