package notif

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sampleRichItem() RichItem {
	return RichItem{
		Item: Item{
			ID: 7, Kind: KindAudio, Topic: TopicFriendFeed,
			Sender: 1, Recipient: 2,
			CreatedAt: time.Date(2015, 1, 1, 12, 0, 0, 0, time.UTC),
		},
		ContentUtility: 0.8,
		Presentations: []Presentation{
			{Level: 1, Size: 200, Utility: 0.01, Label: "meta"},
			{Level: 2, Size: 100_200, Utility: 0.4, Label: "meta+5s"},
			{Level: 3, Size: 200_200, Utility: 0.6, Label: "meta+10s"},
		},
	}
}

func TestRichItemAt(t *testing.T) {
	r := sampleRichItem()
	if got := r.At(0); got.Size != 0 || got.Utility != 0 || got.Level != 0 {
		t.Fatalf("At(0) = %+v, want zero presentation", got)
	}
	if got := r.At(2); got.Size != 100_200 {
		t.Fatalf("At(2).Size = %d, want 100200", got.Size)
	}
	if got := r.At(99); got.Level != 0 {
		t.Fatalf("At(out of range) = %+v, want zero presentation", got)
	}
}

func TestRichItemUtilityCombines(t *testing.T) {
	r := sampleRichItem()
	want := 0.8 * 0.6
	if got := r.Utility(3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utility(3) = %f, want %f", got, want)
	}
	if got := r.Utility(0); got != 0 {
		t.Fatalf("Utility(0) = %f, want 0", got)
	}
}

func TestRichItemTotalSize(t *testing.T) {
	r := sampleRichItem()
	want := int64(200 + 100_200 + 200_200)
	if got := r.TotalSize(); got != want {
		t.Fatalf("TotalSize = %d, want %d", got, want)
	}
}

func TestRichItemMaxLevelWithin(t *testing.T) {
	r := sampleRichItem()
	cases := []struct {
		budget int64
		want   int
	}{
		{0, 0},
		{199, 0},
		{200, 1},
		{100_199, 1},
		{100_200, 2},
		{1 << 30, 3},
	}
	for _, tc := range cases {
		if got := r.MaxLevelWithin(tc.budget); got != tc.want {
			t.Errorf("MaxLevelWithin(%d) = %d, want %d", tc.budget, got, tc.want)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	r := sampleRichItem()
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := sampleRichItem()
	cases := []struct {
		name   string
		mutate func(*RichItem)
	}{
		{"no presentations", func(r *RichItem) { r.Presentations = nil }},
		{"bad level numbering", func(r *RichItem) { r.Presentations[1].Level = 5 }},
		{"non-increasing size", func(r *RichItem) { r.Presentations[2].Size = 50 }},
		{"decreasing utility", func(r *RichItem) { r.Presentations[2].Utility = 0.1 }},
		{"utility above one", func(r *RichItem) { r.Presentations[2].Utility = 1.5 }},
		{"content utility out of range", func(r *RichItem) { r.ContentUtility = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := base
			r.Presentations = append([]Presentation(nil), base.Presentations...)
			tc.mutate(&r)
			if err := r.Validate(); err == nil {
				t.Fatal("Validate accepted malformed item")
			}
		})
	}
}

func TestDeliveryQueuingDelay(t *testing.T) {
	d := Delivery{ArrivedRound: 3, DeliveredRound: 7}
	if got := d.QueuingDelayRounds(); got != 4 {
		t.Fatalf("delay = %d, want 4", got)
	}
	d = Delivery{ArrivedRound: 7, DeliveredRound: 3}
	if got := d.QueuingDelayRounds(); got != 0 {
		t.Fatalf("negative delay clamped to %d, want 0", got)
	}
}

func TestKindAndTopicStrings(t *testing.T) {
	if KindAudio.String() != "audio" || KindVideo.String() != "video" {
		t.Fatal("ContentKind.String mismatch")
	}
	if TopicFriendFeed.String() != "friend-feed" || TopicPlaylist.String() != "playlist" {
		t.Fatal("TopicKind.String mismatch")
	}
	if ContentKind(99).String() == "" || TopicKind(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

// Property: MaxLevelWithin is monotone in the budget and consistent with At.
func TestMaxLevelWithinProperty(t *testing.T) {
	r := sampleRichItem()
	prop := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		ll, lh := r.MaxLevelWithin(lo), r.MaxLevelWithin(hi)
		if ll > lh {
			return false
		}
		// The chosen level always fits its budget.
		return r.At(ll).Size <= lo && r.At(lh).Size <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
