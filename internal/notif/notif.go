// Package notif defines the shared data model of the RichNote framework:
// content items, presentation levels, rich items (an item bundled with its
// generated presentations and utility scores), and delivered notifications.
//
// The model follows Section III of the RichNote paper (ICDCS 2016): a
// content item i can be presented at discrete levels 1..k_i, where level 1
// is the smallest presentation (essential metadata only) and level k_i the
// largest. Level 0 is the implicit "not delivered" presentation with zero
// size and zero utility. Presentations are strictly ordered in size and
// monotone in utility.
package notif

import (
	"errors"
	"fmt"
	"time"
)

// UserID identifies a user (both notification senders and recipients).
type UserID int64

// ItemID identifies a content item.
type ItemID int64

// ContentKind enumerates the media modality of a content item.
type ContentKind int

// Supported content kinds. Audio is the modality studied in the paper's
// Spotify use case; Image and Video exercise the generality of the
// presentation-generator interface.
const (
	KindAudio ContentKind = iota + 1
	KindImage
	KindVideo
	KindText
)

// String returns a short human-readable name of the kind.
func (k ContentKind) String() string {
	switch k {
	case KindAudio:
		return "audio"
	case KindImage:
		return "image"
	case KindVideo:
		return "video"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("ContentKind(%d)", int(k))
	}
}

// TopicKind enumerates the pub/sub topic classes used by the Spotify-style
// notification service (Section II of the paper).
type TopicKind int

// Topic classes. FriendFeed publications are frequent and delivered in
// (near) real time; ArtistPage and Playlist publications are less frequent
// and suited to batch/round delivery.
const (
	TopicFriendFeed TopicKind = iota + 1
	TopicArtistPage
	TopicPlaylist
)

// String returns a short human-readable name of the topic kind.
func (t TopicKind) String() string {
	switch t {
	case TopicFriendFeed:
		return "friend-feed"
	case TopicArtistPage:
		return "artist-page"
	case TopicPlaylist:
		return "playlist"
	default:
		return fmt.Sprintf("TopicKind(%d)", int(t))
	}
}

// Metadata carries the content attributes used by the content-utility
// classifier: identifiers and popularity scores of the track, album and
// artist (normalized 1..100 as returned by the Spotify public API), the
// genre, and a remote link to the full content.
type Metadata struct {
	TrackID  int64 `json:"track_id"`
	AlbumID  int64 `json:"album_id"`
	ArtistID int64 `json:"artist_id"`

	// Popularity scores in [1, 100].
	TrackPopularity  float64 `json:"track_popularity"`
	AlbumPopularity  float64 `json:"album_popularity"`
	ArtistPopularity float64 `json:"artist_popularity"`

	Genre int    `json:"genre"`
	URL   string `json:"url"`
}

// Item is a single content item a notification may be generated for.
type Item struct {
	ID        ItemID      `json:"id"`
	Kind      ContentKind `json:"kind"`
	Topic     TopicKind   `json:"topic"`
	Sender    UserID      `json:"sender"`
	Recipient UserID      `json:"recipient"`
	CreatedAt time.Time   `json:"created_at"`
	Meta      Metadata    `json:"meta"`

	// TieStrength is the social-tie strength between sender and recipient
	// in [0, 1], resolved from the social graph when the item enters the
	// system. Zero when sender and recipient are not connected.
	TieStrength float64 `json:"tie_strength"`
}

// Presentation is one discrete presentation level of a content item.
type Presentation struct {
	// Level is the 1-based presentation level. Level 0 (the "not sent"
	// presentation) is never materialized as a Presentation value.
	Level int `json:"level"`

	// Size is the total byte size of the presentation, including metadata
	// and any media sample.
	Size int64 `json:"size"`

	// Utility is the presentation utility Up(i, j) in [0, 1], relative to
	// the richest presentation of the item.
	Utility float64 `json:"utility"`

	// Audio presentation attributes. Zero for non-audio content.
	DurationSec  float64 `json:"duration_sec,omitempty"`
	SampleRateHz int     `json:"sample_rate_hz,omitempty"`
	BitrateKbps  int     `json:"bitrate_kbps,omitempty"`

	// Label is a short human-readable description such as "meta+10s".
	Label string `json:"label,omitempty"`
}

// RichItem bundles a content item with its generated presentations and its
// content utility Uc(i). It is the unit of work in the scheduling queue.
type RichItem struct {
	Item Item

	// ContentUtility is Uc(i) in [0, 1]: the predicted probability that the
	// recipient consumes the content.
	ContentUtility float64

	// Presentations holds levels 1..k in ascending level order.
	// Presentations[j-1].Level == j for every j.
	Presentations []Presentation

	// ArrivedRound is the round index at which the item entered the
	// scheduling queue.
	ArrivedRound int
}

// Levels returns k, the number of explicit presentation levels.
func (r *RichItem) Levels() int { return len(r.Presentations) }

// At returns the presentation at the given level. Level 0 returns the zero
// Presentation (zero size, zero utility), matching the paper's "no
// presentation at all".
func (r *RichItem) At(level int) Presentation {
	if level <= 0 || level > len(r.Presentations) {
		return Presentation{Level: 0}
	}
	return r.Presentations[level-1]
}

// Utility returns the combined utility U(i, j) = Uc(i) x Up(i, j) of
// delivering the item at the given level (Equation 1 of the paper).
func (r *RichItem) Utility(level int) float64 {
	return r.ContentUtility * r.At(level).Utility
}

// TotalSize returns s(i) = sum over all presentation levels of s(i, j).
// This is the weight an item contributes to the scheduling queue backlog:
// when an item is delivered at any level, all of its presentations leave
// the queue (Section IV of the paper).
func (r *RichItem) TotalSize() int64 {
	var total int64
	for _, p := range r.Presentations {
		total += p.Size
	}
	return total
}

// MaxLevelWithin returns the largest level whose size fits the byte budget,
// or 0 when even level 1 does not fit.
func (r *RichItem) MaxLevelWithin(budget int64) int {
	best := 0
	for _, p := range r.Presentations {
		if p.Size <= budget {
			best = p.Level
		}
	}
	return best
}

// Validation errors returned by Validate.
var (
	ErrNoPresentations   = errors.New("notif: rich item has no presentations")
	ErrLevelOrder        = errors.New("notif: presentation levels are not 1..k in order")
	ErrSizeNotPositive   = errors.New("notif: presentation size is not positive")
	ErrSizeNotIncreasing = errors.New("notif: presentation sizes are not strictly increasing")
	ErrUtilityNotMono    = errors.New("notif: presentation utilities are not monotonically non-decreasing")
	ErrUtilityRange      = errors.New("notif: utility out of [0, 1]")
)

// Validate checks the structural invariants the paper assumes of a rich
// item: levels numbered 1..k, sizes positive and strictly increasing,
// presentation utilities monotone non-decreasing, and all utilities within
// [0, 1]. Positive sizes make the item's MB contribution to Q(t)
// non-negative, which is what lets Enqueue validate up front and then
// commit without a rollback path.
func (r *RichItem) Validate() error {
	if len(r.Presentations) == 0 {
		return fmt.Errorf("item %d: %w", r.Item.ID, ErrNoPresentations)
	}
	if r.ContentUtility < 0 || r.ContentUtility > 1 {
		return fmt.Errorf("item %d: content utility %f: %w", r.Item.ID, r.ContentUtility, ErrUtilityRange)
	}
	for idx, p := range r.Presentations {
		if p.Level != idx+1 {
			return fmt.Errorf("item %d: level %d at index %d: %w", r.Item.ID, p.Level, idx, ErrLevelOrder)
		}
		if p.Size <= 0 {
			return fmt.Errorf("item %d level %d: size %d: %w", r.Item.ID, p.Level, p.Size, ErrSizeNotPositive)
		}
		if p.Utility < 0 || p.Utility > 1 {
			return fmt.Errorf("item %d level %d: utility %f: %w", r.Item.ID, p.Level, p.Utility, ErrUtilityRange)
		}
		if idx > 0 {
			prev := r.Presentations[idx-1]
			if p.Size <= prev.Size {
				return fmt.Errorf("item %d level %d: size %d <= %d: %w",
					r.Item.ID, p.Level, p.Size, prev.Size, ErrSizeNotIncreasing)
			}
			if p.Utility < prev.Utility {
				return fmt.Errorf("item %d level %d: utility %f < %f: %w",
					r.Item.ID, p.Level, p.Utility, prev.Utility, ErrUtilityNotMono)
			}
		}
	}
	return nil
}

// Delivery records one delivered notification: which item, at what level,
// its cost and value, and the timing needed for the queuing-delay and
// precision metrics.
type Delivery struct {
	ItemID    ItemID  `json:"item_id"`
	Recipient UserID  `json:"recipient"`
	Level     int     `json:"level"`
	Size      int64   `json:"size"`
	Utility   float64 `json:"utility"`

	// TrueUtility scores the delivery against the ground-truth interest
	// probability instead of the predicted one, when the workload knows it
	// (synthetic traces). Zero when unavailable.
	TrueUtility float64 `json:"true_utility,omitempty"`

	EnergyJ float64 `json:"energy_j"`

	// Retries counts the failed transfer attempts that preceded this
	// delivery. Zero when the first attempt succeeded, which keeps the
	// JSON encoding unchanged for fault-free runs.
	Retries int `json:"retries,omitempty"`

	// Degraded is true when the delivered level was capped below the
	// scheduler's original choice by the retry degradation ladder.
	Degraded bool `json:"degraded,omitempty"`

	// ArrivedRound and DeliveredRound bracket the item's time in the
	// broker; their difference (in rounds) is the queuing delay.
	ArrivedRound   int `json:"arrived_round"`
	DeliveredRound int `json:"delivered_round"`

	// DeliveredAt is the virtual delivery time.
	DeliveredAt time.Time `json:"delivered_at"`
}

// QueuingDelayRounds returns the number of rounds the item waited in the
// broker before delivery.
func (d Delivery) QueuingDelayRounds() int {
	delay := d.DeliveredRound - d.ArrivedRound
	if delay < 0 {
		return 0
	}
	return delay
}
