package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
)

// echoHandler answers every frame with type+1 and the payload reversed, so
// tests can verify both fields round-tripped through the framing.
type echoHandler struct{}

func (echoHandler) ServeFrame(typ byte, payload []byte) (byte, []byte, error) {
	out := make([]byte, len(payload))
	for i, b := range payload {
		out[len(payload)-1-i] = b
	}
	return typ + 1, out, nil
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	payload := []byte("hello cluster")
	if err := writeFrame(bw, 42, 7, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	id, typ, got, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if id != 42 || typ != 7 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip got id=%d typ=%d payload=%q", id, typ, got)
	}
}

func TestFrameCorruptionRejected(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, 1, 2, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[frameHeaderLen+2] ^= 0xFF // flip a payload byte; CRC must catch it
	_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
	if !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("corrupted frame read returned %v, want ErrFrameCorrupt", err)
	}
}

func TestFrameTornTailIsEOFOrError(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, 1, 2, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(torn)))
	if err == nil || errors.Is(err, io.EOF) && err == io.EOF {
		// A torn body must error; only a clean boundary reads as bare EOF.
		t.Fatalf("torn frame read returned %v, want a read error", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	// Declare an absurd frame length without paying for the bytes.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	buf.Write(hdr)
	_, _, _, err := readFrame(bufio.NewReader(&buf))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame read returned %v, want ErrFrameTooLarge", err)
	}
}

func TestClientServerExchange(t *testing.T) {
	s := startEcho(t)
	c := NewClient(s.Addr(), ClientConfig{})
	defer c.Close()

	typ, resp, err := c.Call(10, []byte("abc"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if typ != 11 || string(resp) != "cba" {
		t.Fatalf("Call returned typ=%d resp=%q", typ, resp)
	}
	if c.Calls() != 1 || c.Errors() != 0 || c.Reconnects() != 0 {
		t.Fatalf("counters calls=%d errors=%d reconnects=%d", c.Calls(), c.Errors(), c.Reconnects())
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	s := startEcho(t)
	c := NewClient(s.Addr(), ClientConfig{MaxIdle: 4})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("req-%03d", i))
			typ, resp, err := c.Call(20, payload)
			if err != nil {
				errs <- err
				return
			}
			want := make([]byte, len(payload))
			for j, b := range payload {
				want[len(payload)-1-j] = b
			}
			if typ != 21 || !bytes.Equal(resp, want) {
				errs <- fmt.Errorf("call %d: typ=%d resp=%q", i, typ, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	s, err := Listen("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	c := NewClient(addr, ClientConfig{})
	defer c.Close()

	if _, _, err := c.Call(1, []byte("x")); err != nil {
		t.Fatalf("first call: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	// Restart on the same address: the pooled connection is dead, so the
	// next call must fail its first attempt and succeed on a fresh dial.
	s2, err := Listen(addr, echoHandler{})
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer s2.Close()

	if _, _, err := c.Call(1, []byte("y")); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if c.Reconnects() == 0 {
		t.Error("no reconnect counted after server restart")
	}
	if c.Errors() == 0 {
		t.Error("no transport error counted for the dead pooled connection")
	}
}

func TestClientRefusedConnection(t *testing.T) {
	// Grab a port that nothing listens on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	c := NewClient(addr, ClientConfig{})
	defer c.Close()
	if _, _, err := c.Call(1, nil); err == nil {
		t.Fatal("call to a closed port succeeded")
	}
	if c.Errors() == 0 {
		t.Error("refused dial not counted as a transport error")
	}
}

// errorHandler exercises the FrameError path.
type errorHandler struct{}

func (errorHandler) ServeFrame(typ byte, payload []byte) (byte, []byte, error) {
	return 0, nil, fmt.Errorf("no handler for type %d", typ)
}

func TestHandlerErrorSurfacesWithoutTransportError(t *testing.T) {
	s, err := Listen("127.0.0.1:0", errorHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(s.Addr(), ClientConfig{})
	defer c.Close()

	_, _, err = c.Call(99, nil)
	if err == nil || !strings.Contains(err.Error(), "no handler for type 99") {
		t.Fatalf("remote error not surfaced: %v", err)
	}
	if c.Errors() != 0 {
		t.Errorf("remote application error counted as %d transport errors", c.Errors())
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	s := startEcho(t)
	c := NewClient(s.Addr(), ClientConfig{})
	defer c.Close()

	big := make([]byte, 4<<20) // snapshot-sized
	for i := range big {
		big[i] = byte(i * 31)
	}
	typ, resp, err := c.Call(5, big)
	if err != nil {
		t.Fatalf("large call: %v", err)
	}
	if typ != 6 || len(resp) != len(big) {
		t.Fatalf("large call typ=%d len=%d", typ, len(resp))
	}
	for i := range big {
		if resp[i] != big[len(big)-1-i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

// TestClientCallOnceNoRetry pins CallOnce's contract: one exchange, one
// dial attempt, no retry — the single failure costs exactly one error,
// where Call's retry-on-fresh-dial costs two.
func TestClientCallOnceNoRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	c := NewClient(addr, ClientConfig{})
	defer c.Close()
	if _, _, err := c.CallOnce(1, nil); err == nil {
		t.Fatal("CallOnce to a closed port succeeded")
	}
	if got := c.Errors(); got != 1 {
		t.Fatalf("CallOnce counted %d errors, want exactly 1 (no retry)", got)
	}

	// Against a live server it behaves like Call.
	s := startEcho(t)
	c2 := NewClient(s.Addr(), ClientConfig{})
	defer c2.Close()
	typ, resp, err := c2.CallOnce(10, []byte("abc"))
	if err != nil {
		t.Fatalf("CallOnce: %v", err)
	}
	if typ != 11 || string(resp) != "cba" {
		t.Fatalf("CallOnce returned typ=%d resp=%q", typ, resp)
	}
}
