// Package transport implements the cluster's binary wire protocol
// (DESIGN.md §13): length-prefixed, CRC-framed request/response frames over
// TCP, connecting the router tier to the shard-owner nodes and the nodes to
// each other during shard handoff.
//
// Frame layout reuses the internal/wal record framing conventions,
// little-endian throughout:
//
//	[u32 frameLen] [u64 id] [u8 type] [payload] [u32 crc]
//
// frameLen counts id+type+payload (9 + len(payload)); crc is IEEE CRC-32
// over exactly those bytes. id is a request identifier assigned by the
// client; the response echoes it, which is what lets a client detect a
// desynchronized connection and drop it rather than mis-pair an exchange.
// Frame type identifiers are owned by the caller (internal/server defines
// the cluster RPC set); the transport only frames, checks and routes them.
// Payload encoding is the caller's business too — in practice the cluster
// speaks internal/wal's Encoder/Decoder, the same codec the snapshots a
// handoff ships are written in.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// frameHeaderLen is the fixed prefix before the payload: u32 frameLen,
// u64 id, u8 type — identical to the WAL record header.
const frameHeaderLen = 4 + 8 + 1

// MaxFrameLen bounds a single frame. Shard handoff ships whole compacted
// snapshots in one frame, so the ceiling is generous; anything larger is a
// framing error, not a bigger buffer.
const MaxFrameLen = 256 << 20

// ErrFrameTooLarge rejects frames whose declared length exceeds MaxFrameLen.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// ErrFrameCorrupt rejects frames whose CRC does not match their contents.
var ErrFrameCorrupt = errors.New("transport: frame checksum mismatch")

// putU32/getU32 mirror the WAL codec so the two framings stay byte-level
// twins; the transport cannot import them (they are unexported there) and
// four lines of shifts beat exporting an internal detail.
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b[0:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b[0:4])) | uint64(getU32(b[4:8]))<<32
}

// writeFrame frames and writes one message. The payload is copied into the
// writer's buffer, so callers may reuse it immediately.
func writeFrame(w *bufio.Writer, id uint64, typ byte, payload []byte) error {
	if len(payload) > MaxFrameLen-9 {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [frameHeaderLen]byte
	putU32(hdr[0:4], uint32(9+len(payload)))
	putU64(hdr[4:12], id)
	hdr[12] = typ
	crc := crc32.ChecksumIEEE(hdr[4:frameHeaderLen])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var foot [4]byte
	putU32(foot[:], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if _, err := w.Write(foot[:]); err != nil {
		return fmt.Errorf("transport: write frame: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("transport: flush frame: %w", err)
	}
	return nil
}

// readFrame reads and verifies one frame. The returned payload is freshly
// allocated and owned by the caller. An io.EOF between frames surfaces as
// io.EOF so connection teardown is distinguishable from mid-frame damage.
func readFrame(r *bufio.Reader) (id uint64, typ byte, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, fmt.Errorf("transport: read frame length: %w", err)
	}
	frameLen := int(getU32(lenBuf[:]))
	if frameLen < 9 {
		return 0, 0, nil, fmt.Errorf("%w: declared frame length %d", ErrFrameCorrupt, frameLen)
	}
	if frameLen > MaxFrameLen {
		return 0, 0, nil, fmt.Errorf("%w: declared frame length %d", ErrFrameTooLarge, frameLen)
	}
	buf := make([]byte, frameLen+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, fmt.Errorf("transport: read frame body: %w", err)
	}
	frame := buf[:frameLen]
	wantCRC := getU32(buf[frameLen:])
	if crc32.ChecksumIEEE(frame) != wantCRC {
		return 0, 0, nil, fmt.Errorf("%w: frame id %d", ErrFrameCorrupt, getU64(frame[0:8]))
	}
	return getU64(frame[0:8]), frame[8], frame[9:], nil
}
