package transport

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
)

// FrameError is the reserved response type carrying a handler error; its
// payload is the error text as raw bytes. Callers must not reuse it for
// their own frame types.
const FrameError byte = 0xFF

// Handler serves one request frame. It returns the response type and
// payload; returning an error instead makes the server answer with a
// FrameError frame carrying the error text. Handlers are invoked
// sequentially per connection but concurrently across connections, so they
// must be safe for concurrent use.
type Handler interface {
	ServeFrame(typ byte, payload []byte) (respType byte, resp []byte, err error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(typ byte, payload []byte) (byte, []byte, error)

// ServeFrame implements Handler.
func (f HandlerFunc) ServeFrame(typ byte, payload []byte) (byte, []byte, error) {
	return f(typ, payload)
}

// Server accepts framed-protocol connections and dispatches each request
// frame to the handler, writing the response frame with the request's id.
// One goroutine per connection; frames on a connection are answered in
// order (the Client pairs request and response by id and pools connections
// for parallelism).
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Listen starts a transport server on addr (":0" picks an ephemeral port)
// and begins accepting connections.
func Listen(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address, e.g. "127.0.0.1:43017".
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // shutting down; refuse late arrivals
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		id, typ, payload, err := s.readOne(br)
		if err != nil {
			return // EOF, teardown, or a corrupt frame: drop the connection
		}
		respType, resp, err := s.handler.ServeFrame(typ, payload)
		if err != nil {
			respType, resp = FrameError, []byte(err.Error())
		}
		if err := writeFrame(bw, id, respType, resp); err != nil {
			return
		}
	}
}

// readOne reads the next request, mapping clean EOF to a silent close.
func (s *Server) readOne(br *bufio.Reader) (uint64, byte, []byte, error) {
	id, typ, payload, err := readFrame(br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, err
	}
	return id, typ, payload, nil
}

// Close stops accepting, closes every live connection and waits for the
// per-connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
