package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a blocking request/response client for one peer address. It
// keeps a small pool of connections (one in-flight exchange per
// connection), dials lazily, and on any transport error discards the
// failed connection and retries the call once on a fresh dial — so a peer
// restart costs one reconnect, not a failed request. Counters expose the
// transport health the router's /metrics reports per node.
type Client struct {
	addr        string
	dialTimeout time.Duration
	callTimeout time.Duration
	maxIdle     int

	mu     sync.Mutex
	idle   []*clientConn
	dialed bool // at least one successful dial (so later dials count as reconnects)
	closed bool

	calls      atomic.Uint64 // richnote:atomic
	errors     atomic.Uint64 // richnote:atomic
	reconnects atomic.Uint64 // richnote:atomic
}

type clientConn struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint64
}

// ClientConfig tunes a Client; the zero value gets sensible defaults.
type ClientConfig struct {
	// DialTimeout bounds connection establishment; defaults to 2s.
	DialTimeout time.Duration
	// CallTimeout bounds one full exchange (write request, read response);
	// defaults to 30s — generous because handoff snapshots ride ordinary
	// frames.
	CallTimeout time.Duration
	// MaxIdle bounds pooled connections; defaults to 4.
	MaxIdle int
}

// NewClient builds a client for one peer address. No connection is made
// until the first Call.
func NewClient(addr string, cfg ClientConfig) *Client {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 30 * time.Second
	}
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = 4
	}
	return &Client{
		addr:        addr,
		dialTimeout: cfg.DialTimeout,
		callTimeout: cfg.CallTimeout,
		maxIdle:     cfg.MaxIdle,
	}
}

// Addr returns the peer address this client dials.
func (c *Client) Addr() string { return c.addr }

// Calls returns the number of completed exchanges (including the failed
// ones counted by Errors).
func (c *Client) Calls() uint64 { return c.calls.Load() }

// Errors returns the number of transport-level failures (dial, write,
// read, or frame corruption). Application-level FrameError responses are
// not transport errors.
func (c *Client) Errors() uint64 { return c.errors.Load() }

// Reconnects returns the number of re-dials after the client had already
// been connected — each one is a peer restart, network blip or idle-pool
// refill observed on the wire.
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// Call performs one request/response exchange. On a transport error the
// failed connection is dropped and the call retried once on a fresh dial;
// the second failure is returned. A FrameError response is returned as an
// error carrying the peer's message, without counting as a transport
// failure.
func (c *Client) Call(typ byte, payload []byte) (byte, []byte, error) {
	c.calls.Add(1)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := c.get()
		if err != nil {
			c.errors.Add(1)
			lastErr = err
			continue
		}
		respType, resp, err := c.exchange(cc, typ, payload)
		if err != nil {
			_ = cc.conn.Close()
			c.errors.Add(1)
			lastErr = err
			continue
		}
		c.put(cc)
		if respType == FrameError {
			return respType, nil, fmt.Errorf("transport: %s: remote error: %s", c.addr, resp)
		}
		return respType, resp, nil
	}
	return 0, nil, lastErr
}

// CallOnce performs one request/response exchange with no retry: a
// transport failure is returned immediately. For callers with their own
// retry cadence — a node's join-announce loop fires every second anyway,
// so a second dial inside one announce only doubles the load on a router
// that is down.
func (c *Client) CallOnce(typ byte, payload []byte) (byte, []byte, error) {
	c.calls.Add(1)
	cc, err := c.get()
	if err != nil {
		c.errors.Add(1)
		return 0, nil, err
	}
	respType, resp, err := c.exchange(cc, typ, payload)
	if err != nil {
		_ = cc.conn.Close()
		c.errors.Add(1)
		return 0, nil, err
	}
	c.put(cc)
	if respType == FrameError {
		return respType, nil, fmt.Errorf("transport: %s: remote error: %s", c.addr, resp)
	}
	return respType, resp, nil
}

func (c *Client) exchange(cc *clientConn, typ byte, payload []byte) (byte, []byte, error) {
	cc.nextID++
	id := cc.nextID
	//lint:allow wallclock transport exchange deadlines are real wall-clock I/O timeouts
	if err := cc.conn.SetDeadline(time.Now().Add(c.callTimeout)); err != nil {
		return 0, nil, fmt.Errorf("transport: %s: set deadline: %w", c.addr, err)
	}
	if err := writeFrame(cc.bw, id, typ, payload); err != nil {
		return 0, nil, err
	}
	respID, respType, resp, err := readFrame(cc.br)
	if err != nil {
		return 0, nil, err
	}
	if respID != id {
		return 0, nil, fmt.Errorf("transport: %s: response id %d for request %d (desynchronized connection)", c.addr, respID, id)
	}
	return respType, resp, nil
}

// get pops an idle connection or dials a new one.
func (c *Client) get() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: client for %s is closed", c.addr)
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	wasDialed := c.dialed
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = conn.Close()
		return nil, fmt.Errorf("transport: client for %s is closed", c.addr)
	}
	if wasDialed {
		c.reconnects.Add(1)
	}
	c.dialed = true
	c.mu.Unlock()
	return &clientConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// put returns a healthy connection to the pool, closing it if full.
func (c *Client) put(cc *clientConn) {
	// Clear the exchange deadline so a pooled connection cannot expire idle.
	_ = cc.conn.SetDeadline(time.Time{})
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.maxIdle {
		c.mu.Unlock()
		_ = cc.conn.Close()
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// Close drops every pooled connection; in-flight exchanges finish on their
// own connections and are discarded on return.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, cc := range idle {
		_ = cc.conn.Close()
	}
}
