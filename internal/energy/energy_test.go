package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/richnote/richnote/internal/network"
)

func TestTransferJ(t *testing.T) {
	m := DefaultTransferModel()
	cell, err := m.TransferJ(1_000_000, network.StateCell)
	if err != nil {
		t.Fatalf("TransferJ cell: %v", err)
	}
	if math.Abs(cell-25) > 1e-9 { // 1000 KB x 0.025 J/KB
		t.Fatalf("cell transfer = %f J, want 25", cell)
	}
	wifi, err := m.TransferJ(1_000_000, network.StateWifi)
	if err != nil {
		t.Fatalf("TransferJ wifi: %v", err)
	}
	if wifi >= cell {
		t.Fatalf("wifi (%f J) not cheaper than cell (%f J)", wifi, cell)
	}
	if _, err := m.TransferJ(1000, network.StateOff); err == nil {
		t.Fatal("transfer while offline accepted")
	}
}

func TestBatchOverhead(t *testing.T) {
	m := DefaultTransferModel()
	if m.BatchOverheadJ(network.StateCell) <= m.BatchOverheadJ(network.StateWifi) {
		t.Fatal("cell batch overhead (ramp+tail) must exceed wifi association")
	}
	if m.BatchOverheadJ(network.StateOff) != 0 {
		t.Fatal("offline overhead must be zero")
	}
}

func newBattery(t *testing.T, cfg BatteryConfig) *Battery {
	t.Helper()
	b, err := NewBattery(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewBattery: %v", err)
	}
	return b
}

func TestNewBatteryValidation(t *testing.T) {
	if _, err := NewBattery(BatteryConfig{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewBattery(BatteryConfig{InitialLevel: 1.5}, rng); err == nil {
		t.Error("level > 1 accepted")
	}
	if _, err := NewBattery(BatteryConfig{CapacityJ: -5}, rng); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestBatteryDefaults(t *testing.T) {
	b := newBattery(t, BatteryConfig{})
	if b.CapacityJ() != 37_000 {
		t.Fatalf("capacity %f, want default 37000", b.CapacityJ())
	}
	if b.Level() != 0.8 {
		t.Fatalf("level %f, want default 0.8", b.Level())
	}
}

func TestBatteryDrainsByDayChargesByNight(t *testing.T) {
	b := newBattery(t, BatteryConfig{InitialLevel: 0.7})
	day := b.Level()
	for h := 9; h < 18; h++ {
		b.Tick(h)
	}
	if b.Level() >= day {
		t.Fatalf("battery did not drain during the day: %f -> %f", day, b.Level())
	}
	night := b.Level()
	for _, h := range []int{23, 0, 1, 2, 3, 4, 5, 6} {
		b.Tick(h)
	}
	if b.Level() <= night {
		t.Fatalf("battery did not charge overnight: %f -> %f", night, b.Level())
	}
}

func TestBatterySpend(t *testing.T) {
	b := newBattery(t, BatteryConfig{CapacityJ: 1000, InitialLevel: 0.5})
	spent := b.Spend(100)
	if spent != 100 {
		t.Fatalf("spent %f, want 100", spent)
	}
	if math.Abs(b.Level()-0.4) > 1e-9 {
		t.Fatalf("level %f after spend, want 0.4", b.Level())
	}
	// Overdraw is bounded by remaining charge.
	spent = b.Spend(10_000)
	if math.Abs(spent-400) > 1e-9 {
		t.Fatalf("overdraw spent %f, want 400 (remaining)", spent)
	}
	if b.Level() != 0 {
		t.Fatalf("level %f after overdraw, want 0", b.Level())
	}
	if b.Spend(-5) != 0 {
		t.Fatal("negative spend drew energy")
	}
}

func TestReplenishRateScalesWithLevel(t *testing.T) {
	const kappa = 3000.0
	cases := []struct {
		level float64
		want  float64
	}{
		{0.9, kappa * 1.5},
		{0.6, kappa},
		{0.3, kappa * 0.5},
		{0.1, kappa * 0.1},
	}
	for _, tc := range cases {
		b := newBattery(t, BatteryConfig{InitialLevel: tc.level})
		if got := b.ReplenishRate(kappa); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ReplenishRate at level %.1f = %f, want %f", tc.level, got, tc.want)
		}
	}
}

// Property: battery level stays in [0, 1] under arbitrary tick/spend mixes.
func TestBatteryLevelBoundedProperty(t *testing.T) {
	prop := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewBattery(BatteryConfig{}, rng)
		if err != nil {
			return false
		}
		for i, op := range ops {
			if op%2 == 0 {
				b.Tick(int(op) % 24)
			} else if spent := b.Spend(float64(op)); spent < 0 || spent > float64(op) {
				return false
			}
			if b.Level() < 0 || b.Level() > 1 {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
