// Package energy models the device-side energy costs and budgets of
// RichNote's scheduler.
//
// The transfer-energy model follows the measurement study of
// Balasubramanian et al. (IMC 2009), the paper's reference [9]: a cellular
// (3G) download costs a ramp-up, a per-byte transfer component and a
// radio tail that keeps the interface in a high-power state after the
// transfer; WiFi pays a much smaller association cost and lower per-byte
// energy and has no long tail.
//
// The battery model replaces the per-user battery-status traces the paper
// obtains from Do et al. (INFOCOM 2014): a diurnal drain/recharge cycle
// that yields the replenishment rate e(t) the scheduler credits to the
// virtual energy queue each round.
package energy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/richnote/richnote/internal/network"
)

// TransferModel holds the per-interface energy parameters in joules.
type TransferModel struct {
	// CellRampJ is the 3G promotion energy per transfer batch.
	CellRampJ float64
	// CellPerKB is the 3G transfer energy per kilobyte.
	CellPerKB float64
	// CellTailJ is the 3G tail energy paid once per transfer batch.
	CellTailJ float64
	// WifiAssocJ is the WiFi association/scan energy per batch.
	WifiAssocJ float64
	// WifiPerKB is the WiFi transfer energy per kilobyte.
	WifiPerKB float64
}

// DefaultTransferModel returns parameters consistent with the IMC 2009
// measurements (3G ≈ 0.025 J/KB with ~12.5 s tail at ~0.5 W; WiFi ≈
// 0.007 J/KB with a small association cost).
func DefaultTransferModel() TransferModel {
	return TransferModel{
		CellRampJ:  3.5,
		CellPerKB:  0.025,
		CellTailJ:  6.25,
		WifiAssocJ: 0.9,
		WifiPerKB:  0.007,
	}
}

// ErrUnknownState is returned for energy queries in a state with no radio.
var ErrUnknownState = errors.New("energy: no transfer energy defined for network state")

// TransferJ returns the energy (joules) to download size bytes over the
// given network state, excluding batch overheads.
func (m TransferModel) TransferJ(size int64, state network.State) (float64, error) {
	kb := float64(size) / 1000
	switch state {
	case network.StateCell:
		return kb * m.CellPerKB, nil
	case network.StateWifi:
		return kb * m.WifiPerKB, nil
	default:
		return 0, fmt.Errorf("%w: %s", ErrUnknownState, state)
	}
}

// BatchOverheadJ returns the fixed per-batch energy (ramp + tail for 3G,
// association for WiFi) paid once per round in which any download happens.
func (m TransferModel) BatchOverheadJ(state network.State) float64 {
	switch state {
	case network.StateCell:
		return m.CellRampJ + m.CellTailJ
	case network.StateWifi:
		return m.WifiAssocJ
	default:
		return 0
	}
}

// Battery simulates a device battery with a diurnal usage pattern. Levels
// are in [0, 1].
type Battery struct {
	capacityJ float64
	level     float64

	// drainPerHour is the background drain as a fraction of capacity.
	drainPerHour float64
	// rechargeStartHour..rechargeEndHour is the nightly charging window.
	rechargeStartHour int
	rechargeEndHour   int
	rechargePerHour   float64

	rng   *rand.Rand
	draws uint64 // Float64 draws consumed, for snapshot/restore
}

// BatteryConfig configures a Battery.
type BatteryConfig struct {
	// CapacityJ defaults to 37,000 J (a ~10.3 Wh phone battery).
	CapacityJ float64
	// InitialLevel defaults to 0.8.
	InitialLevel float64
	// DrainPerHour is background usage; defaults to 0.03 (3%/h).
	DrainPerHour float64
	// RechargeStartHour/RechargeEndHour default to 23 and 7 (overnight).
	RechargeStartHour int
	RechargeEndHour   int
	// RechargePerHour defaults to 0.25 (full charge in ~4 h).
	RechargePerHour float64
}

// NewBattery builds a battery; rng adds per-user jitter to the drain.
func NewBattery(cfg BatteryConfig, rng *rand.Rand) (*Battery, error) {
	if cfg.CapacityJ == 0 {
		cfg.CapacityJ = 37_000
	}
	if cfg.CapacityJ < 0 {
		return nil, fmt.Errorf("energy: negative capacity %f", cfg.CapacityJ)
	}
	if cfg.InitialLevel == 0 {
		cfg.InitialLevel = 0.8
	}
	if cfg.InitialLevel < 0 || cfg.InitialLevel > 1 {
		return nil, fmt.Errorf("energy: initial level %f outside [0,1]", cfg.InitialLevel)
	}
	if cfg.DrainPerHour == 0 {
		cfg.DrainPerHour = 0.03
	}
	if cfg.RechargeStartHour == 0 && cfg.RechargeEndHour == 0 {
		cfg.RechargeStartHour, cfg.RechargeEndHour = 23, 7
	}
	if cfg.RechargePerHour == 0 {
		cfg.RechargePerHour = 0.25
	}
	if rng == nil {
		return nil, errors.New("energy: nil rng")
	}
	return &Battery{
		capacityJ:         cfg.CapacityJ,
		level:             cfg.InitialLevel,
		drainPerHour:      cfg.DrainPerHour,
		rechargeStartHour: cfg.RechargeStartHour,
		rechargeEndHour:   cfg.RechargeEndHour,
		rechargePerHour:   cfg.RechargePerHour,
		rng:               rng,
	}, nil
}

// Level returns the battery level in [0, 1].
func (b *Battery) Level() float64 { return b.level }

// CapacityJ returns the battery capacity in joules.
func (b *Battery) CapacityJ() float64 { return b.capacityJ }

// inRechargeWindow reports whether hourOfDay falls in the charging window,
// which may wrap midnight.
func (b *Battery) inRechargeWindow(hourOfDay int) bool {
	s, e := b.rechargeStartHour, b.rechargeEndHour
	if s <= e {
		return hourOfDay >= s && hourOfDay < e
	}
	return hourOfDay >= s || hourOfDay < e
}

// Tick advances the battery by one hour at the given hour of day, applying
// background drain or recharge with jitter.
func (b *Battery) Tick(hourOfDay int) {
	if b.inRechargeWindow(hourOfDay) {
		b.level += b.rechargePerHour * (0.8 + 0.4*b.rng.Float64())
	} else {
		b.level -= b.drainPerHour * (0.5 + b.rng.Float64())
	}
	b.draws++
	b.level = math.Max(0, math.Min(1, b.level))
}

// FastForward applies k consecutive Ticks in one call; hourAt returns the
// hour of day for the i-th skipped tick (i in [0, k)). There is no closed
// form for the batch — the jitter stream has no jump-ahead and the level
// clamps per tick — so the ticks are replayed in a tight loop over the
// arena-resident RNG, which is bit-identical to k separate Tick calls by
// construction. Devices parked by the event-driven round loop use this to
// catch their diurnal battery trajectory up on wake (DESIGN.md §14).
//
// richnote:allocfree
func (b *Battery) FastForward(k int, hourAt func(int) int) {
	for i := 0; i < k; i++ {
		b.Tick(hourAt(i))
	}
}

// Draws returns how many RNG draws the battery has consumed. Together with
// the seed it pins the jitter stream, for snapshot/restore.
func (b *Battery) Draws() uint64 { return b.draws }

// Restore sets the level and fast-forwards the RNG to the given draw count
// on a freshly seeded battery, resuming the exact jitter sequence of the
// snapshotted one.
func (b *Battery) Restore(level float64, draws uint64) error {
	if level < 0 || level > 1 {
		return fmt.Errorf("energy: restore level %f outside [0,1]", level)
	}
	if draws < b.draws {
		return fmt.Errorf("energy: restore draws %d behind current %d", draws, b.draws)
	}
	for b.draws < draws {
		b.rng.Float64()
		b.draws++
	}
	b.level = level
	return nil
}

// Spend draws the given joules from the battery. It returns the amount
// actually drawn (bounded by the remaining charge).
func (b *Battery) Spend(joules float64) float64 {
	if joules < 0 {
		return 0
	}
	avail := b.level * b.capacityJ
	spent := math.Min(joules, avail)
	b.level -= spent / b.capacityJ
	if b.level < 0 {
		b.level = 0
	}
	return spent
}

// ReplenishRate returns e(t): the energy budget (joules) granted to the
// notification scheduler for the current round, given the per-round target
// kappa. The grant scales with battery level — a full battery grants above
// target, a depleted battery throttles the scheduler — mimicking the
// variable-rate replenishment of Algorithm 2.
func (b *Battery) ReplenishRate(kappa float64) float64 {
	switch {
	case b.level >= 0.8:
		return kappa * 1.5
	case b.level >= 0.5:
		return kappa
	case b.level >= 0.2:
		return kappa * 0.5
	default:
		return kappa * 0.1
	}
}
