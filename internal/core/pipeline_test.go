package core

import (
	"reflect"
	"testing"

	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/obs"
	"github.com/richnote/richnote/internal/trace"
)

// testPipeline builds a small, fast pipeline shared by tests in this file.
func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := BuildPipeline(PipelineConfig{
		Trace:  trace.Config{Users: 50, Rounds: 96, Seed: 21},
		Scorer: ScorerOracle, // skip forest training in fast tests
	})
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	return p
}

const mb = 1 << 20

func TestBuildPipelineForest(t *testing.T) {
	p, err := BuildPipeline(PipelineConfig{
		Trace: trace.Config{Users: 30, Rounds: 48, Seed: 5},
	})
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	if p.Scorer == nil || p.Trace == nil {
		t.Fatal("incomplete pipeline")
	}
	if p.Trace.TotalNotifications() == 0 {
		t.Fatal("empty trace")
	}
}

func TestBuildPipelineUnknownScorer(t *testing.T) {
	_, err := BuildPipeline(PipelineConfig{
		Trace:  trace.Config{Users: 10, Rounds: 10, Seed: 1},
		Scorer: ScorerKind(99),
	})
	if err == nil {
		t.Fatal("unknown scorer accepted")
	}
}

// TestBuildPipelineWorkerCountInvariant pins the parallel-build contract:
// any Workers value trains the same forest and enriches the same arrivals
// as a serial build.
func TestBuildPipelineWorkerCountInvariant(t *testing.T) {
	build := func(workers int) *Pipeline {
		t.Helper()
		p, err := BuildPipeline(PipelineConfig{
			Trace:   trace.Config{Users: 30, Rounds: 48, Seed: 5},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("BuildPipeline(workers=%d): %v", workers, err)
		}
		return p
	}
	serial := build(1)
	for _, workers := range []int{2, 8} {
		par := build(workers)
		if !reflect.DeepEqual(par.Arrivals(), serial.Arrivals()) {
			t.Fatalf("workers=%d produced different enriched arrivals than serial build", workers)
		}
		for ui := range serial.Trace.Users {
			for ni := range serial.Trace.Users[ui].Notifications {
				n := &serial.Trace.Users[ui].Notifications[ni]
				if serial.Scorer.Score(n) != par.Scorer.Score(n) {
					t.Fatalf("workers=%d trained a different forest (score mismatch user %d)", workers, ui)
				}
			}
		}
	}
}

func TestBuildPipelineRecordsPhases(t *testing.T) {
	rec := obs.NewRecorder()
	if _, err := BuildPipeline(PipelineConfig{
		Trace:    trace.Config{Users: 10, Rounds: 24, Seed: 3},
		Scorer:   ScorerOracle,
		Recorder: rec,
	}); err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	got := map[string]bool{}
	for _, s := range rec.Spans() {
		got[s.Name] = true
	}
	for _, phase := range []string{"trace", "train", "enrich"} {
		if !got[phase] {
			t.Fatalf("recorder missing phase %q (got %v)", phase, rec.Spans())
		}
	}
}

func TestRunRequiresBudget(t *testing.T) {
	p := testPipeline(t)
	if _, err := p.Run(RunConfig{Strategy: StrategyRichNote}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestRunRichNoteDeliversNearlyEverything(t *testing.T) {
	p := testPipeline(t)
	res, err := p.Run(RunConfig{
		Strategy:          StrategyRichNote,
		WeeklyBudgetBytes: 20 * mb,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The paper's headline: RichNote delivers close to 100% of
	// notifications by adapting presentation levels.
	if got := res.Report.DeliveryRatio(); got < 0.9 {
		t.Fatalf("RichNote delivery ratio %.3f, want >= 0.9", got)
	}
	if res.Lyapunov.Users != 50 {
		t.Fatalf("controller stats for %d users, want 50", res.Lyapunov.Users)
	}
	if res.Report.Users != 50 {
		t.Fatalf("report covers %d users, want 50", res.Report.Users)
	}
}

func TestRunBaselinesDeliverLessAtLowBudget(t *testing.T) {
	p := testPipeline(t)
	rich, err := p.Run(RunConfig{Strategy: StrategyRichNote, WeeklyBudgetBytes: 3 * mb})
	if err != nil {
		t.Fatalf("Run richnote: %v", err)
	}
	fifo, err := p.Run(RunConfig{Strategy: StrategyFIFO, FixedLevel: 3, WeeklyBudgetBytes: 3 * mb})
	if err != nil {
		t.Fatalf("Run fifo: %v", err)
	}
	util, err := p.Run(RunConfig{Strategy: StrategyUtil, FixedLevel: 3, WeeklyBudgetBytes: 3 * mb})
	if err != nil {
		t.Fatalf("Run util: %v", err)
	}
	if rich.Report.DeliveryRatio() <= fifo.Report.DeliveryRatio() {
		t.Fatalf("richnote ratio %.3f not above fifo %.3f",
			rich.Report.DeliveryRatio(), fifo.Report.DeliveryRatio())
	}
	if rich.Report.DeliveryRatio() <= util.Report.DeliveryRatio() {
		t.Fatalf("richnote ratio %.3f not above util %.3f",
			rich.Report.DeliveryRatio(), util.Report.DeliveryRatio())
	}
	// And RichNote earns more total utility (the paper's ~2x claim; we
	// require strictly better).
	if rich.Report.UtilitySum <= util.Report.UtilitySum {
		t.Fatalf("richnote utility %.1f not above util %.1f",
			rich.Report.UtilitySum, util.Report.UtilitySum)
	}
}

func TestRunDeterministicForFixedSeeds(t *testing.T) {
	p := testPipeline(t)
	cfg := RunConfig{Strategy: StrategyRichNote, WeeklyBudgetBytes: 10 * mb, Workers: 4}
	r1, err := p.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := p.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Report.Delivered != r2.Report.Delivered ||
		r1.Report.UtilitySum != r2.Report.UtilitySum ||
		r1.Report.DeliveredBytes != r2.Report.DeliveredBytes {
		t.Fatalf("same-seed runs differ: %+v vs %+v", r1.Report, r2.Report)
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	p := testPipeline(t)
	base, err := p.Run(RunConfig{Strategy: StrategyRichNote, WeeklyBudgetBytes: 10 * mb, Workers: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	par, err := p.Run(RunConfig{Strategy: StrategyRichNote, WeeklyBudgetBytes: 10 * mb, Workers: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if base.Report.Delivered != par.Report.Delivered ||
		base.Report.UtilitySum != par.Report.UtilitySum {
		t.Fatalf("worker count changed results: %v vs %v", base.Report, par.Report)
	}
}

func TestRunWifiRicherThanCellular(t *testing.T) {
	p := testPipeline(t)
	cellOnly := network.CellOnlyMatrix()
	wifi := network.PaperMatrix()
	cell, err := p.Run(RunConfig{
		Strategy: StrategyRichNote, WeeklyBudgetBytes: 10 * mb, NetworkMatrix: &cellOnly,
	})
	if err != nil {
		t.Fatalf("Run cell: %v", err)
	}
	wifiRes, err := p.Run(RunConfig{
		Strategy: StrategyRichNote, WeeklyBudgetBytes: 10 * mb, NetworkMatrix: &wifi,
		StartState: network.StateCell,
	})
	if err != nil {
		t.Fatalf("Run wifi: %v", err)
	}
	richShare := func(r *RunResult) float64 {
		share := r.Report.LevelShare()
		return share[4] + share[5] + share[6]
	}
	if richShare(wifiRes) <= richShare(cell) {
		t.Fatalf("wifi rich-level share %.3f not above cellular %.3f (Fig 5c)",
			richShare(wifiRes), richShare(cell))
	}
}

// TestRunConfigZeroValueSentinels pins the documented defaults: Seed: 0
// resolves to the trace seed (an explicit zero seed cannot be expressed)
// and StartState: 0 resolves to network.StateCell.
func TestRunConfigZeroValueSentinels(t *testing.T) {
	const traceSeed = int64(1234)

	cfg := RunConfig{WeeklyBudgetBytes: 1}
	if err := cfg.applyDefaults(traceSeed); err != nil {
		t.Fatalf("applyDefaults: %v", err)
	}
	if cfg.Seed != traceSeed {
		t.Fatalf("Seed 0 resolved to %d, want trace seed %d", cfg.Seed, traceSeed)
	}
	if cfg.StartState != network.StateCell {
		t.Fatalf("StartState 0 resolved to %v, want StateCell", cfg.StartState)
	}
	if cfg.Strategy != StrategyRichNote || cfg.FixedLevel != 3 {
		t.Fatalf("strategy/level defaults %v/%d, want richnote/3", cfg.Strategy, cfg.FixedLevel)
	}
	if cfg.V != DefaultV || cfg.KappaJ != DefaultKappaJ {
		t.Fatalf("V/kappa defaults %f/%f, want %f/%f", cfg.V, cfg.KappaJ, DefaultV, DefaultKappaJ)
	}
	if cfg.Workers < 1 {
		t.Fatalf("Workers default %d, want >= 1", cfg.Workers)
	}

	// An explicit Seed: 0 is indistinguishable from unset: both runs are
	// seeded with the trace seed and must produce identical results.
	explicit := RunConfig{WeeklyBudgetBytes: 1, Seed: 0, StartState: 0}
	if err := explicit.applyDefaults(traceSeed); err != nil {
		t.Fatalf("applyDefaults: %v", err)
	}
	if explicit.Seed != cfg.Seed || explicit.StartState != cfg.StartState {
		t.Fatalf("explicit zero sentinels resolved differently: %+v vs %+v", explicit, cfg)
	}

	// Nonzero values pass through untouched.
	set := RunConfig{WeeklyBudgetBytes: 1, Seed: 77, StartState: network.StateWifi}
	if err := set.applyDefaults(traceSeed); err != nil {
		t.Fatalf("applyDefaults: %v", err)
	}
	if set.Seed != 77 || set.StartState != network.StateWifi {
		t.Fatalf("explicit values overridden: seed %d state %v", set.Seed, set.StartState)
	}
}

func TestRunNamesBaselinesWithLevel(t *testing.T) {
	p := testPipeline(t)
	res, err := p.Run(RunConfig{Strategy: StrategyFIFO, FixedLevel: 2, WeeklyBudgetBytes: 5 * mb})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Name != "fifo-L2" {
		t.Fatalf("name %q, want fifo-L2", res.Name)
	}
	rich, err := p.Run(RunConfig{Strategy: StrategyRichNote, WeeklyBudgetBytes: 5 * mb})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rich.Name != "richnote" {
		t.Fatalf("name %q, want richnote", rich.Name)
	}
}
