package core

import (
	"testing"
	"time"

	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
)

func newTestLive(t *testing.T) *Live {
	t.Helper()
	l, err := NewLive(LiveConfig{Seed: 1})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	return l
}

func alwaysCell() *network.Matrix {
	m := network.AlwaysCellMatrix()
	return &m
}

func addTestUser(t *testing.T, l *Live, user notif.UserID) {
	t.Helper()
	if err := l.AddUser(LiveUserConfig{
		User:              user,
		WeeklyBudgetBytes: 50 << 20,
		NetworkMatrix:     alwaysCell(),
	}); err != nil {
		t.Fatalf("AddUser: %v", err)
	}
}

func audioItem(id int64) notif.Item {
	return notif.Item{
		ID:        notif.ItemID(id),
		Kind:      notif.KindAudio,
		Topic:     notif.TopicFriendFeed,
		CreatedAt: time.Date(2015, 1, 1, 10, 0, 0, 0, time.UTC),
		Meta:      notif.Metadata{TrackID: id, TrackPopularity: 60},
	}
}

func TestLiveEndToEndDelivery(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 5}
	if err := l.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := int64(0); i < 8; i++ {
		l.Publish(topic, audioItem(100+i))
	}
	if err := l.RunRounds(12); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	rep := l.Collector().Aggregate()
	if rep.Arrived != 8 {
		t.Fatalf("arrived %d, want 8", rep.Arrived)
	}
	if rep.Delivered != 8 {
		t.Fatalf("delivered %d, want all 8", rep.Delivered)
	}
	if l.Round() != 12 {
		t.Fatalf("round %d after 12 rounds, want 12", l.Round())
	}
}

func TestLiveAddUserValidation(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	if err := l.AddUser(LiveUserConfig{User: 1, WeeklyBudgetBytes: 1 << 20}); err == nil {
		t.Fatal("duplicate user accepted")
	}
	if err := l.AddUser(LiveUserConfig{User: 2}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if err := l.AddUser(LiveUserConfig{User: 3, WeeklyBudgetBytes: 1 << 20, Strategy: StrategyKind(9)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestLiveSubscribeUnknownUser(t *testing.T) {
	l := newTestLive(t)
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 5}
	if err := l.Subscribe(99, topic); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestLivePublishWithoutSubscribersIsHarmless(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	l.Publish(pubsub.TopicID{Kind: notif.TopicPlaylist, Entity: 1}, audioItem(1))
	if err := l.RunRounds(2); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if rep := l.Collector().Aggregate(); rep.Arrived != 0 {
		t.Fatalf("arrived %d from unsubscribed topic, want 0", rep.Arrived)
	}
}

func TestLiveFanoutToMultipleSubscribers(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	addTestUser(t, l, 2)
	topic := pubsub.TopicID{Kind: notif.TopicArtistPage, Entity: 3}
	for _, u := range []notif.UserID{1, 2} {
		if err := l.Subscribe(u, topic); err != nil {
			t.Fatalf("Subscribe(%d): %v", u, err)
		}
	}
	l.Publish(topic, audioItem(7))
	if err := l.RunRounds(4); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	rep := l.Collector().Aggregate()
	if rep.Arrived != 2 {
		t.Fatalf("arrived %d, want one per subscriber", rep.Arrived)
	}
	if rep.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", rep.Delivered)
	}
}

func TestLiveOnDeliveryHook(t *testing.T) {
	fired := 0
	l, err := NewLive(LiveConfig{
		Seed:       2,
		OnDelivery: func(notif.Delivery) { fired++ },
	})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	addTestUser(t, l, 1)
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 1}
	if err := l.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	l.Publish(topic, audioItem(1))
	if err := l.RunRounds(6); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if fired == 0 {
		t.Fatal("OnDelivery hook never fired")
	}
}

func TestLiveStepRoundIncrements(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	if err := l.StepRound(); err != nil {
		t.Fatalf("StepRound: %v", err)
	}
	if l.Round() != 1 {
		t.Fatalf("round %d, want 1", l.Round())
	}
	// RunRounds after manual steps continues from the current round.
	if err := l.RunRounds(3); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if l.Round() != 4 {
		t.Fatalf("round %d, want 4", l.Round())
	}
	if err := l.RunRounds(0); err != nil {
		t.Fatalf("RunRounds(0): %v", err)
	}
}

func TestLiveSetNetwork(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 1}
	if err := l.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Flight mode: items queue.
	off := network.Matrix{{1, 0, 0}, {1, 0, 0}, {1, 0, 0}}
	if err := l.SetNetwork(1, off, network.StateOff); err != nil {
		t.Fatalf("SetNetwork: %v", err)
	}
	l.Publish(topic, audioItem(1))
	if err := l.RunRounds(3); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	d, err := l.Device(1)
	if err != nil {
		t.Fatalf("Device: %v", err)
	}
	if d.QueueLen() != 1 {
		t.Fatalf("queue %d while offline, want 1", d.QueueLen())
	}
	// Back online: drains.
	if err := l.SetNetwork(1, network.AlwaysCellMatrix(), network.StateCell); err != nil {
		t.Fatalf("SetNetwork: %v", err)
	}
	if err := l.RunRounds(3); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if d.QueueLen() != 0 {
		t.Fatalf("queue %d after reconnect, want 0", d.QueueLen())
	}
	if err := l.SetNetwork(42, off, network.StateOff); err == nil {
		t.Fatal("SetNetwork accepted unknown user")
	}
}

func TestLiveDeviceAccessor(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	if _, err := l.Device(1); err != nil {
		t.Fatalf("Device(1): %v", err)
	}
	if _, err := l.Device(9); err == nil {
		t.Fatal("Device(9) succeeded for unknown user")
	}
}

func TestLiveBaselineStrategies(t *testing.T) {
	l := newTestLive(t)
	for _, cfg := range []LiveUserConfig{
		{User: 1, Strategy: StrategyFIFO, FixedLevel: 2, WeeklyBudgetBytes: 50 << 20, NetworkMatrix: alwaysCell()},
		{User: 2, Strategy: StrategyUtil, FixedLevel: 3, WeeklyBudgetBytes: 50 << 20, NetworkMatrix: alwaysCell()},
	} {
		if err := l.AddUser(cfg); err != nil {
			t.Fatalf("AddUser(%d): %v", cfg.User, err)
		}
	}
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 2}
	for _, u := range []notif.UserID{1, 2} {
		if err := l.Subscribe(u, topic); err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
	}
	l.Publish(topic, audioItem(5))
	if err := l.RunRounds(6); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	rep := l.Collector().Aggregate()
	if rep.Delivered != 2 {
		t.Fatalf("delivered %d, want 2", rep.Delivered)
	}
	// Fixed levels: FIFO user at level 2, UTIL user at level 3.
	if rep.LevelCounts[2] != 1 || rep.LevelCounts[3] != 1 {
		t.Fatalf("level counts %v, want one L2 and one L3", rep.LevelCounts)
	}
}
