package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/sched"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/survey"
	"github.com/richnote/richnote/internal/trace"
	"github.com/richnote/richnote/internal/utility"
)

// LiveConfig configures a Live service.
type LiveConfig struct {
	// Epoch anchors virtual time; defaults to 2015-01-01 UTC.
	Epoch time.Time
	// RoundLen defaults to one hour.
	RoundLen time.Duration
	// Scorer provides content utility for incoming items; defaults to a
	// neutral constant scorer (no personalization).
	Scorer utility.ContentScorer
	// Generator builds presentation ladders; defaults to the paper's
	// six-level audio generator with Equation 8 utilities.
	Generator media.Generator
	// OnDelivery, when set, observes every delivered notification.
	OnDelivery func(notif.Delivery)
	// Seed drives per-user randomness.
	Seed int64
}

// LiveUserConfig registers one device with the live service.
type LiveUserConfig struct {
	User              notif.UserID
	Strategy          StrategyKind
	FixedLevel        int
	WeeklyBudgetBytes int64
	// V and KappaJ tune RichNote's controller; zero selects defaults.
	V      float64
	KappaJ float64
	// NetworkMatrix defaults to the paper's WIFI/CELL/OFF model.
	NetworkMatrix *network.Matrix
	StartState    network.State
}

// Live is a kernel-driven notification service: publications enter through
// the pub/sub broker, are enriched, queued on per-user devices and
// delivered by the round scheduler.
type Live struct {
	cfg      LiveConfig
	kernel   *sim.Kernel
	broker   *pubsub.Broker
	enricher *utility.Enricher
	col      *metrics.Collector

	devices map[notif.UserID]*sched.Device
	inbox   map[notif.UserID][]sched.Queued
	round   int
}

// NewLive validates the configuration and builds the service.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.RoundLen <= 0 {
		cfg.RoundLen = time.Hour
	}
	if cfg.Scorer == nil {
		cfg.Scorer = utility.ConstantScorer{Value: 0.5}
	}
	if cfg.Generator == nil {
		g, err := media.NewAudioGenerator(media.AudioConfig{Utility: survey.Equation8})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cfg.Generator = g
	}
	enricher, err := utility.NewEnricher(cfg.Scorer, cfg.Generator)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Live{
		cfg:      cfg,
		kernel:   sim.NewKernel(cfg.Epoch),
		broker:   pubsub.NewBroker(),
		enricher: enricher,
		col:      metrics.NewCollector(),
		devices:  make(map[notif.UserID]*sched.Device),
		inbox:    make(map[notif.UserID][]sched.Queued),
	}, nil
}

// Broker exposes the underlying pub/sub broker for subscription management.
func (l *Live) Broker() *pubsub.Broker { return l.broker }

// Collector exposes the running metrics.
func (l *Live) Collector() *metrics.Collector { return l.col }

// Round returns the next round index to execute.
func (l *Live) Round() int { return l.round }

// ErrDuplicateUser is returned when a user is registered twice.
var ErrDuplicateUser = errors.New("core: user already registered")

// AddUser registers a device for the user.
func (l *Live) AddUser(cfg LiveUserConfig) error {
	if _, dup := l.devices[cfg.User]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateUser, cfg.User)
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = StrategyRichNote
	}
	if cfg.FixedLevel == 0 {
		cfg.FixedLevel = 3
	}
	if cfg.V == 0 {
		cfg.V = DefaultV
	}
	if cfg.KappaJ == 0 {
		cfg.KappaJ = DefaultKappaJ
	}
	if cfg.NetworkMatrix == nil {
		m := network.PaperMatrix()
		cfg.NetworkMatrix = &m
	}
	if cfg.StartState == 0 {
		cfg.StartState = network.StateCell
	}

	userSeed := l.cfg.Seed ^ (int64(cfg.User+1) * 0x9e3779b9)
	netModel, err := network.NewModel(*cfg.NetworkMatrix, cfg.StartState, sim.NewRNG(userSeed, sim.StreamNetwork))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	battery, err := energy.NewBattery(energy.BatteryConfig{}, sim.NewRNG(userSeed, sim.StreamEnergy))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}

	var strategy sched.Strategy
	var ctl *lyapunov.Controller
	switch cfg.Strategy {
	case StrategyRichNote:
		ctl, err = lyapunov.New(lyapunov.Config{V: cfg.V, Kappa: cfg.KappaJ})
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		strategy = &sched.RichNote{}
	case StrategyFIFO:
		strategy, err = sched.NewFIFO(cfg.FixedLevel)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
	case StrategyUtil:
		strategy, err = sched.NewUtil(cfg.FixedLevel)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
	default:
		return fmt.Errorf("core: unknown strategy %d", cfg.Strategy)
	}

	roundsPerWeek := int(7 * 24 * time.Hour / l.cfg.RoundLen)
	device, err := sched.NewDevice(sched.DeviceConfig{
		User:              cfg.User,
		Strategy:          strategy,
		WeeklyBudgetBytes: cfg.WeeklyBudgetBytes,
		RoundsPerWeek:     roundsPerWeek,
		Epoch:             l.cfg.Epoch,
		RoundLen:          l.cfg.RoundLen,
		Network:           netModel,
		Capacity:          network.DefaultCapacity(),
		Battery:           battery,
		Transfer:          energy.DefaultTransferModel(),
		Controller:        ctl,
		Collector:         l.col,
	})
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	l.devices[cfg.User] = device
	return nil
}

// Subscribe connects the user's device to a broker topic in round mode:
// publications buffer in the broker and drain into the device's scheduling
// queue at the next round boundary.
func (l *Live) Subscribe(user notif.UserID, topic pubsub.TopicID) error {
	return l.SubscribeCadence(user, topic, 1)
}

// SubscribeCadence subscribes with a per-topic round cadence: publications
// buffer in the broker and drain into the device every cadence-th round.
// This is the paper's Section II round tuning — frequent friend feeds at
// cadence 1, infrequent artist/playlist feeds at larger cadences.
func (l *Live) SubscribeCadence(user notif.UserID, topic pubsub.TopicID, cadence int) error {
	if _, ok := l.devices[user]; !ok {
		return fmt.Errorf("core: unknown user %d", user)
	}
	return l.broker.SubscribeCadence(user, topic, pubsub.ModeRound, cadence, func(items []notif.Item) {
		for _, item := range items {
			item.Recipient = user
			n := &trace.Notification{Item: item, Round: l.round}
			rich, err := l.enricher.Enrich(n)
			if err != nil {
				continue // malformed publications are dropped, not fatal
			}
			l.inbox[user] = append(l.inbox[user], sched.Queued{Rich: rich})
		}
	})
}

// Publish injects a publication on a topic.
func (l *Live) Publish(topic pubsub.TopicID, item notif.Item) {
	l.broker.Publish(topic, item)
}

// StepRound executes one round across all devices: the broker drains
// round-mode subscriptions, inboxes flush into scheduling queues and every
// device runs Algorithm 2 once.
func (l *Live) StepRound() error {
	l.broker.EndRoundIndex(l.round)
	for user, device := range l.devices {
		if batch := l.inbox[user]; len(batch) > 0 {
			if err := device.Enqueue(batch); err != nil {
				return err
			}
			l.inbox[user] = nil
		}
		res, err := device.RunRound(l.round)
		if err != nil {
			return err
		}
		if l.cfg.OnDelivery != nil && res.Delivered > 0 {
			// Deliveries are observable through the collector; the hook
			// receives a synthetic summary per round for streaming UIs.
			l.cfg.OnDelivery(notif.Delivery{
				Recipient:      user,
				Size:           res.Bytes,
				EnergyJ:        res.EnergyJ,
				DeliveredRound: l.round,
				DeliveredAt:    l.cfg.Epoch.Add(time.Duration(l.round) * l.cfg.RoundLen),
			})
		}
	}
	l.round++
	return nil
}

// RunRounds executes n rounds through the event kernel, which keeps the
// virtual clock consistent with round boundaries.
func (l *Live) RunRounds(n int) error {
	if n <= 0 {
		return nil
	}
	var firstErr error
	start := time.Duration(l.round) * l.cfg.RoundLen
	until := time.Duration(l.round+n) * l.cfg.RoundLen
	err := l.kernel.Every(start, l.cfg.RoundLen, until, func(k *sim.Kernel) {
		if err := l.StepRound(); err != nil && firstErr == nil {
			firstErr = err
			k.Stop()
		}
	})
	if err != nil {
		return err
	}
	l.kernel.RunUntil(until)
	return firstErr
}

// SetNetwork swaps a user's connectivity model mid-run (e.g. reaching home
// WiFi or entering flight mode). Queue and budget state persist.
func (l *Live) SetNetwork(user notif.UserID, matrix network.Matrix, start network.State) error {
	device, ok := l.devices[user]
	if !ok {
		return fmt.Errorf("core: unknown user %d", user)
	}
	userSeed := l.cfg.Seed ^ (int64(user+1) * 0x9e3779b9) ^ int64(l.round)
	model, err := network.NewModel(matrix, start, sim.NewRNG(userSeed, sim.StreamNetwork))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return device.SetNetwork(model)
}

// Device returns the device registered for a user, for inspection.
func (l *Live) Device(user notif.UserID) (*sched.Device, error) {
	d, ok := l.devices[user]
	if !ok {
		return nil, fmt.Errorf("core: unknown user %d", user)
	}
	return d, nil
}
