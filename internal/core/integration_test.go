package core

// Integration scenarios across the full stack: pub/sub -> enrichment ->
// scheduler -> device, including failure injection (battery collapse,
// network partition) and recovery.

import (
	"testing"
	"time"

	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/trace"
)

// TestIntegrationPartitionAndRecovery drives a device through a network
// partition: items queue while offline, nothing is lost, and the backlog
// drains after reconnection with queuing delays accounted.
func TestIntegrationPartitionAndRecovery(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 1}
	if err := l.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	off := network.Matrix{{1, 0, 0}, {1, 0, 0}, {1, 0, 0}}
	if err := l.SetNetwork(1, off, network.StateOff); err != nil {
		t.Fatalf("SetNetwork: %v", err)
	}
	// 12 offline rounds with 2 publications each.
	id := int64(1)
	for r := 0; r < 12; r++ {
		for i := 0; i < 2; i++ {
			l.Publish(topic, audioItem(id))
			id++
		}
		if err := l.StepRound(); err != nil {
			t.Fatalf("StepRound: %v", err)
		}
	}
	d, err := l.Device(1)
	if err != nil {
		t.Fatalf("Device: %v", err)
	}
	if d.QueueLen() != 24 {
		t.Fatalf("queue %d after partition, want 24", d.QueueLen())
	}
	if rep := l.Collector().Aggregate(); rep.Delivered != 0 {
		t.Fatalf("delivered %d during partition", rep.Delivered)
	}

	// Reconnect; backlog must drain and delays reflect the partition.
	if err := l.SetNetwork(1, network.AlwaysCellMatrix(), network.StateCell); err != nil {
		t.Fatalf("SetNetwork: %v", err)
	}
	if err := l.RunRounds(12); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	rep := l.Collector().Aggregate()
	if rep.Delivered != 24 {
		t.Fatalf("delivered %d after recovery, want 24", rep.Delivered)
	}
	if rep.AvgDelayRounds() <= 1 {
		t.Fatalf("avg delay %.2f rounds, want > 1 (partition must show up)", rep.AvgDelayRounds())
	}
	if rep.DelayP95Rounds < rep.DelayP50Rounds {
		t.Fatalf("delay percentiles inverted: p50 %.1f p95 %.1f", rep.DelayP50Rounds, rep.DelayP95Rounds)
	}
}

// TestIntegrationBudgetExhaustionDegradesGracefully verifies the headline
// adaptive behaviour end to end: when the plan is minuscule, RichNote
// falls back to metadata-only but keeps delivering.
func TestIntegrationBudgetExhaustionDegradesGracefully(t *testing.T) {
	l := newTestLive(t)
	if err := l.AddUser(LiveUserConfig{
		User:              1,
		WeeklyBudgetBytes: 256 << 10, // 256 KB/week
		NetworkMatrix:     alwaysCell(),
	}); err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 2}
	if err := l.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := int64(0); i < 30; i++ {
		l.Publish(topic, audioItem(i))
	}
	if err := l.RunRounds(24); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	rep := l.Collector().Aggregate()
	if rep.Delivered != 30 {
		t.Fatalf("delivered %d of 30 on a tiny budget, want all (via metadata)", rep.Delivered)
	}
	if rep.LevelCounts[1] < 25 {
		t.Fatalf("metadata-only deliveries %d, want the vast majority", rep.LevelCounts[1])
	}
	if rep.DeliveredBytes > 256<<10 {
		t.Fatalf("delivered %d bytes, exceeds the weekly plan", rep.DeliveredBytes)
	}
}

// TestIntegrationPipelineMatchesCollector cross-checks the pipeline's
// aggregate report against independently recomputed trace ground truth.
func TestIntegrationPipelineMatchesCollector(t *testing.T) {
	p, err := BuildPipeline(PipelineConfig{
		Trace:  trace.Config{Users: 30, Rounds: 72, Seed: 13},
		Scorer: ScorerOracle,
	})
	if err != nil {
		t.Fatalf("BuildPipeline: %v", err)
	}
	res, err := p.Run(RunConfig{Strategy: StrategyRichNote, WeeklyBudgetBytes: 50 << 20})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := trace.ComputeStats(p.Trace)
	if res.Report.Arrived != st.Records {
		t.Fatalf("arrived %d != trace records %d", res.Report.Arrived, st.Records)
	}
	if res.Report.ClickedTotal != st.Clicked {
		t.Fatalf("clicked %d != trace clicked %d", res.Report.ClickedTotal, st.Clicked)
	}
	// RichNote delivers everything here, so recall must be exactly 1.
	if res.Report.Recall() != 1 {
		t.Fatalf("recall %.3f with full delivery, want 1", res.Report.Recall())
	}
	// Delivered utility cannot exceed the sum of max-level utilities.
	var maxUtility float64
	for _, ut := range p.Trace.Users {
		for _, n := range ut.Notifications {
			maxUtility += n.LatentP // Up(max) = 1
		}
	}
	if res.Report.TrueUtilitySum > maxUtility+1e-6 {
		t.Fatalf("true utility %.1f exceeds theoretical cap %.1f", res.Report.TrueUtilitySum, maxUtility)
	}
}

// TestIntegrationRoundCadence verifies the Section II per-feed round
// tuning through the Live API: a slow-cadence artist feed accumulates and
// arrives in batches.
func TestIntegrationRoundCadence(t *testing.T) {
	l := newTestLive(t)
	addTestUser(t, l, 1)
	fast := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 1}
	slow := pubsub.TopicID{Kind: notif.TopicArtistPage, Entity: 2}
	if err := l.SubscribeCadence(1, fast, 1); err != nil {
		t.Fatalf("SubscribeCadence fast: %v", err)
	}
	if err := l.SubscribeCadence(1, slow, 6); err != nil {
		t.Fatalf("SubscribeCadence slow: %v", err)
	}
	if err := l.SubscribeCadence(1, slow, 0); err == nil {
		t.Fatal("cadence 0 accepted")
	}
	id := int64(1)
	for r := 0; r < 12; r++ {
		l.Publish(fast, audioItem(id))
		id++
		l.Publish(slow, audioItem(1000+id))
		if err := l.StepRound(); err != nil {
			t.Fatalf("StepRound: %v", err)
		}
	}
	rep := l.Collector().Aggregate()
	// Fast feed: all 12 arrive. Slow feed drains at rounds 0 and 6; the
	// publications of rounds 6..11 are still pending in the broker.
	if rep.Arrived != 12+7 {
		t.Fatalf("arrived %d, want 19 (12 fast + 7 slow drained)", rep.Arrived)
	}
}

// TestIntegrationHookObservesRounds verifies delivery observability
// through the OnDelivery hook with wall-clock timestamps.
func TestIntegrationHookObservesRounds(t *testing.T) {
	var stamps []time.Time
	l, err := NewLive(LiveConfig{
		Seed:       8,
		OnDelivery: func(d notif.Delivery) { stamps = append(stamps, d.DeliveredAt) },
	})
	if err != nil {
		t.Fatalf("NewLive: %v", err)
	}
	addTestUser(t, l, 1)
	topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 3}
	if err := l.Subscribe(1, topic); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	l.Publish(topic, audioItem(1))
	if err := l.RunRounds(4); err != nil {
		t.Fatalf("RunRounds: %v", err)
	}
	if len(stamps) == 0 {
		t.Fatal("no delivery observed")
	}
	epoch := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, s := range stamps {
		if s.Before(epoch) || s.After(epoch.Add(5*time.Hour)) {
			t.Fatalf("delivery timestamp %s outside simulated window", s)
		}
	}
}
