// Package core assembles the full RichNote framework of Section IV: the
// pipeline from raw notification trace through content-utility learning,
// presentation generation and utility scoring, into the per-user
// round-based scheduler, producing the evaluation metrics of Section V.
//
// Two entry points are provided:
//
//   - Pipeline/Run: trace-driven batch evaluation. A Pipeline owns the
//     generated workload, the trained content-utility model and the
//     pre-enriched per-round arrivals; Run executes one scheduling
//     configuration (strategy, budget, network model, Lyapunov knobs) over
//     it. Building the pipeline once and sweeping Run configurations is
//     how every figure of the paper is regenerated.
//   - Live: an event-kernel-driven service wired through the pub/sub
//     broker, for interactive/streaming use (see the examples).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/obs"
	"github.com/richnote/richnote/internal/sched"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/survey"
	"github.com/richnote/richnote/internal/trace"
	"github.com/richnote/richnote/internal/utility"
)

// ScorerKind selects the content-utility model.
type ScorerKind int

// Content-utility model choices.
const (
	// ScorerForest trains the paper's Random Forest on the trace labels.
	ScorerForest ScorerKind = iota + 1
	// ScorerOracle uses the latent ground-truth probability (upper bound).
	ScorerOracle
	// ScorerConstant assigns Uc = 0.5 to everything (lower bound).
	ScorerConstant
)

// PipelineConfig configures workload generation and utility modeling.
type PipelineConfig struct {
	// Trace configures the synthetic workload (users, rounds, rates).
	Trace trace.Config
	// ExternalTrace replays a pre-generated workload instead of generating
	// one from Trace — e.g. a file loaded with trace.ReadFile, or the tail
	// of a trace.SplitByRound split for out-of-sample evaluation.
	ExternalTrace *trace.Trace
	// Scorer defaults to ScorerForest.
	Scorer ScorerKind
	// ExternalScorer overrides Scorer with a prebuilt content-utility
	// model, e.g. a forest trained on a different time window.
	ExternalScorer utility.ContentScorer
	// Forest configures the Random Forest when Scorer is ScorerForest.
	Forest forest.Config
	// AudioUtility is the duration-to-utility curve for presentation
	// generation; defaults to the paper's Equation 8.
	AudioUtility media.UtilityFn
	// Workers bounds build-phase parallelism: forest training fans out
	// over per-tree-seeded workers and enrichment shards users, both
	// producing results identical to a serial build. 0 selects
	// runtime.NumCPU(). Forest.Workers, when set, overrides this for the
	// training phase only.
	Workers int
	// Recorder, when non-nil, receives build-phase wall-clock timings
	// (phases "trace", "train", "enrich").
	Recorder *obs.Recorder
}

// Pipeline is a prepared workload: trace, trained scorer and pre-enriched
// per-user, per-round arrivals. Safe for concurrent Run calls.
type Pipeline struct {
	cfg   PipelineConfig
	Trace *trace.Trace
	// Gen is nil when the pipeline replays an external trace.
	Gen      *trace.Generator
	Scorer   utility.ContentScorer
	enricher *utility.Enricher
	seed     int64

	// arrivals[user][round] lists the enriched items arriving that round.
	arrivals [][][]sched.Queued
}

// BuildPipeline generates the trace, trains the content-utility model and
// pre-enriches every notification. Training and enrichment run on up to
// cfg.Workers goroutines; the built pipeline is identical for any worker
// count.
func BuildPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Scorer == 0 {
		cfg.Scorer = ScorerForest
	}
	if cfg.AudioUtility == nil {
		cfg.AudioUtility = survey.Equation8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	var gen *trace.Generator
	var tr *trace.Trace
	var seed int64
	if cfg.ExternalTrace != nil {
		tr = cfg.ExternalTrace
		seed = tr.MasterSeed
	} else {
		stopTrace := cfg.Recorder.Time("trace")
		g, err := trace.NewGenerator(cfg.Trace)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		generated, err := g.Generate()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		gen, tr = g, generated
		seed = g.Config().Seed
		stopTrace()
	}

	stopTrain := cfg.Recorder.Time("train")
	var scorer utility.ContentScorer
	if cfg.ExternalScorer != nil {
		scorer = cfg.ExternalScorer
		cfg.Scorer = -1 // sentinel: skip construction below
	}
	switch cfg.Scorer {
	case -1:
		// ExternalScorer already set.
	case ScorerForest:
		fcfg := cfg.Forest
		if fcfg.Trees == 0 {
			fcfg.Trees = 40
		}
		if fcfg.Seed == 0 {
			fcfg.Seed = seed + 1
		}
		if fcfg.Workers == 0 {
			fcfg.Workers = cfg.Workers
		}
		s, err := utility.TrainForestScorer(tr, fcfg)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		scorer = s
	case ScorerOracle:
		scorer = utility.OracleScorer{}
	case ScorerConstant:
		scorer = utility.ConstantScorer{Value: 0.5}
	default:
		return nil, fmt.Errorf("core: unknown scorer kind %d", cfg.Scorer)
	}
	stopTrain()

	audioGen, err := media.NewAudioGenerator(media.AudioConfig{Utility: cfg.AudioUtility})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Every audio notification shares one of at most two ladders, so
	// enrichment becomes a score plus a map lookup instead of
	// regenerating six presentations per notification.
	enricher, err := utility.NewEnricher(scorer, media.NewCachedGenerator(audioGen))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	p := &Pipeline{cfg: cfg, Trace: tr, Gen: gen, Scorer: scorer, enricher: enricher, seed: seed}
	stopEnrich := cfg.Recorder.Time("enrich")
	if err := p.enrichAll(cfg.Workers); err != nil {
		return nil, err
	}
	stopEnrich()
	return p, nil
}

// enrichAll precomputes the per-round arrival lists once; Run
// configurations share them read-only. Users shard across workers the
// same way Run shards them; each user's arrivals depend only on that
// user's notifications and the (read-only) scorer, so the result is
// identical to a serial pass.
func (p *Pipeline) enrichAll(workers int) error {
	users := len(p.Trace.Users)
	p.arrivals = make([][][]sched.Queued, users)
	if workers > users {
		workers = users
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ui := w; ui < users; ui += workers {
				if err := p.enrichUser(ui); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// enrichUser fills p.arrivals[ui] from that user's raw notifications.
func (p *Pipeline) enrichUser(ui int) error {
	perRound := make([][]sched.Queued, p.Trace.Rounds)
	for ni := range p.Trace.Users[ui].Notifications {
		n := &p.Trace.Users[ui].Notifications[ni]
		rich, err := p.enricher.Enrich(n)
		if err != nil {
			return fmt.Errorf("core: enrich: %w", err)
		}
		if n.Round < 0 || n.Round >= p.Trace.Rounds {
			return fmt.Errorf("core: notification round %d outside trace", n.Round)
		}
		perRound[n.Round] = append(perRound[n.Round], sched.Queued{
			Rich:       rich,
			Clicked:    n.Clicked,
			ClickRound: n.ClickRound,
			TrueUc:     n.LatentP,
		})
	}
	p.arrivals[ui] = perRound
	return nil
}

// Arrivals exposes the pre-enriched per-user, per-round arrival lists:
// arrivals[user][round] are the items entering that user's scheduler in
// that round. The returned structure is shared and must be treated as
// read-only; the experiments package uses it to compute hindsight bounds.
func (p *Pipeline) Arrivals() [][][]sched.Queued { return p.arrivals }

// StrategyKind selects the scheduling method under evaluation.
type StrategyKind int

// Scheduling methods of Section V-C.
const (
	StrategyRichNote StrategyKind = iota + 1
	StrategyFIFO
	StrategyUtil
)

// String names the strategy kind.
func (k StrategyKind) String() string {
	switch k {
	case StrategyRichNote:
		return "richnote"
	case StrategyFIFO:
		return "fifo"
	case StrategyUtil:
		return "util"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(k))
	}
}

// DefaultKappaJ is the per-round energy target κ. The paper quotes 3 kJ per
// hourly round against its trace-driven energy model; with the IMC 2009
// transfer model used here the equivalent pressure point is ~30 J per round
// (see EXPERIMENTS.md, "Energy scale").
const DefaultKappaJ = 30.0

// DefaultV is the Lyapunov utility weight (paper: 1000).
const DefaultV = 1000.0

// RunConfig is one scheduling configuration to evaluate over a pipeline.
type RunConfig struct {
	Strategy StrategyKind
	// FixedLevel is the presentation level used by FIFO and UTIL
	// (ignored by RichNote). The paper fixes baselines at levels with 5 s
	// or 10 s previews (levels 2 and 3).
	FixedLevel int
	// WeeklyBudgetBytes is the per-user cellular plan per week.
	WeeklyBudgetBytes int64
	// V and KappaJ tune the Lyapunov controller; zero selects defaults.
	V      float64
	KappaJ float64
	// NetworkMatrix defaults to network.AlwaysCellMatrix().
	NetworkMatrix *network.Matrix
	// StartState defaults to network.StateCell. Zero is a sentinel, not a
	// state: an explicit StartState of 0 (network.StateOff is 1) cannot be
	// expressed and always resolves to StateCell.
	StartState network.State
	// Capacity defaults to network.DefaultCapacity().
	Capacity *network.Capacity
	// Transfer defaults to energy.DefaultTransferModel().
	Transfer *energy.TransferModel
	// Seed perturbs the per-run randomness (network, battery); defaults to
	// the trace seed. Zero is a sentinel: an explicit Seed of 0 silently
	// becomes the trace seed, so runs that must differ need nonzero seeds.
	Seed int64
	// Workers bounds parallelism across users; 0 selects NumCPU.
	Workers int
	// MaxDeliveriesPerRound caps notifications pushed per device per round
	// (the delivery-queue pace); 0 selects the device default.
	MaxDeliveriesPerRound int
	// PerRoundBudget disables data-budget rollover for this run. Algorithm
	// 2 rolls budget over for RichNote; industry pipelines often do not,
	// which is the A3 baseline-variant ablation.
	PerRoundBudget bool
	// QueuedBaselines keeps FIFO/UTIL items in a persistent queue retried
	// every round (a stronger discipline than deployed batch digests).
	// The default drops what a round's budget cannot afford, matching the
	// industry behaviour the paper baselines against; RichNote always
	// keeps its scheduling queue either way.
	QueuedBaselines bool
	// UseDominance makes RichNote's per-round MCKP use the Sinha-Zoltners
	// LP-dominance greedy instead of the paper's level-by-level variant.
	UseDominance bool
	// Faults injects per-transfer failures into every device (per-user
	// deterministic streams derived from the run seed). The zero value
	// injects none and keeps run output bit-identical to a fault-free
	// build.
	Faults network.FaultConfig
	// MaxAttempts bounds failed transfer attempts per item before the
	// device drops it; 0 retries forever. Only meaningful with Faults.
	MaxAttempts int
	// DegradeOnFailure lowers a failed item's presentation cap one level
	// per retry. Only meaningful with Faults.
	DegradeOnFailure bool
}

func (c *RunConfig) applyDefaults(traceSeed int64) error {
	if c.Strategy == 0 {
		c.Strategy = StrategyRichNote
	}
	if c.FixedLevel == 0 {
		c.FixedLevel = 3 // metadata + 10 s, Spotify's current behaviour
	}
	if c.WeeklyBudgetBytes <= 0 {
		return errors.New("core: weekly budget must be positive")
	}
	if c.V == 0 {
		c.V = DefaultV
	}
	if c.KappaJ == 0 {
		c.KappaJ = DefaultKappaJ
	}
	if c.NetworkMatrix == nil {
		m := network.AlwaysCellMatrix()
		c.NetworkMatrix = &m
	}
	if c.StartState == 0 {
		c.StartState = network.StateCell
	}
	if c.Capacity == nil {
		cap := network.DefaultCapacity()
		c.Capacity = &cap
	}
	if c.Transfer == nil {
		tm := energy.DefaultTransferModel()
		c.Transfer = &tm
	}
	if c.Seed == 0 {
		c.Seed = traceSeed
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// RunResult is the outcome of one configuration.
type RunResult struct {
	Config    RunConfig
	Name      string
	Report    metrics.Report
	Collector *metrics.Collector
	// Lyapunov aggregates controller telemetry across users (RichNote
	// runs only).
	Lyapunov LyapunovSummary
	// Elapsed is the wall-clock execution time of the run.
	Elapsed time.Duration
}

// LyapunovSummary aggregates per-user controller stats.
type LyapunovSummary struct {
	Users    int
	AvgQMB   float64 // mean of per-user average backlog (MB)
	MaxQMB   float64
	AvgDrift float64
}

// Run executes one configuration over the pipeline's workload.
func (p *Pipeline) Run(cfg RunConfig) (*RunResult, error) {
	if err := cfg.applyDefaults(p.seed); err != nil {
		return nil, err
	}
	start := time.Now()

	users := len(p.Trace.Users)
	workers := cfg.Workers
	if workers > users {
		workers = users
	}
	if workers < 1 {
		workers = 1
	}

	type shardResult struct {
		collector *metrics.Collector
		lyap      []lyapunov.Stats
		err       error
	}
	results := make([]shardResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			col := metrics.NewCollector()
			var lyapStats []lyapunov.Stats
			for ui := w; ui < users; ui += workers {
				st, err := p.runUser(ui, cfg, col)
				if err != nil {
					results[w] = shardResult{err: err}
					return
				}
				if st != nil {
					lyapStats = append(lyapStats, *st)
				}
			}
			results[w] = shardResult{collector: col, lyap: lyapStats}
		}()
	}
	wg.Wait()

	merged := metrics.NewCollector()
	var summary LyapunovSummary
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		merged.Merge(r.collector)
		for _, st := range r.lyap {
			summary.Users++
			summary.AvgQMB += st.AvgQ
			summary.AvgDrift += st.AvgDrift
			if st.MaxQ > summary.MaxQMB {
				summary.MaxQMB = st.MaxQ
			}
		}
	}
	if summary.Users > 0 {
		summary.AvgQMB /= float64(summary.Users)
		summary.AvgDrift /= float64(summary.Users)
	}

	name := cfg.Strategy.String()
	if cfg.Strategy != StrategyRichNote {
		name = fmt.Sprintf("%s-L%d", name, cfg.FixedLevel)
	}
	return &RunResult{
		Config:    cfg,
		Name:      name,
		Report:    merged.Aggregate(),
		Collector: merged,
		Lyapunov:  summary,
		Elapsed:   time.Since(start),
	}, nil
}

// runUser simulates one user's full horizon and returns controller stats
// for RichNote runs.
func (p *Pipeline) runUser(ui int, cfg RunConfig, col *metrics.Collector) (*lyapunov.Stats, error) {
	userSeed := cfg.Seed ^ (int64(ui+1) * 0x9e3779b9)
	netModel, err := network.NewModel(*cfg.NetworkMatrix, cfg.StartState, sim.NewRNG(userSeed, sim.StreamNetwork))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	battery, err := energy.NewBattery(energy.BatteryConfig{}, sim.NewRNG(userSeed, sim.StreamEnergy))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// A nil fault model (faults disabled) keeps the delivery path on the
	// historical success-only code; the dedicated StreamFaults RNG keeps
	// fault draws from perturbing the network and battery streams.
	var faults *network.FaultModel
	if cfg.Faults.Enabled() {
		faults, err = network.NewFaultModel(cfg.Faults, sim.NewRNG(userSeed, sim.StreamFaults))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	var strategy sched.Strategy
	var ctl *lyapunov.Controller
	switch cfg.Strategy {
	case StrategyRichNote:
		ctl, err = lyapunov.New(lyapunov.Config{V: cfg.V, Kappa: cfg.KappaJ})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		strategy = &sched.RichNote{UseDominance: cfg.UseDominance}
	case StrategyFIFO:
		strategy, err = sched.NewFIFO(cfg.FixedLevel)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	case StrategyUtil:
		strategy, err = sched.NewUtil(cfg.FixedLevel)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown strategy %d", cfg.Strategy)
	}

	roundsPerWeek := int(7 * 24 * time.Hour / p.Trace.RoundLen)
	device, err := sched.NewDevice(sched.DeviceConfig{
		User:                  notif.UserID(ui),
		Strategy:              strategy,
		WeeklyBudgetBytes:     cfg.WeeklyBudgetBytes,
		RoundsPerWeek:         roundsPerWeek,
		Epoch:                 p.Trace.Epoch,
		RoundLen:              p.Trace.RoundLen,
		Network:               netModel,
		Capacity:              *cfg.Capacity,
		Battery:               battery,
		Transfer:              *cfg.Transfer,
		Controller:            ctl,
		Collector:             col,
		Faults:                faults,
		MaxAttempts:           cfg.MaxAttempts,
		DegradeOnFailure:      cfg.DegradeOnFailure,
		MaxDeliveriesPerRound: cfg.MaxDeliveriesPerRound,
		PerRoundBudget:        cfg.PerRoundBudget,
		DropUndelivered:       cfg.Strategy != StrategyRichNote && !cfg.QueuedBaselines,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	for round := 0; round < p.Trace.Rounds; round++ {
		if batch := p.arrivals[ui][round]; len(batch) > 0 {
			if err := device.Enqueue(batch); err != nil {
				return nil, err
			}
		}
		if _, err := device.RunRound(round); err != nil {
			return nil, err
		}
	}
	if ctl != nil {
		st := ctl.Stats()
		return &st, nil
	}
	return nil, nil
}
