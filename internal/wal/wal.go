// Package wal implements the durability substrate of richnote-serve's
// crash recovery (DESIGN.md §12): a per-shard append-only log of
// length-prefixed, CRC-framed binary records plus an atomic-write helper
// for the compacted snapshots the log is replayed on top of.
//
// Record framing, little-endian throughout:
//
//	[u32 frameLen] [u64 seq] [u8 type] [payload] [u32 crc]
//
// frameLen counts seq+type+payload (9 + len(payload)); crc is IEEE CRC-32
// over exactly those bytes. Sequence numbers are assigned by the writer,
// increase monotonically and survive log compaction (Reset), which is what
// lets recovery skip records a snapshot already covers after a crash
// between snapshot write and log truncation.
//
// The durability/consistency contract is prefix semantics: a crash loses
// an un-synced suffix of records, never a middle record, and recovery
// reconstructs exactly the state produced by the durable prefix. The
// reader enforces the matching read-side rule — a truncated or torn final
// record is tolerated (it is the lost suffix), a corrupt record with
// intact data after it is rejected (the log itself is damaged).
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Record type identifiers are owned by the caller; the log only frames
// them. Type 0 is reserved as invalid.

// frameHeaderLen is the fixed prefix before the payload: u32 frameLen,
// u64 seq, u8 type.
const frameHeaderLen = 4 + 8 + 1

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

// Sync policies, in decreasing durability order.
const (
	// SyncAlways fsyncs after every Append: no accepted record is ever
	// lost to a crash, at per-record fsync cost.
	SyncAlways SyncPolicy = iota + 1
	// SyncRound fsyncs on Commit (the shard's round boundary): a crash
	// loses at most the current round's tail. The default.
	SyncRound
	// SyncNever flushes to the OS on Commit but never fsyncs: a process
	// crash loses nothing the OS accepted, a machine crash may lose more.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncRound:
		return "round"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -wal.fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "round":
		return SyncRound, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, round or never)", s)
	}
}

// Validate reports whether the policy is one of the declared values.
func (p SyncPolicy) Validate() error {
	switch p {
	case SyncAlways, SyncRound, SyncNever:
		return nil
	default:
		return fmt.Errorf("wal: invalid sync policy %d", int(p))
	}
}

// Writer appends framed records to a log file. It buffers through a
// bufio.Writer and reuses a fixed header scratch, so the steady-state
// append path allocates nothing (the shard calls it on the round hot
// path). A Writer is single-owner state: only the owning shard goroutine
// may touch it.
type Writer struct {
	f      *os.File
	bw     *bufio.Writer
	policy SyncPolicy
	seq    uint64 // last assigned sequence number

	hdr  [frameHeaderLen]byte
	foot [4]byte
}

// OpenWriter opens (creating if needed) the log at path for appending.
// goodSize is the byte offset of the end of the last valid record as
// reported by ReplayFile; anything after it (a torn tail from a crash) is
// truncated before the first append so new records never follow garbage.
// lastSeq seeds the sequence counter: the first Append returns lastSeq+1.
func OpenWriter(path string, goodSize int64, lastSeq uint64, policy SyncPolicy) (*Writer, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if err := f.Truncate(goodSize); err != nil {
		_ = f.Close() // already failing; nothing to save
		return nil, fmt.Errorf("wal: truncate %s to %d: %w", path, goodSize, err)
	}
	if _, err := f.Seek(goodSize, 0); err != nil {
		_ = f.Close() // already failing; nothing to save
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), policy: policy, seq: lastSeq}, nil
}

// Seq returns the sequence number of the last appended record (or the
// lastSeq the writer was opened with).
func (w *Writer) Seq() uint64 { return w.seq }

// Append frames and buffers one record, returning its sequence number.
// Under SyncAlways the record is flushed and fsynced before Append
// returns; otherwise durability is deferred to Commit/Sync. The payload
// is copied into the write buffer, so callers may reuse it immediately.
//
// richnote:allocfree
func (w *Writer) Append(typ byte, payload []byte) (uint64, error) {
	w.seq++
	frameLen := uint32(9 + len(payload))
	putU32(w.hdr[0:4], frameLen)
	putU64(w.hdr[4:12], w.seq)
	w.hdr[12] = typ
	crc := crc32.ChecksumIEEE(w.hdr[4:frameHeaderLen])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	putU32(w.foot[:], crc)
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return w.seq, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return w.seq, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.bw.Write(w.foot[:]); err != nil {
		return w.seq, fmt.Errorf("wal: append: %w", err)
	}
	if w.policy == SyncAlways {
		return w.seq, w.Sync()
	}
	return w.seq, nil
}

// Sync flushes the buffer and fsyncs the file, regardless of policy.
// Snapshot and drain paths call it to pin the log before relying on it.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Commit marks a round boundary: SyncRound fsyncs, SyncNever flushes to
// the OS without fsync, SyncAlways has nothing left to do.
func (w *Writer) Commit() error {
	switch w.policy {
	case SyncRound:
		return w.Sync()
	case SyncNever:
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		return nil
	default:
		return nil
	}
}

// Reset truncates the log to empty after a snapshot has captured its
// effects (compaction). The sequence counter is NOT reset — it must stay
// monotonic so stale records in a log that survived a crash between
// snapshot write and truncation are recognizably old. The truncation is
// fsynced before Reset returns.
func (w *Writer) Reset() error {
	// Discard buffered-but-unwritten bytes: the snapshot supersedes them.
	w.bw.Reset(w.f)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset truncate: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset fsync: %w", err)
	}
	return nil
}

// Abort closes the log file WITHOUT flushing buffered records, discarding
// whatever Append buffered since the last Sync/Commit — the user-space
// half of kill -9. Crash-recovery tests use it to emulate a process dying
// mid-round without leaking the descriptor.
func (w *Writer) Abort() error {
	return w.f.Close()
}

// Close flushes, fsyncs and closes the log file.
func (w *Writer) Close() error {
	syncErr := w.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close: %w", closeErr)
	}
	return nil
}

// ErrCorrupt marks a log whose damage is not a simple lost tail: a record
// fails its CRC (or frames nonsense) while intact data follows it. Such a
// log cannot be trusted at all and recovery must refuse it rather than
// silently skip the hole.
var ErrCorrupt = errors.New("wal: corrupt record with intact data after it")

// ReplayResult reports what ReplayFile consumed.
type ReplayResult struct {
	// GoodSize is the byte offset just past the last valid record; a
	// writer reopened at this offset discards any torn tail.
	GoodSize int64
	// LastSeq is the sequence number of the last valid record (0 when the
	// log is empty).
	LastSeq uint64
	// Truncated is true when a torn or incomplete final record was
	// tolerated and dropped.
	Truncated bool
	// Records counts the valid records delivered to the callback.
	Records int
}

// ReplayFile reads the log at path and invokes fn for each valid record
// in order. The payload passed to fn aliases an internal buffer and is
// only valid for the duration of the call. A missing file is an empty
// log. A truncated or torn final record is tolerated per the package
// contract; damage followed by intact data returns ErrCorrupt.
func ReplayFile(path string, fn func(seq uint64, typ byte, payload []byte) error) (ReplayResult, error) {
	var res ReplayResult
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return res, nil
		}
		return res, fmt.Errorf("wal: read %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < 4 {
			res.Truncated = true // partial length prefix: lost tail
			break
		}
		frameLen := int(getU32(data[off : off+4]))
		if frameLen < 9 || rest < 4+frameLen+4 {
			// The declared frame does not fit in the remaining bytes: the
			// record was torn mid-write. By construction a torn write is
			// the last thing that happened to the file, so this is the
			// tolerated lost tail.
			res.Truncated = true
			break
		}
		frame := data[off+4 : off+4+frameLen]
		wantCRC := getU32(data[off+4+frameLen : off+4+frameLen+4])
		if crc32.ChecksumIEEE(frame) != wantCRC {
			if off+4+frameLen+4 == len(data) {
				// The damaged record is the final one: a torn overwrite of
				// the tail, tolerated like a short tail.
				res.Truncated = true
				break
			}
			return res, fmt.Errorf("%w: record at offset %d in %s", ErrCorrupt, off, path)
		}
		seq := getU64(frame[0:8])
		typ := frame[8]
		if fn != nil {
			if err := fn(seq, typ, frame[9:]); err != nil {
				return res, err
			}
		}
		off += 4 + frameLen + 4
		res.GoodSize = int64(off)
		res.LastSeq = seq
		res.Records++
	}
	return res, nil
}
