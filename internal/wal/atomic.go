package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that a crash at any point leaves
// either the old content or the new content at path, never a truncated
// hybrid: the content is written to a temporary file in the same
// directory, fsynced, closed, renamed over path, and the directory entry
// is fsynced. It is the shared durability primitive for WAL snapshots and
// trained-model files (forest.SaveFile).
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: create temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()           // best-effort cleanup on the failure path
			_ = os.Remove(tmp.Name()) // best-effort cleanup on the failure path
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: rename %s to %s: %w", tmp.Name(), path, err)
	}
	// Persist the rename itself: without the directory fsync a crash can
	// forget the new directory entry even though the data blocks are safe.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		// Some filesystems reject directory fsync; the rename is still
		// atomic, so treat only real I/O errors as fatal. EINVAL means
		// "not supported here".
		return fmt.Errorf("wal: fsync dir %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close dir %s: %w", dir, closeErr)
	}
	return nil
}
