package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustWriter(t *testing.T, path string, policy SyncPolicy) *Writer {
	t.Helper()
	w, err := OpenWriter(path, 0, 0, policy)
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	return w
}

type rec struct {
	seq     uint64
	typ     byte
	payload []byte
}

func replayAll(t *testing.T, path string) ([]rec, ReplayResult) {
	t.Helper()
	var got []rec
	res, err := ReplayFile(path, func(seq uint64, typ byte, payload []byte) error {
		got = append(got, rec{seq: seq, typ: typ, payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	return got, res
}

func TestRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w := mustWriter(t, path, SyncRound)
	want := []rec{
		{typ: 1, payload: []byte("hello")},
		{typ: 2, payload: nil},
		{typ: 1, payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{typ: 3, payload: []byte{0}},
	}
	for i := range want {
		seq, err := w.Append(want[i].typ, want[i].payload)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want[i].seq = seq
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, res := replayAll(t, path)
	if res.Truncated {
		t.Fatal("clean log reported truncated")
	}
	if res.LastSeq != 4 || res.Records != 4 {
		t.Fatalf("replay result %+v, want lastSeq 4 records 4", res)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].seq != want[i].seq || got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != res.GoodSize {
		t.Fatalf("GoodSize %d, file size %d", res.GoodSize, fi.Size())
	}
}

func TestMissingFileIsEmptyLog(t *testing.T) {
	res, err := ReplayFile(filepath.Join(t.TempDir(), "nope.wal"), nil)
	if err != nil {
		t.Fatalf("ReplayFile on missing file: %v", err)
	}
	if res.Records != 0 || res.Truncated || res.GoodSize != 0 {
		t.Fatalf("missing file replay %+v, want zero", res)
	}
}

// TestTruncatedTailTolerated cuts the file at every byte offset inside
// the final record and requires replay to tolerate the torn tail,
// returning exactly the intact prefix.
func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	w := mustWriter(t, full, SyncNever)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(1, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	_, fullRes := replayAll(t, full)
	lastStart := int(fullRes.GoodSize) - (4 + 9 + len("payload-2") + 4)
	for cut := lastStart + 1; cut < len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res := replayAll(t, path)
		if !res.Truncated {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(got) != 2 || res.LastSeq != 2 {
			t.Fatalf("cut %d: %d records lastSeq %d, want 2 records lastSeq 2", cut, len(got), res.LastSeq)
		}
		if res.GoodSize != int64(lastStart) {
			t.Fatalf("cut %d: GoodSize %d, want %d", cut, res.GoodSize, lastStart)
		}
	}
}

// TestAppendAfterTornTail reopens a torn log at GoodSize and appends; the
// new record must replace the garbage tail.
func TestAppendAfterTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w := mustWriter(t, path, SyncNever)
	for i := 0; i < 2; i++ {
		if _, err := w.Append(1, []byte("keep")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage that looks like a partial record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, res := replayAll(t, path)
	if !res.Truncated || res.Records != 2 {
		t.Fatalf("torn replay %+v, want 2 records truncated", res)
	}
	w2, err := OpenWriter(path, res.GoodSize, res.LastSeq, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w2.Append(2, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq after reopen %d, want 3", seq)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, res2 := replayAll(t, path)
	if res2.Truncated || len(got) != 3 || got[2].typ != 2 || string(got[2].payload) != "after" {
		t.Fatalf("after reopen: %+v %+v", got, res2)
	}
}

// TestTornMidFileRejected flips a byte in a non-final record: intact data
// follows the damage, so replay must refuse with ErrCorrupt rather than
// skip the hole.
func TestTornMidFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w := mustWriter(t, path, SyncNever)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(1, []byte("sixteen-byte-pay")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record (offset 13 is inside it).
	data[13] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReplayFile(path, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: err %v, want ErrCorrupt", err)
	}
}

// TestCorruptFinalRecordTolerated flips a byte in the last record: the
// damage reaches EOF, so it is the torn tail and must be dropped, not
// fatal.
func TestCorruptFinalRecordTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w := mustWriter(t, path, SyncNever)
	for i := 0; i < 2; i++ {
		if _, err := w.Append(1, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // last CRC byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, path)
	if !res.Truncated || len(got) != 1 {
		t.Fatalf("corrupt final record: %d records truncated=%t, want 1 true", len(got), res.Truncated)
	}
}

func TestResetCompactsAndKeepsSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w := mustWriter(t, path, SyncRound)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(1, []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	seq, err := w.Append(2, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("seq after Reset %d, want 6 (monotonic across compaction)", seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, res := replayAll(t, path)
	if len(got) != 1 || got[0].seq != 6 || string(got[0].payload) != "new" {
		t.Fatalf("after Reset: %+v %+v", got, res)
	}
}

// TestAppendZeroAlloc pins the hot-path property: once the bufio buffer
// exists, Append with a reused payload allocates nothing.
func TestAppendZeroAlloc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w := mustWriter(t, path, SyncNever)
	payload := bytes.Repeat([]byte{0x42}, 128)
	if _, err := w.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := w.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocated %.1f objects/op in steady state, want 0", allocs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.Reset()
	e.U8(7)
	e.U32(0xDEADBEEF)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(3.14159)
	e.F64(0)
	e.Bool(true)
	e.Bool(false)
	e.Str("")
	e.Str("snapshot")
	e.Time(time.Time{})
	instant := time.Date(2015, 6, 1, 13, 45, 0, 123, time.UTC)
	e.Time(instant)

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 %d", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Fatalf("U64 %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64 %f", v)
	}
	if v := d.F64(); v != 0 {
		t.Fatalf("F64 zero %f", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool")
	}
	if v := d.Str(); v != "" {
		t.Fatalf("Str empty %q", v)
	}
	if v := d.Str(); v != "snapshot" {
		t.Fatalf("Str %q", v)
	}
	if v := d.Time(); !v.IsZero() {
		t.Fatalf("zero time decoded to %v", v)
	}
	if v := d.Time(); !v.Equal(instant) {
		t.Fatalf("time %v, want %v", v, instant)
	}
	if d.Err() != nil {
		t.Fatalf("decode err: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
	// Short-buffer reads latch an error instead of panicking.
	if v := d.U64(); v != 0 || d.Err() == nil {
		t.Fatal("read past end did not latch error")
	}
}

func TestDecoderCountGuardsAllocation(t *testing.T) {
	var e Encoder
	e.U32(1 << 30) // absurd count with no data behind it
	d := NewDecoder(e.Bytes())
	if n := d.Count(8, "items"); n != 0 || d.Err() == nil {
		t.Fatalf("Count accepted absurd value: n=%d err=%v", n, d.Err())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A failing write leaves the original untouched and no temp litter.
	wantErr := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("partial")); werr != nil {
			return werr
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err %v, want boom", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old" {
		t.Fatalf("failed write clobbered target: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
	// A successful write replaces the content.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write([]byte("new-content"))
		return werr
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "new-content" {
		t.Fatalf("content %q, want new-content", data)
	}
}
