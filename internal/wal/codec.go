package wal

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// The codec is deliberately fixed-width little-endian: every value has
// exactly one encoding, so two runs that reach the same logical state
// produce byte-identical snapshots — the property the crash-recovery
// equivalence tests compare on. Floats round-trip through IEEE-754 bits,
// times through (IsZero, UnixNano) so the zero time survives exactly.

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b[0:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b[0:4])) | uint64(getU32(b[4:8]))<<32
}

// Encoder appends fixed-width binary values to a reusable buffer. The
// zero value is ready; Reset between uses keeps the capacity, so encoding
// on the round hot path allocates nothing once warmed.
type Encoder struct {
	buf []byte
}

// Reset empties the buffer, keeping capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded buffer, valid until the next Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded length so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.U32(uint32(v))
	e.U32(uint32(v >> 32))
}

// I64 appends an int64 as its two's-complement bits.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Time appends a time as (IsZero, UnixNano): the zero time decodes back
// to exactly time.Time{}, every other time to its UTC instant.
func (e *Encoder) Time(t time.Time) {
	e.Bool(t.IsZero())
	if t.IsZero() {
		e.I64(0)
	} else {
		e.I64(t.UnixNano())
	}
}

// ErrDecode is the base error for malformed codec input.
var ErrDecode = errors.New("wal: decode")

// Decoder reads values written by Encoder. The first failure latches into
// Err; subsequent reads return zero values, so call sites can decode a
// whole structure and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer for decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short buffer reading %s at offset %d", ErrDecode, what, d.off)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return getU32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return getU64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if int64(n) > int64(d.Remaining()) {
		d.fail("string")
		return ""
	}
	b := d.take(int(n), "string")
	return string(b)
}

// Time reads a time written by Encoder.Time.
func (d *Decoder) Time() time.Time {
	zero := d.Bool()
	ns := d.I64()
	if d.err != nil || zero {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Count reads a u32 element count and validates it against the bytes that
// remain, given a minimum encoded size per element — a corrupted count
// then fails fast instead of provoking a huge allocation.
func (d *Decoder) Count(minElemSize int, what string) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if minElemSize > 0 && int64(n)*int64(minElemSize) > int64(d.Remaining()) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: %s count %d exceeds remaining %d bytes", ErrDecode, what, n, d.Remaining())
		}
		return 0
	}
	return int(n)
}
