package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplayFile drives ReplayFile with arbitrary byte strings standing
// in for a crashed shard's log. The recovery contract under test:
//
//   - replay never panics, whatever the bytes;
//   - the only error surfaced for damaged bytes is ErrCorrupt (damage
//     with intact data after it); everything else is a tolerated torn
//     tail;
//   - the records delivered to the callback, re-framed, are
//     byte-identical to data[:GoodSize] — replay neither invents nor
//     silently misparses a record;
//   - a short GoodSize without ErrCorrupt always carries the Truncated
//     flag, so callers can tell a clean tail from a dropped one.
func FuzzReplayFile(f *testing.F) {
	// A healthy multi-record log written by the real Writer, plus its
	// torn and bit-flipped variants, seed the corpus shapes that matter.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, err := OpenWriter(path, 0, 0, SyncNever)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 5+3*i)
		if _, err := w.Append(byte(i+1), payload); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	healthy, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])    // torn final record
	f.Add(healthy[:2])                 // partial length prefix
	f.Add([]byte{})                    // empty log
	f.Add([]byte("not a wal at all崩")) // garbage
	flipped := append([]byte(nil), healthy...)
	flipped[10] ^= 0x40 // corrupt first record, intact data after it
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		type rec struct {
			seq     uint64
			typ     byte
			payload []byte
		}
		var recs []rec
		res, err := ReplayFile(path, func(seq uint64, typ byte, payload []byte) error {
			recs = append(recs, rec{seq, typ, append([]byte(nil), payload...)})
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay error is not ErrCorrupt: %v", err)
		}
		if res.GoodSize < 0 || res.GoodSize > int64(len(data)) {
			t.Fatalf("GoodSize %d out of range [0, %d]", res.GoodSize, len(data))
		}
		if res.Records != len(recs) {
			t.Fatalf("Records = %d but callback saw %d", res.Records, len(recs))
		}
		if len(recs) > 0 && res.LastSeq != recs[len(recs)-1].seq {
			t.Fatalf("LastSeq = %d, last delivered seq = %d", res.LastSeq, recs[len(recs)-1].seq)
		}

		// Re-frame every delivered record: the result must reproduce
		// data[:GoodSize] bit for bit, or replay misparsed something.
		var reframed bytes.Buffer
		var hdr [13]byte
		for _, r := range recs {
			frameLen := uint32(9 + len(r.payload))
			putU32(hdr[0:4], frameLen)
			putU64(hdr[4:12], r.seq)
			hdr[12] = r.typ
			reframed.Write(hdr[:])
			reframed.Write(r.payload)
			crc := crc32.NewIEEE()
			crc.Write(hdr[4:])
			crc.Write(r.payload)
			var tail [4]byte
			putU32(tail[:], crc.Sum32())
			reframed.Write(tail[:])
		}
		if int64(reframed.Len()) != res.GoodSize {
			t.Fatalf("reframed records occupy %d bytes, GoodSize = %d", reframed.Len(), res.GoodSize)
		}
		if !bytes.Equal(reframed.Bytes(), data[:res.GoodSize]) {
			t.Fatalf("reframed records differ from the consumed prefix")
		}

		// A prefix consumed short of the file must be accounted for:
		// either the tolerated torn tail (Truncated) or ErrCorrupt.
		if err == nil && res.GoodSize < int64(len(data)) && !res.Truncated {
			t.Fatalf("GoodSize %d < len %d with neither Truncated nor an error", res.GoodSize, len(data))
		}
		if err == nil && !res.Truncated && res.GoodSize != int64(len(data)) {
			t.Fatalf("clean replay consumed %d of %d bytes", res.GoodSize, len(data))
		}
	})
}
