package experiments

import (
	"testing"
)

func TestA4BoundDominatesOnline(t *testing.T) {
	s := getSuite(t)
	res, err := s.A4()
	if err != nil {
		t.Fatalf("A4: %v", err)
	}
	online := res.Series[0].Y
	bound := res.Series[1].Y
	ratio := res.Series[2].Y
	for i := range bound {
		if online[i] > bound[i]+1e-6 {
			t.Errorf("online utility %.2f exceeds hindsight bound %.2f at %gMB",
				online[i], bound[i], res.X[i])
		}
		if ratio[i] <= 0 || ratio[i] > 1+1e-9 {
			t.Errorf("ratio %.3f outside (0, 1] at %gMB", ratio[i], res.X[i])
		}
	}
	// RichNote should capture a meaningful share of the offline optimum.
	if ratio[len(ratio)-1] < 0.4 {
		t.Errorf("online/bound ratio %.3f at the top budget, want >= 0.4", ratio[len(ratio)-1])
	}
}

func TestA5VariantsCloseOnConcaveLadders(t *testing.T) {
	s := getSuite(t)
	res, err := s.A5()
	if err != nil {
		t.Fatalf("A5: %v", err)
	}
	plain := res.Series[0].Y
	dom := res.Series[1].Y
	for i := range plain {
		lo, hi := plain[i], dom[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 && lo/hi < 0.9 {
			t.Errorf("variants diverge at %gMB: %.2f vs %.2f", res.X[i], plain[i], dom[i])
		}
	}
}

func TestA6LearningBeatsConstant(t *testing.T) {
	s := getSuite(t)
	res, err := s.A6()
	if err != nil {
		t.Fatalf("A6: %v", err)
	}
	bySeries := map[string][]float64{}
	for _, series := range res.Series {
		bySeries[series.Name] = series.Y
	}
	forest := bySeries["forest"]
	oracle := bySeries["oracle"]
	constant := bySeries["constant"]
	for i := range forest {
		// Oracle is the ceiling (within simulation noise).
		if forest[i] > oracle[i]*1.05 {
			t.Errorf("forest %.2f above oracle %.2f at %gMB", forest[i], oracle[i], res.X[i])
		}
	}
	// The learned model must beat unpersonalized scheduling somewhere it
	// matters (mid budgets, where selection quality counts).
	mid := len(forest) / 2
	if forest[mid] <= constant[mid] {
		t.Errorf("forest %.2f not above constant %.2f at %gMB",
			forest[mid], constant[mid], res.X[mid])
	}
}

func TestE1FitConvergesWithScale(t *testing.T) {
	s := getSuite(t)
	res, err := s.E1()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	errB := res.Series[1].Y
	first, last := errB[0], errB[len(errB)-1]
	if last > first+0.02 {
		t.Errorf("B-coefficient error grew with population: %.4f -> %.4f", first, last)
	}
	if last > 0.05 {
		t.Errorf("B-coefficient error %.4f at the largest population, want < 0.05", last)
	}
	r2 := res.Series[2].Y
	for i, v := range r2 {
		if v < 0.9 {
			t.Errorf("log-fit R² %.3f at %g respondents, want >= 0.9", v, res.X[i])
		}
	}
}

func TestE2OutOfSampleClose(t *testing.T) {
	s := getSuite(t)
	res, err := s.E2()
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	bySeries := map[string][]float64{}
	for _, series := range res.Series {
		bySeries[series.Name] = series.Y
	}
	in := bySeries["in-sample"]
	out := bySeries["out-of-sample"]
	oracle := bySeries["oracle"]
	for i := range in {
		// Temporal generalization: out-of-sample keeps most of the
		// in-sample utility (user tastes are stationary in the workload).
		if out[i] < 0.8*in[i] {
			t.Errorf("out-of-sample %.2f below 80%% of in-sample %.2f at %gMB",
				out[i], in[i], res.X[i])
		}
		// Neither learned model beats the oracle meaningfully.
		if in[i] > oracle[i]*1.05 || out[i] > oracle[i]*1.05 {
			t.Errorf("learned model beats oracle at %gMB", res.X[i])
		}
	}
}
