package experiments

import (
	"fmt"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/survey"
)

// F2a reproduces Figure 2(a): the presentation-rating survey over the
// 4 sample rates x 5 durations grid, Pareto-pruned to the useful
// presentations. The series are (size MB, utility score) pairs of the full
// grid and the pruned ladder.
func (s *Suite) F2a() (Result, error) {
	rng := sim.NewRNG(s.scale.Seed, sim.StreamSurvey)
	rated, err := survey.RunRatingSurvey(survey.RatingConfig{}, rng)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:     "F2a",
		Title:  "Presentation utility survey: useful presentations (Pareto front)",
		XLabel: "presentation size (MB)",
		YLabel: "mean survey score (0-5)",
		Notes:  "paper: 20 surveyed presentations reduce to 6 useful ones, scores 0.3-3.3",
	}
	grid := Series{Name: "all-presentations"}
	for _, p := range rated.Points() {
		res.X = append(res.X, float64(p.Size)/MB)
		grid.Y = append(grid.Y, p.Utility)
	}
	res.Series = append(res.Series, grid)

	useful := rated.UsefulPresentations()
	pruned := Series{Name: "useful (pareto)"}
	// Mark pruned entries against the shared X axis: NaN-free rendering by
	// emitting a second aligned series with zero for dominated points.
	keep := map[string]bool{}
	for _, p := range useful {
		keep[p.Name] = true
	}
	for _, p := range rated.Points() {
		if keep[p.Name] {
			pruned.Y = append(pruned.Y, p.Utility)
		} else {
			pruned.Y = append(pruned.Y, 0)
		}
	}
	res.Series = append(res.Series, pruned)
	res.Notes += fmt.Sprintf("; reproduced: %d of %d useful", len(useful), len(rated.Grid))
	return res, nil
}

// F2b reproduces Figure 2(b): the stop-duration survey CDF with the fitted
// logarithmic (Equation 8) and polynomial (Equation 9) models.
func (s *Suite) F2b() (Result, error) {
	rng := sim.NewRNG(s.scale.Seed, sim.StreamSurvey)
	stop, err := survey.RunStopSurvey(survey.StopConfig{}, rng)
	if err != nil {
		return Result{}, err
	}
	grid := []float64{5, 10, 15, 20, 25, 30, 35, 40}
	fit, err := stop.Fit(grid, 45)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:     "F2b",
		Title:  "Audio duration utility: survey CDF vs fitted models",
		XLabel: "preview duration (s)",
		YLabel: "utility",
		X:      grid,
		Notes: fmt.Sprintf(
			"paper Eq8: util(d) = -0.397 + 0.352 ln(1+d); fitted: %.3f + %.3f ln(1+d) (R2 %.3f); power R2 %.3f; log better: %v",
			fit.Log.A, fit.Log.B, fit.Log.R2, fit.Power.R2, fit.LogBetter),
	}
	cdf := Series{Name: "survey-cdf", Y: stop.CDF(grid)}
	logFit := Series{Name: "log-fit"}
	powFit := Series{Name: "power-fit"}
	paperEq8 := Series{Name: "paper-eq8"}
	for _, d := range grid {
		logFit.Y = append(logFit.Y, fit.Log.Predict(d))
		powFit.Y = append(powFit.Y, fit.Power.Predict(d))
		paperEq8.Y = append(paperEq8.Y, survey.Equation8(d))
	}
	res.Series = []Series{cdf, logFit, powFit, paperEq8}
	return res, nil
}

// F3a reproduces Figure 3(a): delivery ratio vs weekly data budget.
func (s *Suite) F3a() (Result, error) {
	return s.sweepMetric("F3a", "Delivery ratio vs data budget", "delivery ratio",
		func(r metrics.Report) float64 { return r.DeliveryRatio() })
}

// F3b reproduces Figure 3(b): total data delivered vs budget.
func (s *Suite) F3b() (Result, error) {
	return s.sweepMetric("F3b", "Data delivered vs data budget", "MB per user",
		func(r metrics.Report) float64 {
			if r.Users == 0 {
				return 0
			}
			return float64(r.DeliveredBytes) / MB / float64(r.Users)
		})
}

// F3c reproduces Figure 3(c): recall vs budget.
func (s *Suite) F3c() (Result, error) {
	return s.sweepMetric("F3c", "Recall vs data budget", "recall",
		func(r metrics.Report) float64 { return r.Recall() })
}

// F3d reproduces Figure 3(d): precision vs budget.
func (s *Suite) F3d() (Result, error) {
	return s.sweepMetric("F3d", "Precision vs data budget", "precision",
		func(r metrics.Report) float64 { return r.Precision() })
}

// F4a reproduces Figure 4(a): total utility of delivered notifications.
func (s *Suite) F4a() (Result, error) {
	res, err := s.sweepMetric("F4a", "Total utility vs data budget", "utility per user",
		func(r metrics.Report) float64 {
			if r.Users == 0 {
				return 0
			}
			return r.TrueUtilitySum / float64(r.Users)
		})
	if err != nil {
		return Result{}, err
	}
	res.Notes = "scored against ground-truth interest; paper scores against its RF prediction"
	return res, nil
}

// F4b reproduces Figure 4(b): utility over clicked items only — here the
// recall-weighted utility: total true utility of deliveries that were
// clicked. Approximated by utility x precision mass.
func (s *Suite) F4b() (Result, error) {
	return s.sweepMetric("F4b", "Utility among clicked items vs budget", "clicked deliveries per user",
		func(r metrics.Report) float64 {
			if r.Users == 0 {
				return 0
			}
			return float64(r.ClickedAndDelivered) / float64(r.Users)
		})
}

// F4c reproduces Figure 4(c): download energy vs budget (RichNote vs UTIL;
// the paper omits FIFO as similar).
func (s *Suite) F4c() (Result, error) {
	res := Result{
		ID: "F4c", Title: "Download energy vs data budget",
		XLabel: "weekly data budget (MB)", YLabel: "J per user",
		Notes: "paper threshold 500 kJ/week is its trace-scale kappa; see EXPERIMENTS.md energy-scale note",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	for _, cfg := range []core.RunConfig{
		{Strategy: core.StrategyRichNote},
		{Strategy: core.StrategyUtil, FixedLevel: 3},
	} {
		var ys []float64
		name := ""
		for _, b := range s.scale.Budgets {
			c := cfg
			c.WeeklyBudgetBytes = b
			run, err := s.run(c)
			if err != nil {
				return Result{}, err
			}
			name = run.Name
			ys = append(ys, run.Report.EnergyJ/float64(run.Report.Users))
		}
		res.Series = append(res.Series, Series{Name: name, Y: ys})
	}
	return res, nil
}

// F4d reproduces Figure 4(d): queuing delay vs budget.
func (s *Suite) F4d() (Result, error) {
	return s.sweepMetric("F4d", "Queuing delay vs data budget", "rounds",
		func(r metrics.Report) float64 { return r.AvgDelayRounds() })
}

// F5a reproduces Figure 5(a): RichNote vs every fixed presentation level.
func (s *Suite) F5a() (Result, error) {
	res := Result{
		ID: "F5a", Title: "RichNote vs fixed presentation levels",
		XLabel: "weekly data budget (MB)", YLabel: "utility per user",
		Notes: "paper: no fixed level wins everywhere; crossovers shift with workload volume",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	configs := []core.RunConfig{{Strategy: core.StrategyRichNote}}
	for lvl := 1; lvl <= 6; lvl++ {
		configs = append(configs, core.RunConfig{Strategy: core.StrategyUtil, FixedLevel: lvl})
	}
	for _, cfg := range configs {
		var ys []float64
		name := ""
		for _, b := range s.scale.Budgets {
			c := cfg
			c.WeeklyBudgetBytes = b
			run, err := s.run(c)
			if err != nil {
				return Result{}, err
			}
			name = run.Name
			ys = append(ys, run.Report.TrueUtilitySum/float64(run.Report.Users))
		}
		res.Series = append(res.Series, Series{Name: name, Y: ys})
	}
	return res, nil
}

// levelMix produces the stacked presentation-level shares of Figures 5(b)
// and 5(c) for the given network model.
func (s *Suite) levelMix(id, title string, matrix network.Matrix, notes string) (Result, error) {
	res := Result{
		ID: id, Title: title,
		XLabel: "weekly data budget (MB)", YLabel: "share of deliveries",
		Notes: notes,
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	shares := make([][]float64, 7) // index = level, 1..6 used
	for _, b := range s.scale.Budgets {
		m := matrix
		run, err := s.run(core.RunConfig{
			Strategy:          core.StrategyRichNote,
			WeeklyBudgetBytes: b,
			NetworkMatrix:     &m,
		})
		if err != nil {
			return Result{}, err
		}
		share := run.Report.LevelShare()
		for lvl := 1; lvl <= 6; lvl++ {
			shares[lvl] = append(shares[lvl], share[lvl])
		}
	}
	labels := []string{"", "meta", "meta+5s", "meta+10s", "meta+20s", "meta+30s", "meta+40s"}
	for lvl := 1; lvl <= 6; lvl++ {
		res.Series = append(res.Series, Series{Name: labels[lvl], Y: shares[lvl]})
	}
	return res, nil
}

// F5b reproduces Figure 5(b): presentation mix on cellular only.
func (s *Suite) F5b() (Result, error) {
	return s.levelMix("F5b", "RichNote presentation mix (cellular)",
		network.AlwaysCellMatrix(),
		"paper: <=3MB ~90% metadata-only; richer levels grow with budget")
}

// F5c reproduces Figure 5(c): presentation mix under the WIFI/CELL/OFF
// Markov model — richer than cellular-only because WiFi bytes are free.
func (s *Suite) F5c() (Result, error) {
	return s.levelMix("F5c", "RichNote presentation mix (wifi Markov model)",
		network.PaperMatrix(),
		"paper Sec V-D-3: 50% self-transition; wifi deliveries do not bill the data plan")
}

// F5d reproduces Figure 5(d): utility across user-volume categories.
func (s *Suite) F5d() (Result, error) {
	run, err := s.run(core.RunConfig{
		Strategy:          core.StrategyRichNote,
		WeeklyBudgetBytes: 20 * MB,
	})
	if err != nil {
		return Result{}, err
	}
	// Bucket edges scale with the mean volume so the figure works at any
	// Scale.
	mean := 0
	if run.Report.Users > 0 {
		mean = run.Report.Arrived / run.Report.Users
	}
	edges := []int{mean / 2, mean, 2 * mean}
	buckets := run.Collector.BucketByVolume(edges)
	res := Result{
		ID: "F5d", Title: "Utility across user-volume categories (20MB budget)",
		XLabel: "user category upper bound (items)", YLabel: "mean utility per user",
		Notes: "paper: users with more items benefit more; error bars = stddev",
	}
	meanSeries := Series{Name: "mean-utility"}
	stddev := Series{Name: "stddev"}
	users := Series{Name: "users"}
	for _, bkt := range buckets {
		upper := float64(bkt.MaxItems)
		if bkt.MaxItems == 0 {
			upper = float64(4 * mean) // render the unbounded bucket
		}
		res.X = append(res.X, upper)
		meanSeries.Y = append(meanSeries.Y, bkt.MeanUtility)
		stddev.Y = append(stddev.Y, bkt.StdDevUtility)
		users.Y = append(users.Y, float64(bkt.Users))
	}
	res.Series = []Series{meanSeries, stddev, users}
	return res, nil
}
