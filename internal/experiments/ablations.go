package experiments

import (
	"fmt"
	"math"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/mckp"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/survey"
	"github.com/richnote/richnote/internal/trace"
)

// A4 computes the hindsight upper bound: an offline scheduler that sees
// the whole week's items at once and solves a single MCKP per user against
// the full weekly budget, scored with ground-truth interest. No online
// policy subject to the same budget can exceed it (connectivity and energy
// are waived for the bound); the gap to RichNote measures the cost of
// online, round-by-round decisions.
func (s *Suite) A4() (Result, error) {
	res := Result{
		ID: "A4", Title: "RichNote vs offline hindsight bound",
		XLabel: "weekly data budget (MB)", YLabel: "utility per user",
		Notes: "bound: single MCKP over the full horizon per user, oracle scores, no connectivity/energy limits",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}

	arrivals := s.pipeline.Arrivals()
	bound := Series{Name: "offline-bound"}
	online := Series{Name: "richnote"}
	ratio := Series{Name: "richnote/bound"}
	for _, b := range s.scale.Budgets {
		total := 0.0
		for ui := range arrivals {
			var groups []mckp.Group
			for _, roundItems := range arrivals[ui] {
				for qi := range roundItems {
					rich := &roundItems[qi].Rich
					choices := make([]mckp.Choice, rich.Levels())
					for j := 1; j <= rich.Levels(); j++ {
						p := rich.At(j)
						choices[j-1] = mckp.Choice{
							Value:  roundItems[qi].TrueUc * p.Utility,
							Weight: float64(p.Size),
						}
					}
					groups = append(groups, mckp.Group{Choices: choices})
				}
			}
			sol := mckp.SelectGreedyDominance(groups, float64(b))
			total += sol.Value
		}
		users := float64(len(arrivals))
		bound.Y = append(bound.Y, total/users)

		run, err := s.run(core.RunConfig{Strategy: core.StrategyRichNote, WeeklyBudgetBytes: b})
		if err != nil {
			return Result{}, err
		}
		onlineVal := run.Report.TrueUtilitySum / float64(run.Report.Users)
		online.Y = append(online.Y, onlineVal)
		if total > 0 {
			ratio.Y = append(ratio.Y, onlineVal/(total/users))
		} else {
			ratio.Y = append(ratio.Y, 0)
		}
	}
	res.Series = []Series{online, bound, ratio}
	return res, nil
}

// A5 compares the paper's level-by-level greedy against the
// Sinha-Zoltners LP-dominance greedy inside the live scheduler.
func (s *Suite) A5() (Result, error) {
	res := Result{
		ID: "A5", Title: "MCKP variant inside the scheduler: level-by-level vs LP-dominance",
		XLabel: "weekly data budget (MB)", YLabel: "utility per user",
		Notes: "with concave audio ladders the variants coincide; divergence appears only under energy pressure",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	plain := Series{Name: "level-by-level"}
	dom := Series{Name: "lp-dominance"}
	for _, b := range s.scale.Budgets {
		p, err := s.run(core.RunConfig{Strategy: core.StrategyRichNote, WeeklyBudgetBytes: b})
		if err != nil {
			return Result{}, err
		}
		d, err := s.run(core.RunConfig{Strategy: core.StrategyRichNote, WeeklyBudgetBytes: b, UseDominance: true})
		if err != nil {
			return Result{}, err
		}
		plain.Y = append(plain.Y, p.Report.TrueUtilitySum/float64(p.Report.Users))
		dom.Y = append(dom.Y, d.Report.TrueUtilitySum/float64(d.Report.Users))
	}
	res.Series = []Series{plain, dom}
	return res, nil
}

// A6 quantifies the value of the learned content-utility model: RichNote
// scheduled with the trained Random Forest, the ground-truth oracle and a
// constant scorer, all scored against ground truth. The forest-oracle gap
// is the headroom left in the classifier; the forest-constant gap is what
// learning buys (the paper's core premise).
func (s *Suite) A6() (Result, error) {
	res := Result{
		ID: "A6", Title: "Content-utility model ablation (RichNote)",
		XLabel: "weekly data budget (MB)", YLabel: "true utility per user",
		Notes: "scheduling scorer varies; evaluation always scores ground truth",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	kinds := []struct {
		name string
		kind core.ScorerKind
	}{
		{"forest", core.ScorerForest},
		{"oracle", core.ScorerOracle},
		{"constant", core.ScorerConstant},
	}
	for _, k := range kinds {
		pipeline, err := s.scorerPipeline(k.kind)
		if err != nil {
			return Result{}, err
		}
		ys := Series{Name: k.name}
		for _, b := range s.scale.Budgets {
			run, err := pipeline.Run(core.RunConfig{
				Strategy:          core.StrategyRichNote,
				WeeklyBudgetBytes: b,
				Workers:           s.scale.Workers,
			})
			if err != nil {
				return Result{}, fmt.Errorf("experiments: A6 %s: %w", k.name, err)
			}
			ys.Y = append(ys.Y, run.Report.TrueUtilitySum/float64(run.Report.Users))
		}
		res.Series = append(res.Series, ys)
	}
	return res, nil
}

// scorerPipeline returns a pipeline over the suite's workload with the
// given content scorer, building (and caching) it on first use. The forest
// pipeline is the suite's primary one.
func (s *Suite) scorerPipeline(kind core.ScorerKind) (*core.Pipeline, error) {
	if kind == core.ScorerForest {
		return s.pipeline, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.altPipelines == nil {
		s.altPipelines = make(map[core.ScorerKind]*core.Pipeline)
	}
	if p := s.altPipelines[kind]; p != nil {
		return p, nil
	}
	p, err := core.BuildPipeline(core.PipelineConfig{
		Trace: trace.Config{
			Users:  s.scale.Users,
			Rounds: s.scale.Rounds,
			Seed:   s.scale.Seed,
		},
		Scorer:  kind,
		Workers: s.scale.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: scorer pipeline %d: %w", kind, err)
	}
	s.altPipelines[kind] = p
	return p, nil
}

// E1 extends the paper's remark that "a wide scale survey through
// crowdsourcing can give better results": fitting error of the Equation 8
// constants as the stop-duration survey population grows.
func (s *Suite) E1() (Result, error) {
	populations := []int{20, 80, 320, 1280, 5120}
	res := Result{
		ID: "E1", Title: "Survey-scale convergence of the Equation 8 fit",
		XLabel: "respondents", YLabel: "fit quality",
		Notes: "paper surveyed 80 users and suggested crowdsourcing for scale",
	}
	errA := Series{Name: "abs-error-A (vs -0.397)"}
	errB := Series{Name: "abs-error-B (vs 0.352)"}
	r2 := Series{Name: "log-fit-R2"}
	grid := []float64{5, 10, 15, 20, 25, 30, 35, 40}
	for _, n := range populations {
		rng := sim.NewRNG(s.scale.Seed, sim.StreamSurvey)
		stop, err := survey.RunStopSurvey(survey.StopConfig{Respondents: n}, rng)
		if err != nil {
			return Result{}, err
		}
		fit, err := stop.Fit(grid, 45)
		if err != nil {
			return Result{}, err
		}
		res.X = append(res.X, float64(n))
		errA.Y = append(errA.Y, math.Abs(fit.Log.A-(-0.397)))
		errB.Y = append(errB.Y, math.Abs(fit.Log.B-0.352))
		r2.Y = append(r2.Y, fit.Log.R2)
	}
	res.Series = []Series{errA, errB, r2}
	return res, nil
}
