package experiments

import (
	"fmt"
	"math/rand"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/mckp"
	"github.com/richnote/richnote/internal/ml/eval"
	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/trace"
)

// T1 reproduces the classifier-quality result of Section V-A: five-fold
// cross validation of the Random Forest content-utility model (paper:
// precision 0.700, accuracy 0.689).
func (s *Suite) T1() (Result, error) {
	features, labels := trace.Dataset(s.pipeline.Trace)
	rng := sim.NewRNG(s.scale.Seed, sim.StreamForest)
	total, folds, err := eval.CrossValidate(features, labels, 5, rng,
		func(x [][]float64, y []int) (eval.Classifier, error) {
			return forest.Train(x, y, forest.Config{Trees: 40, Seed: s.scale.Seed})
		})
	if err != nil {
		return Result{}, fmt.Errorf("experiments: T1: %w", err)
	}
	res := Result{
		ID:     "T1",
		Title:  "Content-utility classifier, 5-fold cross validation",
		XLabel: "fold",
		YLabel: "metric",
		Notes: fmt.Sprintf(
			"paper: precision 0.700, accuracy 0.689; reproduced: precision %.3f, accuracy %.3f (recall %.3f, f1 %.3f, n=%d)",
			total.Precision(), total.Accuracy(), total.Recall(), total.F1(), total.Total()),
	}
	precision := Series{Name: "precision"}
	accuracy := Series{Name: "accuracy"}
	for _, f := range folds {
		res.X = append(res.X, float64(f.Fold))
		precision.Y = append(precision.Y, f.Confusion.Precision())
		accuracy.Y = append(accuracy.Y, f.Confusion.Accuracy())
	}
	res.Series = []Series{precision, accuracy}
	return res, nil
}

// S5 reproduces the Lyapunov V-sensitivity study of Section V-D-5: utility
// and queue backlog across control-knob values. The paper reports RichNote
// "performs uniformly better in all these settings".
func (s *Suite) S5() (Result, error) {
	vs := []float64{10, 100, 1000, 10_000}
	res := Result{
		ID: "S5", Title: "Lyapunov control knob sensitivity (20MB budget)",
		XLabel: "V", YLabel: "per-user value",
		Notes: "paper: performance uniform across V; larger V favors utility over backlog",
	}
	utility := Series{Name: "utility-per-user"}
	backlog := Series{Name: "avg-backlog-MB"}
	for _, v := range vs {
		run, err := s.run(core.RunConfig{
			Strategy:          core.StrategyRichNote,
			WeeklyBudgetBytes: 20 * MB,
			V:                 v,
		})
		if err != nil {
			return Result{}, err
		}
		res.X = append(res.X, v)
		utility.Y = append(utility.Y, run.Report.TrueUtilitySum/float64(run.Report.Users))
		backlog.Y = append(backlog.Y, run.Lyapunov.AvgQMB)
	}
	res.Series = []Series{utility, backlog}
	return res, nil
}

// A1 is the MCKP-quality ablation: greedy (Algorithm 1) versus the exact
// dynamic program and the fractional upper bound on random concave
// instances, reporting the mean value ratio.
func (s *Suite) A1() (Result, error) {
	rng := rand.New(rand.NewSource(s.scale.Seed))
	sizes := []int{5, 10, 20, 40, 80}
	res := Result{
		ID: "A1", Title: "MCKP greedy vs exact DP (concave instances)",
		XLabel: "groups", YLabel: "value ratio",
		Notes: "paper argues the greedy loses at most the final fractional upgrade",
	}
	greedyRatio := Series{Name: "greedy/exact"}
	boundRatio := Series{Name: "fractional/exact"}
	const trials = 30
	for _, n := range sizes {
		var gSum, bSum float64
		for t := 0; t < trials; t++ {
			groups := randomConcaveGroups(rng, n)
			budget := 5 * n
			greedy := mckp.SelectGreedy(groups, float64(budget), mckp.Options{})
			_, exact := mckp.SelectExact(groups, budget)
			if exact <= 0 {
				continue
			}
			gSum += greedy.Value / exact
			bSum += greedy.FractionalValue / exact
		}
		res.X = append(res.X, float64(n))
		greedyRatio.Y = append(greedyRatio.Y, gSum/trials)
		boundRatio.Y = append(boundRatio.Y, bSum/trials)
	}
	res.Series = []Series{greedyRatio, boundRatio}
	return res, nil
}

// randomConcaveGroups builds MCKP groups with diminishing returns.
func randomConcaveGroups(rng *rand.Rand, n int) []mckp.Group {
	groups := make([]mckp.Group, n)
	for i := range groups {
		k := 1 + rng.Intn(5)
		choices := make([]mckp.Choice, k)
		step := float64(1 + rng.Intn(6))
		w, v := 0.0, 0.0
		gain := 1 + rng.Float64()*4
		for j := range choices {
			w += step
			v += gain
			gain *= 0.55
			choices[j] = mckp.Choice{Value: v, Weight: w}
		}
		groups[i].Choices = choices
	}
	return groups
}

// A2 is the Lyapunov ablation: the full controller versus an effectively
// utility-only scheduler (V so large that queue and energy terms vanish),
// comparing utility, backlog and energy.
func (s *Suite) A2() (Result, error) {
	res := Result{
		ID: "A2", Title: "Lyapunov ablation: full controller vs utility-only",
		XLabel: "weekly data budget (MB)", YLabel: "per-user value",
		Notes: "V=1e9 makes Q and P terms negligible: pure per-round MCKP on U(i,j)",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	type variant struct {
		name string
		v    float64
	}
	for _, vr := range []variant{{"lyapunov-V1000", core.DefaultV}, {"utility-only-V1e9", 1e9}} {
		utility := Series{Name: vr.name + "-utility"}
		backlog := Series{Name: vr.name + "-backlogMB"}
		for _, b := range s.scale.Budgets {
			run, err := s.run(core.RunConfig{
				Strategy:          core.StrategyRichNote,
				WeeklyBudgetBytes: b,
				V:                 vr.v,
			})
			if err != nil {
				return Result{}, err
			}
			utility.Y = append(utility.Y, run.Report.TrueUtilitySum/float64(run.Report.Users))
			backlog.Y = append(backlog.Y, run.Lyapunov.AvgQMB)
		}
		res.Series = append(res.Series, utility, backlog)
	}
	return res, nil
}

// A3 is the baseline-discipline ablation: the UTIL baseline under the
// deployed drop discipline (default), a persistent re-sorted queue
// (stronger than the paper's), and per-round budgets without rollover.
func (s *Suite) A3() (Result, error) {
	res := Result{
		ID: "A3", Title: "Baseline discipline ablation (UTIL-L3)",
		XLabel: "weekly data budget (MB)", YLabel: "utility per user",
		Notes: "drop = industry batch digest; queued = strongest baseline; per-round = no budget rollover",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	type variant struct {
		name string
		cfg  core.RunConfig
	}
	variants := []variant{
		{"richnote", core.RunConfig{Strategy: core.StrategyRichNote}},
		{"util-drop", core.RunConfig{Strategy: core.StrategyUtil, FixedLevel: 3}},
		{"util-queued", core.RunConfig{Strategy: core.StrategyUtil, FixedLevel: 3, QueuedBaselines: true}},
		{"util-per-round", core.RunConfig{Strategy: core.StrategyUtil, FixedLevel: 3, PerRoundBudget: true}},
	}
	for _, vr := range variants {
		ys := Series{Name: vr.name}
		for _, b := range s.scale.Budgets {
			c := vr.cfg
			c.WeeklyBudgetBytes = b
			run, err := s.run(c)
			if err != nil {
				return Result{}, err
			}
			ys.Y = append(ys.Y, run.Report.TrueUtilitySum/float64(run.Report.Users))
		}
		res.Series = append(res.Series, ys)
	}
	return res, nil
}

// generators lists every experiment in canonical order.
func (s *Suite) generators() []generator {
	return []generator{
		{"T1", s.T1},
		{"F2a", s.F2a},
		{"F2b", s.F2b},
		{"F3a", s.F3a},
		{"F3b", s.F3b},
		{"F3c", s.F3c},
		{"F3d", s.F3d},
		{"F4a", s.F4a},
		{"F4b", s.F4b},
		{"F4c", s.F4c},
		{"F4d", s.F4d},
		{"F5a", s.F5a},
		{"F5b", s.F5b},
		{"F5c", s.F5c},
		{"F5d", s.F5d},
		{"S5", s.S5},
		{"A1", s.A1},
		{"A2", s.A2},
		{"A3", s.A3},
		{"A4", s.A4},
		{"A5", s.A5},
		{"A6", s.A6},
		{"E1", s.E1},
		{"E2", s.E2},
	}
}

// generator pairs an experiment ID with its runner.
type generator struct {
	id string
	fn func() (Result, error)
}

// IDs returns the canonical experiment identifiers.
func (s *Suite) IDs() []string {
	gens := s.generators()
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.id
	}
	return out
}

// All runs every experiment in the canonical order.
func (s *Suite) All() ([]Result, error) {
	return s.RunIDs(nil)
}

// RunIDs runs the named experiments (nil or empty = all) in canonical
// order. Unknown IDs are an error.
func (s *Suite) RunIDs(ids []string) ([]Result, error) {
	wanted := map[string]bool{}
	for _, id := range ids {
		wanted[id] = true
	}
	gens := s.generators()
	if len(wanted) > 0 {
		known := map[string]bool{}
		for _, g := range gens {
			known[g.id] = true
		}
		for id := range wanted {
			if !known[id] {
				return nil, fmt.Errorf("experiments: unknown experiment %q", id)
			}
		}
	}
	out := make([]Result, 0, len(gens))
	for _, g := range gens {
		if len(wanted) > 0 && !wanted[g.id] {
			continue
		}
		r, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", g.id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
