package experiments

import (
	"strings"
	"testing"
)

// suite is shared across tests in this package; building it trains the
// forest once.
var testSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testSuite == nil {
		s, err := NewSuite(QuickScale())
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		testSuite = s
	}
	return testSuite
}

func TestT1ClassifierInPaperBand(t *testing.T) {
	s := getSuite(t)
	res, err := s.T1()
	if err != nil {
		t.Fatalf("T1: %v", err)
	}
	if len(res.Series) != 2 || len(res.X) != 5 {
		t.Fatalf("T1 shape wrong: %d series, %d folds", len(res.Series), len(res.X))
	}
	// Paper: precision 0.700, accuracy 0.689. Synthetic labels carry
	// Bernoulli noise, so require the same band, not the same point.
	for _, series := range res.Series {
		for fold, v := range series.Y {
			if v < 0.55 || v > 0.95 {
				t.Errorf("%s fold %d = %.3f outside plausible band [0.55, 0.95]",
					series.Name, fold, v)
			}
		}
	}
	if !strings.Contains(res.Notes, "precision") {
		t.Error("T1 notes missing aggregate metrics")
	}
}

func TestF2aParetoReduction(t *testing.T) {
	s := getSuite(t)
	res, err := s.F2a()
	if err != nil {
		t.Fatalf("F2a: %v", err)
	}
	if len(res.X) != 20 {
		t.Fatalf("surveyed %d presentations, want 20", len(res.X))
	}
	useful := 0
	for _, y := range res.Series[1].Y {
		if y > 0 {
			useful++
		}
	}
	if useful < 3 || useful > 10 {
		t.Fatalf("%d useful presentations, want roughly 6", useful)
	}
}

func TestF2bFitQuality(t *testing.T) {
	s := getSuite(t)
	res, err := s.F2b()
	if err != nil {
		t.Fatalf("F2b: %v", err)
	}
	if !strings.Contains(res.Notes, "log better: true") {
		t.Errorf("log fit should beat power fit; notes: %s", res.Notes)
	}
	// CDF series monotone.
	cdf := res.Series[0].Y
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("survey CDF not monotone")
		}
	}
}

func TestF3aShape(t *testing.T) {
	s := getSuite(t)
	res, err := s.F3a()
	if err != nil {
		t.Fatalf("F3a: %v", err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("%d series, want 5 (richnote + 4 baselines)", len(res.Series))
	}
	bySeries := map[string][]float64{}
	for _, series := range res.Series {
		bySeries[series.Name] = series.Y
	}
	rich := bySeries["richnote"]
	// Headline: RichNote delivers close to 100% at every budget.
	for i, v := range rich {
		if v < 0.9 {
			t.Errorf("richnote delivery ratio %.3f at %gMB, want >= 0.9", v, res.X[i])
		}
	}
	// Baselines rise with budget and stay below RichNote.
	for name, ys := range bySeries {
		if name == "richnote" {
			continue
		}
		if ys[len(ys)-1] <= ys[0] {
			t.Errorf("%s delivery ratio does not grow with budget: %v", name, ys)
		}
		for i := range ys {
			if ys[i] > rich[i] {
				t.Errorf("%s beats richnote delivery ratio at %gMB", name, res.X[i])
			}
		}
	}
}

func TestF4aRichNoteWins(t *testing.T) {
	s := getSuite(t)
	res, err := s.F4a()
	if err != nil {
		t.Fatalf("F4a: %v", err)
	}
	bySeries := map[string][]float64{}
	for _, series := range res.Series {
		bySeries[series.Name] = series.Y
	}
	rich := bySeries["richnote"]
	for name, ys := range bySeries {
		if name == "richnote" {
			continue
		}
		for i := range ys {
			if rich[i] < ys[i]*0.95 {
				t.Errorf("richnote utility %.1f below %s %.1f at %gMB",
					rich[i], name, ys[i], res.X[i])
			}
		}
	}
	// And the paper's factor against FIFO: comfortably above at low budget.
	if fifo := bySeries["fifo-L3"]; len(fifo) > 0 && rich[0] < 1.5*fifo[0] {
		t.Errorf("richnote %.1f not >= 1.5x fifo %.1f at lowest budget", rich[0], fifo[0])
	}
}

func TestF4dRichNoteLowestDelay(t *testing.T) {
	s := getSuite(t)
	res, err := s.F4d()
	if err != nil {
		t.Fatalf("F4d: %v", err)
	}
	bySeries := map[string][]float64{}
	for _, series := range res.Series {
		bySeries[series.Name] = series.Y
	}
	rich := bySeries["richnote"]
	fifo := bySeries["fifo-L3"]
	for i := range rich {
		if rich[i] > fifo[i] {
			t.Errorf("richnote delay %.2f above fifo %.2f at %gMB", rich[i], fifo[i], res.X[i])
		}
	}
}

func TestF5bMetadataShareShrinksWithBudget(t *testing.T) {
	s := getSuite(t)
	res, err := s.F5b()
	if err != nil {
		t.Fatalf("F5b: %v", err)
	}
	meta := res.Series[0]
	if meta.Name != "meta" {
		t.Fatalf("first series %q, want meta", meta.Name)
	}
	if meta.Y[0] <= meta.Y[len(meta.Y)-1] {
		t.Errorf("metadata-only share should shrink with budget: %v", meta.Y)
	}
	// Shares at each budget sum to ~1.
	for i := range res.X {
		sum := 0.0
		for _, series := range res.Series {
			sum += series.Y[i]
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("level shares sum to %.3f at %gMB", sum, res.X[i])
		}
	}
}

func TestF5cWifiRicherThanCellular(t *testing.T) {
	s := getSuite(t)
	cell, err := s.F5b()
	if err != nil {
		t.Fatalf("F5b: %v", err)
	}
	wifi, err := s.F5c()
	if err != nil {
		t.Fatalf("F5c: %v", err)
	}
	// Compare the rich-level share (20s+) at the lowest budget.
	richShare := func(r Result, xi int) float64 {
		sum := 0.0
		for si := 3; si < len(r.Series); si++ {
			sum += r.Series[si].Y[xi]
		}
		return sum
	}
	if richShare(wifi, 0) <= richShare(cell, 0) {
		t.Errorf("wifi rich share %.3f not above cellular %.3f at lowest budget",
			richShare(wifi, 0), richShare(cell, 0))
	}
}

func TestF5dHeavyUsersBenefitMore(t *testing.T) {
	s := getSuite(t)
	res, err := s.F5d()
	if err != nil {
		t.Fatalf("F5d: %v", err)
	}
	mean := res.Series[0].Y
	// The heaviest bucket must earn more utility than the lightest
	// populated one.
	users := res.Series[2].Y
	first, last := -1, -1
	for i := range mean {
		if users[i] > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || first == last {
		t.Skip("volume spread too narrow at quick scale")
	}
	if mean[last] <= mean[first] {
		t.Errorf("heavy users (%.1f) not above light users (%.1f)", mean[last], mean[first])
	}
}

func TestS5UniformAcrossV(t *testing.T) {
	s := getSuite(t)
	res, err := s.S5()
	if err != nil {
		t.Fatalf("S5: %v", err)
	}
	utility := res.Series[0].Y
	min, max := utility[0], utility[0]
	for _, v := range utility {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// Paper: performance uniform across V. Allow 30% spread.
	if min < 0.7*max {
		t.Errorf("utility varies too much across V: min %.1f max %.1f", min, max)
	}
}

func TestA1GreedyNearExact(t *testing.T) {
	s := getSuite(t)
	res, err := s.A1()
	if err != nil {
		t.Fatalf("A1: %v", err)
	}
	for i, ratio := range res.Series[0].Y {
		if ratio < 0.9 || ratio > 1.0+1e-9 {
			t.Errorf("greedy/exact ratio %.4f at n=%g outside [0.9, 1]", ratio, res.X[i])
		}
	}
	for i, ratio := range res.Series[1].Y {
		if ratio < 1.0-1e-9 {
			t.Errorf("fractional bound %.4f below exact at n=%g", ratio, res.X[i])
		}
	}
}

func TestA3DisciplineOrdering(t *testing.T) {
	s := getSuite(t)
	res, err := s.A3()
	if err != nil {
		t.Fatalf("A3: %v", err)
	}
	bySeries := map[string][]float64{}
	for _, series := range res.Series {
		bySeries[series.Name] = series.Y
	}
	// The queued variant is the strongest baseline; per-round the weakest.
	queued := bySeries["util-queued"]
	drop := bySeries["util-drop"]
	perRound := bySeries["util-per-round"]
	for i := range queued {
		if queued[i] < drop[i]*0.95 {
			t.Errorf("queued baseline below drop baseline at %gMB", res.X[i])
		}
		if perRound[i] > drop[i]+1e-9 {
			t.Errorf("per-round baseline above drop baseline at %gMB", res.X[i])
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	s := getSuite(t)
	res, err := s.F3a()
	if err != nil {
		t.Fatalf("F3a: %v", err)
	}
	table := Render(res)
	if !strings.Contains(table, "F3a") || !strings.Contains(table, "richnote") {
		t.Fatalf("table rendering missing content:\n%s", table)
	}
	csv := RenderCSV(res)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(res.X)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(res.X)+1)
	}
}

func TestRunCacheHits(t *testing.T) {
	s := getSuite(t)
	if _, err := s.F3a(); err != nil {
		t.Fatalf("F3a: %v", err)
	}
	before := len(s.runs)
	if _, err := s.F3b(); err != nil { // same sweep, must reuse runs
		t.Fatalf("F3b: %v", err)
	}
	if len(s.runs) != before {
		t.Errorf("F3b added %d runs; expected full cache reuse", len(s.runs)-before)
	}
}

func TestRunIDs(t *testing.T) {
	s := getSuite(t)
	ids := s.IDs()
	if len(ids) < 20 {
		t.Fatalf("%d experiment IDs, want >= 20", len(ids))
	}
	results, err := s.RunIDs([]string{"F3a", "A1"})
	if err != nil {
		t.Fatalf("RunIDs: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	// Canonical order preserved regardless of request order.
	if results[0].ID != "F3a" || results[1].ID != "A1" {
		t.Fatalf("order %s,%s; want F3a,A1", results[0].ID, results[1].ID)
	}
	if _, err := s.RunIDs([]string{"F99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
