package experiments

import (
	"fmt"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/trace"
	"github.com/richnote/richnote/internal/utility"
)

// E2 is the out-of-sample extension: the paper trains its Random Forest on
// the same week it replays. Here the trace is split in half; the
// out-of-sample scheduler's forest is trained only on the first half and
// schedules the second, compared against a forest trained on the second
// half itself (the paper's in-sample protocol) and the oracle ceiling,
// all evaluated on the second half against ground truth.
func (s *Suite) E2() (Result, error) {
	gen, err := trace.NewGenerator(trace.Config{
		Users:  s.scale.Users,
		Rounds: s.scale.Rounds,
		Seed:   s.scale.Seed + 7, // a fresh workload, not the suite's
	})
	if err != nil {
		return Result{}, fmt.Errorf("experiments: E2: %w", err)
	}
	full, err := gen.Generate()
	if err != nil {
		return Result{}, fmt.Errorf("experiments: E2: %w", err)
	}
	head, tail, err := trace.SplitByRound(full, full.Rounds/2)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: E2: %w", err)
	}

	fcfg := forest.Config{Trees: 40, Seed: s.scale.Seed}
	outOfSample, err := utility.TrainForestScorer(head, fcfg)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: E2 train head: %w", err)
	}
	inSample, err := utility.TrainForestScorer(tail, fcfg)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: E2 train tail: %w", err)
	}

	res := Result{
		ID: "E2", Title: "Out-of-sample utility model: train on week head, schedule week tail",
		XLabel: "weekly data budget (MB)", YLabel: "true utility per user",
		Notes: "paper protocol is in-sample; the out-of-sample gap measures temporal generalization",
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	variants := []struct {
		name   string
		scorer utility.ContentScorer
	}{
		{"in-sample", inSample},
		{"out-of-sample", outOfSample},
		{"oracle", utility.OracleScorer{}},
	}
	for _, vr := range variants {
		pipeline, err := core.BuildPipeline(core.PipelineConfig{
			ExternalTrace:  tail,
			ExternalScorer: vr.scorer,
			Workers:        s.scale.Workers,
		})
		if err != nil {
			return Result{}, fmt.Errorf("experiments: E2 %s: %w", vr.name, err)
		}
		ys := Series{Name: vr.name}
		for _, b := range s.scale.Budgets {
			run, err := pipeline.Run(core.RunConfig{
				Strategy:          core.StrategyRichNote,
				WeeklyBudgetBytes: b,
				Workers:           s.scale.Workers,
			})
			if err != nil {
				return Result{}, fmt.Errorf("experiments: E2 %s: %w", vr.name, err)
			}
			ys.Y = append(ys.Y, run.Report.TrueUtilitySum/float64(run.Report.Users))
		}
		res.Series = append(res.Series, ys)
	}
	return res, nil
}
