// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (Section V), plus the ablations listed
// in DESIGN.md. Each experiment returns a Result — named series over a
// swept x-axis — that cmd/richnote-bench renders as aligned tables and
// CSV, and that bench_test.go regenerates under `go test -bench`.
//
// Experiments sharing simulation runs (the F3/F4 family all sweep the same
// strategies over the same budgets) share them through a per-Suite run
// cache, so regenerating every figure costs one sweep, not eight.
package experiments

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/obs"
	"github.com/richnote/richnote/internal/trace"
)

// MB is one mebibyte in bytes.
const MB = 1 << 20

// Series is one line of a figure: y values over the shared x axis of the
// Result.
type Series struct {
	Name string
	Y    []float64
}

// Result is a regenerated table or figure.
type Result struct {
	// ID is the paper's identifier, e.g. "F3a" or "T1".
	ID    string
	Title string
	// XLabel describes X; for table-like results X may be empty.
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Notes records reproduction caveats for EXPERIMENTS.md.
	Notes string
}

// Scale sizes the workload. The paper simulates 10k users; every
// experiment's shape is population-invariant because scheduling is
// per-user, so smaller scales reproduce the same curves faster.
type Scale struct {
	Users   int
	Rounds  int
	Seed    int64
	Budgets []int64 // sweep points in bytes
	Workers int
	// Recorder, when non-nil, receives the build-phase timings of the
	// suite's pipeline (see obs.Recorder). Purely observational.
	Recorder *obs.Recorder
}

// DefaultScale is the full-figure profile.
func DefaultScale() Scale {
	return Scale{
		Users:  200,
		Rounds: 168,
		Seed:   42,
		Budgets: []int64{
			1 * MB, 3 * MB, 10 * MB, 20 * MB, 50 * MB, 100 * MB, 200 * MB,
		},
	}
}

// QuickScale is a reduced profile for unit benches and tests.
func QuickScale() Scale {
	return Scale{
		Users:   40,
		Rounds:  96,
		Seed:    42,
		Budgets: []int64{3 * MB, 20 * MB, 100 * MB},
	}
}

// Suite owns a built pipeline and a cache of simulation runs.
type Suite struct {
	scale    Scale
	pipeline *core.Pipeline

	mu           sync.Mutex
	runs         map[string]*core.RunResult
	altPipelines map[core.ScorerKind]*core.Pipeline
}

// NewSuite builds the workload and trains the content-utility model once.
func NewSuite(scale Scale) (*Suite, error) {
	p, err := core.BuildPipeline(core.PipelineConfig{
		Trace: trace.Config{
			Users:  scale.Users,
			Rounds: scale.Rounds,
			Seed:   scale.Seed,
		},
		Workers:  scale.Workers,
		Recorder: scale.Recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Suite{scale: scale, pipeline: p, runs: make(map[string]*core.RunResult)}, nil
}

// Pipeline exposes the underlying pipeline (for the T1 experiment and
// tests).
func (s *Suite) Pipeline() *core.Pipeline { return s.pipeline }

// Scale returns the suite's scale profile.
func (s *Suite) Scale() Scale { return s.scale }

// runKey identifies a cached run.
func runKey(cfg core.RunConfig) string {
	net := "cell"
	if cfg.NetworkMatrix != nil {
		if *cfg.NetworkMatrix == network.PaperMatrix() {
			net = "paper"
		} else if *cfg.NetworkMatrix == network.CellOnlyMatrix() {
			net = "cellonly"
		}
	}
	return fmt.Sprintf("%s-L%d-b%d-V%g-k%g-%s-pr%v-qb%v-dom%v",
		cfg.Strategy, cfg.FixedLevel, cfg.WeeklyBudgetBytes, cfg.V, cfg.KappaJ,
		net, cfg.PerRoundBudget, cfg.QueuedBaselines, cfg.UseDominance)
}

// run executes (or returns the cached) simulation for the configuration.
func (s *Suite) run(cfg core.RunConfig) (*core.RunResult, error) {
	if cfg.Workers == 0 {
		cfg.Workers = s.scale.Workers
	}
	key := runKey(cfg)
	s.mu.Lock()
	cached := s.runs[key]
	s.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	res, err := s.pipeline.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: run %s: %w", key, err)
	}
	s.mu.Lock()
	s.runs[key] = res
	s.mu.Unlock()
	return res, nil
}

// methodConfigs lists the standard comparison set of the F3/F4 family:
// RichNote plus FIFO and UTIL fixed at 5 s and 10 s previews (levels 2 and
// 3), exactly the baselines of Section V-D-1.
func methodConfigs(budget int64) []core.RunConfig {
	return []core.RunConfig{
		{Strategy: core.StrategyRichNote, WeeklyBudgetBytes: budget},
		{Strategy: core.StrategyFIFO, FixedLevel: 2, WeeklyBudgetBytes: budget},
		{Strategy: core.StrategyFIFO, FixedLevel: 3, WeeklyBudgetBytes: budget},
		{Strategy: core.StrategyUtil, FixedLevel: 2, WeeklyBudgetBytes: budget},
		{Strategy: core.StrategyUtil, FixedLevel: 3, WeeklyBudgetBytes: budget},
	}
}

// sweepMetric runs the standard method set over the budget sweep and
// extracts one metric per run.
func (s *Suite) sweepMetric(id, title, ylabel string, metric func(metrics.Report) float64) (Result, error) {
	res := Result{
		ID: id, Title: title,
		XLabel: "weekly data budget (MB)", YLabel: ylabel,
	}
	for _, b := range s.scale.Budgets {
		res.X = append(res.X, float64(b)/MB)
	}
	// One series per method, in methodConfigs order.
	names := []string{}
	values := map[string][]float64{}
	for _, b := range s.scale.Budgets {
		for _, cfg := range methodConfigs(b) {
			run, err := s.run(cfg)
			if err != nil {
				return Result{}, err
			}
			if _, seen := values[run.Name]; !seen {
				names = append(names, run.Name)
			}
			values[run.Name] = append(values[run.Name], metric(run.Report))
		}
	}
	for _, name := range names {
		res.Series = append(res.Series, Series{Name: name, Y: values[name]})
	}
	return res, nil
}

// Render renders the result as an aligned text table (series as columns).
func Render(r Result) string {
	header := []string{r.XLabel}
	if header[0] == "" {
		header[0] = "x"
	}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, len(r.X))
	for i, x := range r.X {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, strconv.FormatFloat(s.Y[i], 'f', 4, 64))
			} else {
				row = append(row, "")
			}
		}
		rows[i] = row
	}
	return fmt.Sprintf("%s — %s (%s)\n%s", r.ID, r.Title, r.YLabel, metrics.Table(header, rows))
}

// RenderCSV renders the result as CSV.
func RenderCSV(r Result) string {
	header := []string{"x"}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, len(r.X))
	for i, x := range r.X {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		rows[i] = row
	}
	return metrics.CSV(header, rows)
}
