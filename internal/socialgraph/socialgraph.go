// Package socialgraph generates synthetic social graphs standing in for
// the de-identified Spotify social graph the paper uses to derive
// social-tie features between notification senders and recipients.
//
// Two generators are provided:
//
//   - Barabási–Albert preferential attachment, producing the heavy-tailed
//     degree distribution typical of social networks; and
//   - Watts–Strogatz small-world rewiring, producing high clustering.
//
// Every undirected edge carries a tie strength in (0, 1], and per-user
// followed-artist sets model the "favorite artist" relation the paper's
// classifier features draw on.
package socialgraph

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// UserID aliases the graph's node identifier space (0-based dense IDs).
type UserID int64

// Edge is an undirected tie with strength in (0, 1].
type Edge struct {
	Peer     UserID
	Strength float64
}

// Graph is an undirected social graph with tie strengths and per-user
// followed artists.
type Graph struct {
	n        int
	adj      [][]Edge
	strength map[edgeKey]float64

	// followedArtists[u] is the set of artist IDs user u follows.
	followedArtists []map[int64]bool
}

type edgeKey struct{ a, b UserID }

func normKey(a, b UserID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// Errors returned by generators and accessors.
var (
	ErrTooFewUsers = errors.New("socialgraph: too few users")
	ErrBadDegree   = errors.New("socialgraph: invalid degree parameter")
	ErrUnknownUser = errors.New("socialgraph: unknown user")
)

// NumUsers returns the number of nodes.
func (g *Graph) NumUsers() int { return g.n }

// Friends returns the adjacency list of u. The returned slice is owned by
// the graph; callers must not mutate it.
func (g *Graph) Friends(u UserID) ([]Edge, error) {
	if int(u) < 0 || int(u) >= g.n {
		return nil, fmt.Errorf("%w: %d", ErrUnknownUser, u)
	}
	return g.adj[u], nil
}

// TieStrength returns the tie strength between two users, or 0 when they
// are not connected.
func (g *Graph) TieStrength(a, b UserID) float64 {
	return g.strength[normKey(a, b)]
}

// Degree returns the number of friends of u.
func (g *Graph) Degree(u UserID) int {
	if int(u) < 0 || int(u) >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// FollowsArtist reports whether u follows the artist.
func (g *Graph) FollowsArtist(u UserID, artist int64) bool {
	if int(u) < 0 || int(u) >= g.n {
		return false
	}
	return g.followedArtists[u][artist]
}

// FollowedArtists returns the artist IDs u follows.
func (g *Graph) FollowedArtists(u UserID) []int64 {
	if int(u) < 0 || int(u) >= g.n {
		return nil
	}
	out := make([]int64, 0, len(g.followedArtists[u]))
	for id := range g.followedArtists[u] {
		out = append(out, id)
	}
	return out
}

func (g *Graph) addEdge(a, b UserID, strength float64) {
	if a == b {
		return
	}
	key := normKey(a, b)
	if _, dup := g.strength[key]; dup {
		return
	}
	g.strength[key] = strength
	g.adj[a] = append(g.adj[a], Edge{Peer: b, Strength: strength})
	g.adj[b] = append(g.adj[b], Edge{Peer: a, Strength: strength})
}

func newGraph(n int) *Graph {
	return &Graph{
		n:               n,
		adj:             make([][]Edge, n),
		strength:        make(map[edgeKey]float64),
		followedArtists: make([]map[int64]bool, n),
	}
}

// tieStrengthSample draws a tie strength: most ties weak, few strong,
// approximating real social-tie distributions with a squared uniform.
func tieStrengthSample(rng *rand.Rand) float64 {
	v := rng.Float64()
	s := 0.05 + 0.95*v*v
	return s
}

// GenerateBA builds a Barabási–Albert graph over n users where each new
// node attaches to m existing nodes with probability proportional to
// degree.
func GenerateBA(n, m int, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrTooFewUsers, n)
	}
	if m < 1 || m >= n {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrBadDegree, m, n)
	}
	g := newGraph(n)
	// Repeated-node list for preferential attachment: each node appears
	// once per incident edge end.
	targets := make([]UserID, 0, 2*m*n)

	// Seed: a clique over the first m+1 nodes.
	for a := 0; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			g.addEdge(UserID(a), UserID(b), tieStrengthSample(rng))
			targets = append(targets, UserID(a), UserID(b))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[UserID]bool{}
		for len(chosen) < m {
			var peer UserID
			if len(targets) == 0 || rng.Float64() < 0.05 {
				peer = UserID(rng.Intn(v)) // small uniform mixing avoids isolation
			} else {
				peer = targets[rng.Intn(len(targets))]
			}
			if int(peer) >= v || chosen[peer] {
				continue
			}
			chosen[peer] = true
		}
		// Sort the chosen peers so tie-strength draws are deterministic for
		// a fixed seed (map iteration order is randomized).
		peers := make([]UserID, 0, len(chosen))
		for peer := range chosen {
			peers = append(peers, peer)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		for _, peer := range peers {
			g.addEdge(UserID(v), peer, tieStrengthSample(rng))
			targets = append(targets, UserID(v), peer)
		}
	}
	return g, nil
}

// GenerateWS builds a Watts–Strogatz small-world graph: a ring lattice with
// k neighbors per side, each edge rewired with probability beta.
func GenerateWS(n, k int, beta float64, rng *rand.Rand) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("%w: n=%d", ErrTooFewUsers, n)
	}
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadDegree, k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("socialgraph: beta %f outside [0,1]", beta)
	}
	g := newGraph(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			peer := (v + j) % n
			if rng.Float64() < beta {
				// Rewire to a uniform random non-self target.
				for tries := 0; tries < 16; tries++ {
					cand := rng.Intn(n)
					if cand != v {
						peer = cand
						break
					}
				}
			}
			g.addEdge(UserID(v), UserID(peer), tieStrengthSample(rng))
		}
	}
	return g, nil
}

// AssignFollowedArtists gives each user a followed-artist set sampled from
// the given artist IDs, biased toward the front of the slice (which the
// catalog orders by popularity). minFollow/maxFollow bound the set size.
func (g *Graph) AssignFollowedArtists(artists []int64, minFollow, maxFollow int, rng *rand.Rand) error {
	if len(artists) == 0 {
		return errors.New("socialgraph: no artists to follow")
	}
	if minFollow < 0 || maxFollow < minFollow {
		return fmt.Errorf("socialgraph: bad follow bounds [%d, %d]", minFollow, maxFollow)
	}
	for u := 0; u < g.n; u++ {
		count := minFollow
		if maxFollow > minFollow {
			count += rng.Intn(maxFollow - minFollow + 1)
		}
		set := make(map[int64]bool, count)
		for len(set) < count && len(set) < len(artists) {
			// Squared-uniform index biases toward popular artists.
			f := rng.Float64()
			idx := int(f * f * float64(len(artists)))
			if idx >= len(artists) {
				idx = len(artists) - 1
			}
			set[artists[idx]] = true
		}
		g.followedArtists[u] = set
	}
	return nil
}

// DegreeHistogram returns counts of node degrees, used by tests to verify
// the heavy tail of the BA generator.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[len(g.adj[u])]++
	}
	return h
}

// MaxDegree returns the largest node degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.strength) }
