package socialgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateBAValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateBA(1, 1, rng); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := GenerateBA(10, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := GenerateBA(10, 10, rng); err == nil {
		t.Error("m=n accepted")
	}
}

func TestGenerateBAStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := GenerateBA(500, 3, rng)
	if err != nil {
		t.Fatalf("GenerateBA: %v", err)
	}
	if g.NumUsers() != 500 {
		t.Fatalf("NumUsers = %d, want 500", g.NumUsers())
	}
	// Every non-seed node attaches with m=3 edges, so min degree >= 3.
	for u := 0; u < 500; u++ {
		if g.Degree(UserID(u)) < 3 {
			t.Fatalf("user %d has degree %d, want >= 3", u, g.Degree(UserID(u)))
		}
	}
	// Preferential attachment yields hubs: max degree far above minimum.
	if g.MaxDegree() < 15 {
		t.Fatalf("max degree %d, want heavy-tailed (>= 15)", g.MaxDegree())
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := GenerateBA(200, 2, rng)
	if err != nil {
		t.Fatalf("GenerateBA: %v", err)
	}
	for u := 0; u < g.NumUsers(); u++ {
		friends, err := g.Friends(UserID(u))
		if err != nil {
			t.Fatalf("Friends(%d): %v", u, err)
		}
		for _, e := range friends {
			back, err := g.Friends(e.Peer)
			if err != nil {
				t.Fatalf("Friends(%d): %v", e.Peer, err)
			}
			found := false
			for _, be := range back {
				if be.Peer == UserID(u) {
					found = true
					if be.Strength != e.Strength {
						t.Fatalf("asymmetric strength %f vs %f", be.Strength, e.Strength)
					}
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no reverse", u, e.Peer)
			}
		}
	}
}

func TestTieStrengthRangeAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := GenerateBA(100, 2, rng)
	if err != nil {
		t.Fatalf("GenerateBA: %v", err)
	}
	for u := 0; u < g.NumUsers(); u++ {
		friends, err := g.Friends(UserID(u))
		if err != nil {
			t.Fatalf("Friends: %v", err)
		}
		for _, e := range friends {
			if e.Strength <= 0 || e.Strength > 1 {
				t.Fatalf("tie strength %f out of (0,1]", e.Strength)
			}
			if g.TieStrength(UserID(u), e.Peer) != g.TieStrength(e.Peer, UserID(u)) {
				t.Fatal("TieStrength not symmetric")
			}
		}
	}
	if g.TieStrength(0, 0) != 0 {
		t.Fatal("self tie strength nonzero")
	}
}

func TestTieStrengthZeroForStrangers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := GenerateBA(300, 2, rng)
	if err != nil {
		t.Fatalf("GenerateBA: %v", err)
	}
	zeros := 0
	for trial := 0; trial < 100; trial++ {
		a := UserID(rng.Intn(300))
		b := UserID(rng.Intn(300))
		if a == b {
			continue
		}
		if g.TieStrength(a, b) == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("every random pair connected; graph should be sparse")
	}
}

func TestGenerateWS(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := GenerateWS(200, 3, 0.1, rng)
	if err != nil {
		t.Fatalf("GenerateWS: %v", err)
	}
	if g.NumUsers() != 200 {
		t.Fatalf("NumUsers = %d, want 200", g.NumUsers())
	}
	// A ring lattice with k=3 has ~3n edges (some lost to rewire dedup).
	if g.NumEdges() < 500 {
		t.Fatalf("NumEdges = %d, want ~600", g.NumEdges())
	}
	if _, err := GenerateWS(3, 1, 0.1, rng); err == nil {
		t.Error("n=3 accepted")
	}
	if _, err := GenerateWS(100, 50, 0.1, rng); err == nil {
		t.Error("2k >= n accepted")
	}
	if _, err := GenerateWS(100, 3, 1.5, rng); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestAssignFollowedArtists(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := GenerateBA(100, 2, rng)
	if err != nil {
		t.Fatalf("GenerateBA: %v", err)
	}
	artists := make([]int64, 50)
	for i := range artists {
		artists[i] = int64(i + 1)
	}
	if err := g.AssignFollowedArtists(artists, 2, 6, rng); err != nil {
		t.Fatalf("AssignFollowedArtists: %v", err)
	}
	popularFollows, tailFollows := 0, 0
	for u := 0; u < 100; u++ {
		follows := g.FollowedArtists(UserID(u))
		if len(follows) < 2 || len(follows) > 6 {
			t.Fatalf("user %d follows %d artists, want [2,6]", u, len(follows))
		}
		for _, id := range follows {
			if !g.FollowsArtist(UserID(u), id) {
				t.Fatalf("FollowsArtist inconsistent for user %d artist %d", u, id)
			}
			if id <= 10 {
				popularFollows++
			}
			if id > 40 {
				tailFollows++
			}
		}
	}
	if popularFollows <= tailFollows {
		t.Fatalf("follows not popularity-biased: %d popular vs %d tail", popularFollows, tailFollows)
	}
	if err := g.AssignFollowedArtists(nil, 1, 2, rng); err == nil {
		t.Error("empty artist list accepted")
	}
	if err := g.AssignFollowedArtists(artists, 5, 2, rng); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestUnknownUserAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := GenerateBA(10, 2, rng)
	if err != nil {
		t.Fatalf("GenerateBA: %v", err)
	}
	if _, err := g.Friends(999); err == nil {
		t.Error("Friends(999) accepted")
	}
	if g.Degree(999) != 0 {
		t.Error("Degree(999) nonzero")
	}
	if g.FollowsArtist(999, 1) {
		t.Error("FollowsArtist(999) true")
	}
	if g.FollowedArtists(999) != nil {
		t.Error("FollowedArtists(999) non-nil")
	}
}

// Property: degree histogram sums to n and edge count matches half the
// degree sum (handshake lemma).
func TestHandshakeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		g, err := GenerateBA(n, 2, rng)
		if err != nil {
			return false
		}
		hist := g.DegreeHistogram()
		nodes, degSum := 0, 0
		for d, c := range hist {
			nodes += c
			degSum += d * c
		}
		return nodes == n && degSum == 2*g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
