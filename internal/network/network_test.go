package network

import (
	"math"
	"math/rand"
	"testing"
)

func TestStateStrings(t *testing.T) {
	if StateOff.String() != "OFF" || StateCell.String() != "CELL" || StateWifi.String() != "WIFI" {
		t.Fatal("state names mismatch")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state must render")
	}
	if StateOff.Online() || !StateCell.Online() || !StateWifi.Online() {
		t.Fatal("Online() wrong")
	}
}

func TestBuiltinMatricesValid(t *testing.T) {
	for name, m := range map[string]Matrix{
		"paper":       PaperMatrix(),
		"cell-only":   CellOnlyMatrix(),
		"always-cell": AlwaysCellMatrix(),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s matrix invalid: %v", name, err)
		}
	}
}

func TestValidateRejectsBadMatrix(t *testing.T) {
	bad := Matrix{{0.5, 0.2, 0.2}, {0.25, 0.5, 0.25}, {0.25, 0.25, 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	neg := Matrix{{-0.5, 1.5, 0}, {0.25, 0.5, 0.25}, {0.25, 0.25, 0.5}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestNewModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewModel(PaperMatrix(), State(0), rng); err == nil {
		t.Error("invalid start state accepted")
	}
	if _, err := NewModel(PaperMatrix(), StateCell, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := Matrix{}
	if _, err := NewModel(bad, StateCell, rng); err == nil {
		t.Error("zero matrix accepted")
	}
}

// The paper's chain is ergodic with uniform stationary distribution (the
// matrix is doubly stochastic); verify empirical state shares approach 1/3.
func TestPaperMatrixStationaryDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewModel(PaperMatrix(), StateOff, rng)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	counts := map[State]int{}
	const steps = 60_000
	for i := 0; i < steps; i++ {
		counts[m.Step()]++
	}
	for _, s := range []State{StateOff, StateCell, StateWifi} {
		share := float64(counts[s]) / steps
		if math.Abs(share-1.0/3.0) > 0.02 {
			t.Fatalf("state %s share %.3f, want ~0.333", s, share)
		}
	}
}

func TestSelfTransitionProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewModel(PaperMatrix(), StateCell, rng)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	stays, steps := 0, 40_000
	prev := m.State()
	for i := 0; i < steps; i++ {
		next := m.Step()
		if next == prev {
			stays++
		}
		prev = next
	}
	share := float64(stays) / float64(steps)
	if math.Abs(share-0.5) > 0.02 {
		t.Fatalf("self-transition share %.3f, want ~0.5", share)
	}
}

func TestAlwaysCellNeverLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewModel(AlwaysCellMatrix(), StateCell, rng)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if m.Step() != StateCell {
			t.Fatal("always-cell model left CELL")
		}
	}
}

func TestCellOnlyNeverWifi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewModel(CellOnlyMatrix(), StateCell, rng)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	for i := 0; i < 5000; i++ {
		if m.Step() == StateWifi {
			t.Fatal("cell-only model reached WIFI")
		}
	}
}

func TestCapacity(t *testing.T) {
	c := DefaultCapacity()
	cell := c.For(StateCell)
	if !cell.BillsDataPlan || cell.Bytes == 0 {
		t.Fatalf("cell capacity %+v, want billable and positive", cell)
	}
	wifi := c.For(StateWifi)
	if wifi.BillsDataPlan {
		t.Fatal("wifi bytes must not bill the data plan")
	}
	if wifi.Bytes <= cell.Bytes {
		t.Fatal("wifi capacity should exceed cellular")
	}
	off := c.For(StateOff)
	if off.Bytes != 0 || off.BillsDataPlan {
		t.Fatalf("offline capacity %+v, want zero", off)
	}
}

func TestNewModelSeededDeterministic(t *testing.T) {
	a, err := NewModelSeeded(PaperMatrix(), StateCell, 7)
	if err != nil {
		t.Fatalf("NewModelSeeded: %v", err)
	}
	b, err := NewModelSeeded(PaperMatrix(), StateCell, 7)
	if err != nil {
		t.Fatalf("NewModelSeeded: %v", err)
	}
	for i := 0; i < 200; i++ {
		if sa, sb := a.Step(), b.Step(); sa != sb {
			t.Fatalf("step %d: same seed diverged: %s vs %s", i, sa, sb)
		}
	}
}

func TestNewModelSeededIndependent(t *testing.T) {
	a, err := NewModelSeeded(PaperMatrix(), StateCell, 1)
	if err != nil {
		t.Fatalf("NewModelSeeded: %v", err)
	}
	b, err := NewModelSeeded(PaperMatrix(), StateCell, 2)
	if err != nil {
		t.Fatalf("NewModelSeeded: %v", err)
	}
	same := 0
	const n = 500
	for i := 0; i < n; i++ {
		if a.Step() == b.Step() {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical walks")
	}
	if err := func() error { _, err := NewModelSeeded(Matrix{}, StateCell, 1); return err }(); err == nil {
		t.Fatal("invalid matrix must be rejected")
	}
}
