package network

import (
	"fmt"
	"math/rand"
)

// FaultConfig describes per-state transfer fault probabilities. The zero
// value injects no faults: every transfer succeeds exactly as it did before
// fault injection existed, and a nil *FaultModel behaves the same way, so
// existing callers and tests stay bit-identical.
//
// For each attempted transfer in a faulty state, one of three things
// happens:
//
//   - with probability Loss the transfer is lost outright: zero bytes cross
//     the link (the radio still pays its ramp energy);
//   - with probability Disconnect the link drops mid-transfer: a strict
//     prefix of the payload crosses the link and is billed for energy but
//     the item is not delivered;
//   - otherwise the transfer succeeds in full.
//
// Loss + Disconnect must not exceed 1 per state. Cellular is expected to be
// configured lossier than WiFi, mirroring the asymmetry of the three-state
// model, but the config does not enforce that.
type FaultConfig struct {
	// CellLoss is the probability a cellular transfer is lost outright.
	CellLoss float64
	// WifiLoss is the probability a WiFi transfer is lost outright.
	WifiLoss float64
	// CellDisconnect is the probability a cellular transfer disconnects
	// mid-flight, completing only a prefix.
	CellDisconnect float64
	// WifiDisconnect is the probability a WiFi transfer disconnects
	// mid-flight, completing only a prefix.
	WifiDisconnect float64
}

// Validate reports configuration errors.
func (c FaultConfig) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("network: fault probability %s=%f outside [0,1]", name, p)
		}
		return nil
	}
	if err := check("cell-loss", c.CellLoss); err != nil {
		return err
	}
	if err := check("wifi-loss", c.WifiLoss); err != nil {
		return err
	}
	if err := check("cell-disconnect", c.CellDisconnect); err != nil {
		return err
	}
	if err := check("wifi-disconnect", c.WifiDisconnect); err != nil {
		return err
	}
	if s := c.CellLoss + c.CellDisconnect; s > 1 {
		return fmt.Errorf("network: cell loss+disconnect %f exceeds 1", s)
	}
	if s := c.WifiLoss + c.WifiDisconnect; s > 1 {
		return fmt.Errorf("network: wifi loss+disconnect %f exceeds 1", s)
	}
	return nil
}

// Enabled reports whether any fault probability is non-zero.
func (c FaultConfig) Enabled() bool {
	return c.CellLoss > 0 || c.WifiLoss > 0 || c.CellDisconnect > 0 || c.WifiDisconnect > 0
}

// forState returns the (loss, disconnect) probabilities for a state.
// Offline states cannot transfer at all, so they carry no fault mass.
func (c FaultConfig) forState(s State) (loss, disconnect float64) {
	switch s {
	case StateCell:
		return c.CellLoss, c.CellDisconnect
	case StateWifi:
		return c.WifiLoss, c.WifiDisconnect
	default:
		return 0, 0
	}
}

// TransferOutcome is the result of one attempted transfer.
type TransferOutcome struct {
	// Delivered is true when the full payload crossed the link.
	Delivered bool
	// Bytes is how many bytes actually crossed the link. Equal to the
	// payload size on success, zero on outright loss, and a strict prefix
	// (possibly zero) on mid-transfer disconnect. The radio burns energy
	// for these bytes whether or not the transfer succeeded.
	Bytes int64
}

// FaultModel draws per-transfer fault outcomes from its own deterministic
// RNG.
//
// Like Model, a FaultModel is NOT safe for concurrent use: each device owns
// its fault model exclusively, seeded per user. A nil *FaultModel is valid
// and never faults, which is how fault injection stays out of the hot path
// when disabled. When a state's fault probabilities are all zero, Attempt
// succeeds without drawing from the RNG, so enabling faults on CELL only
// does not perturb the outcome sequence WiFi transfers would see.
type FaultModel struct {
	cfg   FaultConfig
	rng   *rand.Rand
	draws uint64 // Float64 draws consumed, for snapshot/restore
}

// NewFaultModel builds a fault model around an externally seeded RNG (the
// simulator's per-user StreamFaults RNG).
func NewFaultModel(cfg FaultConfig, rng *rand.Rand) (*FaultModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("network: nil rng for fault model")
	}
	return &FaultModel{cfg: cfg, rng: rng}, nil
}

// NewFaultModelSeeded builds a fault model with its own deterministic RNG,
// for callers outside the simulator's stream discipline (the live server
// shards construct one per device).
func NewFaultModelSeeded(cfg FaultConfig, seed int64) (*FaultModel, error) {
	return NewFaultModel(cfg, rand.New(rand.NewSource(seed)))
}

// Config returns the fault configuration (zero for a nil model).
func (f *FaultModel) Config() FaultConfig {
	if f == nil {
		return FaultConfig{}
	}
	return f.cfg
}

// Enabled reports whether this model can ever fault. Nil models never do.
func (f *FaultModel) Enabled() bool { return f != nil && f.cfg.Enabled() }

// Draws returns how many RNG draws the model has consumed (0 for nil).
func (f *FaultModel) Draws() uint64 {
	if f == nil {
		return 0
	}
	return f.draws
}

// Restore fast-forwards the RNG to the given draw count on a freshly
// seeded model, resuming the exact random sequence of the snapshotted one.
// A nil model only accepts zero draws.
func (f *FaultModel) Restore(draws uint64) error {
	if f == nil {
		if draws != 0 {
			return fmt.Errorf("network: restore %d fault draws into nil model", draws)
		}
		return nil
	}
	if draws < f.draws {
		return fmt.Errorf("network: restore fault draws %d behind current %d", draws, f.draws)
	}
	for f.draws < draws {
		f.rng.Float64()
		f.draws++
	}
	return nil
}

// Attempt draws the outcome of transferring size bytes in the given state.
// A nil model, a fault-free state, or a non-positive size always succeeds
// without consuming randomness.
func (f *FaultModel) Attempt(size int64, s State) TransferOutcome {
	if f == nil || size <= 0 {
		return TransferOutcome{Delivered: true, Bytes: size}
	}
	loss, disconnect := f.cfg.forState(s)
	if loss == 0 && disconnect == 0 {
		return TransferOutcome{Delivered: true, Bytes: size}
	}
	u := f.rng.Float64()
	f.draws++
	switch {
	case u < loss:
		return TransferOutcome{Delivered: false, Bytes: 0}
	case u < loss+disconnect:
		// A strict prefix crossed the link: frac in [0,1) keeps the
		// completed byte count strictly below size.
		frac := f.rng.Float64()
		f.draws++
		b := int64(frac * float64(size))
		if b >= size {
			b = size - 1
		}
		return TransferOutcome{Delivered: false, Bytes: b}
	default:
		return TransferOutcome{Delivered: true, Bytes: size}
	}
}
