package network

import (
	"math/rand"
	"testing"
)

func TestFaultConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  FaultConfig
		ok   bool
	}{
		{"zero", FaultConfig{}, true},
		{"typical", FaultConfig{CellLoss: 0.2, WifiLoss: 0.02, CellDisconnect: 0.1, WifiDisconnect: 0.01}, true},
		{"negative", FaultConfig{CellLoss: -0.1}, false},
		{"above one", FaultConfig{WifiDisconnect: 1.5}, false},
		{"cell mass exceeds one", FaultConfig{CellLoss: 0.7, CellDisconnect: 0.5}, false},
		{"wifi mass exceeds one", FaultConfig{WifiLoss: 0.6, WifiDisconnect: 0.6}, false},
		{"mass exactly one", FaultConfig{CellLoss: 0.5, CellDisconnect: 0.5}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestNilFaultModelAlwaysSucceeds(t *testing.T) {
	var f *FaultModel
	if f.Enabled() {
		t.Fatal("nil model reports enabled")
	}
	for _, s := range []State{StateOff, StateCell, StateWifi} {
		out := f.Attempt(1<<20, s)
		if !out.Delivered || out.Bytes != 1<<20 {
			t.Fatalf("nil model in %v: got %+v", s, out)
		}
	}
	if got := f.Config(); got != (FaultConfig{}) {
		t.Fatalf("nil model config = %+v", got)
	}
}

func TestZeroProbStateDrawsNoRandomness(t *testing.T) {
	// CELL faults configured, WiFi clean: WiFi attempts must not consume
	// RNG state, so a CELL attempt after any number of WiFi attempts sees
	// the same draw it would have seen immediately.
	cfg := FaultConfig{CellLoss: 0.5, CellDisconnect: 0.25}
	a, err := NewFaultModelSeeded(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFaultModelSeeded(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		out := b.Attempt(4096, StateWifi)
		if !out.Delivered || out.Bytes != 4096 {
			t.Fatalf("wifi attempt %d faulted with zero probability: %+v", i, out)
		}
	}
	for i := 0; i < 50; i++ {
		got, want := b.Attempt(4096, StateCell), a.Attempt(4096, StateCell)
		if got != want {
			t.Fatalf("cell attempt %d diverged after wifi attempts: got %+v want %+v", i, got, want)
		}
	}
}

func TestAttemptOutcomeDistribution(t *testing.T) {
	cfg := FaultConfig{CellLoss: 0.3, CellDisconnect: 0.2}
	f, err := NewFaultModel(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	const size = int64(10000)
	var lost, disconnected, ok int
	for i := 0; i < n; i++ {
		out := f.Attempt(size, StateCell)
		switch {
		case out.Delivered:
			ok++
			if out.Bytes != size {
				t.Fatalf("delivered with %d bytes, want %d", out.Bytes, size)
			}
		case out.Bytes == 0:
			lost++
		default:
			disconnected++
			if out.Bytes < 0 || out.Bytes >= size {
				t.Fatalf("disconnect prefix %d outside [0,%d)", out.Bytes, size)
			}
		}
	}
	within := func(name string, got int, p float64) {
		want := p * n
		if d := float64(got) - want; d < -0.05*n || d > 0.05*n {
			t.Errorf("%s count %d far from expected %.0f", name, got, want)
		}
	}
	// Outright losses also produce Bytes==0, and a disconnect can draw a
	// zero-byte prefix; the zero-prefix mass is tiny (0.2/10000), so the
	// buckets above are approximately the configured split.
	within("lost", lost, cfg.CellLoss)
	within("disconnected", disconnected, cfg.CellDisconnect)
	within("delivered", ok, 1-cfg.CellLoss-cfg.CellDisconnect)
}

func TestAttemptDeterministicAcrossSeeds(t *testing.T) {
	cfg := FaultConfig{CellLoss: 0.2, WifiLoss: 0.05, CellDisconnect: 0.1, WifiDisconnect: 0.02}
	a, _ := NewFaultModelSeeded(cfg, 99)
	b, _ := NewFaultModelSeeded(cfg, 99)
	c, _ := NewFaultModelSeeded(cfg, 100)
	diverged := false
	for i := 0; i < 500; i++ {
		s := StateCell
		if i%3 == 0 {
			s = StateWifi
		}
		x, y, z := a.Attempt(1<<16, s), b.Attempt(1<<16, s), c.Attempt(1<<16, s)
		if x != y {
			t.Fatalf("same-seed models diverged at %d: %+v vs %+v", i, x, y)
		}
		if x != z {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical outcome sequences")
	}
}

func TestNonPositiveSizeSucceedsWithoutDraw(t *testing.T) {
	cfg := FaultConfig{CellLoss: 1}
	f, _ := NewFaultModelSeeded(cfg, 1)
	out := f.Attempt(0, StateCell)
	if !out.Delivered || out.Bytes != 0 {
		t.Fatalf("zero-size attempt: %+v", out)
	}
	// The certain-loss draw must still be pending: the next real attempt
	// is lost.
	if got := f.Attempt(100, StateCell); got.Delivered {
		t.Fatalf("certain loss delivered: %+v", got)
	}
}
