// Package network implements the three-state Markov connectivity model the
// paper uses in Section V-D-3 (from Do et al., INFOCOM 2014): a device is
// on WiFi, on cellular, or offline. The paper's setting keeps a 50%
// probability of remaining in the current state and splits the remaining
// mass equally among transitions; devices leaving OFF pick CELL or WiFi
// with equal probability.
//
// The package also accounts per-state round capacity: cellular bytes count
// against the user's data plan while WiFi bytes do not, which is what lets
// RichNote deliver richer presentations when WiFi is available (Fig. 5c).
package network

import (
	"errors"
	"fmt"
	"math/rand"
)

// State is the connectivity state of a device.
type State int

// Connectivity states.
const (
	StateOff State = iota + 1
	StateCell
	StateWifi
)

// String returns the canonical name of the state.
func (s State) String() string {
	switch s {
	case StateOff:
		return "OFF"
	case StateCell:
		return "CELL"
	case StateWifi:
		return "WIFI"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Online reports whether any network is available.
func (s State) Online() bool { return s == StateCell || s == StateWifi }

// Matrix is a row-stochastic transition matrix indexed by [from][to] over
// (OFF, CELL, WIFI) in that order.
type Matrix [3][3]float64

// index maps a State to its matrix row/column.
func index(s State) int { return int(s) - 1 }

// ErrNotStochastic is returned when a matrix row does not sum to 1.
var ErrNotStochastic = errors.New("network: transition matrix row does not sum to 1")

// Validate checks that every row is a probability distribution.
func (m Matrix) Validate() error {
	for r, row := range m {
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("network: probability %f outside [0,1] in row %d", p, r)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("%w: row %d sums to %f", ErrNotStochastic, r, sum)
		}
	}
	return nil
}

// PaperMatrix returns the transition model of Section V-D-3: 50% to remain
// in the current state, the rest split equally; from OFF the device moves
// to CELL or WIFI with equal probability.
func PaperMatrix() Matrix {
	return Matrix{
		// from OFF:  stay 0.5, cell 0.25, wifi 0.25
		{0.5, 0.25, 0.25},
		// from CELL: off 0.25, stay 0.5, wifi 0.25
		{0.25, 0.5, 0.25},
		// from WIFI: off 0.25, cell 0.25, stay 0.5
		{0.25, 0.25, 0.5},
	}
}

// CellOnlyMatrix returns the cellular-only baseline model used for all
// experiments except Fig. 5(c): the device alternates between CELL and OFF
// and never sees WiFi.
func CellOnlyMatrix() Matrix {
	return Matrix{
		{0.5, 0.5, 0},
		{0.25, 0.75, 0},
		{0, 1, 0}, // unreachable; kept stochastic
	}
}

// AlwaysCellMatrix keeps the device permanently on cellular; used by the
// F3/F4 sweeps so budget, not connectivity, is the binding constraint.
func AlwaysCellMatrix() Matrix {
	return Matrix{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	}
}

// Model is a per-user Markov connectivity process.
//
// A Model is NOT safe for concurrent use: it owns a bare *rand.Rand and
// mutates its state on every Step. Each device must own its model
// exclusively — the simulator gives every user a model on its worker
// goroutine, and each server shard constructs an independent seeded model
// per device with NewModelSeeded so shards never share RNG state.
type Model struct {
	matrix Matrix
	state  State
	rng    *rand.Rand
	draws  uint64 // Float64 draws consumed; lets snapshot/restore replay the stream
}

// NewModel builds a model starting in the given state.
func NewModel(m Matrix, start State, rng *rand.Rand) (*Model, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if start != StateOff && start != StateCell && start != StateWifi {
		return nil, fmt.Errorf("network: invalid start state %d", start)
	}
	if rng == nil {
		return nil, errors.New("network: nil rng")
	}
	return &Model{matrix: m, state: start, rng: rng}, nil
}

// NewModelSeeded builds a model with its own deterministic RNG derived
// from seed. It exists for callers outside the simulator's RNG-stream
// discipline (the live server shards): two models with the same seed walk
// identical state sequences, and models with different seeds are
// independent, so per-device seeding keeps a sharded service deterministic
// without sharing a Rand across goroutines.
func NewModelSeeded(m Matrix, start State, seed int64) (*Model, error) {
	return NewModel(m, start, rand.New(rand.NewSource(seed)))
}

// State returns the current connectivity state.
func (m *Model) State() State { return m.state }

// Draws returns how many RNG draws the model has consumed. Together with
// the seed it pins the model's exact position in its random stream, which
// is what snapshot/restore needs for bit-identical recovery.
func (m *Model) Draws() uint64 { return m.draws }

// Restore sets the connectivity state and fast-forwards the RNG to the
// given draw count. It must be called on a freshly constructed model whose
// RNG was seeded identically to the snapshotted one; after Restore the
// model continues the exact random sequence the original would have.
func (m *Model) Restore(state State, draws uint64) error {
	if state != StateOff && state != StateCell && state != StateWifi {
		return fmt.Errorf("network: restore invalid state %d", int(state))
	}
	if draws < m.draws {
		return fmt.Errorf("network: restore draws %d behind current %d", draws, m.draws)
	}
	for m.draws < draws {
		m.rng.Float64()
		m.draws++
	}
	m.state = state
	return nil
}

// StepN advances the chain k rounds and returns the final state. The
// chain has no usable jump-ahead (each transition consumes one uniform
// draw from a stream without skip support), so the steps are replayed in
// a tight loop — bit-identical to k Step calls, which is what the
// event-driven round loop relies on when waking a parked device
// (DESIGN.md §14).
//
// richnote:allocfree
func (m *Model) StepN(k int) State {
	for i := 0; i < k; i++ {
		m.Step()
	}
	return m.state
}

// Step advances the chain one round and returns the new state.
func (m *Model) Step() State {
	row := m.matrix[index(m.state)]
	u := m.rng.Float64()
	m.draws++
	acc := 0.0
	for to, p := range row {
		acc += p
		if u < acc {
			m.state = State(to + 1)
			return m.state
		}
	}
	// Numerical slack: fall through to the last state with mass.
	for to := len(row) - 1; to >= 0; to-- {
		if row[to] > 0 {
			m.state = State(to + 1)
			break
		}
	}
	return m.state
}

// RoundCapacity describes how many bytes a device may pull this round and
// whether they bill against the cellular data plan.
type RoundCapacity struct {
	// Bytes is the link capacity for the round (0 when offline).
	Bytes int64
	// BillsDataPlan is true on cellular.
	BillsDataPlan bool
}

// Capacity holds per-state link capacities per round.
type Capacity struct {
	// CellBytesPerRound approximates sustained cellular throughput per
	// round; default 150 MB (a few Mbit/s over an hour, well above any
	// plausible plan budget so the plan is the binding constraint).
	CellBytesPerRound int64
	// WifiBytesPerRound defaults to 1.5 GB.
	WifiBytesPerRound int64
}

// DefaultCapacity returns the defaults documented on Capacity.
func DefaultCapacity() Capacity {
	return Capacity{
		CellBytesPerRound: 150 << 20,
		WifiBytesPerRound: 1500 << 20,
	}
}

// For returns the round capacity in the given state.
func (c Capacity) For(s State) RoundCapacity {
	switch s {
	case StateCell:
		return RoundCapacity{Bytes: c.CellBytesPerRound, BillsDataPlan: true}
	case StateWifi:
		return RoundCapacity{Bytes: c.WifiBytesPerRound, BillsDataPlan: false}
	default:
		return RoundCapacity{}
	}
}
