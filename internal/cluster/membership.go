package cluster

import (
	"sync"
	"time"
)

// ProbeFunc checks one peer's health; nil means alive. The transport
// client's ping frame is the production implementation, but membership
// only needs the judgment, so tests inject failures directly.
type ProbeFunc func(addr string) error

// MembershipConfig tunes probing; the zero value gets defaults suitable
// for a localhost cluster.
type MembershipConfig struct {
	// Interval between probe passes; defaults to 500ms.
	Interval time.Duration
	// Threshold is the number of consecutive failed probes that declares a
	// node dead; defaults to 2, so one dropped packet does not trigger a
	// shard handoff.
	Threshold int
}

// Membership watches a static seed set of nodes with periodic health
// probes. Death is one-way: a node that misses Threshold consecutive
// probes is removed from the live set permanently, and the OnChange
// callback fires with the survivors so the coordinator can recompute the
// cluster map and drive handoff. A dead node that comes back must rejoin
// as a fresh process under a new cluster start — half-rejoined nodes with
// stale shard state are a correctness hazard this PR refuses to have.
type Membership struct {
	probe     ProbeFunc
	interval  time.Duration
	threshold int

	mu       sync.Mutex
	peers    []Node // live peers, sorted by name (as given to New)
	fails    map[string]int
	onChange func(live []Node)
	started  bool
	stopped  bool
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership builds a membership over the seed peers. All peers start
// presumed alive; probing begins at Start.
func NewMembership(peers []Node, probe ProbeFunc, cfg MembershipConfig) *Membership {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	live := append([]Node(nil), peers...)
	return &Membership{
		probe:     probe,
		interval:  cfg.Interval,
		threshold: cfg.Threshold,
		peers:     live,
		fails:     make(map[string]int, len(live)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// OnChange registers the callback invoked (from the probe goroutine, or
// from CheckNow's caller) whenever the live set shrinks. Set it before
// Start.
func (m *Membership) OnChange(fn func(live []Node)) {
	m.mu.Lock()
	m.onChange = fn
	m.mu.Unlock()
}

// Live returns a copy of the current live node set.
func (m *Membership) Live() []Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Node(nil), m.peers...)
}

// Start launches the periodic probe loop. The loop samples the wall clock
// by design: health probing is about real elapsed time, not virtual
// rounds.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.loop()
}

func (m *Membership) loop() {
	defer close(m.done)
	//lint:allow wallclock health probing measures real elapsed time between peers
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.CheckNow()
		}
	}
}

// CheckNow runs one synchronous probe pass over the live peers, applying
// the failure threshold and firing OnChange if any node died. Exposed so
// tests and startup readiness checks can probe without waiting a tick.
func (m *Membership) CheckNow() {
	m.mu.Lock()
	peers := append([]Node(nil), m.peers...)
	m.mu.Unlock()

	// Probe outside the lock — a hung peer must not block Live().
	failed := make(map[string]bool, len(peers))
	for _, p := range peers {
		if err := m.probe(p.Addr); err != nil {
			failed[p.Name] = true
		}
	}

	m.mu.Lock()
	var live []Node
	changed := false
	for _, p := range m.peers {
		if failed[p.Name] {
			m.fails[p.Name]++
		} else {
			m.fails[p.Name] = 0
		}
		if m.fails[p.Name] >= m.threshold {
			changed = true
			continue // dead: drop from the live set, permanently
		}
		live = append(live, p)
	}
	var fire func(live []Node)
	if changed {
		m.peers = live
		fire = m.onChange
	}
	m.mu.Unlock()

	if fire != nil {
		fire(append([]Node(nil), live...))
	}
}

// Stop halts the probe loop and waits for it to exit. A stopped
// membership stays stopped — Start after Stop is a no-op.
func (m *Membership) Stop() {
	m.mu.Lock()
	if !m.started || m.stopped {
		m.stopped = true
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}
