package cluster

import (
	"sort"
	"sync"
	"time"
)

// ProbeFunc checks one peer's health; nil means alive. The transport
// client's ping frame is the production implementation, but membership
// only needs the judgment, so tests inject failures directly.
type ProbeFunc func(addr string) error

// MembershipConfig tunes probing; the zero value gets defaults suitable
// for a localhost cluster.
type MembershipConfig struct {
	// Interval between probe passes; defaults to 500ms.
	Interval time.Duration
	// Threshold is the number of consecutive failed probes that declares a
	// node dead; defaults to 2, so one dropped packet does not trigger a
	// shard handoff.
	Threshold int
}

// Membership watches a seed set of nodes with periodic health probes. A
// node that misses Threshold consecutive probes is removed from the live
// set, and the OnChange callback fires with the survivors so the
// coordinator can recompute the cluster map and drive handoff. Death is
// no longer one-way: a node readmitted through the coordinator's join
// protocol (Admit, DESIGN.md §15) re-enters the live set with a clean
// failure count and is probed from the next pass — but only through that
// validated path; a dead node never slips back in just by answering
// probes again.
type Membership struct {
	probe     ProbeFunc
	interval  time.Duration
	threshold int

	mu       sync.Mutex
	peers    []Node // live peers, sorted by name
	fails    map[string]int
	onChange func(live []Node)
	onProbe  func(live []Node)
	started  bool
	stopped  bool
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership builds a membership over the seed peers. All peers start
// presumed alive; probing begins at Start.
func NewMembership(peers []Node, probe ProbeFunc, cfg MembershipConfig) *Membership {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	live := append([]Node(nil), peers...)
	return &Membership{
		probe:     probe,
		interval:  cfg.Interval,
		threshold: cfg.Threshold,
		peers:     live,
		fails:     make(map[string]int, len(live)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// OnChange registers the callback invoked (from the probe goroutine, or
// from CheckNow's caller) whenever the live set shrinks. Set it before
// Start.
func (m *Membership) OnChange(fn func(live []Node)) {
	m.mu.Lock()
	m.onChange = fn
	m.mu.Unlock()
}

// OnProbe registers a callback invoked after every completed probe pass
// (from the probe goroutine, or from CheckNow's caller) with the current
// live set, whether or not the set changed. Coordinators hang periodic
// retry work off it — adoptions that failed at death time are re-driven
// pass by pass. Set it before Start.
func (m *Membership) OnProbe(fn func(live []Node)) {
	m.mu.Lock()
	m.onProbe = fn
	m.mu.Unlock()
}

// Admit adds a node to the live set, or revives a dead one — the
// join/rejoin path. The node's failure count resets and its address is
// updated in place (a restarted node usually comes back on a new port);
// probing covers it from the next pass. Admit never fires OnChange: the
// coordinator admitting the node already knows, and drives the rebalance
// itself. Admit after Stop is a no-op.
func (m *Membership) Admit(n Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.fails[n.Name] = 0
	for i := range m.peers {
		if m.peers[i].Name == n.Name {
			m.peers[i].Addr = n.Addr
			return
		}
	}
	m.peers = append(m.peers, n)
	sort.Slice(m.peers, func(i, j int) bool { return m.peers[i].Name < m.peers[j].Name })
}

// Live returns a copy of the current live node set.
func (m *Membership) Live() []Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Node(nil), m.peers...)
}

// Start launches the periodic probe loop. The loop samples the wall clock
// by design: health probing is about real elapsed time, not virtual
// rounds.
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.loop()
}

func (m *Membership) loop() {
	defer close(m.done)
	//lint:allow wallclock health probing measures real elapsed time between peers
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.CheckNow()
		}
	}
}

// CheckNow runs one synchronous probe pass over the live peers, applying
// the failure threshold and firing OnChange if any node died. Exposed so
// tests and startup readiness checks can probe without waiting a tick.
func (m *Membership) CheckNow() {
	m.mu.Lock()
	peers := append([]Node(nil), m.peers...)
	m.mu.Unlock()

	// Probe outside the lock — a hung peer must not block Live().
	failed := make(map[string]bool, len(peers))
	for _, p := range peers {
		if err := m.probe(p.Addr); err != nil {
			failed[p.Name] = true
		}
	}

	m.mu.Lock()
	var live []Node
	changed := false
	for _, p := range m.peers {
		if failed[p.Name] {
			m.fails[p.Name]++
		} else {
			m.fails[p.Name] = 0
		}
		if m.fails[p.Name] >= m.threshold {
			changed = true
			continue // dead: drop from the live set until readmitted
		}
		live = append(live, p)
	}
	var fire func(live []Node)
	if changed {
		m.peers = live
		fire = m.onChange
	}
	probed := m.onProbe
	snapshot := append([]Node(nil), m.peers...)
	m.mu.Unlock()

	if fire != nil {
		fire(snapshot)
	}
	if probed != nil {
		probed(snapshot)
	}
}

// Stop halts the probe loop and waits for it to exit. A stopped
// membership stays stopped — Start after Stop is a no-op.
func (m *Membership) Stop() {
	m.mu.Lock()
	if !m.started || m.stopped {
		m.stopped = true
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}
