// Package cluster holds the multi-node control plane (DESIGN.md §13): the
// versioned node→shard assignment map and the static-seed membership with
// periodic health probes. The data plane — forwarding publishes, shipping
// snapshots — lives in internal/transport and internal/server; this
// package only decides who owns what, deterministically.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"github.com/richnote/richnote/internal/wal"
)

// Node identifies one shard-owner process: a stable name (the cluster-wide
// identity, chosen by the operator) and the transport address it serves.
type Node struct {
	Name string
	Addr string
}

// Map is a versioned assignment of every shard to exactly one node. The
// assignment is a pure function of (sorted node set, shard count) via
// consistent hashing, so every process that knows the same live node set
// computes the same map — the version number exists to order successive
// maps, not to carry information the node set does not.
//
// Consistent hashing gives the rebalance property the tests pin down:
// adding a node moves ≈1/N of the shards (all of them *to* the new node),
// removing a node moves only that node's shards, and untouched shards
// never change owner.
type Map struct {
	Version uint64
	Shards  int
	Nodes   []Node // sorted by Name, unique

	owner []int // shard → index into Nodes
}

// replicas is the virtual-point count per node, matching the user→shard
// ring in internal/server for the same smoothness reasons.
const replicas = 128

type point struct {
	hash uint64
	node int
}

// Compute builds the map for a node set. Nodes are sorted by name; order
// of the input does not matter. Empty or duplicate names are errors — a
// cluster with ambiguous identity must not limp onward.
func Compute(version uint64, nodes []Node, shards int) (*Map, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: cannot compute a map over zero nodes")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: invalid shard count %d", shards)
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, n := range sorted {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node with empty name (addr %q)", n.Addr)
		}
		if i > 0 && sorted[i-1].Name == n.Name {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
	}

	points := make([]point, 0, len(sorted)*replicas)
	for i, n := range sorted {
		for v := 0; v < replicas; v++ {
			points = append(points, point{hash: hash64("cnode:" + n.Name + ":" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index — already
		// deterministic because nodes are sorted by name.
		return points[i].node < points[j].node
	})

	owner := make([]int, shards)
	for s := range owner {
		h := hash64("cshard:" + strconv.Itoa(s))
		i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
		if i == len(points) {
			i = 0 // wrap around the circle
		}
		owner[s] = points[i].node
	}
	return &Map{Version: version, Shards: shards, Nodes: sorted, owner: owner}, nil
}

// Owner returns the node owning a shard.
func (m *Map) Owner(shard int) Node {
	return m.Nodes[m.owner[shard]]
}

// OwnedBy returns the ascending shard list a node owns; empty (not nil)
// for an unknown node name.
func (m *Map) OwnedBy(name string) []int {
	owned := []int{}
	for s, ni := range m.owner {
		if m.Nodes[ni].Name == name {
			owned = append(owned, s)
		}
	}
	return owned
}

// NodeAddr returns the transport address for a node name, or "" if the
// node is not in the map.
func (m *Map) NodeAddr(name string) string {
	for _, n := range m.Nodes {
		if n.Name == name {
			return n.Addr
		}
	}
	return ""
}

// Rebalance derives the successor map after the live node set shrank:
// shards whose owner survived keep it (untouched shards never move, even
// across planned reassignments), and shards orphaned by dead nodes are
// reassigned by consistent hashing over the survivors.
func (m *Map) Rebalance(version uint64, live []Node) (*Map, error) {
	base, err := Compute(version, live, m.Shards)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(base.Nodes))
	for i, n := range base.Nodes {
		idx[n.Name] = i
	}
	owner := make([]int, m.Shards)
	for s := range owner {
		if i, ok := idx[m.Owner(s).Name]; ok {
			owner[s] = i
		} else {
			owner[s] = base.owner[s]
		}
	}
	return &Map{Version: version, Shards: m.Shards, Nodes: base.Nodes, owner: owner}, nil
}

// WithOwner returns a copy of the map with one shard explicitly assigned
// (the planned-handoff path). The target must be a member.
func (m *Map) WithOwner(version uint64, shard int, node string) (*Map, error) {
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, m.Shards)
	}
	target := -1
	for i, n := range m.Nodes {
		if n.Name == node {
			target = i
			break
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("cluster: node %q is not a member", node)
	}
	owner := append([]int(nil), m.owner...)
	owner[shard] = target
	return &Map{Version: version, Shards: m.Shards, Nodes: m.Nodes, owner: owner}, nil
}

// Encode serializes the map with the WAL codec, shipping the full
// assignment explicitly — planned handoffs can diverge from the pure
// consistent-hash placement, so receivers must not recompute.
func (m *Map) Encode() []byte {
	var e wal.Encoder
	e.U8(mapCodecVersion)
	e.U64(m.Version)
	e.U32(uint32(m.Shards))
	e.U32(uint32(len(m.Nodes)))
	for _, n := range m.Nodes {
		e.Str(n.Name)
		e.Str(n.Addr)
	}
	for _, o := range m.owner {
		e.U32(uint32(o))
	}
	return append([]byte(nil), e.Bytes()...)
}

const mapCodecVersion = 1

// Decode parses a map written by Encode.
func Decode(b []byte) (*Map, error) {
	d := wal.NewDecoder(b)
	if v := d.U8(); v != mapCodecVersion && d.Err() == nil {
		return nil, fmt.Errorf("cluster: unsupported map codec version %d", v)
	}
	version := d.U64()
	shards := int(d.U32())
	n := d.Count(8, "nodes")
	nodes := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, Node{Name: d.Str(), Addr: d.Str()})
	}
	if shards < 0 || int64(shards)*4 > int64(d.Remaining()) {
		return nil, fmt.Errorf("cluster: decoding map: implausible shard count %d", shards)
	}
	owner := make([]int, 0, shards)
	for s := 0; s < shards; s++ {
		owner = append(owner, int(d.U32()))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("cluster: decoding map: %w", err)
	}
	for _, o := range owner {
		if o < 0 || o >= len(nodes) {
			return nil, fmt.Errorf("cluster: decoding map: owner index %d out of range for %d nodes", o, len(nodes))
		}
	}
	m := &Map{Version: version, Shards: shards, Nodes: nodes, owner: owner}
	// Re-validate the node set through Compute's rules (sorted, unique,
	// non-empty names) without discarding the explicit assignment.
	if _, err := Compute(version, nodes, shards); err != nil {
		return nil, err
	}
	return m, nil
}

// hash64 is FNV-64a with a murmur-style finalizer. Raw FNV avalanches
// poorly when keys differ only in their last few bytes — "cnode:a:0" …
// "cnode:a:127" land in one narrow band and a single node can capture the
// entire circle. The finalizer spreads those bands uniformly; the
// user→shard ring in internal/server keeps plain FNV because changing it
// would reassign users and orphan persisted shard state.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
