// Package cluster holds the multi-node control plane (DESIGN.md §13): the
// versioned node→shard assignment map and the static-seed membership with
// periodic health probes. The data plane — forwarding publishes, shipping
// snapshots — lives in internal/transport and internal/server; this
// package only decides who owns what, deterministically.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"github.com/richnote/richnote/internal/wal"
)

// Node identifies one shard-owner process: a stable name (the cluster-wide
// identity, chosen by the operator) and the transport address it serves.
type Node struct {
	Name string
	Addr string
}

// Map is a versioned assignment of every shard to at most one node. The
// initial assignment is a pure function of (sorted node set, shard count)
// via consistent hashing, so every process that knows the same live node
// set computes the same map; planned handoffs (WithOwner), failed adopts
// (WithoutOwner) and recovery (Assemble) then diverge from the pure
// placement, which is why maps ship the full assignment explicitly. The
// version number orders successive maps.
//
// Consistent hashing gives the rebalance property the tests pin down:
// adding a node moves ≈1/N of the shards (all of them *to* the new node),
// removing a node moves only that node's shards, and untouched shards
// never change owner.
type Map struct {
	Version uint64
	Shards  int
	Nodes   []Node // sorted by Name, unique

	owner []int // shard → index into Nodes, or unowned
}

// unowned marks a shard no node currently serves. Maps derived purely
// from a node set never contain it; it enters through Assemble and
// WithoutOwner when the coordinator must record honestly that a handoff
// or takeover adopt failed and the shard is nobody's until a retry lands.
const unowned = -1

// replicas is the virtual-point count per node, matching the user→shard
// ring in internal/server for the same smoothness reasons.
const replicas = 128

type point struct {
	hash uint64
	node int
}

// Compute builds the map for a node set. Nodes are sorted by name; order
// of the input does not matter. Empty or duplicate names are errors — a
// cluster with ambiguous identity must not limp onward — and so are
// duplicate non-empty addresses, which would make address→name lookups
// (the prober's verdict attribution) silently ambiguous.
func Compute(version uint64, nodes []Node, shards int) (*Map, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: cannot compute a map over zero nodes")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: invalid shard count %d", shards)
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	byAddr := make(map[string]string, len(sorted))
	for i, n := range sorted {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node with empty name (addr %q)", n.Addr)
		}
		if i > 0 && sorted[i-1].Name == n.Name {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		if n.Addr != "" {
			if prev, dup := byAddr[n.Addr]; dup {
				return nil, fmt.Errorf("cluster: nodes %q and %q share address %q", prev, n.Name, n.Addr)
			}
			byAddr[n.Addr] = n.Name
		}
	}

	points := make([]point, 0, len(sorted)*replicas)
	for i, n := range sorted {
		for v := 0; v < replicas; v++ {
			points = append(points, point{hash: hash64("cnode:" + n.Name + ":" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index — already
		// deterministic because nodes are sorted by name.
		return points[i].node < points[j].node
	})

	owner := make([]int, shards)
	for s := range owner {
		h := hash64("cshard:" + strconv.Itoa(s))
		i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
		if i == len(points) {
			i = 0 // wrap around the circle
		}
		owner[s] = points[i].node
	}
	return &Map{Version: version, Shards: shards, Nodes: sorted, owner: owner}, nil
}

// Owner returns the node owning a shard, or the zero Node (Name == "")
// for a shard the map honestly records as unassigned. Callers must treat
// an unassigned shard as unavailable, never guess an owner for it.
func (m *Map) Owner(shard int) Node {
	if m.owner[shard] == unowned {
		return Node{}
	}
	return m.Nodes[m.owner[shard]]
}

// OwnedBy returns the ascending shard list a node owns; empty (not nil)
// for an unknown node name.
func (m *Map) OwnedBy(name string) []int {
	owned := []int{}
	for s, ni := range m.owner {
		if ni != unowned && m.Nodes[ni].Name == name {
			owned = append(owned, s)
		}
	}
	return owned
}

// Unassigned returns the ascending list of shards no node owns; empty
// (not nil) when the map is fully assigned.
func (m *Map) Unassigned() []int {
	shards := []int{}
	for s, ni := range m.owner {
		if ni == unowned {
			shards = append(shards, s)
		}
	}
	return shards
}

// OwnerNames returns the per-shard owner names ("" for an unassigned
// shard) — the explicit form Assemble consumes, so coordinators can edit
// ownership shard by shard and rebuild a validated map.
func (m *Map) OwnerNames() []string {
	names := make([]string, m.Shards)
	for s := range names {
		names[s] = m.Owner(s).Name
	}
	return names
}

// NodeAddr returns the transport address for a node name, or "" if the
// node is not in the map.
func (m *Map) NodeAddr(name string) string {
	for _, n := range m.Nodes {
		if n.Name == name {
			return n.Addr
		}
	}
	return ""
}

// Rebalance derives the successor map after the live node set changed,
// in either direction. Shrink: shards whose owner survived keep it
// (untouched shards never move, even across planned reassignments), and
// shards orphaned by dead nodes — or recorded unassigned — are handed to
// their consistent-hash owner over the survivors. Grow: a live node
// absent from this map claims exactly the shards consistent hashing
// assigns it over the new set — ≈1/N of the space, all moving *to* the
// joiner — while every other shard keeps its current owner. Rebalance
// only decides the target assignment; the coordinator drives the actual
// freezes and adopts and publishes versions as each one lands.
func (m *Map) Rebalance(version uint64, live []Node) (*Map, error) {
	base, err := Compute(version, live, m.Shards)
	if err != nil {
		return nil, err
	}
	idx := make(map[string]int, len(base.Nodes))
	for i, n := range base.Nodes {
		idx[n.Name] = i
	}
	member := make(map[string]bool, len(m.Nodes))
	for _, n := range m.Nodes {
		member[n.Name] = true
	}
	owner := make([]int, m.Shards)
	for s := range owner {
		if !member[base.Nodes[base.owner[s]].Name] {
			// The hash hands this shard to a node this map has never
			// seen: a joiner claiming its 1/N share.
			owner[s] = base.owner[s]
			continue
		}
		// idx never maps "" (Compute rejects empty names), so an
		// unassigned shard falls through to the rehash branch.
		if i, ok := idx[m.Owner(s).Name]; ok {
			owner[s] = i // survivor keeps its shard
		} else {
			owner[s] = base.owner[s] // orphaned or unassigned: rehash
		}
	}
	return &Map{Version: version, Shards: m.Shards, Nodes: base.Nodes, owner: owner}, nil
}

// WithOwner returns a copy of the map with one shard explicitly assigned
// (the planned-handoff path). The target must be a member.
func (m *Map) WithOwner(version uint64, shard int, node string) (*Map, error) {
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, m.Shards)
	}
	target := -1
	for i, n := range m.Nodes {
		if n.Name == node {
			target = i
			break
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("cluster: node %q is not a member", node)
	}
	owner := append([]int(nil), m.owner...)
	owner[shard] = target
	return &Map{Version: version, Shards: m.Shards, Nodes: m.Nodes, owner: owner}, nil
}

// WithoutOwner returns a copy of the map with one shard explicitly
// unassigned: the coordinator's honest record that a handoff or takeover
// failed and nobody serves the shard until an adopt retry lands.
func (m *Map) WithoutOwner(version uint64, shard int) (*Map, error) {
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, m.Shards)
	}
	owner := append([]int(nil), m.owner...)
	owner[shard] = unowned
	return &Map{Version: version, Shards: m.Shards, Nodes: m.Nodes, owner: owner}, nil
}

// Assemble builds a map from explicit per-shard owner names — the
// coordinator's constructor for assignments that cannot be derived from
// a node set alone: takeover outcomes where some adopts failed (those
// shards are honestly unowned, name ""), and router restart recovery,
// where ownership is whatever the nodes report rather than what
// consistent hashing would recompute. Every non-empty owner must be a
// member of nodes; the node set goes through Compute's validation
// (sorted, unique names, unique addresses).
func Assemble(version uint64, nodes []Node, shards int, owners []string) (*Map, error) {
	base, err := Compute(version, nodes, shards)
	if err != nil {
		return nil, err
	}
	if len(owners) != shards {
		return nil, fmt.Errorf("cluster: assemble: %d owners for %d shards", len(owners), shards)
	}
	idx := make(map[string]int, len(base.Nodes))
	for i, n := range base.Nodes {
		idx[n.Name] = i
	}
	owner := make([]int, shards)
	for s, name := range owners {
		if name == "" {
			owner[s] = unowned
			continue
		}
		i, ok := idx[name]
		if !ok {
			return nil, fmt.Errorf("cluster: assemble: shard %d owner %q is not a member", s, name)
		}
		owner[s] = i
	}
	return &Map{Version: version, Shards: shards, Nodes: base.Nodes, owner: owner}, nil
}

// Encode serializes the map with the WAL codec, shipping the full
// assignment explicitly — planned handoffs can diverge from the pure
// consistent-hash placement, so receivers must not recompute.
func (m *Map) Encode() []byte {
	var e wal.Encoder
	e.U8(mapCodecVersion)
	e.U64(m.Version)
	e.U32(uint32(m.Shards))
	e.U32(uint32(len(m.Nodes)))
	for _, n := range m.Nodes {
		e.Str(n.Name)
		e.Str(n.Addr)
	}
	for _, o := range m.owner {
		// Owner indices ride as two's-complement int32 in a U32 slot so
		// the unowned marker (-1) survives the wire.
		e.U32(uint32(int32(o)))
	}
	return append([]byte(nil), e.Bytes()...)
}

const mapCodecVersion = 1

// Decode parses a map written by Encode.
func Decode(b []byte) (*Map, error) {
	d := wal.NewDecoder(b)
	if v := d.U8(); v != mapCodecVersion && d.Err() == nil {
		return nil, fmt.Errorf("cluster: unsupported map codec version %d", v)
	}
	version := d.U64()
	shards := int(d.U32())
	n := d.Count(8, "nodes")
	nodes := make([]Node, 0, n)
	for i := 0; i < n; i++ {
		nodes = append(nodes, Node{Name: d.Str(), Addr: d.Str()})
	}
	if shards < 0 || int64(shards)*4 > int64(d.Remaining()) {
		return nil, fmt.Errorf("cluster: decoding map: implausible shard count %d", shards)
	}
	owner := make([]int, 0, shards)
	for s := 0; s < shards; s++ {
		owner = append(owner, int(int32(d.U32())))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("cluster: decoding map: %w", err)
	}
	for _, o := range owner {
		if o != unowned && (o < 0 || o >= len(nodes)) {
			return nil, fmt.Errorf("cluster: decoding map: owner index %d out of range for %d nodes", o, len(nodes))
		}
	}
	m := &Map{Version: version, Shards: shards, Nodes: nodes, owner: owner}
	// Re-validate the node set through Compute's rules (sorted, unique,
	// non-empty names) without discarding the explicit assignment.
	if _, err := Compute(version, nodes, shards); err != nil {
		return nil, err
	}
	return m, nil
}

// hash64 is FNV-64a with a murmur-style finalizer. Raw FNV avalanches
// poorly when keys differ only in their last few bytes — "cnode:a:0" …
// "cnode:a:127" land in one narrow band and a single node can capture the
// entire circle. The finalizer spreads those bands uniformly; the
// user→shard ring in internal/server keeps plain FNV because changing it
// would reassign users and orphan persisted shard state.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
