package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func mkNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return nodes
}

func TestComputeDeterministic(t *testing.T) {
	nodes := mkNodes(4)
	a, err := Compute(7, nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle the input order: the assignment must not care.
	shuffled := []Node{nodes[2], nodes[0], nodes[3], nodes[1]}
	b, err := Compute(7, shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 64; s++ {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("shard %d owner differs across input orders: %v vs %v", s, a.Owner(s), b.Owner(s))
		}
	}
	if a.Version != 7 {
		t.Fatalf("version = %d", a.Version)
	}
}

// TestRebalance pins the consistent-hashing contract: adding a node moves
// ≈1/N of the shards and every moved shard lands on the new node;
// removing a node moves only that node's shards; untouched shards never
// change owner.
func TestRebalance(t *testing.T) {
	const shards = 256
	for _, n := range []int{2, 3, 4, 6, 8} {
		n := n
		t.Run(fmt.Sprintf("nodes=%d", n), func(t *testing.T) {
			nodes := mkNodes(n)
			before, err := Compute(1, nodes, shards)
			if err != nil {
				t.Fatal(err)
			}

			// Add one node.
			added := Node{Name: fmt.Sprintf("node%d", n), Addr: "127.0.0.1:9999"}
			after, err := Compute(2, append(append([]Node{}, nodes...), added), shards)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for s := 0; s < shards; s++ {
				if before.Owner(s) != after.Owner(s) {
					moved++
					if after.Owner(s).Name != added.Name {
						t.Errorf("shard %d moved from %s to %s, not to the added node",
							s, before.Owner(s).Name, after.Owner(s).Name)
					}
				}
			}
			// Expectation is shards/(n+1); allow a generous 3x band in both
			// directions — 128 virtual points keeps it far tighter in
			// practice, but the test pins the property, not the variance.
			want := shards / (n + 1)
			if moved < want/3 || moved > want*3 {
				t.Errorf("add: moved %d shards, want ≈%d", moved, want)
			}
			if moved == 0 {
				t.Error("add: no shards moved to the new node")
			}

			// Remove one node (the last, so names stay contiguous).
			removed := nodes[n-1]
			smaller, err := Compute(3, nodes[:n-1], shards)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < shards; s++ {
				if before.Owner(s).Name == removed.Name {
					if smaller.Owner(s).Name == removed.Name {
						t.Errorf("shard %d still assigned to removed node", s)
					}
					continue
				}
				if before.Owner(s) != smaller.Owner(s) {
					t.Errorf("shard %d owned by untouched node %s was reassigned to %s",
						s, before.Owner(s).Name, smaller.Owner(s).Name)
				}
			}
		})
	}
}

func TestOwnedByPartitions(t *testing.T) {
	const shards = 64
	m, err := Compute(1, mkNodes(3), shards)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]string)
	total := 0
	for _, n := range m.Nodes {
		owned := m.OwnedBy(n.Name)
		total += len(owned)
		for _, s := range owned {
			if prev, dup := seen[s]; dup {
				t.Fatalf("shard %d owned by both %s and %s", s, prev, n.Name)
			}
			seen[s] = n.Name
			if m.Owner(s).Name != n.Name {
				t.Fatalf("OwnedBy/Owner disagree on shard %d", s)
			}
		}
	}
	if total != shards {
		t.Fatalf("OwnedBy covers %d of %d shards", total, shards)
	}
	if got := m.OwnedBy("phantom"); len(got) != 0 {
		t.Fatalf("unknown node owns %v", got)
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m, err := Compute(42, mkNodes(3), 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.Shards != m.Shards || !reflect.DeepEqual(got.Nodes, m.Nodes) {
		t.Fatalf("decoded map differs: %+v vs %+v", got, m)
	}
	for s := 0; s < m.Shards; s++ {
		if got.Owner(s) != m.Owner(s) {
			t.Fatalf("shard %d owner differs after codec round trip", s)
		}
	}
	if _, err := Decode([]byte{9, 9, 9}); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer decoded without error")
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	if _, err := Compute(1, nil, 4); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := Compute(1, mkNodes(2), 0); err == nil {
		t.Error("zero shards accepted")
	}
	dup := []Node{{Name: "a", Addr: "x"}, {Name: "a", Addr: "y"}}
	if _, err := Compute(1, dup, 4); err == nil {
		t.Error("duplicate node name accepted")
	}
	if _, err := Compute(1, []Node{{Name: "", Addr: "x"}}, 4); err == nil {
		t.Error("empty node name accepted")
	}
}

func TestMembershipDeathAfterThreshold(t *testing.T) {
	var mu sync.Mutex
	down := map[string]bool{}
	probe := func(addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if down[addr] {
			return errors.New("unreachable")
		}
		return nil
	}
	peers := mkNodes(3)
	m := NewMembership(peers, probe, MembershipConfig{Interval: time.Hour, Threshold: 2})

	var fired [][]Node
	m.OnChange(func(live []Node) { fired = append(fired, live) })

	m.CheckNow()
	if got := m.Live(); len(got) != 3 {
		t.Fatalf("live = %d, want 3", len(got))
	}

	mu.Lock()
	down[peers[1].Addr] = true
	mu.Unlock()

	m.CheckNow() // failure 1 of 2: still live
	if got := m.Live(); len(got) != 3 {
		t.Fatalf("after one failure live = %d, want 3 (threshold 2)", len(got))
	}
	if len(fired) != 0 {
		t.Fatalf("OnChange fired below threshold: %v", fired)
	}

	m.CheckNow() // failure 2 of 2: dead
	live := m.Live()
	if len(live) != 2 || live[0].Name != "node0" || live[1].Name != "node2" {
		t.Fatalf("after death live = %v", live)
	}
	if len(fired) != 1 || len(fired[0]) != 2 {
		t.Fatalf("OnChange = %v", fired)
	}

	// Death is one-way: the node recovering does not resurrect it.
	mu.Lock()
	down[peers[1].Addr] = false
	mu.Unlock()
	m.CheckNow()
	if got := m.Live(); len(got) != 2 {
		t.Fatalf("dead node resurrected: live = %d", len(got))
	}
	if len(fired) != 1 {
		t.Fatalf("OnChange re-fired without a change: %v", fired)
	}
}

func TestMembershipStartStop(t *testing.T) {
	seen := make(chan struct{}, 16)
	m := NewMembership(mkNodes(1), func(addr string) error {
		select {
		case seen <- struct{}{}:
		default:
		}
		return nil
	}, MembershipConfig{Interval: 5 * time.Millisecond})
	m.Start()
	<-seen // at least one periodic pass ran
	m.Stop()
	m.Stop()  // idempotent
	m.Start() // no-op after Stop
}
