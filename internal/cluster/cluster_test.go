package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func mkNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("node%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	return nodes
}

func TestComputeDeterministic(t *testing.T) {
	nodes := mkNodes(4)
	a, err := Compute(7, nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle the input order: the assignment must not care.
	shuffled := []Node{nodes[2], nodes[0], nodes[3], nodes[1]}
	b, err := Compute(7, shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 64; s++ {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("shard %d owner differs across input orders: %v vs %v", s, a.Owner(s), b.Owner(s))
		}
	}
	if a.Version != 7 {
		t.Fatalf("version = %d", a.Version)
	}
}

// TestRebalance pins the consistent-hashing contract: adding a node moves
// ≈1/N of the shards and every moved shard lands on the new node;
// removing a node moves only that node's shards; untouched shards never
// change owner.
func TestRebalance(t *testing.T) {
	const shards = 256
	for _, n := range []int{2, 3, 4, 6, 8} {
		n := n
		t.Run(fmt.Sprintf("nodes=%d", n), func(t *testing.T) {
			nodes := mkNodes(n)
			before, err := Compute(1, nodes, shards)
			if err != nil {
				t.Fatal(err)
			}

			// Add one node.
			added := Node{Name: fmt.Sprintf("node%d", n), Addr: "127.0.0.1:9999"}
			after, err := Compute(2, append(append([]Node{}, nodes...), added), shards)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for s := 0; s < shards; s++ {
				if before.Owner(s) != after.Owner(s) {
					moved++
					if after.Owner(s).Name != added.Name {
						t.Errorf("shard %d moved from %s to %s, not to the added node",
							s, before.Owner(s).Name, after.Owner(s).Name)
					}
				}
			}
			// Expectation is shards/(n+1); allow a generous 3x band in both
			// directions — 128 virtual points keeps it far tighter in
			// practice, but the test pins the property, not the variance.
			want := shards / (n + 1)
			if moved < want/3 || moved > want*3 {
				t.Errorf("add: moved %d shards, want ≈%d", moved, want)
			}
			if moved == 0 {
				t.Error("add: no shards moved to the new node")
			}

			// Remove one node (the last, so names stay contiguous).
			removed := nodes[n-1]
			smaller, err := Compute(3, nodes[:n-1], shards)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < shards; s++ {
				if before.Owner(s).Name == removed.Name {
					if smaller.Owner(s).Name == removed.Name {
						t.Errorf("shard %d still assigned to removed node", s)
					}
					continue
				}
				if before.Owner(s) != smaller.Owner(s) {
					t.Errorf("shard %d owned by untouched node %s was reassigned to %s",
						s, before.Owner(s).Name, smaller.Owner(s).Name)
				}
			}
		})
	}
}

func TestOwnedByPartitions(t *testing.T) {
	const shards = 64
	m, err := Compute(1, mkNodes(3), shards)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]string)
	total := 0
	for _, n := range m.Nodes {
		owned := m.OwnedBy(n.Name)
		total += len(owned)
		for _, s := range owned {
			if prev, dup := seen[s]; dup {
				t.Fatalf("shard %d owned by both %s and %s", s, prev, n.Name)
			}
			seen[s] = n.Name
			if m.Owner(s).Name != n.Name {
				t.Fatalf("OwnedBy/Owner disagree on shard %d", s)
			}
		}
	}
	if total != shards {
		t.Fatalf("OwnedBy covers %d of %d shards", total, shards)
	}
	if got := m.OwnedBy("phantom"); len(got) != 0 {
		t.Fatalf("unknown node owns %v", got)
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	m, err := Compute(42, mkNodes(3), 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.Shards != m.Shards || !reflect.DeepEqual(got.Nodes, m.Nodes) {
		t.Fatalf("decoded map differs: %+v vs %+v", got, m)
	}
	for s := 0; s < m.Shards; s++ {
		if got.Owner(s) != m.Owner(s) {
			t.Fatalf("shard %d owner differs after codec round trip", s)
		}
	}
	if _, err := Decode([]byte{9, 9, 9}); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer decoded without error")
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	if _, err := Compute(1, nil, 4); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := Compute(1, mkNodes(2), 0); err == nil {
		t.Error("zero shards accepted")
	}
	dup := []Node{{Name: "a", Addr: "x"}, {Name: "a", Addr: "y"}}
	if _, err := Compute(1, dup, 4); err == nil {
		t.Error("duplicate node name accepted")
	}
	if _, err := Compute(1, []Node{{Name: "", Addr: "x"}}, 4); err == nil {
		t.Error("empty node name accepted")
	}
}

func TestMembershipDeathAfterThreshold(t *testing.T) {
	var mu sync.Mutex
	down := map[string]bool{}
	probe := func(addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if down[addr] {
			return errors.New("unreachable")
		}
		return nil
	}
	peers := mkNodes(3)
	m := NewMembership(peers, probe, MembershipConfig{Interval: time.Hour, Threshold: 2})

	var fired [][]Node
	m.OnChange(func(live []Node) { fired = append(fired, live) })

	m.CheckNow()
	if got := m.Live(); len(got) != 3 {
		t.Fatalf("live = %d, want 3", len(got))
	}

	mu.Lock()
	down[peers[1].Addr] = true
	mu.Unlock()

	m.CheckNow() // failure 1 of 2: still live
	if got := m.Live(); len(got) != 3 {
		t.Fatalf("after one failure live = %d, want 3 (threshold 2)", len(got))
	}
	if len(fired) != 0 {
		t.Fatalf("OnChange fired below threshold: %v", fired)
	}

	m.CheckNow() // failure 2 of 2: dead
	live := m.Live()
	if len(live) != 2 || live[0].Name != "node0" || live[1].Name != "node2" {
		t.Fatalf("after death live = %v", live)
	}
	if len(fired) != 1 || len(fired[0]) != 2 {
		t.Fatalf("OnChange = %v", fired)
	}

	// Death is one-way: the node recovering does not resurrect it.
	mu.Lock()
	down[peers[1].Addr] = false
	mu.Unlock()
	m.CheckNow()
	if got := m.Live(); len(got) != 2 {
		t.Fatalf("dead node resurrected: live = %d", len(got))
	}
	if len(fired) != 1 {
		t.Fatalf("OnChange re-fired without a change: %v", fired)
	}
}

func TestMembershipStartStop(t *testing.T) {
	seen := make(chan struct{}, 16)
	m := NewMembership(mkNodes(1), func(addr string) error {
		select {
		case seen <- struct{}{}:
		default:
		}
		return nil
	}, MembershipConfig{Interval: 5 * time.Millisecond})
	m.Start()
	<-seen // at least one periodic pass ran
	m.Stop()
	m.Stop()  // idempotent
	m.Start() // no-op after Stop
}

// TestRebalanceGrow pins the grow direction: rebalancing onto a live set
// that includes a brand-new node moves ≈1/N of the shards, every moved
// shard lands on the joiner, and survivors keep everything else.
func TestRebalanceGrow(t *testing.T) {
	const shards = 256
	nodes := mkNodes(3)
	before, err := Compute(1, nodes, shards)
	if err != nil {
		t.Fatal(err)
	}
	joiner := Node{Name: "node3", Addr: "127.0.0.1:9999"}
	live := append(append([]Node{}, nodes...), joiner)
	after, err := before.Rebalance(2, live)
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != 2 {
		t.Fatalf("version = %d, want 2", after.Version)
	}
	moved := 0
	for s := 0; s < shards; s++ {
		if before.Owner(s) == after.Owner(s) {
			continue
		}
		moved++
		if after.Owner(s).Name != joiner.Name {
			t.Errorf("shard %d moved from %s to %s, not to the joiner",
				s, before.Owner(s).Name, after.Owner(s).Name)
		}
	}
	want := shards / 4
	if moved < want/3 || moved > want*3 {
		t.Errorf("grow moved %d shards, want ≈%d", moved, want)
	}
	if moved == 0 {
		t.Error("grow moved nothing to the joiner")
	}
	// Growing and shrinking in one call still holds the contract: drop a
	// survivor, keep the joiner. Every shard ends on a live node.
	mixed, err := before.Rebalance(3, []Node{nodes[0], nodes[1], joiner})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		owner := mixed.Owner(s).Name
		if owner != nodes[0].Name && owner != nodes[1].Name && owner != joiner.Name {
			t.Fatalf("shard %d assigned to %q, not a live node", s, owner)
		}
	}
}

// TestAssembleAndUnassigned pins the explicit-unassigned machinery an
// honest coordinator needs: Assemble accepts "" owners, Owner reports
// them as nobody, Unassigned lists them, WithoutOwner creates them, and
// the wire codec round-trips them.
func TestAssembleAndUnassigned(t *testing.T) {
	nodes := mkNodes(2)
	owners := []string{"node0", "", "node1", "", "node0", "node1", "node0", ""}
	m, err := Assemble(9, nodes, len(owners), owners)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Unassigned(); !reflect.DeepEqual(got, []int{1, 3, 7}) {
		t.Fatalf("Unassigned = %v, want [1 3 7]", got)
	}
	if got := m.Owner(1); got != (Node{}) {
		t.Fatalf("unassigned shard owner = %+v, want zero Node", got)
	}
	if got := m.OwnerNames(); !reflect.DeepEqual(got, owners) {
		t.Fatalf("OwnerNames = %v, want %v", got, owners)
	}
	for _, n := range nodes {
		for _, s := range m.OwnedBy(n.Name) {
			if m.Owner(s).Name != n.Name {
				t.Fatalf("OwnedBy/Owner disagree on shard %d", s)
			}
		}
	}

	// Unassigned entries survive the wire.
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.OwnerNames(), owners) {
		t.Fatalf("owners after codec round trip = %v, want %v", got.OwnerNames(), owners)
	}
	if !reflect.DeepEqual(got.Unassigned(), []int{1, 3, 7}) {
		t.Fatalf("Unassigned after codec round trip = %v", got.Unassigned())
	}

	// WithoutOwner is the honest-failure transition.
	less, err := m.WithoutOwner(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if less.Owner(0) != (Node{}) || m.Owner(0).Name != "node0" {
		t.Fatal("WithoutOwner must clear the copy and leave the original")
	}
	if !reflect.DeepEqual(less.Unassigned(), []int{0, 1, 3, 7}) {
		t.Fatalf("Unassigned after WithoutOwner = %v", less.Unassigned())
	}

	// Validation: owners length must match, names must be members.
	if _, err := Assemble(1, nodes, 4, []string{"node0", "node1"}); err == nil {
		t.Error("short owners slice accepted")
	}
	if _, err := Assemble(1, nodes, 2, []string{"node0", "phantom"}); err == nil {
		t.Error("non-member owner accepted")
	}
}

func TestComputeDuplicateAddr(t *testing.T) {
	dup := []Node{{Name: "a", Addr: "127.0.0.1:9000"}, {Name: "b", Addr: "127.0.0.1:9000"}}
	if _, err := Compute(1, dup, 4); err == nil {
		t.Error("duplicate address accepted: nameForAddr would be ambiguous")
	}
}

// TestMembershipAdmitAndOnProbe pins the join-side membership contract:
// a dead node stays dead on its own, Admit readmits it (or adds a brand
// new peer), and OnProbe fires after every pass so the coordinator can
// re-drive pending adopts.
func TestMembershipAdmitAndOnProbe(t *testing.T) {
	var mu sync.Mutex
	down := map[string]bool{}
	probe := func(addr string) error {
		mu.Lock()
		defer mu.Unlock()
		if down[addr] {
			return errors.New("unreachable")
		}
		return nil
	}
	peers := mkNodes(2)
	m := NewMembership(peers, probe, MembershipConfig{Interval: time.Hour, Threshold: 1})
	passes := 0
	m.OnProbe(func(live []Node) { passes++ })

	m.CheckNow()
	if passes != 1 {
		t.Fatalf("OnProbe fired %d times after one pass", passes)
	}

	mu.Lock()
	down[peers[1].Addr] = true
	mu.Unlock()
	m.CheckNow()
	if got := m.Live(); len(got) != 1 {
		t.Fatalf("live = %d, want 1 after death", len(got))
	}

	// Recovery alone does not readmit...
	mu.Lock()
	down[peers[1].Addr] = false
	mu.Unlock()
	m.CheckNow()
	if got := m.Live(); len(got) != 1 {
		t.Fatal("dead node slipped back in without Admit")
	}

	// ...Admit does, even at a new address.
	m.Admit(Node{Name: peers[1].Name, Addr: "127.0.0.1:9777"})
	m.CheckNow()
	live := m.Live()
	if len(live) != 2 {
		t.Fatalf("live after Admit = %v", live)
	}
	if live[1].Addr != "127.0.0.1:9777" {
		t.Fatalf("Admit kept the stale address: %v", live[1])
	}

	// Admit of a brand-new peer extends the probed set.
	m.Admit(Node{Name: "node9", Addr: "127.0.0.1:9888"})
	m.CheckNow()
	if got := m.Live(); len(got) != 3 {
		t.Fatalf("live after admitting a new peer = %d, want 3", len(got))
	}
	if passes != 5 {
		t.Fatalf("OnProbe fired %d times over 5 passes", passes)
	}
}
