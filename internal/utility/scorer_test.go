package utility

import (
	"testing"

	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/trace"
)

// TestForestScorerDeterministic: the same trained scorer must produce the
// same Uc on repeated calls (the enrichment cache depends on it).
func TestForestScorerDeterministic(t *testing.T) {
	tr := smallTrace(t)
	scorer, err := TrainForestScorer(tr, forest.Config{Trees: 15, Seed: 4})
	if err != nil {
		t.Fatalf("TrainForestScorer: %v", err)
	}
	n := &tr.Users[2].Notifications[0]
	first := scorer.Score(n)
	for i := 0; i < 10; i++ {
		if got := scorer.Score(n); got != first {
			t.Fatalf("score changed across calls: %f vs %f", got, first)
		}
	}
}

// TestForestScorerSerializationPreservesScores: a saved/loaded model must
// score identically — the offline-train/online-score deployment split.
func TestForestScorerSerializationPreservesScores(t *testing.T) {
	tr := smallTrace(t)
	scorer, err := TrainForestScorer(tr, forest.Config{Trees: 15, Seed: 4})
	if err != nil {
		t.Fatalf("TrainForestScorer: %v", err)
	}
	path := t.TempDir() + "/model.json"
	if err := scorer.Forest.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := forest.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	restored := &ForestScorer{Forest: loaded}
	for ui := 0; ui < 5; ui++ {
		for ni := range tr.Users[ui].Notifications {
			n := &tr.Users[ui].Notifications[ni]
			if scorer.Score(n) != restored.Score(n) {
				t.Fatalf("score mismatch after round trip (user %d item %d)", ui, ni)
			}
		}
	}
}

// TestScorersAgreeOnFeatureSpace: every scorer consumes the same feature
// extraction; verify the features are stable across repeated extraction.
func TestScorersAgreeOnFeatureSpace(t *testing.T) {
	tr := smallTrace(t)
	n := &tr.Users[0].Notifications[0]
	a := trace.Features(n)
	b := trace.Features(n)
	if len(a) != len(b) {
		t.Fatal("feature extraction not stable in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs across extractions", i)
		}
	}
}
