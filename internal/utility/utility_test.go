package utility

import (
	"testing"

	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/survey"
	"github.com/richnote/richnote/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	gen, err := trace.NewGenerator(trace.Config{Users: 40, Rounds: 48, Seed: 3})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	tr, err := gen.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func audioGenerator(t *testing.T) media.Generator {
	t.Helper()
	g, err := media.NewAudioGenerator(media.AudioConfig{Utility: survey.Equation8})
	if err != nil {
		t.Fatalf("NewAudioGenerator: %v", err)
	}
	return g
}

func TestTrainForestScorer(t *testing.T) {
	tr := smallTrace(t)
	scorer, err := TrainForestScorer(tr, forest.Config{Trees: 25, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForestScorer: %v", err)
	}
	n := &tr.Users[0].Notifications[0]
	got := scorer.Score(n)
	if got < 0 || got > 1 {
		t.Fatalf("score %f outside [0,1]", got)
	}
}

func TestTrainForestScorerEmptyTrace(t *testing.T) {
	if _, err := TrainForestScorer(&trace.Trace{}, forest.Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestForestScorerBeatsConstantOnOrdering(t *testing.T) {
	tr := smallTrace(t)
	scorer, err := TrainForestScorer(tr, forest.Config{Trees: 40, Seed: 2})
	if err != nil {
		t.Fatalf("TrainForestScorer: %v", err)
	}
	// Clicked items must score higher on average than hovered ones: the
	// learned Uc orders content by actual interest.
	var sumC, sumH float64
	var nC, nH int
	for ui := range tr.Users {
		for ni := range tr.Users[ui].Notifications {
			n := &tr.Users[ui].Notifications[ni]
			s := scorer.Score(n)
			if n.Clicked {
				sumC += s
				nC++
			} else {
				sumH += s
				nH++
			}
		}
	}
	if nC == 0 || nH == 0 {
		t.Fatal("degenerate trace")
	}
	if sumC/float64(nC) <= sumH/float64(nH) {
		t.Fatalf("clicked mean score %.3f not above hovered %.3f",
			sumC/float64(nC), sumH/float64(nH))
	}
}

func TestOracleAndConstantScorers(t *testing.T) {
	tr := smallTrace(t)
	n := &tr.Users[0].Notifications[0]
	if got := (OracleScorer{}).Score(n); got != n.LatentP {
		t.Fatalf("oracle score %f, want latent %f", got, n.LatentP)
	}
	if got := (ConstantScorer{Value: 0.4}).Score(n); got != 0.4 {
		t.Fatalf("constant score %f, want 0.4", got)
	}
}

func TestNewEnricherValidation(t *testing.T) {
	gen := audioGenerator(t)
	if _, err := NewEnricher(nil, gen); err == nil {
		t.Error("nil scorer accepted")
	}
	if _, err := NewEnricher(OracleScorer{}, nil); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestEnrichProducesValidRichItem(t *testing.T) {
	tr := smallTrace(t)
	e, err := NewEnricher(OracleScorer{}, audioGenerator(t))
	if err != nil {
		t.Fatalf("NewEnricher: %v", err)
	}
	for ui := 0; ui < 5; ui++ {
		for ni := range tr.Users[ui].Notifications {
			n := &tr.Users[ui].Notifications[ni]
			rich, err := e.Enrich(n)
			if err != nil {
				t.Fatalf("Enrich: %v", err)
			}
			if err := rich.Validate(); err != nil {
				t.Fatalf("enriched item invalid: %v", err)
			}
			if rich.ContentUtility != n.LatentP {
				t.Fatalf("content utility %f, want latent %f", rich.ContentUtility, n.LatentP)
			}
			if rich.ArrivedRound != n.Round {
				t.Fatalf("arrived round %d, want %d", rich.ArrivedRound, n.Round)
			}
			if rich.Levels() != 6 {
				t.Fatalf("%d levels, want 6", rich.Levels())
			}
		}
	}
}

func TestEnrichClampsScores(t *testing.T) {
	tr := smallTrace(t)
	n := &tr.Users[0].Notifications[0]
	e, err := NewEnricher(ConstantScorer{Value: 2.5}, audioGenerator(t))
	if err != nil {
		t.Fatalf("NewEnricher: %v", err)
	}
	rich, err := e.Enrich(n)
	if err != nil {
		t.Fatalf("Enrich: %v", err)
	}
	if rich.ContentUtility != 1 {
		t.Fatalf("out-of-range score not clamped: %f", rich.ContentUtility)
	}
}

func TestEnrichPropagatesGeneratorError(t *testing.T) {
	tr := smallTrace(t)
	n := &tr.Users[0].Notifications[0]
	// Image generator rejects the audio item.
	e, err := NewEnricher(OracleScorer{}, media.NewImageGenerator())
	if err != nil {
		t.Fatalf("NewEnricher: %v", err)
	}
	if _, err := e.Enrich(n); err == nil {
		t.Fatal("kind mismatch not propagated")
	}
	// Sanity: the item in question is audio.
	if n.Item.Kind != notif.KindAudio {
		t.Fatalf("unexpected kind %s", n.Item.Kind)
	}
}
