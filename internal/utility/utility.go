// Package utility assembles the combined notification utility of
// Section III-A: U(i, j) = Uc(i) x Up(i, j).
//
// Content utility Uc(i) comes from a ContentScorer. The production scorer
// wraps the trained Random Forest of Section V-A and converts the
// classifier confidence to a probability exactly as the paper prescribes:
//
//	Uc(i) = Pr(x_i = 1)      when the predicted class is "clicked"
//	Uc(i) = 1 − Pr(x_i = 0)  otherwise
//
// (For a binary classifier both branches equal the positive-class
// probability, which is what PredictProba returns.)
//
// Presentation utility Up(i, j) is embedded in the presentation ladder a
// media.Generator emits. The Enricher glues the two together, turning raw
// trace notifications into scheduler-ready rich items.
package utility

import (
	"errors"
	"fmt"

	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/ml/forest"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/trace"
)

// ContentScorer predicts Uc(i) in [0, 1] for a trace notification.
// Implementations must be safe for concurrent Score calls: the pipeline's
// enrichment phase shards users across worker goroutines that share one
// scorer.
type ContentScorer interface {
	Score(n *trace.Notification) float64
}

// BatchScorer is the optional bulk interface a ContentScorer may
// implement: score a whole slice of notifications in one call, writing
// into out (grown as needed) and returning it truncated to len(ns). Every
// output must be bit-identical to calling Score element by element — the
// batch exists to amortize per-call costs (the forest's arena walk is
// tree-major, so cross-user batches stream each tree through the cache
// once), never to change results. Callers fall back to a Score loop for
// scorers without it.
type BatchScorer interface {
	ScoreBatch(ns []*trace.Notification, out []float64) []float64
}

// ForestScorer scores with a trained Random Forest over the paper's
// feature space.
type ForestScorer struct {
	Forest *forest.Forest

	// rows is the reusable feature matrix for ScoreBatch. Guarded by the
	// documented contract that ScoreBatch is single-caller (the server's
	// round loop); concurrent Score calls remain safe as they do not touch
	// it.
	rows [][]float64
}

var (
	_ ContentScorer = (*ForestScorer)(nil)
	_ BatchScorer   = (*ForestScorer)(nil)
)

// Score implements ContentScorer.
func (s *ForestScorer) Score(n *trace.Notification) float64 {
	return s.Forest.PredictProba(trace.Features(n))
}

// ScoreBatch implements BatchScorer over the forest's tree-major batch
// walk. Unlike Score it is not safe for concurrent calls (it reuses the
// feature-row buffer); the server drives it from a single shard
// goroutine per round.
func (s *ForestScorer) ScoreBatch(ns []*trace.Notification, out []float64) []float64 {
	if cap(s.rows) < len(ns) {
		s.rows = make([][]float64, 0, len(ns))
	}
	rows := s.rows[:0]
	for _, n := range ns {
		rows = append(rows, trace.Features(n))
	}
	s.rows = rows
	return s.Forest.PredictProbaBatch(rows, out)
}

// TrainForestScorer fits a Random Forest on the trace's click/hover labels
// and returns the scorer. This is the paper's full content-utility
// pipeline: trace -> features -> RF -> confidence -> Uc.
func TrainForestScorer(tr *trace.Trace, cfg forest.Config) (*ForestScorer, error) {
	features, labels := trace.Dataset(tr)
	if len(features) == 0 {
		return nil, errors.New("utility: empty trace")
	}
	f, err := forest.Train(features, labels, cfg)
	if err != nil {
		return nil, fmt.Errorf("utility: train forest: %w", err)
	}
	return &ForestScorer{Forest: f}, nil
}

// OracleScorer returns the latent ground-truth click probability; the
// upper-bound ablation for the content-utility model.
type OracleScorer struct{}

var _ ContentScorer = OracleScorer{}

// Score implements ContentScorer.
func (OracleScorer) Score(n *trace.Notification) float64 { return n.LatentP }

// ConstantScorer assigns every item the same content utility; used by
// tests and by baselines that ignore content relevance.
type ConstantScorer struct{ Value float64 }

var _ ContentScorer = ConstantScorer{}

// Score implements ContentScorer.
func (s ConstantScorer) Score(*trace.Notification) float64 { return s.Value }

// Enricher turns trace notifications into rich items: it scores content
// utility and generates the presentation ladder. An Enricher is safe for
// concurrent Enrich calls as long as its scorer and generator are; the
// scorers in this package and the generators in internal/media all are.
type Enricher struct {
	scorer    ContentScorer
	generator media.Generator
}

// NewEnricher validates and builds an enricher.
func NewEnricher(scorer ContentScorer, generator media.Generator) (*Enricher, error) {
	if scorer == nil {
		return nil, errors.New("utility: nil scorer")
	}
	if generator == nil {
		return nil, errors.New("utility: nil generator")
	}
	return &Enricher{scorer: scorer, generator: generator}, nil
}

// Scorer returns the enricher's content scorer, letting callers that
// batch-score (see BatchScorer) reuse the exact scorer EnrichScored
// expects the utilities to come from.
func (e *Enricher) Scorer() ContentScorer { return e.scorer }

// Enrich produces the scheduler-ready rich item for a trace notification.
func (e *Enricher) Enrich(n *trace.Notification) (notif.RichItem, error) {
	return e.EnrichScored(n, e.scorer.Score(n))
}

// EnrichScored is Enrich with the content utility already computed — the
// entry point for callers that scored a whole batch up front. The uc must
// come from this enricher's scorer for the result to match Enrich; it is
// clamped to [0, 1] exactly as Enrich clamps.
func (e *Enricher) EnrichScored(n *trace.Notification, uc float64) (notif.RichItem, error) {
	ps, err := e.generator.Generate(n.Item)
	if err != nil {
		return notif.RichItem{}, fmt.Errorf("utility: generate presentations: %w", err)
	}
	if uc < 0 {
		uc = 0
	}
	if uc > 1 {
		uc = 1
	}
	item := notif.RichItem{
		Item:           n.Item,
		ContentUtility: uc,
		Presentations:  ps,
		ArrivedRound:   n.Round,
	}
	if err := item.Validate(); err != nil {
		return notif.RichItem{}, fmt.Errorf("utility: %w", err)
	}
	return item, nil
}
