// Package forest implements the Random Forest classifier (Breiman 2001)
// used by RichNote to model content utility Uc(i) (Section V-A of the
// paper). The paper trains a Random Forest on click/hover labels with Weka;
// this package reimplements the algorithm from scratch on the standard
// library: CART decision trees with gini-impurity splits, bootstrap
// bagging, per-node random feature subsampling, out-of-bag error estimation
// and mean-decrease-impurity feature importance.
//
// The forest reports a calibrated confidence Pr(x_i) as the fraction of
// trees voting for the positive class, which the utility layer maps to
// Uc(i) exactly as the paper's Section V-A prescribes.
package forest

import (
	"fmt"
	"math/rand"
	"sort"
)

// treeNode is one node of a CART tree stored in a flat slice.
type treeNode struct {
	// feature < 0 marks a leaf; prob is then the positive-class fraction of
	// the training examples that reached the leaf.
	feature   int
	threshold float64
	left      int32
	right     int32
	prob      float64
}

// Tree is a single CART decision tree.
type Tree struct {
	nodes []treeNode
}

// treeParams bundles the growth controls.
type treeParams struct {
	maxDepth        int
	minLeafSamples  int
	featuresPerNode int
}

// gini returns the gini impurity of a node with pos positives among n.
func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// split describes the best split found at a node.
type split struct {
	feature   int
	threshold float64
	impurity  float64 // weighted child impurity
	gain      float64 // impurity decrease, for feature importance
	ok        bool
}

// bestSplit scans a random subset of features for the threshold minimizing
// weighted gini impurity over the rows (indices into X).
func bestSplit(x [][]float64, y []int, rows []int, p treeParams, rng *rand.Rand, scratch *scratchBuffers) split {
	n := len(rows)
	pos := 0
	for _, r := range rows {
		pos += y[r]
	}
	parentImp := gini(pos, n)
	best := split{impurity: parentImp}
	if parentImp == 0 {
		return best // pure node
	}

	nFeatures := len(x[0])
	order := scratch.featureOrder[:0]
	for f := 0; f < nFeatures; f++ {
		order = append(order, f)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	tried := p.featuresPerNode
	if tried > len(order) {
		tried = len(order)
	}

	vals := scratch.vals[:0]
	for _, f := range order[:tried] {
		vals = vals[:0]
		for _, r := range rows {
			vals = append(vals, valueLabel{v: x[r][f], label: y[r]})
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })

		leftPos, leftN := 0, 0
		for i := 0; i < n-1; i++ {
			leftPos += vals[i].label
			leftN++
			if vals[i].v == vals[i+1].v {
				continue // cannot split between equal values
			}
			rightPos := pos - leftPos
			rightN := n - leftN
			imp := (float64(leftN)*gini(leftPos, leftN) + float64(rightN)*gini(rightPos, rightN)) / float64(n)
			if imp < best.impurity-1e-12 {
				best = split{
					feature:   f,
					threshold: (vals[i].v + vals[i+1].v) / 2,
					impurity:  imp,
					gain:      parentImp - imp,
					ok:        true,
				}
			}
		}
	}
	scratch.featureOrder = order
	scratch.vals = vals
	return best
}

type valueLabel struct {
	v     float64
	label int
}

// scratchBuffers are reused across nodes of one tree build to limit
// allocation churn.
type scratchBuffers struct {
	featureOrder []int
	vals         []valueLabel
}

// buildTree grows a CART tree on the given bootstrap rows and accumulates
// impurity-decrease importance into imp (length = feature count).
func buildTree(x [][]float64, y []int, rows []int, p treeParams, rng *rand.Rand, imp []float64) *Tree {
	t := &Tree{}
	scratch := &scratchBuffers{}
	t.grow(x, y, rows, 0, p, rng, imp, scratch)
	return t
}

func leafProb(y []int, rows []int) float64 {
	if len(rows) == 0 {
		return 0.5
	}
	pos := 0
	for _, r := range rows {
		pos += y[r]
	}
	return float64(pos) / float64(len(rows))
}

// grow appends the subtree for rows and returns its node index.
func (t *Tree) grow(x [][]float64, y []int, rows []int, depth int, p treeParams, rng *rand.Rand, imp []float64, scratch *scratchBuffers) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, prob: leafProb(y, rows)})
	if depth >= p.maxDepth || len(rows) < 2*p.minLeafSamples {
		return idx
	}
	sp := bestSplit(x, y, rows, p, rng, scratch)
	if !sp.ok {
		return idx
	}
	var leftRows, rightRows []int
	for _, r := range rows {
		if x[r][sp.feature] <= sp.threshold {
			leftRows = append(leftRows, r)
		} else {
			rightRows = append(rightRows, r)
		}
	}
	if len(leftRows) < p.minLeafSamples || len(rightRows) < p.minLeafSamples {
		return idx
	}
	if imp != nil {
		imp[sp.feature] += sp.gain * float64(len(rows))
	}
	left := t.grow(x, y, leftRows, depth+1, p, rng, imp, scratch)
	right := t.grow(x, y, rightRows, depth+1, p, rng, imp, scratch)
	t.nodes[idx] = treeNode{
		feature:   sp.feature,
		threshold: sp.threshold,
		left:      left,
		right:     right,
		prob:      t.nodes[idx].prob,
	}
	return idx
}

// PredictProba returns the positive-class probability at the leaf the
// feature vector routes to.
func (t *Tree) PredictProba(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0.5
	}
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.prob
		}
		if n.feature >= len(x) {
			return n.prob // defensive: feature vector shorter than training
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l < r {
			l = r
		}
		return 1 + l
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0)
}

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{nodes=%d depth=%d}", t.NodeCount(), t.Depth())
}
