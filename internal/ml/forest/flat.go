package forest

// flatForest is the trained ensemble flattened into one contiguous
// structure-of-arrays node arena. The per-tree representation walks a
// []*Tree, pointer-chasing a separately allocated node slice per tree;
// the arena keeps every node of every tree in four parallel slices, so
// the per-round scoring loop touches one cache-friendly block of memory
// and a whole-batch prediction streams tree-by-tree through it.
//
// Node i's children are stored arena-absolute at children[2i] (left)
// and children[2i+1] (right); features[i] < 0 marks a leaf with
// probability probs[i]. roots has one offset per tree plus a final
// sentinel, so tree t occupies the node range [roots[t], roots[t+1]).
//
// The flat walk visits exactly the nodes the per-tree walk visits and
// sums per-tree probabilities in the same order, so every prediction is
// bit-identical to the []*Tree path (guarded by
// TestFlatPredictionMatchesPerTree).
type flatForest struct {
	features   []int32
	thresholds []float64
	children   []int32
	probs      []float64
	roots      []int32
}

// ready reports whether the arena has been built.
func (fl *flatForest) ready() bool { return len(fl.roots) > 0 }

// trees returns the ensemble size.
func (fl *flatForest) trees() int {
	if len(fl.roots) == 0 {
		return 0
	}
	return len(fl.roots) - 1
}

// buildFlat flattens f.trees into the arena. Called once at the end of
// Train; Load fills the arena directly instead.
func (f *Forest) buildFlat() {
	total := 0
	for _, t := range f.trees {
		total += len(t.nodes)
	}
	fl := &f.flat
	fl.features = make([]int32, total)
	fl.thresholds = make([]float64, total)
	fl.children = make([]int32, 2*total)
	fl.probs = make([]float64, total)
	fl.roots = make([]int32, len(f.trees)+1)
	off := int32(0)
	for ti, t := range f.trees {
		fl.roots[ti] = off
		for ni := range t.nodes {
			n := &t.nodes[ni]
			i := off + int32(ni)
			fl.features[i] = int32(n.feature)
			fl.thresholds[i] = n.threshold
			fl.probs[i] = n.prob
			if n.feature >= 0 {
				fl.children[2*i] = off + n.left
				fl.children[2*i+1] = off + n.right
			}
		}
		off += int32(len(t.nodes))
	}
	fl.roots[len(f.trees)] = off
}

// treesFromFlat reconstructs the per-tree view from the arena. Each
// tree's nodes are contiguous and tree-relative child indices are the
// arena-absolute ones minus the root offset, so the reconstruction is
// exact.
func (f *Forest) treesFromFlat() {
	fl := &f.flat
	f.trees = make([]*Tree, fl.trees())
	for ti := range f.trees {
		lo, hi := fl.roots[ti], fl.roots[ti+1]
		nodes := make([]treeNode, hi-lo)
		for i := lo; i < hi; i++ {
			n := treeNode{
				feature:   int(fl.features[i]),
				threshold: fl.thresholds[i],
				prob:      fl.probs[i],
			}
			if n.feature >= 0 {
				n.left = fl.children[2*i] - lo
				n.right = fl.children[2*i+1] - lo
			}
			nodes[i-lo] = n
		}
		f.trees[ti] = &Tree{nodes: nodes}
	}
}

// predictTree routes x through the tree rooted at the given arena offset
// and returns the leaf probability, mirroring Tree.PredictProba
// (including the defensive short-feature-vector stop).
func (fl *flatForest) predictTree(root int32, x []float64) float64 {
	i := root
	for {
		feat := fl.features[i]
		if feat < 0 {
			return fl.probs[i]
		}
		if int(feat) >= len(x) {
			return fl.probs[i] // defensive: feature vector shorter than training
		}
		if x[feat] <= fl.thresholds[i] {
			i = fl.children[2*i]
		} else {
			i = fl.children[2*i+1]
		}
	}
}

// PredictMeanProbaBatch scores every row and writes the mean leaf
// probability (as PredictMeanProba) into out, which is grown as needed
// and returned truncated to len(rows). Passing a reused out slice makes
// the steady-state call allocation-free.
//
// The batch walks the arena tree-major — every row through tree 0, then
// tree 1, ... — so each tree's contiguous node block is streamed through
// the cache once per batch instead of once per row. For ensembles larger
// than the cache (the deployed 100-tree model) that turns the per-row
// walk's capacity misses into hits; per-row probabilities accumulate into
// out in tree order and divide once at the end, which keeps every output
// bit-identical to calling PredictMeanProba row by row.
//
// richnote:allocfree
func (f *Forest) PredictMeanProbaBatch(rows [][]float64, out []float64) []float64 {
	if cap(out) < len(rows) {
		out = make([]float64, len(rows))
	}
	out = out[:len(rows)]
	nTrees := f.flat.trees()
	if nTrees == 0 {
		// Unbuilt arena (possible only for hand-assembled forests) or an
		// empty ensemble: fall back to the per-row path, which handles both.
		for i := range out {
			out[i] = f.PredictMeanProba(rows[i])
		}
		return out
	}
	for i := range out {
		out[i] = 0
	}
	// Every split feature is < nFeatures, so when no row is shorter than
	// that the defensive short-vector stop in predictTree can never fire
	// and the walkers below drop its per-node length check. Rows from the
	// enrichment pipeline are always full-width; the slow path only exists
	// for hand-fed truncated vectors.
	wide := true
	for _, x := range rows {
		if len(x) < f.nFeatures {
			wide = false
			break
		}
	}
	fl := &f.flat
	for t := 0; t < nTrees; t++ {
		root := fl.roots[t]
		ri := 0
		if wide {
			for ; ri+2 <= len(rows); ri += 2 {
				p0, p1 := fl.predictTree2Wide(root, rows[ri], rows[ri+1])
				out[ri] += p0
				out[ri+1] += p1
			}
		} else {
			for ; ri+2 <= len(rows); ri += 2 {
				p0, p1 := fl.predictTree2(root, rows[ri], rows[ri+1])
				out[ri] += p0
				out[ri+1] += p1
			}
		}
		if ri < len(rows) {
			out[ri] += fl.predictTree(root, rows[ri])
		}
	}
	div := float64(nTrees)
	for i := range out {
		out[i] /= div
	}
	return out
}

// PredictProbaBatch scores every row with the vote-fraction score (as
// PredictProba) into out, which is grown as needed and returned truncated
// to len(rows). Passing a reused out slice makes the steady-state call
// allocation-free.
//
// Like PredictMeanProbaBatch the walk is tree-major, streaming each
// tree's contiguous node block through the cache once per batch. Votes
// are accumulated per row as small integer counts in float64, so the
// accumulation order cannot perturb a single bit and each output equals
// PredictProba row by row exactly — which is what lets the server score
// a whole round's enrichment batch in one call without disturbing the
// bit-identical determinism contract (DESIGN.md §14).
//
// richnote:allocfree
func (f *Forest) PredictProbaBatch(rows [][]float64, out []float64) []float64 {
	if cap(out) < len(rows) {
		out = make([]float64, len(rows))
	}
	out = out[:len(rows)]
	nTrees := f.flat.trees()
	if nTrees == 0 {
		// Unbuilt arena (possible only for hand-assembled forests) or an
		// empty ensemble: fall back to the per-row path, which handles both.
		for i := range out {
			out[i] = f.PredictProba(rows[i])
		}
		return out
	}
	for i := range out {
		out[i] = 0
	}
	wide := true
	for _, x := range rows {
		if len(x) < f.nFeatures {
			wide = false
			break
		}
	}
	fl := &f.flat
	for t := 0; t < nTrees; t++ {
		root := fl.roots[t]
		ri := 0
		if wide {
			for ; ri+2 <= len(rows); ri += 2 {
				p0, p1 := fl.predictTree2Wide(root, rows[ri], rows[ri+1])
				if p0 >= 0.5 {
					out[ri]++
				}
				if p1 >= 0.5 {
					out[ri+1]++
				}
			}
		} else {
			for ; ri+2 <= len(rows); ri += 2 {
				p0, p1 := fl.predictTree2(root, rows[ri], rows[ri+1])
				if p0 >= 0.5 {
					out[ri]++
				}
				if p1 >= 0.5 {
					out[ri+1]++
				}
			}
		}
		if ri < len(rows) {
			if fl.predictTree(root, rows[ri]) >= 0.5 {
				out[ri]++
			}
		}
	}
	div := float64(nTrees)
	for i := range out {
		out[i] /= div
	}
	return out
}

// predictTree2Wide is predictTree2 without the short-vector stop, valid
// only when both rows have at least nFeatures entries (checked once per
// batch): then int(feat) < len(x) always holds and the walk is identical.
func (fl *flatForest) predictTree2Wide(root int32, x0, x1 []float64) (p0, p1 float64) {
	features, thresholds, children := fl.features, fl.thresholds, fl.children
	i0, i1 := root, root
	for {
		f0, f1 := features[i0], features[i1]
		settled := true
		if f0 >= 0 {
			settled = false
			if x0[f0] <= thresholds[i0] {
				i0 = children[2*i0]
			} else {
				i0 = children[2*i0+1]
			}
		}
		if f1 >= 0 {
			settled = false
			if x1[f1] <= thresholds[i1] {
				i1 = children[2*i1]
			} else {
				i1 = children[2*i1+1]
			}
		}
		if settled {
			return fl.probs[i0], fl.probs[i1]
		}
	}
}

// predictTree2 routes two rows through the tree rooted at the given arena
// offset with independent cursors advanced in the same loop. A single
// walk is a chain of dependent loads — each child index waits on the
// previous comparison — so pairing two walks lets their loads overlap.
// Each cursor visits exactly the nodes predictTree visits, including the
// defensive short-feature-vector stop; a cursor that reaches its leaf
// parks there while the other finishes.
func (fl *flatForest) predictTree2(root int32, x0, x1 []float64) (p0, p1 float64) {
	i0, i1 := root, root
	for {
		f0, f1 := fl.features[i0], fl.features[i1]
		settled := true
		if f0 >= 0 && int(f0) < len(x0) {
			settled = false
			if x0[f0] <= fl.thresholds[i0] {
				i0 = fl.children[2*i0]
			} else {
				i0 = fl.children[2*i0+1]
			}
		}
		if f1 >= 0 && int(f1) < len(x1) {
			settled = false
			if x1[f1] <= fl.thresholds[i1] {
				i1 = fl.children[2*i1]
			} else {
				i1 = fl.children[2*i1+1]
			}
		}
		if settled {
			return fl.probs[i0], fl.probs[i1]
		}
	}
}
