package forest

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// xorDataset is nonlinearly separable: label = (x0 > 0.5) XOR (x1 > 0.5).
// A linear model cannot learn it; a forest of depth >= 2 can.
func xorDataset(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b, rng.Float64()} // third feature is noise
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return x, y
}

func TestTrainValidatesInput(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{0, 1}, Config{}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []int{0, 1}, Config{}); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{2}, Config{}); err == nil {
		t.Error("non-binary label accepted")
	}
}

func TestForestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trainX, trainY := xorDataset(rng, 800)
	testX, testY := xorDataset(rng, 400)
	f, err := Train(trainX, trainY, Config{Trees: 60, MaxDepth: 8, Seed: 42})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct := 0
	for i := range testX {
		if f.Predict(testX[i]) == testY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testX))
	if acc < 0.9 {
		t.Fatalf("XOR test accuracy %.3f, want >= 0.9", acc)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorDataset(rng, 300)
	f1, err := Train(x, y, Config{Trees: 20, Seed: 7})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	f2, err := Train(x, y, Config{Trees: 20, Seed: 7})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	probe := []float64{0.3, 0.8, 0.5}
	if f1.PredictProba(probe) != f2.PredictProba(probe) {
		t.Fatal("same seed produced different forests")
	}
	f3, err := Train(x, y, Config{Trees: 20, Seed: 8})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	same := true
	for trial := 0; trial < 20 && same; trial++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if f1.PredictMeanProba(p) != f3.PredictMeanProba(p) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical forests")
	}
}

// TestForestWorkerCountInvariant pins the parallel-training contract: any
// worker count grows a byte-identical forest (trees, importance, OOB
// accounting — everything Save serializes).
func TestForestWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := xorDataset(rng, 300)
	serialize := func(workers int) string {
		f, err := Train(x, y, Config{Trees: 24, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := f.Save(&buf); err != nil {
			t.Fatalf("Save(workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	serial := serialize(1)
	for _, workers := range []int{2, 4, 7, 32} {
		if got := serialize(workers); got != serial {
			t.Fatalf("forest trained with %d workers differs from serial build", workers)
		}
	}
}

func TestPredictProbaInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := xorDataset(rng, 300)
	f, err := Train(x, y, Config{Trees: 30, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for trial := 0; trial < 200; trial++ {
		p := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		got := f.PredictProba(p)
		if got < 0 || got > 1 || math.IsNaN(got) {
			t.Fatalf("PredictProba = %f out of [0,1]", got)
		}
		mean := f.PredictMeanProba(p)
		if mean < 0 || mean > 1 || math.IsNaN(mean) {
			t.Fatalf("PredictMeanProba = %f out of [0,1]", mean)
		}
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Feature 0 fully determines the label; features 1-3 are noise.
	n := 600
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if x[i][0] > 0.5 {
			y[i] = 1
		}
	}
	f, err := Train(x, y, Config{Trees: 40, Seed: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	imp := f.FeatureImportance()
	if len(imp) != 4 {
		t.Fatalf("importance length %d, want 4", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %f, want 1", sum)
	}
	for fi := 1; fi < 4; fi++ {
		if imp[0] <= imp[fi] {
			t.Fatalf("signal feature importance %f not above noise feature %d (%f)", imp[0], fi, imp[fi])
		}
	}
	if imp[0] < 0.5 {
		t.Fatalf("signal feature importance %f, want dominant (>= 0.5)", imp[0])
	}
}

func TestOOBErrorReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := xorDataset(rng, 600)
	f, err := Train(x, y, Config{Trees: 60, MaxDepth: 8, Seed: 6})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	oob, scored := f.OOBError()
	if scored < 500 {
		t.Fatalf("only %d rows OOB-scored, want most of 600", scored)
	}
	if oob > 0.2 {
		t.Fatalf("OOB error %.3f on XOR, want <= 0.2", oob)
	}
}

func TestPureNodeShortCircuits(t *testing.T) {
	// All labels identical: the tree must be a single leaf.
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []int{1, 1, 1}
	f, err := Train(x, y, Config{Trees: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if got := f.PredictProba([]float64{0, 0}); got != 1 {
		t.Fatalf("pure-positive forest predicts %f, want 1", got)
	}
}

func TestPredictWithShortFeatureVector(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := xorDataset(rng, 200)
	f, err := Train(x, y, Config{Trees: 10, Seed: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Must not panic; falls back to node probability.
	got := f.PredictProba([]float64{})
	if got < 0 || got > 1 {
		t.Fatalf("short-vector prediction %f out of range", got)
	}
}

func TestTreeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := xorDataset(rng, 300)
	imp := make([]float64, 3)
	tr := buildTree(x, y, seq(len(x)), treeParams{maxDepth: 6, minLeafSamples: 2, featuresPerNode: 2}, rng, imp)
	if tr.Depth() < 2 {
		t.Fatalf("XOR tree depth %d, want >= 2", tr.Depth())
	}
	if tr.NodeCount() < 3 {
		t.Fatalf("node count %d, want >= 3", tr.NodeCount())
	}
	if tr.String() == "" {
		t.Fatal("empty String()")
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func BenchmarkTrain100Trees(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x, y := xorDataset(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Config{Trees: 100, MaxDepth: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x, y := xorDataset(rng, 1000)
	f, err := Train(x, y, Config{Trees: 100, MaxDepth: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	probe := []float64{0.3, 0.7, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(probe)
	}
}
