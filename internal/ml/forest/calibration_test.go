package forest

import (
	"math"
	"math/rand"
	"testing"
)

// logisticDataset draws labels from a known logistic model, the same label
// process the synthetic traces use. Attainable accuracy is bounded by the
// Bernoulli noise, making it a realistic calibration target.
func logisticDataset(rng *rand.Rand, n int) (x [][]float64, y []int, probs []float64) {
	x = make([][]float64, n)
	y = make([]int, n)
	probs = make([]float64, n)
	for i := range x {
		f := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		z := -2 + 2.5*f[0] + 1.5*f[1] // f[2] is noise
		p := 1 / (1 + math.Exp(-z))
		x[i] = f
		probs[i] = p
		if rng.Float64() < p {
			y[i] = 1
		}
	}
	return x, y, probs
}

// TestMeanPredictionMatchesBaseRate: the forest's average predicted
// probability must track the population positive rate — gross
// miscalibration would corrupt the content-utility scores Uc.
func TestMeanPredictionMatchesBaseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, _ := logisticDataset(rng, 2000)
	f, err := Train(x, y, Config{Trees: 50, MaxDepth: 10, Seed: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	baseRate := 0.0
	for _, l := range y {
		baseRate += float64(l)
	}
	baseRate /= float64(len(y))

	testX, _, _ := logisticDataset(rng, 1000)
	meanPred := 0.0
	for _, row := range testX {
		meanPred += f.PredictMeanProba(row)
	}
	meanPred /= float64(len(testX))
	if math.Abs(meanPred-baseRate) > 0.08 {
		t.Fatalf("mean prediction %.3f vs base rate %.3f: miscalibrated", meanPred, baseRate)
	}
}

// TestPredictionsOrderByTrueProbability: predicted scores must rank
// examples consistently with the generating probabilities (rank
// correlation on bucketed means).
func TestPredictionsOrderByTrueProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y, _ := logisticDataset(rng, 3000)
	f, err := Train(x, y, Config{Trees: 50, MaxDepth: 10, Seed: 6})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	testX, _, testP := logisticDataset(rng, 2000)
	// Bucket by true probability tercile and compare mean predictions.
	var buckets [3][]float64
	for i, p := range testP {
		b := 0
		if p > 0.33 {
			b = 1
		}
		if p > 0.66 {
			b = 2
		}
		buckets[b] = append(buckets[b], f.PredictMeanProba(testX[i]))
	}
	means := [3]float64{}
	for b := range buckets {
		if len(buckets[b]) == 0 {
			t.Skip("degenerate bucketing")
		}
		for _, v := range buckets[b] {
			means[b] += v
		}
		means[b] /= float64(len(buckets[b]))
	}
	if !(means[0] < means[1] && means[1] < means[2]) {
		t.Fatalf("bucket means not ordered: %.3f, %.3f, %.3f", means[0], means[1], means[2])
	}
}

// TestAccuracyBoundedByLabelNoise: on logistic data the forest cannot
// beat the Bayes rate; check it lands between chance and the bound.
func TestAccuracyBoundedByLabelNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y, _ := logisticDataset(rng, 3000)
	f, err := Train(x, y, Config{Trees: 50, MaxDepth: 10, Seed: 7})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	testX, testY, testP := logisticDataset(rng, 2000)
	correct := 0
	bayes := 0.0
	for i := range testX {
		if f.Predict(testX[i]) == testY[i] {
			correct++
		}
		bayes += math.Max(testP[i], 1-testP[i])
	}
	acc := float64(correct) / float64(len(testX))
	bayes /= float64(len(testX))
	if acc < 0.55 {
		t.Fatalf("accuracy %.3f barely above chance", acc)
	}
	if acc > bayes+0.03 {
		t.Fatalf("accuracy %.3f exceeds Bayes bound %.3f: leakage?", acc, bayes)
	}
}
