package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config controls forest training.
type Config struct {
	// Trees is the ensemble size. Default 100.
	Trees int
	// MaxDepth bounds tree depth. Default 12.
	MaxDepth int
	// MinLeafSamples is the minimum number of training rows per leaf.
	// Default 2.
	MinLeafSamples int
	// FeaturesPerNode is the number of features examined per split;
	// 0 selects ceil(sqrt(d)) as Breiman recommends.
	FeaturesPerNode int
	// Seed makes training deterministic.
	Seed int64
}

func (c *Config) applyDefaults(nFeatures int) {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeafSamples <= 0 {
		c.MinLeafSamples = 2
	}
	if c.FeaturesPerNode <= 0 {
		c.FeaturesPerNode = int(math.Ceil(math.Sqrt(float64(nFeatures))))
	}
}

// Training errors.
var (
	ErrEmptyTrainingSet = errors.New("forest: empty training set")
	ErrShapeMismatch    = errors.New("forest: features/labels mismatch")
	ErrRaggedFeatures   = errors.New("forest: ragged feature matrix")
	ErrBadLabel         = errors.New("forest: labels must be 0 or 1")
)

// Forest is a trained random-forest classifier.
type Forest struct {
	trees      []*Tree
	nFeatures  int
	importance []float64
	oobError   float64
	oobScored  int
}

// Train fits a random forest on the feature matrix and binary labels.
func Train(features [][]float64, labels []int, cfg Config) (*Forest, error) {
	n := len(features)
	if n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if len(labels) != n {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrShapeMismatch, n, len(labels))
	}
	d := len(features[0])
	for i, row := range features {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrRaggedFeatures, i, len(row), d)
		}
	}
	for i, l := range labels {
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("%w: label %d at row %d", ErrBadLabel, l, i)
		}
	}
	cfg.applyDefaults(d)

	rng := rand.New(rand.NewSource(cfg.Seed))
	params := treeParams{
		maxDepth:        cfg.MaxDepth,
		minLeafSamples:  cfg.MinLeafSamples,
		featuresPerNode: cfg.FeaturesPerNode,
	}

	f := &Forest{
		trees:      make([]*Tree, cfg.Trees),
		nFeatures:  d,
		importance: make([]float64, d),
	}

	// Out-of-bag vote accumulators.
	oobSum := make([]float64, n)
	oobCount := make([]int, n)

	rows := make([]int, n)
	inBag := make([]bool, n)
	for ti := 0; ti < cfg.Trees; ti++ {
		for i := range inBag {
			inBag[i] = false
		}
		for i := range rows {
			r := rng.Intn(n)
			rows[i] = r
			inBag[r] = true
		}
		tree := buildTree(features, labels, rows, params, rng, f.importance)
		f.trees[ti] = tree
		for i := 0; i < n; i++ {
			if !inBag[i] {
				oobSum[i] += tree.PredictProba(features[i])
				oobCount[i]++
			}
		}
	}

	// Normalize importance to sum to 1.
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for i := range f.importance {
			f.importance[i] /= total
		}
	}

	// OOB error: fraction of misclassified among rows with any OOB vote.
	wrong, scored := 0, 0
	for i := 0; i < n; i++ {
		if oobCount[i] == 0 {
			continue
		}
		scored++
		pred := 0
		if oobSum[i]/float64(oobCount[i]) >= 0.5 {
			pred = 1
		}
		if pred != labels[i] {
			wrong++
		}
	}
	f.oobScored = scored
	if scored > 0 {
		f.oobError = float64(wrong) / float64(scored)
	}
	return f, nil
}

// PredictProba returns the fraction of trees whose leaf majority is the
// positive class — the confidence score Pr(x_i) the paper converts into
// content utility.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	votes := 0.0
	for _, t := range f.trees {
		if t.PredictProba(x) >= 0.5 {
			votes++
		}
	}
	return votes / float64(len(f.trees))
}

// PredictMeanProba averages the per-tree leaf probabilities; a smoother
// alternative to the vote fraction.
func (f *Forest) PredictMeanProba(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0.5
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProba(x)
	}
	return sum / float64(len(f.trees))
}

// Predict returns the majority class at the 0.5 threshold.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// NumFeatures returns the trained feature dimensionality.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// OOBError returns the out-of-bag misclassification rate and the number of
// rows it was estimated on.
func (f *Forest) OOBError() (float64, int) { return f.oobError, f.oobScored }

// FeatureImportance returns the normalized mean-decrease-impurity
// importance per feature (sums to 1 when any split occurred).
func (f *Forest) FeatureImportance() []float64 {
	out := make([]float64, len(f.importance))
	copy(out, f.importance)
	return out
}
