package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Config controls forest training.
type Config struct {
	// Trees is the ensemble size. Default 100.
	Trees int
	// MaxDepth bounds tree depth. Default 12.
	MaxDepth int
	// MinLeafSamples is the minimum number of training rows per leaf.
	// Default 2.
	MinLeafSamples int
	// FeaturesPerNode is the number of features examined per split;
	// 0 selects ceil(sqrt(d)) as Breiman recommends.
	FeaturesPerNode int
	// Seed makes training deterministic. Tree ti draws its bootstrap and
	// split randomness from a private RNG seeded with Seed+ti, so the
	// trained forest does not depend on Workers.
	Seed int64
	// Workers bounds how many trees train concurrently; 0 selects
	// runtime.NumCPU(). The trained forest is identical for any value.
	Workers int
}

func (c *Config) applyDefaults(nFeatures int) {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeafSamples <= 0 {
		c.MinLeafSamples = 2
	}
	if c.FeaturesPerNode <= 0 {
		c.FeaturesPerNode = int(math.Ceil(math.Sqrt(float64(nFeatures))))
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
}

// Training errors.
var (
	ErrEmptyTrainingSet = errors.New("forest: empty training set")
	ErrShapeMismatch    = errors.New("forest: features/labels mismatch")
	ErrRaggedFeatures   = errors.New("forest: ragged feature matrix")
	ErrBadLabel         = errors.New("forest: labels must be 0 or 1")
)

// Forest is a trained random-forest classifier.
type Forest struct {
	trees      []*Tree
	flat       flatForest // SoA node arena; the prediction hot path
	nFeatures  int
	importance []float64
	oobError   float64
	oobScored  int
}

// Train fits a random forest on the feature matrix and binary labels.
// Trees train concurrently on up to cfg.Workers goroutines; the result is
// deterministic in cfg.Seed and independent of the worker count.
func Train(features [][]float64, labels []int, cfg Config) (*Forest, error) {
	n := len(features)
	if n == 0 {
		return nil, ErrEmptyTrainingSet
	}
	if len(labels) != n {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrShapeMismatch, n, len(labels))
	}
	d := len(features[0])
	for i, row := range features {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrRaggedFeatures, i, len(row), d)
		}
	}
	for i, l := range labels {
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("%w: label %d at row %d", ErrBadLabel, l, i)
		}
	}
	cfg.applyDefaults(d)

	params := treeParams{
		maxDepth:        cfg.MaxDepth,
		minLeafSamples:  cfg.MinLeafSamples,
		featuresPerNode: cfg.FeaturesPerNode,
	}

	f := &Forest{
		trees:      make([]*Tree, cfg.Trees),
		nFeatures:  d,
		importance: make([]float64, d),
	}

	// Trees train independently: each derives a private RNG from
	// Seed + tree index, so any worker count — including 1 — grows the
	// exact same ensemble. Per-tree importance and out-of-bag votes are
	// kept aside and merged in tree order below, keeping the
	// floating-point accumulation order (and hence the serialized model)
	// byte-identical regardless of scheduling.
	perTree := make([]treeFit, cfg.Trees)
	workers := cfg.Workers
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows := make([]int, n)
			inBag := make([]bool, n)
			for ti := w; ti < cfg.Trees; ti += workers {
				perTree[ti] = fitOneTree(features, labels, params, cfg.Seed+int64(ti), rows, inBag)
			}
		}()
	}
	wg.Wait()

	// Out-of-bag vote accumulators.
	oobSum := make([]float64, n)
	oobCount := make([]int, n)
	for ti := range perTree {
		fit := &perTree[ti]
		f.trees[ti] = fit.tree
		for fi, v := range fit.importance {
			f.importance[fi] += v
		}
		for oi, row := range fit.oobRows {
			oobSum[row] += fit.oobProba[oi]
			oobCount[row]++
		}
	}

	// Normalize importance to sum to 1.
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for i := range f.importance {
			f.importance[i] /= total
		}
	}

	// OOB error: fraction of misclassified among rows with any OOB vote.
	wrong, scored := 0, 0
	for i := 0; i < n; i++ {
		if oobCount[i] == 0 {
			continue
		}
		scored++
		pred := 0
		if oobSum[i]/float64(oobCount[i]) >= 0.5 {
			pred = 1
		}
		if pred != labels[i] {
			wrong++
		}
	}
	f.oobScored = scored
	if scored > 0 {
		f.oobError = float64(wrong) / float64(scored)
	}
	f.buildFlat()
	return f, nil
}

// treeFit is the output of one independent tree-training task: the tree
// plus its contributions to feature importance and the out-of-bag votes,
// merged into the forest in tree order after all workers finish.
type treeFit struct {
	tree       *Tree
	importance []float64
	// oobRows lists the training rows this tree did not bootstrap-sample;
	// oobProba holds the tree's prediction for each, index-aligned.
	oobRows  []int32
	oobProba []float64
}

// fitOneTree bootstraps, grows and OOB-scores tree number ti using only
// the RNG derived from its seed. rows and inBag are caller-owned scratch
// (one pair per worker) of length n.
func fitOneTree(features [][]float64, labels []int, params treeParams, seed int64, rows []int, inBag []bool) treeFit {
	n := len(features)
	rng := rand.New(rand.NewSource(seed))
	for i := range inBag {
		inBag[i] = false
	}
	for i := range rows {
		r := rng.Intn(n)
		rows[i] = r
		inBag[r] = true
	}
	fit := treeFit{importance: make([]float64, len(features[0]))}
	fit.tree = buildTree(features, labels, rows, params, rng, fit.importance)
	for i := 0; i < n; i++ {
		if !inBag[i] {
			fit.oobRows = append(fit.oobRows, int32(i))
			fit.oobProba = append(fit.oobProba, fit.tree.PredictProba(features[i]))
		}
	}
	return fit
}

// PredictProba returns the fraction of trees whose leaf majority is the
// positive class — the confidence score Pr(x_i) the paper converts into
// content utility. The walk runs over the flat node arena; hand-built
// forests without one fall back to the per-tree path, which votes in
// the same tree order and is bit-identical.
func (f *Forest) PredictProba(x []float64) float64 {
	if n := f.flat.trees(); n > 0 {
		votes := 0.0
		for t := 0; t < n; t++ {
			if f.flat.predictTree(f.flat.roots[t], x) >= 0.5 {
				votes++
			}
		}
		return votes / float64(n)
	}
	if len(f.trees) == 0 {
		return 0.5
	}
	votes := 0.0
	for _, t := range f.trees {
		if t.PredictProba(x) >= 0.5 {
			votes++
		}
	}
	return votes / float64(len(f.trees))
}

// PredictMeanProba averages the per-tree leaf probabilities; a smoother
// alternative to the vote fraction. Like PredictProba it walks the flat
// arena, accumulating per-tree probabilities in tree order so the result
// is bit-identical to the per-tree path.
func (f *Forest) PredictMeanProba(x []float64) float64 {
	if n := f.flat.trees(); n > 0 {
		sum := 0.0
		for t := 0; t < n; t++ {
			sum += f.flat.predictTree(f.flat.roots[t], x)
		}
		return sum / float64(n)
	}
	if len(f.trees) == 0 {
		return 0.5
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.PredictProba(x)
	}
	return sum / float64(len(f.trees))
}

// Predict returns the majority class at the 0.5 threshold.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// NumFeatures returns the trained feature dimensionality.
func (f *Forest) NumFeatures() int { return f.nFeatures }

// OOBError returns the out-of-bag misclassification rate and the number of
// rows it was estimated on.
func (f *Forest) OOBError() (float64, int) { return f.oobError, f.oobScored }

// FeatureImportance returns the normalized mean-decrease-impurity
// importance per feature (sums to 1 when any split occurred).
func (f *Forest) FeatureImportance() []float64 {
	out := make([]float64, len(f.importance))
	copy(out, f.importance)
	return out
}
