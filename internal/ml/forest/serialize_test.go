package forest

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := xorDataset(rng, 400)
	f, err := Train(x, y, Config{Trees: 20, MaxDepth: 8, Seed: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Trees() != f.Trees() || loaded.NumFeatures() != f.NumFeatures() {
		t.Fatalf("shape mismatch after round trip")
	}
	// Predictions must be bit-identical.
	for trial := 0; trial < 200; trial++ {
		probe := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if f.PredictProba(probe) != loaded.PredictProba(probe) {
			t.Fatalf("prediction mismatch after round trip")
		}
	}
	// Metadata survives.
	oobA, nA := f.OOBError()
	oobB, nB := loaded.OOBError()
	if oobA != oobB || nA != nB {
		t.Fatalf("OOB mismatch: (%f, %d) vs (%f, %d)", oobA, nA, oobB, nB)
	}
	impA, impB := f.FeatureImportance(), loaded.FeatureImportance()
	for i := range impA {
		if impA[i] != impB[i] {
			t.Fatalf("importance mismatch at %d", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorDataset(rng, 200)
	f, err := Train(x, y, Config{Trees: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := f.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Trees() != 5 {
		t.Fatalf("loaded %d trees, want 5", loaded.Trees())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"wrong version", `{"version":99,"n_features":2,"trees":[[{"f":-1,"p":0.5}]]}`},
		{"no trees", `{"version":1,"n_features":2,"trees":[]}`},
		{"zero features", `{"version":1,"n_features":0,"trees":[[{"f":-1,"p":0.5}]]}`},
		{"empty tree", `{"version":1,"n_features":2,"trees":[[]]}`},
		{"feature out of range", `{"version":1,"n_features":2,"trees":[[{"f":5,"t":1,"l":0,"r":0,"p":0.5}]]}`},
		{"child out of range", `{"version":1,"n_features":2,"trees":[[{"f":0,"t":1,"l":7,"r":0,"p":0.5}]]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.data)); err == nil {
				t.Fatal("malformed model accepted")
			}
		})
	}
}

func TestLoadedModelWithoutImportance(t *testing.T) {
	data := `{"version":1,"n_features":2,"trees":[[{"f":-1,"p":0.7}]]}`
	f, err := Load(strings.NewReader(data))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := f.PredictProba([]float64{0, 0}); got != 1 {
		// single leaf with prob 0.7 -> vote fraction 1 (leaf >= 0.5)
		t.Fatalf("PredictProba = %f, want 1", got)
	}
	if got := f.PredictMeanProba([]float64{0, 0}); got != 0.7 {
		t.Fatalf("PredictMeanProba = %f, want 0.7", got)
	}
	if imp := f.FeatureImportance(); len(imp) != 2 {
		t.Fatalf("importance length %d, want 2", len(imp))
	}
}
