package forest

import (
	"bytes"
	"math/rand"
	"testing"
)

// trainFlatFixture trains one shared forest for the flat-layout tests.
func trainFlatFixture(t testing.TB) (*Forest, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	x, y := xorDataset(rng, 800)
	f, err := Train(x, y, Config{Trees: 50, MaxDepth: 8, Seed: 99})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	probes := make([][]float64, 200)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	return f, probes
}

// TestFlatMatchesPerTree pins the flat arena to the per-tree walk: both
// predictors must be bit-identical to explicitly accumulating over
// f.trees in tree order — the pre-refactor code path.
func TestFlatMatchesPerTree(t *testing.T) {
	f, probes := trainFlatFixture(t)
	if f.flat.trees() != len(f.trees) {
		t.Fatalf("flat arena holds %d trees, want %d", f.flat.trees(), len(f.trees))
	}
	for pi, x := range probes {
		votes, sum := 0.0, 0.0
		for _, tr := range f.trees {
			p := tr.PredictProba(x)
			if p >= 0.5 {
				votes++
			}
			sum += p
		}
		wantVote := votes / float64(len(f.trees))
		wantMean := sum / float64(len(f.trees))
		if got := f.PredictProba(x); got != wantVote {
			t.Fatalf("probe %d: PredictProba %v, per-tree %v", pi, got, wantVote)
		}
		if got := f.PredictMeanProba(x); got != wantMean {
			t.Fatalf("probe %d: PredictMeanProba %v, per-tree %v", pi, got, wantMean)
		}
	}
}

// TestBatchMatchesPerRow pins PredictMeanProbaBatch to the per-row path,
// bit for bit, including when the caller's out slice must grow and when
// it is reused across calls.
func TestBatchMatchesPerRow(t *testing.T) {
	f, probes := trainFlatFixture(t)
	got := f.PredictMeanProbaBatch(probes, nil)
	if len(got) != len(probes) {
		t.Fatalf("batch returned %d results for %d rows", len(got), len(probes))
	}
	for i, x := range probes {
		if want := f.PredictMeanProba(x); got[i] != want {
			t.Fatalf("row %d: batch %v, per-row %v", i, got[i], want)
		}
	}
	// Reuse: a second call into the same out slice must overwrite in place.
	again := f.PredictMeanProbaBatch(probes[:50], got)
	if &again[0] != &got[0] {
		t.Fatal("batch reallocated despite sufficient capacity")
	}
	for i := range again {
		if want := f.PredictMeanProba(probes[i]); again[i] != want {
			t.Fatalf("reused row %d: batch %v, per-row %v", i, again[i], want)
		}
	}
}

// TestBatchFallbackWithoutArena covers hand-assembled forests that never
// built a flat arena: batch must fall back to the per-row predictor.
func TestBatchFallbackWithoutArena(t *testing.T) {
	f, probes := trainFlatFixture(t)
	bare := &Forest{trees: f.trees, nFeatures: f.nFeatures}
	got := bare.PredictMeanProbaBatch(probes, nil)
	for i, x := range probes {
		if want := f.PredictMeanProba(x); got[i] != want {
			t.Fatalf("row %d: fallback batch %v, want %v", i, got[i], want)
		}
	}
}

// TestBatchZeroAllocSteadyState pins the hot-path property: with a
// caller-provided out slice, batch prediction allocates nothing.
func TestBatchZeroAllocSteadyState(t *testing.T) {
	f, probes := trainFlatFixture(t)
	out := make([]float64, len(probes))
	allocs := testing.AllocsPerRun(50, func() {
		f.PredictMeanProbaBatch(probes, out)
	})
	if allocs != 0 {
		t.Fatalf("batch allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

// TestSerializeRoundTripsThroughFlat checks that a load rebuilds both the
// arena and the per-tree view, and that predictions survive the trip.
func TestSerializeRoundTripsThroughFlat(t *testing.T) {
	f, probes := trainFlatFixture(t)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !g.flat.ready() || g.flat.trees() != f.flat.trees() {
		t.Fatalf("loaded arena has %d trees, want %d", g.flat.trees(), f.flat.trees())
	}
	if len(g.trees) != len(f.trees) {
		t.Fatalf("loaded %d per-tree views, want %d", len(g.trees), len(f.trees))
	}
	for i, x := range probes {
		if a, b := f.PredictMeanProba(x), g.PredictMeanProba(x); a != b {
			t.Fatalf("probe %d: prediction changed across round trip: %v vs %v", i, a, b)
		}
	}
}

// benchForest caches a production-scale ensemble for the batch
// benchmarks: 100 deep trees over 8 features, trained on enough rows
// that the node arena is several megabytes — the regime the tree-major
// batch walk is built for (the tiny test fixtures above fit in L1, where
// traversal order cannot matter).
var benchForest struct {
	f      *Forest
	probes [][]float64
}

func benchFixture(b *testing.B) (*Forest, [][]float64) {
	b.Helper()
	if benchForest.f != nil {
		return benchForest.f, benchForest.probes
	}
	rng := rand.New(rand.NewSource(23))
	const nRows, nFeat = 16000, 8
	x := make([][]float64, nRows)
	y := make([]int, nRows)
	for i := range x {
		row := make([]float64, nFeat)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		// Nonlinear label with noise, so trees grow to depth.
		score := row[0]*row[1] + row[2] - row[3]*row[4] + 0.3*rng.NormFloat64()
		if score > 0.5 {
			y[i] = 1
		}
	}
	f, err := Train(x, y, Config{Trees: 100, MaxDepth: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	probes := make([][]float64, 256)
	for i := range probes {
		row := make([]float64, nFeat)
		for j := range row {
			row[j] = rng.Float64()
		}
		probes[i] = row
	}
	benchForest.f, benchForest.probes = f, probes
	return f, probes
}

// BenchmarkForestPredictBatch measures the arena batch predictor; compare
// against BenchmarkForestPredictPerRow for the throughput ratio recorded
// in bench_results/P1.csv.
func BenchmarkForestPredictBatch(b *testing.B) {
	f, probes := benchFixture(b)
	out := make([]float64, len(probes))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f.PredictMeanProbaBatch(probes, out)
	}
}

// BenchmarkForestPredictPerRow is the per-row loop the batch call replaces.
func BenchmarkForestPredictPerRow(b *testing.B) {
	f, probes := benchFixture(b)
	out := make([]float64, len(probes))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, x := range probes {
			out[i] = f.PredictMeanProba(x)
		}
	}
}
