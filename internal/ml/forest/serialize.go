package forest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/richnote/richnote/internal/wal"
)

// Serialization lets a trained content-utility model be shipped separately
// from the training data — the deployment split the paper implies (train
// offline on production logs, score online in the broker).

// modelFile is the on-disk representation of a forest.
type modelFile struct {
	Version    int          `json:"version"`
	NFeatures  int          `json:"n_features"`
	Importance []float64    `json:"importance"`
	OOBError   float64      `json:"oob_error"`
	OOBScored  int          `json:"oob_scored"`
	Trees      [][]nodeFile `json:"trees"`
}

// nodeFile is one serialized tree node.
type nodeFile struct {
	// F is the split feature; -1 marks a leaf.
	F int `json:"f"`
	// T is the split threshold.
	T float64 `json:"t,omitempty"`
	// L and R are child indices.
	L int32 `json:"l,omitempty"`
	R int32 `json:"r,omitempty"`
	// P is the leaf probability.
	P float64 `json:"p"`
}

const modelVersion = 1

// ErrBadModel is returned when a serialized model is malformed.
var ErrBadModel = errors.New("forest: malformed model")

// Save writes the trained forest as JSON. The on-disk node records are
// produced from the flat arena — tree t's node range with child indices
// rebased to tree-relative — which yields the same bytes as walking the
// per-tree view (leaves serialize with zero children either way).
func (f *Forest) Save(w io.Writer) error {
	if !f.flat.ready() {
		f.buildFlat() // hand-assembled forests: flatten on first save
	}
	fl := &f.flat
	mf := modelFile{
		Version:    modelVersion,
		NFeatures:  f.nFeatures,
		Importance: f.importance,
		OOBError:   f.oobError,
		OOBScored:  f.oobScored,
		Trees:      make([][]nodeFile, fl.trees()),
	}
	for ti := range mf.Trees {
		lo, hi := fl.roots[ti], fl.roots[ti+1]
		nodes := make([]nodeFile, hi-lo)
		for i := lo; i < hi; i++ {
			nf := nodeFile{F: int(fl.features[i]), T: fl.thresholds[i], P: fl.probs[i]}
			if nf.F >= 0 {
				nf.L = fl.children[2*i] - lo
				nf.R = fl.children[2*i+1] - lo
			}
			nodes[i-lo] = nf
		}
		mf.Trees[ti] = nodes
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(mf); err != nil {
		return fmt.Errorf("forest: encode model: %w", err)
	}
	return bw.Flush()
}

// Load reads a forest serialized by Save.
func Load(r io.Reader) (*Forest, error) {
	var mf modelFile
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&mf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	if mf.Version != modelVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadModel, mf.Version)
	}
	if mf.NFeatures <= 0 || len(mf.Trees) == 0 {
		return nil, fmt.Errorf("%w: empty model", ErrBadModel)
	}
	f := &Forest{
		nFeatures:  mf.NFeatures,
		importance: mf.Importance,
		oobError:   mf.OOBError,
		oobScored:  mf.OOBScored,
	}
	if f.importance == nil {
		f.importance = make([]float64, mf.NFeatures)
	}
	// Fill the flat arena directly — the deserialized model round-trips
	// through the same layout the predictors run on — then derive the
	// per-tree view from it.
	total := 0
	for _, nodes := range mf.Trees {
		total += len(nodes)
	}
	fl := &f.flat
	fl.features = make([]int32, total)
	fl.thresholds = make([]float64, total)
	fl.children = make([]int32, 2*total)
	fl.probs = make([]float64, total)
	fl.roots = make([]int32, len(mf.Trees)+1)
	off := int32(0)
	for ti, nodes := range mf.Trees {
		if len(nodes) == 0 {
			return nil, fmt.Errorf("%w: empty tree %d", ErrBadModel, ti)
		}
		fl.roots[ti] = off
		for ni, n := range nodes {
			if n.F >= mf.NFeatures {
				return nil, fmt.Errorf("%w: tree %d node %d references feature %d of %d",
					ErrBadModel, ti, ni, n.F, mf.NFeatures)
			}
			i := off + int32(ni)
			fl.features[i] = int32(n.F)
			fl.thresholds[i] = n.T
			fl.probs[i] = n.P
			if n.F >= 0 {
				if n.L < 0 || int(n.L) >= len(nodes) || n.R < 0 || int(n.R) >= len(nodes) {
					return nil, fmt.Errorf("%w: tree %d node %d child out of range", ErrBadModel, ti, ni)
				}
				fl.children[2*i] = off + n.L
				fl.children[2*i+1] = off + n.R
			}
		}
		off += int32(len(nodes))
	}
	fl.roots[len(mf.Trees)] = off
	f.treesFromFlat()
	return f, nil
}

// SaveFile writes the model to a path atomically: the bytes land in a
// temp file that is fsynced and renamed over the target, so a crash
// mid-save leaves either the old model or the new one, never a torn
// half-written file a later LoadFile would choke on.
func (f *Forest) SaveFile(path string) error {
	if err := wal.WriteFileAtomic(path, f.Save); err != nil {
		return fmt.Errorf("forest: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a model from a path.
func LoadFile(path string) (*Forest, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("forest: open %s: %w", path, err)
	}
	defer func() {
		_ = file.Close() // read-only descriptor
	}()
	return Load(file)
}
