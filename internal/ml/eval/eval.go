// Package eval provides the classifier-evaluation protocol of Section V-A
// of the paper: stratified-free k-fold cross validation and the confusion
// matrix metrics (precision, recall, accuracy, F1) used to report the
// content-utility model quality (paper: precision 0.700, accuracy 0.689
// under five-fold cross validation).
package eval

import (
	"errors"
	"fmt"
	"math/rand"
)

// Classifier scores a feature vector with the probability of the positive
// class ("clicked").
type Classifier interface {
	PredictProba(x []float64) float64
}

// Trainer builds a classifier from a training set. Labels are 0 or 1.
type Trainer func(features [][]float64, labels []int) (Classifier, error)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates another confusion matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of scored examples.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision returns TP/(TP+FP), or 0 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when no positives exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix and derived metrics.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d precision=%.3f recall=%.3f accuracy=%.3f f1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.Accuracy(), c.F1())
}

// Score classifies a single example at the 0.5 threshold and updates the
// matrix.
func (c *Confusion) Score(proba float64, label int) {
	predicted := 0
	if proba >= 0.5 {
		predicted = 1
	}
	switch {
	case predicted == 1 && label == 1:
		c.TP++
	case predicted == 1 && label == 0:
		c.FP++
	case predicted == 0 && label == 0:
		c.TN++
	default:
		c.FN++
	}
}

// Errors returned by the evaluation helpers.
var (
	ErrBadFoldCount = errors.New("eval: fold count must be >= 2 and <= n")
	ErrShape        = errors.New("eval: features and labels length mismatch")
	ErrEmpty        = errors.New("eval: empty dataset")
)

// KFoldIndices shuffles [0, n) and splits it into k nearly equal folds.
func KFoldIndices(n, k int, rng *rand.Rand) ([][]int, error) {
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadFoldCount, k, n)
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds, nil
}

// FoldResult is the outcome of evaluating one cross-validation fold.
type FoldResult struct {
	Fold      int
	Confusion Confusion
}

// CrossValidate runs k-fold cross validation: for each fold, the trainer is
// fit on the remaining folds and scored on the held-out fold. It returns
// the aggregate confusion matrix and the per-fold results.
func CrossValidate(features [][]float64, labels []int, k int, rng *rand.Rand, train Trainer) (Confusion, []FoldResult, error) {
	if len(features) != len(labels) {
		return Confusion{}, nil, fmt.Errorf("%w: %d vs %d", ErrShape, len(features), len(labels))
	}
	folds, err := KFoldIndices(len(features), k, rng)
	if err != nil {
		return Confusion{}, nil, err
	}
	return crossValidateFolds(features, labels, folds, train)
}
