package eval

import (
	"fmt"
	"math/rand"
)

// StratifiedKFoldIndices splits [0, n) into k folds that preserve the
// class balance of the labels — Weka's default cross-validation mode, and
// the appropriate protocol when classes are imbalanced (the trace's click
// rate is ~0.27). Labels must be 0/1 and len(labels) == n.
func StratifiedKFoldIndices(labels []int, k int, rng *rand.Rand) ([][]int, error) {
	n := len(labels)
	if n == 0 {
		return nil, ErrEmpty
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadFoldCount, k, n)
	}
	var pos, neg []int
	for i, l := range labels {
		switch l {
		case 1:
			pos = append(pos, i)
		case 0:
			neg = append(neg, i)
		default:
			return nil, fmt.Errorf("eval: label %d at row %d not binary", l, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		// Offset the round-robin so folds that got an extra positive do
		// not also get an extra negative.
		f := (i + len(pos)) % k
		folds[f] = append(folds[f], idx)
	}
	return folds, nil
}

// CrossValidateStratified is CrossValidate with stratified folds.
func CrossValidateStratified(features [][]float64, labels []int, k int, rng *rand.Rand, train Trainer) (Confusion, []FoldResult, error) {
	if len(features) != len(labels) {
		return Confusion{}, nil, fmt.Errorf("%w: %d vs %d", ErrShape, len(features), len(labels))
	}
	folds, err := StratifiedKFoldIndices(labels, k, rng)
	if err != nil {
		return Confusion{}, nil, err
	}
	return crossValidateFolds(features, labels, folds, train)
}

// crossValidateFolds runs the train/score loop over prebuilt folds.
func crossValidateFolds(features [][]float64, labels []int, folds [][]int, train Trainer) (Confusion, []FoldResult, error) {
	var total Confusion
	results := make([]FoldResult, 0, len(folds))
	for fi, test := range folds {
		inTest := make(map[int]bool, len(test))
		for _, idx := range test {
			inTest[idx] = true
		}
		trainX := make([][]float64, 0, len(features)-len(test))
		trainY := make([]int, 0, len(labels)-len(test))
		for i := range features {
			if !inTest[i] {
				trainX = append(trainX, features[i])
				trainY = append(trainY, labels[i])
			}
		}
		clf, err := train(trainX, trainY)
		if err != nil {
			return Confusion{}, nil, fmt.Errorf("fold %d: %w", fi, err)
		}
		var cm Confusion
		for _, idx := range test {
			cm.Score(clf.PredictProba(features[idx]), labels[idx])
		}
		total.Add(cm)
		results = append(results, FoldResult{Fold: fi, Confusion: cm})
	}
	return total, results, nil
}
