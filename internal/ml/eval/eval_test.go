package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 70, FP: 30, TN: 60, FN: 40}
	if got := c.Precision(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("precision %f, want 0.7", got)
	}
	if got := c.Recall(); math.Abs(got-70.0/110.0) > 1e-12 {
		t.Fatalf("recall %f, want %f", got, 70.0/110.0)
	}
	if got := c.Accuracy(); math.Abs(got-130.0/200.0) > 1e-12 {
		t.Fatalf("accuracy %f, want 0.65", got)
	}
	p, r := c.Precision(), c.Recall()
	if got := c.F1(); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Fatalf("f1 %f inconsistent", got)
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestConfusionEmptyEdges(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion metrics must be zero")
	}
}

func TestConfusionScore(t *testing.T) {
	var c Confusion
	c.Score(0.9, 1) // TP
	c.Score(0.9, 0) // FP
	c.Score(0.1, 0) // TN
	c.Score(0.1, 1) // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion = %+v, want one of each", c)
	}
	c.Score(0.5, 1) // threshold boundary counts as positive
	if c.TP != 2 {
		t.Fatalf("proba 0.5 not scored positive: %+v", c)
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Add(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestKFoldIndicesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	folds, err := KFoldIndices(103, 5, rng)
	if err != nil {
		t.Fatalf("KFoldIndices: %v", err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds, want 5", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("index %d appears in two folds", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("folds cover %d indices, want 103", len(seen))
	}
	// Fold sizes within one of each other.
	for _, fold := range folds {
		if len(fold) < 20 || len(fold) > 21 {
			t.Fatalf("fold size %d, want 20 or 21", len(fold))
		}
	}
}

func TestKFoldIndicesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KFoldIndices(0, 2, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := KFoldIndices(10, 1, rng); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFoldIndices(3, 5, rng); err == nil {
		t.Error("k > n accepted")
	}
}

// thresholdClassifier predicts positive when feature 0 exceeds its
// training-set positive-class mean; a stand-in for a real learner.
type thresholdClassifier struct{ cut float64 }

func (c thresholdClassifier) PredictProba(x []float64) float64 {
	if x[0] >= c.cut {
		return 0.9
	}
	return 0.1
}

func trainThreshold(x [][]float64, y []int) (Classifier, error) {
	// Midpoint between class means of feature 0.
	var sum0, sum1 float64
	var n0, n1 int
	for i := range x {
		if y[i] == 1 {
			sum1 += x[i][0]
			n1++
		} else {
			sum0 += x[i][0]
			n0++
		}
	}
	if n0 == 0 || n1 == 0 {
		return thresholdClassifier{cut: 0.5}, nil
	}
	return thresholdClassifier{cut: (sum0/float64(n0) + sum1/float64(n1)) / 2}, nil
}

func TestCrossValidateSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		if i%2 == 0 {
			x[i] = []float64{rng.NormFloat64()*0.1 + 1}
			y[i] = 1
		} else {
			x[i] = []float64{rng.NormFloat64() * 0.1}
		}
	}
	total, folds, err := CrossValidate(x, y, 5, rng, trainThreshold)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d fold results, want 5", len(folds))
	}
	if total.Total() != n {
		t.Fatalf("scored %d examples, want %d", total.Total(), n)
	}
	if total.Accuracy() < 0.98 {
		t.Fatalf("accuracy %.3f on separable data, want ~1", total.Accuracy())
	}
}

func TestCrossValidateShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, _, err := CrossValidate([][]float64{{1}}, []int{1, 0}, 2, rng, trainThreshold); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// Property: per-fold confusion matrices sum exactly to the aggregate.
func TestCrossValidateAggregationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = []float64{rng.Float64()}
			y[i] = rng.Intn(2)
		}
		total, folds, err := CrossValidate(x, y, 4, rng, trainThreshold)
		if err != nil {
			return false
		}
		var sum Confusion
		for _, f := range folds {
			sum.Add(f.Confusion)
		}
		return sum == total && total.Total() == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
