package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStratifiedFoldsPreserveBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 20% positives over 500 examples.
	labels := make([]int, 500)
	for i := 0; i < 100; i++ {
		labels[i] = 1
	}
	rng.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	folds, err := StratifiedKFoldIndices(labels, 5, rng)
	if err != nil {
		t.Fatalf("StratifiedKFoldIndices: %v", err)
	}
	for fi, fold := range folds {
		pos := 0
		for _, idx := range fold {
			pos += labels[idx]
		}
		rate := float64(pos) / float64(len(fold))
		if math.Abs(rate-0.2) > 0.01 {
			t.Errorf("fold %d positive rate %.3f, want ~0.20", fi, rate)
		}
	}
}

func TestStratifiedFoldsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := make([]int, 103)
	for i := range labels {
		labels[i] = i % 3 % 2 // mixed 0/1
	}
	folds, err := StratifiedKFoldIndices(labels, 4, rng)
	if err != nil {
		t.Fatalf("StratifiedKFoldIndices: %v", err)
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("index %d in two folds", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("folds cover %d of 103", len(seen))
	}
}

func TestStratifiedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := StratifiedKFoldIndices(nil, 2, rng); err == nil {
		t.Error("empty labels accepted")
	}
	if _, err := StratifiedKFoldIndices([]int{0, 1}, 5, rng); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := StratifiedKFoldIndices([]int{0, 2, 1}, 2, rng); err == nil {
		t.Error("non-binary label accepted")
	}
}

func TestCrossValidateStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		if i%5 == 0 { // 20% positives, separable
			x[i] = []float64{1 + rng.NormFloat64()*0.05}
			y[i] = 1
		} else {
			x[i] = []float64{rng.NormFloat64() * 0.05}
		}
	}
	total, folds, err := CrossValidateStratified(x, y, 5, rng, trainThreshold)
	if err != nil {
		t.Fatalf("CrossValidateStratified: %v", err)
	}
	if total.Total() != n {
		t.Fatalf("scored %d, want %d", total.Total(), n)
	}
	if total.Accuracy() < 0.98 {
		t.Fatalf("accuracy %.3f on separable data", total.Accuracy())
	}
	// Stratification ensures every fold contains positives.
	for _, f := range folds {
		if f.Confusion.TP+f.Confusion.FN == 0 {
			t.Fatal("a fold has no positive examples")
		}
	}
	if _, _, err := CrossValidateStratified(x[:10], y, 5, rng, trainThreshold); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// Property: stratified fold sizes differ by at most 2 (one per class).
func TestStratifiedFoldSizesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(2)
		}
		folds, err := StratifiedKFoldIndices(labels, 5, rng)
		if err != nil {
			return true // degenerate draws (k > n) cannot happen at n >= 20
		}
		min, max := n, 0
		for _, f := range folds {
			if len(f) < min {
				min = len(f)
			}
			if len(f) > max {
				max = len(f)
			}
		}
		return max-min <= 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
