package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2 + 3*v
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if math.Abs(fit.Intercept-2) > 1e-9 || math.Abs(fit.Slope-3) > 1e-9 {
		t.Fatalf("fit = %+v, want intercept 2 slope 3", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %f, want 1", fit.R2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = -1 + 0.5*x[i] + rng.NormFloat64()*0.05
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if math.Abs(fit.Intercept+1) > 0.05 || math.Abs(fit.Slope-0.5) > 0.02 {
		t.Fatalf("fit = %+v, want approx intercept -1 slope 0.5", fit)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %f, want > 0.95", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance x accepted")
	}
}

// Recover the paper's Equation 8 constants from exact samples of the curve.
func TestFitLogRecoversEquation8(t *testing.T) {
	durations := []float64{5, 10, 20, 30, 40}
	utils := make([]float64, len(durations))
	for i, d := range durations {
		utils[i] = -0.397 + 0.352*math.Log(1+d)
	}
	m, err := FitLog(durations, utils)
	if err != nil {
		t.Fatalf("FitLog: %v", err)
	}
	if math.Abs(m.A+0.397) > 1e-9 || math.Abs(m.B-0.352) > 1e-9 {
		t.Fatalf("recovered A=%f B=%f, want -0.397/0.352", m.A, m.B)
	}
	if m.R2 < 1-1e-9 {
		t.Fatalf("R2 = %f, want 1", m.R2)
	}
}

func TestFitLogRejectsBadDomain(t *testing.T) {
	if _, err := FitLog([]float64{-2, 5}, []float64{0.1, 0.5}); err == nil {
		t.Fatal("duration <= -1 accepted")
	}
}

// Recover the paper's Equation 9 constants from exact samples of the curve.
func TestFitPowerRecoversEquation9(t *testing.T) {
	durations := []float64{5, 10, 20, 30, 39}
	utils := make([]float64, len(durations))
	for i, d := range durations {
		utils[i] = 0.253 * math.Pow(1-d/40, 2.087)
	}
	m, err := FitPower(durations, utils, 40)
	if err != nil {
		t.Fatalf("FitPower: %v", err)
	}
	if math.Abs(m.A-0.253) > 1e-6 || math.Abs(m.B-2.087) > 1e-6 {
		t.Fatalf("recovered A=%f B=%f, want 0.253/2.087", m.A, m.B)
	}
}

func TestFitPowerSkipsOutOfDomainSamples(t *testing.T) {
	durations := []float64{5, 10, 40, 20} // d=40 hits the horizon exactly
	utils := []float64{0.2, 0.15, 0, 0.1}
	if _, err := FitPower(durations, utils, 40); err != nil {
		t.Fatalf("FitPower with clampable samples: %v", err)
	}
	if _, err := FitPower([]float64{40, 45}, []float64{0, 0}, 40); err == nil {
		t.Fatal("all-out-of-domain samples accepted")
	}
	if _, err := FitPower(durations[:2], utils[:3], 40); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitPower(durations, utils, -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestPowerPredictClamps(t *testing.T) {
	m := PowerModel{A: 0.25, B: 2, D: 40}
	if got := m.Predict(40); got != 0 {
		t.Fatalf("Predict(D) = %f, want 0", got)
	}
	if got := m.Predict(50); got != 0 {
		t.Fatalf("Predict(>D) = %f, want 0", got)
	}
}

// The paper observes the log model fits its survey better than the power
// model; verify the comparison machinery orders fits correctly on
// log-generated data.
func TestLogBeatsPowerOnLogData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var durations, utils []float64
	for i := 0; i < 200; i++ {
		d := 1 + rng.Float64()*38
		durations = append(durations, d)
		utils = append(utils, math.Max(0.01, -0.397+0.352*math.Log(1+d)+rng.NormFloat64()*0.02))
	}
	lm, err := FitLog(durations, utils)
	if err != nil {
		t.Fatalf("FitLog: %v", err)
	}
	pm, err := FitPower(durations, utils, 40)
	if err != nil {
		t.Fatalf("FitPower: %v", err)
	}
	if lm.R2 <= pm.R2 {
		t.Fatalf("log R2 %f not better than power R2 %f on log data", lm.R2, pm.R2)
	}
}

// Property: FitLinear residual orthogonality — predictions at the mean x
// equal the mean y (the regression line passes through the centroid).
func TestLinearCentroidProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			y[i] = rng.NormFloat64() * 10
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			return true // degenerate draws are fine to skip
		}
		var mx, my float64
		for i := range x {
			mx += x[i]
			my += y[i]
		}
		mx /= float64(n)
		my /= float64(n)
		return math.Abs(fit.Predict(mx)-my) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitLog(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 1000
	d := make([]float64, n)
	u := make([]float64, n)
	for i := range d {
		d[i] = rng.Float64() * 40
		u[i] = 0.3 * math.Log(1+d[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLog(d, u); err != nil {
			b.Fatal(err)
		}
	}
}
