// Package regress provides the least-squares fitting used to derive
// presentation-utility curves from survey data (Section V-B of the paper).
//
// The paper models utility of a d-second audio sample with two candidate
// families and picks the better fit:
//
//	logarithmic: util(d) = a + b·ln(1 + d)          (Equation 8)
//	polynomial:  util(d) = a·(1 − d/D)^b            (Equation 9)
//
// The logarithmic family is linear in ln(1+d) and fits with ordinary least
// squares; the polynomial family is linearized as
// ln(util) = ln(a) + b·ln(1 − d/D) for util > 0 and a fixed horizon D.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the fitters.
var (
	ErrTooFewPoints   = errors.New("regress: need at least two points")
	ErrLengthMismatch = errors.New("regress: x and y lengths differ")
	ErrDegenerate     = errors.New("regress: degenerate inputs (zero variance)")
	ErrDomain         = errors.New("regress: input outside model domain")
)

// Linear holds a fitted line y = Intercept + Slope·x and its goodness of
// fit on the training points.
type Linear struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// Predict evaluates the fitted line.
func (l Linear) Predict(x float64) float64 { return l.Intercept + l.Slope*x }

// FitLinear computes the ordinary least-squares line through (x, y).
func FitLinear(x, y []float64) (Linear, error) {
	if len(x) != len(y) {
		return Linear{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Linear{}, ErrTooFewPoints
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return Linear{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	fit := Linear{Intercept: intercept, Slope: slope}
	fit.R2 = rSquared(y, func(i int) float64 { return fit.Predict(x[i]) })
	return fit, nil
}

// rSquared computes 1 − SSres/SStot for predictions given by pred(i).
// A constant y vector yields R2 = 1 when predictions are exact, else 0.
func rSquared(y []float64, pred func(int) float64) float64 {
	var my float64
	for _, v := range y {
		my += v
	}
	my /= float64(len(y))
	var ssRes, ssTot float64
	for i, v := range y {
		r := v - pred(i)
		ssRes += r * r
		d := v - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// LogModel is util(d) = A + B·ln(1 + d), the paper's Equation 8 family.
type LogModel struct {
	A, B float64
	R2   float64
}

// Predict evaluates the model at duration d (seconds).
func (m LogModel) Predict(d float64) float64 { return m.A + m.B*math.Log(1+d) }

// FitLog fits the logarithmic family to (duration, utility) samples.
// Durations must be > −1.
func FitLog(durations, utils []float64) (LogModel, error) {
	if len(durations) != len(utils) {
		return LogModel{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(durations), len(utils))
	}
	xs := make([]float64, len(durations))
	for i, d := range durations {
		if d <= -1 {
			return LogModel{}, fmt.Errorf("%w: duration %f", ErrDomain, d)
		}
		xs[i] = math.Log(1 + d)
	}
	lin, err := FitLinear(xs, utils)
	if err != nil {
		return LogModel{}, err
	}
	m := LogModel{A: lin.Intercept, B: lin.Slope}
	m.R2 = rSquared(utils, func(i int) float64 { return m.Predict(durations[i]) })
	return m, nil
}

// PowerModel is util(d) = A·(1 − d/D)^B, the paper's Equation 9 family,
// with fixed horizon D (the largest considered duration).
type PowerModel struct {
	A, B, D float64
	R2      float64
}

// Predict evaluates the model at duration d. For d >= D the base is
// clamped to zero, giving util = 0 (or A when B == 0).
func (m PowerModel) Predict(d float64) float64 {
	base := 1 - d/m.D
	if base <= 0 {
		if m.B == 0 {
			return m.A
		}
		return 0
	}
	return m.A * math.Pow(base, m.B)
}

// FitPower fits the polynomial family by linearizing in log space:
// ln(util) = ln(A) + B·ln(1 − d/D). Samples with util <= 0 or d >= D are
// outside the linearized domain and rejected.
func FitPower(durations, utils []float64, horizon float64) (PowerModel, error) {
	if len(durations) != len(utils) {
		return PowerModel{}, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(durations), len(utils))
	}
	if horizon <= 0 {
		return PowerModel{}, fmt.Errorf("%w: horizon %f", ErrDomain, horizon)
	}
	xs := make([]float64, 0, len(durations))
	ys := make([]float64, 0, len(utils))
	for i, d := range durations {
		base := 1 - d/horizon
		if base <= 0 || utils[i] <= 0 {
			continue // outside linearized domain
		}
		xs = append(xs, math.Log(base))
		ys = append(ys, math.Log(utils[i]))
	}
	if len(xs) < 2 {
		return PowerModel{}, ErrTooFewPoints
	}
	lin, err := FitLinear(xs, ys)
	if err != nil {
		return PowerModel{}, err
	}
	m := PowerModel{A: math.Exp(lin.Intercept), B: lin.Slope, D: horizon}
	m.R2 = rSquared(utils, func(i int) float64 { return m.Predict(durations[i]) })
	return m, nil
}
