// Package obs provides lightweight observability for the batch pipeline:
// named phase timers for the build and run stages, and optional pprof
// profiling wired into the cmd binaries. It exists so the "is the
// parallel build actually faster, and where does the time go" question
// has a first-class answer instead of ad-hoc time.Since prints.
//
// A nil *Recorder is valid and records nothing, so instrumented code
// paths never need to branch on whether observability is enabled.
package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one recorded phase: a name and its wall-clock duration.
// Repeated observations under the same name accumulate.
type Span struct {
	Name     string
	Duration time.Duration
	// Count is how many observations were folded into Duration.
	Count int
}

// Recorder accumulates named phase timings. Safe for concurrent use; the
// zero value is ready, and a nil receiver is a no-op on every method.
type Recorder struct {
	mu    sync.Mutex
	spans map[string]*Span
	order []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe adds one measurement under name.
func (r *Recorder) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = make(map[string]*Span)
	}
	s, ok := r.spans[name]
	if !ok {
		s = &Span{Name: name}
		r.spans[name] = s
		r.order = append(r.order, name)
	}
	s.Duration += d
	s.Count++
}

// Time starts a phase timer; calling the returned stop function records
// the elapsed wall-clock time under name. Typical use:
//
//	defer rec.Time("train")()
func (r *Recorder) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.Observe(name, time.Since(start)) }
}

// Span returns the accumulated observation for one phase, if recorded.
// The live server reads the "round" span this way to expose per-shard
// round-latency gauges without materializing the full span list.
func (r *Recorder) Span(name string) (Span, bool) {
	if r == nil {
		return Span{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		return Span{}, false
	}
	return *s, true
}

// Spans returns the recorded phases in first-observation order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, *r.spans[name])
	}
	return out
}

// Total returns the sum of all recorded durations.
func (r *Recorder) Total() time.Duration {
	var total time.Duration
	for _, s := range r.Spans() {
		total += s.Duration
	}
	return total
}

// String renders an aligned phase table, longest phase first.
func (r *Recorder) String() string {
	spans := r.Spans()
	if len(spans) == 0 {
		return ""
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Duration > spans[j].Duration })
	total := r.Total()
	var b strings.Builder
	for _, s := range spans {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Duration) / float64(total)
		}
		fmt.Fprintf(&b, "%-12s %10s  %5.1f%%", s.Name, s.Duration.Round(time.Microsecond), share)
		if s.Count > 1 {
			fmt.Fprintf(&b, "  (%d calls)", s.Count)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. With an empty path
// it is a no-op.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile to path after forcing a GC so
// the numbers reflect live memory. With an empty path it is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return f.Close()
}
