package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	r.Observe("train", 2*time.Second)
	r.Observe("enrich", time.Second)
	r.Observe("train", time.Second)

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans %v, want 2 entries", spans)
	}
	if spans[0].Name != "train" || spans[0].Duration != 3*time.Second || spans[0].Count != 2 {
		t.Fatalf("train span %+v, want 3s over 2 calls", spans[0])
	}
	if r.Total() != 4*time.Second {
		t.Fatalf("total %s, want 4s", r.Total())
	}
	out := r.String()
	if !strings.Contains(out, "train") || !strings.Contains(out, "enrich") {
		t.Fatalf("rendered table missing phases:\n%s", out)
	}
}

func TestRecorderTime(t *testing.T) {
	r := NewRecorder()
	stop := r.Time("phase")
	time.Sleep(time.Millisecond)
	stop()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Duration <= 0 {
		t.Fatalf("Time recorded %v", spans)
	}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Observe("x", time.Second)
	r.Time("y")()
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder returned spans %v", got)
	}
	if r.Total() != 0 || r.String() != "" {
		t.Fatal("nil recorder reported data")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Observe("shared", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Count != 800 {
		t.Fatalf("concurrent observations lost: %+v", spans)
	}
}

func TestProfilesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if _, err := os.Stat(cpu); err != nil {
		t.Fatalf("cpu profile not written: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	if st, err := os.Stat(heap); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestProfilesEmptyPathNoop(t *testing.T) {
	stop, err := StartCPUProfile("")
	if err != nil || stop() != nil {
		t.Fatal("empty cpu profile path should be a no-op")
	}
	if err := WriteHeapProfile(""); err != nil {
		t.Fatal("empty heap profile path should be a no-op")
	}
}

func TestSpanLookup(t *testing.T) {
	r := NewRecorder()
	if _, ok := r.Span("round"); ok {
		t.Fatal("empty recorder must not report spans")
	}
	r.Observe("round", 10*time.Millisecond)
	r.Observe("round", 30*time.Millisecond)
	s, ok := r.Span("round")
	if !ok {
		t.Fatal("span not found after Observe")
	}
	if s.Count != 2 || s.Duration != 40*time.Millisecond {
		t.Fatalf("span %+v, want count 2 duration 40ms", s)
	}
	var nilRec *Recorder
	if _, ok := nilRec.Span("round"); ok {
		t.Fatal("nil recorder must report no spans")
	}
}
