// Package catalog generates a synthetic music catalog replacing the
// Spotify public-API metadata the paper draws content features from:
// artists, albums and tracks with popularity scores normalized to 1..100.
//
// Popularity is Zipf-distributed across artists, matching the heavy-tailed
// streaming frequencies of a real music service, and album/track
// popularity is correlated with (but noisier than) the owning artist's.
package catalog

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Genre count used for affinity features. Genres are opaque integers.
const NumGenres = 12

// Artist is a catalog artist.
type Artist struct {
	ID         int64
	Popularity float64 // 1..100
	Genre      int
	Albums     []int64
}

// Album is a catalog album.
type Album struct {
	ID         int64
	ArtistID   int64
	Popularity float64
	Tracks     []int64
	// ReleaseDay is the simulation day offset the album becomes public;
	// used to drive album-release notifications.
	ReleaseDay int
}

// Track is a catalog track.
type Track struct {
	ID          int64
	AlbumID     int64
	ArtistID    int64
	Popularity  float64
	Genre       int
	DurationSec float64 // full track duration (paper: avg 276 s)
}

// Config controls catalog generation.
type Config struct {
	Artists        int
	AlbumsPerMin   int // minimum albums per artist
	AlbumsPerMax   int
	TracksPerMin   int // minimum tracks per album
	TracksPerMax   int
	ZipfExponent   float64 // artist popularity skew; default 1.1
	MeanTrackSec   float64 // default 276, per the paper's survey tracks
	ReleaseHorizon int     // days over which album releases are spread
}

func (c *Config) applyDefaults() {
	if c.Artists <= 0 {
		c.Artists = 500
	}
	if c.AlbumsPerMin <= 0 {
		c.AlbumsPerMin = 1
	}
	if c.AlbumsPerMax < c.AlbumsPerMin {
		c.AlbumsPerMax = c.AlbumsPerMin + 3
	}
	if c.TracksPerMin <= 0 {
		c.TracksPerMin = 6
	}
	if c.TracksPerMax < c.TracksPerMin {
		c.TracksPerMax = c.TracksPerMin + 8
	}
	if c.ZipfExponent <= 1 {
		c.ZipfExponent = 1.1
	}
	if c.MeanTrackSec <= 0 {
		c.MeanTrackSec = 276
	}
	if c.ReleaseHorizon <= 0 {
		c.ReleaseHorizon = 7
	}
}

// ErrEmptyCatalog is returned by accessors on a catalog with no tracks.
var ErrEmptyCatalog = errors.New("catalog: empty")

// Catalog is a generated music catalog.
type Catalog struct {
	Artists []Artist
	Albums  []Album
	Tracks  []Track

	trackByID  map[int64]int
	albumByID  map[int64]int
	artistByID map[int64]int
}

// Generate builds a catalog deterministically from the RNG.
func Generate(cfg Config, rng *rand.Rand) (*Catalog, error) {
	cfg.applyDefaults()
	c := &Catalog{
		trackByID:  make(map[int64]int),
		albumByID:  make(map[int64]int),
		artistByID: make(map[int64]int),
	}

	// Zipf ranks over artists: popularity(rank r) ∝ 1/r^s, normalized to
	// 1..100.
	zipfWeights := make([]float64, cfg.Artists)
	maxW := 0.0
	for r := range zipfWeights {
		zipfWeights[r] = 1 / math.Pow(float64(r+1), cfg.ZipfExponent)
		if zipfWeights[r] > maxW {
			maxW = zipfWeights[r]
		}
	}

	var nextAlbumID, nextTrackID int64 = 1, 1
	for ai := 0; ai < cfg.Artists; ai++ {
		artist := Artist{
			ID:         int64(ai + 1),
			Popularity: 1 + 99*zipfWeights[ai]/maxW,
			Genre:      rng.Intn(NumGenres),
		}
		nAlbums := cfg.AlbumsPerMin + rng.Intn(cfg.AlbumsPerMax-cfg.AlbumsPerMin+1)
		for bi := 0; bi < nAlbums; bi++ {
			album := Album{
				ID:         nextAlbumID,
				ArtistID:   artist.ID,
				Popularity: clampPop(artist.Popularity * (0.6 + 0.6*rng.Float64())),
				ReleaseDay: rng.Intn(cfg.ReleaseHorizon),
			}
			nextAlbumID++
			nTracks := cfg.TracksPerMin + rng.Intn(cfg.TracksPerMax-cfg.TracksPerMin+1)
			for ti := 0; ti < nTracks; ti++ {
				track := Track{
					ID:          nextTrackID,
					AlbumID:     album.ID,
					ArtistID:    artist.ID,
					Popularity:  clampPop(album.Popularity * (0.5 + rng.Float64())),
					Genre:       artist.Genre,
					DurationSec: math.Max(60, cfg.MeanTrackSec+rng.NormFloat64()*60),
				}
				nextTrackID++
				album.Tracks = append(album.Tracks, track.ID)
				c.trackByID[track.ID] = len(c.Tracks)
				c.Tracks = append(c.Tracks, track)
			}
			artist.Albums = append(artist.Albums, album.ID)
			c.albumByID[album.ID] = len(c.Albums)
			c.Albums = append(c.Albums, album)
		}
		c.artistByID[artist.ID] = len(c.Artists)
		c.Artists = append(c.Artists, artist)
	}
	if len(c.Tracks) == 0 {
		return nil, ErrEmptyCatalog
	}
	return c, nil
}

func clampPop(p float64) float64 {
	if p < 1 {
		return 1
	}
	if p > 100 {
		return 100
	}
	return p
}

// Track returns the track with the given ID.
func (c *Catalog) Track(id int64) (Track, error) {
	idx, ok := c.trackByID[id]
	if !ok {
		return Track{}, fmt.Errorf("catalog: unknown track %d", id)
	}
	return c.Tracks[idx], nil
}

// Album returns the album with the given ID.
func (c *Catalog) Album(id int64) (Album, error) {
	idx, ok := c.albumByID[id]
	if !ok {
		return Album{}, fmt.Errorf("catalog: unknown album %d", id)
	}
	return c.Albums[idx], nil
}

// Artist returns the artist with the given ID.
func (c *Catalog) Artist(id int64) (Artist, error) {
	idx, ok := c.artistByID[id]
	if !ok {
		return Artist{}, fmt.Errorf("catalog: unknown artist %d", id)
	}
	return c.Artists[idx], nil
}

// RandomTrack samples a track with probability proportional to its
// popularity, mimicking what users actually stream.
func (c *Catalog) RandomTrack(rng *rand.Rand) (Track, error) {
	if len(c.Tracks) == 0 {
		return Track{}, ErrEmptyCatalog
	}
	// Rejection sampling against popularity keeps this O(1) expected
	// without a prefix-sum table.
	for i := 0; i < 64; i++ {
		t := c.Tracks[rng.Intn(len(c.Tracks))]
		if rng.Float64()*100 <= t.Popularity {
			return t, nil
		}
	}
	return c.Tracks[rng.Intn(len(c.Tracks))], nil
}

// PopularArtists returns the n most popular artist IDs.
func (c *Catalog) PopularArtists(n int) []int64 {
	if n > len(c.Artists) {
		n = len(c.Artists)
	}
	// Artists are generated in Zipf-rank order, so the first n are the most
	// popular; keep this O(n) rather than sorting.
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Artists[i].ID)
	}
	return out
}
