package catalog

import (
	"math/rand"
	"testing"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := Generate(Config{Artists: 100}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return c
}

func TestGenerateStructure(t *testing.T) {
	c := testCatalog(t)
	if len(c.Artists) != 100 {
		t.Fatalf("%d artists, want 100", len(c.Artists))
	}
	if len(c.Albums) == 0 || len(c.Tracks) == 0 {
		t.Fatal("empty albums or tracks")
	}
	// Every album belongs to its artist and every track to its album.
	for _, al := range c.Albums {
		artist, err := c.Artist(al.ArtistID)
		if err != nil {
			t.Fatalf("album %d references unknown artist %d", al.ID, al.ArtistID)
		}
		found := false
		for _, id := range artist.Albums {
			if id == al.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("artist %d does not list album %d", artist.ID, al.ID)
		}
	}
	for _, tr := range c.Tracks {
		if _, err := c.Album(tr.AlbumID); err != nil {
			t.Fatalf("track %d references unknown album: %v", tr.ID, err)
		}
		if _, err := c.Artist(tr.ArtistID); err != nil {
			t.Fatalf("track %d references unknown artist: %v", tr.ID, err)
		}
	}
}

func TestPopularityBounds(t *testing.T) {
	c := testCatalog(t)
	for _, a := range c.Artists {
		if a.Popularity < 1 || a.Popularity > 100 {
			t.Fatalf("artist popularity %f out of [1,100]", a.Popularity)
		}
		if a.Genre < 0 || a.Genre >= NumGenres {
			t.Fatalf("artist genre %d out of range", a.Genre)
		}
	}
	for _, al := range c.Albums {
		if al.Popularity < 1 || al.Popularity > 100 {
			t.Fatalf("album popularity %f out of [1,100]", al.Popularity)
		}
	}
	for _, tr := range c.Tracks {
		if tr.Popularity < 1 || tr.Popularity > 100 {
			t.Fatalf("track popularity %f out of [1,100]", tr.Popularity)
		}
		if tr.DurationSec < 60 {
			t.Fatalf("track duration %f below floor", tr.DurationSec)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	c := testCatalog(t)
	// Artist 0 is rank 1 and must be the most popular; the tail must be
	// much less popular.
	if c.Artists[0].Popularity != 100 {
		t.Fatalf("rank-1 artist popularity %f, want 100", c.Artists[0].Popularity)
	}
	last := c.Artists[len(c.Artists)-1].Popularity
	if last > 20 {
		t.Fatalf("tail artist popularity %f, want strongly skewed (< 20)", last)
	}
}

func TestDeterminism(t *testing.T) {
	c1, err := Generate(Config{Artists: 50}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	c2, err := Generate(Config{Artists: 50}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(c1.Tracks) != len(c2.Tracks) {
		t.Fatalf("track counts differ: %d vs %d", len(c1.Tracks), len(c2.Tracks))
	}
	for i := range c1.Tracks {
		if c1.Tracks[i] != c2.Tracks[i] {
			t.Fatalf("track %d differs across same-seed runs", i)
		}
	}
}

func TestRandomTrackPopularityBias(t *testing.T) {
	c := testCatalog(t)
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const draws = 3000
	for i := 0; i < draws; i++ {
		tr, err := c.RandomTrack(rng)
		if err != nil {
			t.Fatalf("RandomTrack: %v", err)
		}
		sum += tr.Popularity
	}
	var mean float64
	for _, tr := range c.Tracks {
		mean += tr.Popularity
	}
	mean /= float64(len(c.Tracks))
	if sampleMean := sum / draws; sampleMean <= mean {
		t.Fatalf("popularity-biased sampling mean %.2f not above catalog mean %.2f", sampleMean, mean)
	}
}

func TestPopularArtists(t *testing.T) {
	c := testCatalog(t)
	top := c.PopularArtists(10)
	if len(top) != 10 {
		t.Fatalf("%d artists, want 10", len(top))
	}
	// Request beyond catalog size clamps.
	all := c.PopularArtists(10_000)
	if len(all) != len(c.Artists) {
		t.Fatalf("%d artists, want %d", len(all), len(c.Artists))
	}
	a0, err := c.Artist(top[0])
	if err != nil {
		t.Fatalf("Artist: %v", err)
	}
	a9, err := c.Artist(top[9])
	if err != nil {
		t.Fatalf("Artist: %v", err)
	}
	if a0.Popularity < a9.Popularity {
		t.Fatalf("top list not popularity-ordered: %f < %f", a0.Popularity, a9.Popularity)
	}
}

func TestUnknownLookups(t *testing.T) {
	c := testCatalog(t)
	if _, err := c.Track(-1); err == nil {
		t.Error("unknown track accepted")
	}
	if _, err := c.Album(-1); err == nil {
		t.Error("unknown album accepted")
	}
	if _, err := c.Artist(-1); err == nil {
		t.Error("unknown artist accepted")
	}
}
