package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// fileHeader is the first JSONL record of a serialized trace.
type fileHeader struct {
	Version    int           `json:"version"`
	Epoch      time.Time     `json:"epoch"`
	Rounds     int           `json:"rounds"`
	RoundLen   time.Duration `json:"round_len"`
	UserCount  int           `json:"user_count"`
	MasterSeed int64         `json:"master_seed"`
}

const fileVersion = 1

// ErrBadTraceFile is returned when a trace file is malformed.
var ErrBadTraceFile = errors.New("trace: malformed trace file")

// Write serializes the trace as JSON lines: a header record followed by
// one UserTrace record per user. The format is line-oriented so very large
// traces can be streamed.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	header := fileHeader{
		Version:    fileVersion,
		Epoch:      tr.Epoch,
		Rounds:     tr.Rounds,
		RoundLen:   tr.RoundLen,
		UserCount:  len(tr.Users),
		MasterSeed: tr.MasterSeed,
	}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range tr.Users {
		if err := enc.Encode(&tr.Users[i]); err != nil {
			return fmt.Errorf("trace: write user %d: %w", tr.Users[i].User, err)
		}
	}
	return bw.Flush()
}

// Read parses a trace serialized by Write.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var header fileHeader
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTraceFile, err)
	}
	if header.Version != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTraceFile, header.Version)
	}
	tr := &Trace{
		Epoch:      header.Epoch,
		Rounds:     header.Rounds,
		RoundLen:   header.RoundLen,
		MasterSeed: header.MasterSeed,
		Users:      make([]UserTrace, 0, header.UserCount),
	}
	for {
		var ut UserTrace
		if err := dec.Decode(&ut); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("%w: user record: %v", ErrBadTraceFile, err)
		}
		tr.Users = append(tr.Users, ut)
	}
	if len(tr.Users) != header.UserCount {
		return nil, fmt.Errorf("%w: header says %d users, file has %d",
			ErrBadTraceFile, header.UserCount, len(tr.Users))
	}
	return tr, nil
}

// WriteFile serializes the trace to a file path.
func WriteFile(path string, tr *Trace) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: close %s: %w", path, cerr)
		}
	}()
	return Write(f, tr)
}

// ReadFile parses a trace from a file path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer func() {
		_ = f.Close() // read-only descriptor; close error carries no data loss
	}()
	return Read(f)
}
