package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/notif"
)

func smallConfig() Config {
	return Config{Users: 60, Rounds: 72, Seed: 11}
}

func genTrace(t *testing.T, cfg Config) (*Generator, *Trace) {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	tr, err := g.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return g, tr
}

func TestGenerateBasicShape(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	if len(tr.Users) != 60 {
		t.Fatalf("%d users, want 60", len(tr.Users))
	}
	if tr.Rounds != 72 {
		t.Fatalf("rounds %d, want 72", tr.Rounds)
	}
	if tr.TotalNotifications() == 0 {
		t.Fatal("empty trace")
	}
	for _, ut := range tr.Users {
		lastRound := -1
		for _, n := range ut.Notifications {
			if n.Round < 0 || n.Round >= tr.Rounds {
				t.Fatalf("round %d outside [0, %d)", n.Round, tr.Rounds)
			}
			if n.Round < lastRound {
				t.Fatal("notifications not round-ordered")
			}
			lastRound = n.Round
			if n.Item.Recipient != ut.User {
				t.Fatalf("item recipient %d in trace of user %d", n.Item.Recipient, ut.User)
			}
			if n.Item.Kind != notif.KindAudio {
				t.Fatalf("unexpected kind %s", n.Item.Kind)
			}
			if n.LatentP <= 0 || n.LatentP >= 1 {
				t.Fatalf("latent probability %f outside (0,1)", n.LatentP)
			}
			if n.Clicked && n.ClickRound < n.Round {
				t.Fatalf("click round %d before arrival %d", n.ClickRound, n.Round)
			}
			if !n.Clicked && n.ClickRound != 0 {
				t.Fatal("hover record has a click round")
			}
		}
	}
}

func TestItemIDsUnique(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	seen := map[notif.ItemID]bool{}
	for _, ut := range tr.Users {
		for _, n := range ut.Notifications {
			if seen[n.Item.ID] {
				t.Fatalf("duplicate item id %d", n.Item.ID)
			}
			seen[n.Item.ID] = true
		}
	}
}

func TestClickRateInLearnableBand(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 150
	_, tr := genTrace(t, cfg)
	rate := tr.ClickRate()
	// The latent model targets roughly a third positives; a degenerate
	// rate would make the classifier task trivial or impossible.
	if rate < 0.15 || rate > 0.6 {
		t.Fatalf("click rate %.3f outside learnable band [0.15, 0.6]", rate)
	}
}

func TestLatentModelOrdersLabels(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	// Mean latent probability of clicked records must exceed hovered ones:
	// the labels are informative about the latent interest.
	var sumC, sumH float64
	var nC, nH int
	for _, ut := range tr.Users {
		for _, n := range ut.Notifications {
			if n.Clicked {
				sumC += n.LatentP
				nC++
			} else {
				sumH += n.LatentP
				nH++
			}
		}
	}
	if nC == 0 || nH == 0 {
		t.Fatal("degenerate labels")
	}
	if sumC/float64(nC) <= sumH/float64(nH) {
		t.Fatalf("clicked mean latent %.3f not above hovered %.3f",
			sumC/float64(nC), sumH/float64(nH))
	}
}

func TestActivitySpreadAcrossUsers(t *testing.T) {
	cfg := smallConfig()
	cfg.Users = 200
	_, tr := genTrace(t, cfg)
	min, max := math.MaxInt32, 0
	for _, ut := range tr.Users {
		n := len(ut.Notifications)
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	// Fig. 5(d) needs meaningful user-volume categories: the heaviest user
	// must receive several times the lightest.
	if max < 3*min+10 {
		t.Fatalf("activity spread too flat: min %d, max %d", min, max)
	}
}

func TestFeaturesShape(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	n := &tr.Users[0].Notifications[0]
	f := Features(n)
	if len(f) != len(FeatureNames()) {
		t.Fatalf("feature length %d != names %d", len(f), len(FeatureNames()))
	}
	for i, v := range f {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("feature %s = %f outside [0,1]", FeatureNames()[i], v)
		}
	}
}

func TestDatasetFlattening(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	x, y := Dataset(tr)
	if len(x) != tr.TotalNotifications() || len(y) != len(x) {
		t.Fatalf("dataset %d/%d rows, want %d", len(x), len(y), tr.TotalNotifications())
	}
	for _, label := range y {
		if label != 0 && label != 1 {
			t.Fatalf("label %d not binary", label)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, tr1 := genTrace(t, smallConfig())
	_, tr2 := genTrace(t, smallConfig())
	if tr1.TotalNotifications() != tr2.TotalNotifications() {
		t.Fatal("same-seed traces differ in size")
	}
	for ui := range tr1.Users {
		for ni := range tr1.Users[ui].Notifications {
			a := tr1.Users[ui].Notifications[ni]
			b := tr2.Users[ui].Notifications[ni]
			if a.Item.ID != b.Item.ID || a.Clicked != b.Clicked || a.LatentP != b.LatentP {
				t.Fatalf("record %d/%d differs across same-seed runs", ui, ni)
			}
		}
	}
	cfg := smallConfig()
	cfg.Seed = 12
	_, tr3 := genTrace(t, cfg)
	if tr3.TotalNotifications() == tr1.TotalNotifications() && tr3.ClickRate() == tr1.ClickRate() {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Users: 1, Rounds: 5}); err == nil {
		t.Fatal("single-user config accepted")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Rounds != tr.Rounds || !got.Epoch.Equal(tr.Epoch) || got.MasterSeed != tr.MasterSeed {
		t.Fatal("header mismatch after round trip")
	}
	if got.TotalNotifications() != tr.TotalNotifications() {
		t.Fatal("record count mismatch after round trip")
	}
	a := tr.Users[3].Notifications[0]
	b := got.Users[3].Notifications[0]
	if a.Item.ID != b.Item.ID || a.Clicked != b.Clicked || a.Item.Meta != b.Item.Meta {
		t.Fatalf("record mismatch: %+v vs %+v", a, b)
	}
}

func TestFileRoundTrip(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.TotalNotifications() != tr.TotalNotifications() {
		t.Fatal("file round trip lost records")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid header claiming more users than present.
	var buf bytes.Buffer
	_, tr := genTrace(t, smallConfig())
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	truncated := buf.String()
	truncated = truncated[:len(truncated)/2]
	if _, err := Read(bytes.NewBufferString(truncated)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestGenreAffinityAccessor(t *testing.T) {
	g, _ := genTrace(t, smallConfig())
	if got := g.GenreAffinity(0, 0); got < 0 || got > 1 {
		t.Fatalf("affinity %f outside [0,1]", got)
	}
	if g.GenreAffinity(-1, 0) != 0 || g.GenreAffinity(0, 999) != 0 {
		t.Fatal("out-of-range affinity lookups must return 0")
	}
}

func TestRoundLenDefaultsToHour(t *testing.T) {
	g, err := NewGenerator(Config{Users: 5, Rounds: 3})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	if g.Config().RoundLen != time.Hour {
		t.Fatalf("round length %s, want 1h", g.Config().RoundLen)
	}
}
