package trace

import (
	"errors"
	"fmt"
	"time"
)

// ErrBadSplitRound is returned when a split point is outside the trace.
var ErrBadSplitRound = errors.New("trace: split round outside trace")

// SplitByRound partitions a trace at the given round boundary: the first
// trace holds notifications with Round < splitRound, the second holds the
// rest with rounds re-based to start at zero (click rounds shifted
// accordingly and clamped to the arrival round).
//
// The paper trains its utility model on the same week it replays; this
// split enables the stricter out-of-sample protocol — train the classifier
// on the head, schedule the tail — used by the E2 extension experiment.
func SplitByRound(tr *Trace, splitRound int) (head, tail *Trace, err error) {
	if splitRound <= 0 || splitRound >= tr.Rounds {
		return nil, nil, fmt.Errorf("%w: %d of %d", ErrBadSplitRound, splitRound, tr.Rounds)
	}
	head = &Trace{
		Epoch:      tr.Epoch,
		Rounds:     splitRound,
		RoundLen:   tr.RoundLen,
		MasterSeed: tr.MasterSeed,
		Users:      make([]UserTrace, len(tr.Users)),
	}
	tail = &Trace{
		Epoch:      tr.Epoch.Add(time.Duration(splitRound) * tr.RoundLen),
		Rounds:     tr.Rounds - splitRound,
		RoundLen:   tr.RoundLen,
		MasterSeed: tr.MasterSeed,
		Users:      make([]UserTrace, len(tr.Users)),
	}
	for ui := range tr.Users {
		head.Users[ui].User = tr.Users[ui].User
		tail.Users[ui].User = tr.Users[ui].User
		for _, n := range tr.Users[ui].Notifications {
			if n.Round < splitRound {
				head.Users[ui].Notifications = append(head.Users[ui].Notifications, n)
				continue
			}
			moved := n
			moved.Round -= splitRound
			if moved.Clicked {
				moved.ClickRound -= splitRound
				if moved.ClickRound < moved.Round {
					moved.ClickRound = moved.Round
				}
			}
			tail.Users[ui].Notifications = append(tail.Users[ui].Notifications, moved)
		}
	}
	return head, tail, nil
}
