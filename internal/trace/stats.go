package trace

import (
	"sort"

	"github.com/richnote/richnote/internal/notif"
)

// Stats summarizes a trace for inspection tools and sanity tests.
type Stats struct {
	Users     int
	Rounds    int
	Records   int
	Clicked   int
	ClickRate float64
	PerTopic  map[notif.TopicKind]int
	// Volume distribution across users (records per user).
	VolumeMin, VolumeMax int
	VolumeMean           float64
	VolumeP50, VolumeP95 int
	// MeanLatentP is the mean ground-truth interest probability.
	MeanLatentP float64
	// MeanClickDelayRounds is the mean rounds between arrival and the
	// recorded click, over clicked records.
	MeanClickDelayRounds float64
	// ArrivalsPerRound is the mean records per user per round.
	ArrivalsPerRound float64
	// BurstP95 is the 95th percentile of per-user-per-round batch sizes
	// over non-empty rounds, capturing session burstiness.
	BurstP95 int
}

// ComputeStats scans the trace once.
func ComputeStats(tr *Trace) Stats {
	st := Stats{
		Users:    len(tr.Users),
		Rounds:   tr.Rounds,
		PerTopic: make(map[notif.TopicKind]int),
	}
	if len(tr.Users) == 0 {
		return st
	}
	volumes := make([]int, 0, len(tr.Users))
	var bursts []int
	var latentSum, clickDelaySum float64
	st.VolumeMin = int(^uint(0) >> 1)
	for _, ut := range tr.Users {
		n := len(ut.Notifications)
		volumes = append(volumes, n)
		if n < st.VolumeMin {
			st.VolumeMin = n
		}
		if n > st.VolumeMax {
			st.VolumeMax = n
		}
		st.Records += n
		burst := 0
		lastRound := -1
		for _, rec := range ut.Notifications {
			st.PerTopic[rec.Item.Topic]++
			latentSum += rec.LatentP
			if rec.Clicked {
				st.Clicked++
				clickDelaySum += float64(rec.ClickRound - rec.Round)
			}
			if rec.Round == lastRound {
				burst++
			} else {
				if burst > 0 {
					bursts = append(bursts, burst)
				}
				burst = 1
				lastRound = rec.Round
			}
		}
		if burst > 0 {
			bursts = append(bursts, burst)
		}
	}
	st.VolumeMean = float64(st.Records) / float64(st.Users)
	sort.Ints(volumes)
	st.VolumeP50 = volumes[len(volumes)/2]
	st.VolumeP95 = volumes[(len(volumes)*95)/100]
	if st.Records > 0 {
		st.ClickRate = float64(st.Clicked) / float64(st.Records)
		st.MeanLatentP = latentSum / float64(st.Records)
	}
	if st.Clicked > 0 {
		st.MeanClickDelayRounds = clickDelaySum / float64(st.Clicked)
	}
	if tr.Rounds > 0 {
		st.ArrivalsPerRound = st.VolumeMean / float64(tr.Rounds)
	}
	if len(bursts) > 0 {
		sort.Ints(bursts)
		st.BurstP95 = bursts[(len(bursts)*95)/100]
	}
	return st
}
