// Package trace generates and serializes the synthetic notification traces
// that replace the de-identified Spotify production logs of Section V-A.
//
// A trace covers a population of users over a fixed number of rounds
// (paper: one week of hourly rounds). Per user it contains the stream of
// notifications the Spotify backend would have sent — friend-feed events
// (a friend streamed a track), album releases by followed artists and
// playlist updates — each carrying the classifier features of Section V-A
// (social tie, track/album/artist popularity, timestamp features) and the
// click/hover ground truth derived from a latent interest model.
//
// The latent model makes the labels learnable but noisy: the probability a
// user clicks is a logistic function of tie strength, popularity, genre
// affinity and context, and the recorded label is a Bernoulli draw from
// it. This mirrors the real data's property that the paper's Random Forest
// reaches precision 0.700 / accuracy 0.689 rather than memorizing.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/richnote/richnote/internal/catalog"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/sim"
	"github.com/richnote/richnote/internal/socialgraph"
)

// Notification is one trace record: an item destined to a user, with the
// ground truth the evaluation metrics need.
type Notification struct {
	Item notif.Item `json:"item"`

	// Round is the round index at which the notification becomes available
	// for delivery.
	Round int `json:"round"`

	// Clicked is the ground-truth label: true when the user clicked the
	// notification, false when they hovered without clicking (Section V-A
	// keeps only notifications with some mouse activity).
	Clicked bool `json:"clicked"`

	// ClickRound is the round by which the user clicked (>= Round). Only
	// meaningful when Clicked; the precision metric counts a delivery as
	// useful when it happens no later than this round.
	ClickRound int `json:"click_round,omitempty"`

	// LatentP is the true interest probability that generated the label;
	// retained for oracle baselines and calibration tests, never exposed
	// to the classifier.
	LatentP float64 `json:"latent_p"`

	// GenreAffinity is the recipient's affinity for the item's genre in
	// [0, 1]; a classifier feature.
	GenreAffinity float64 `json:"genre_affinity"`

	// FollowsArtist records whether the recipient follows the item's
	// artist; a classifier feature.
	FollowsArtist bool `json:"follows_artist"`
}

// UserTrace is the notification stream of one user, sorted by round.
type UserTrace struct {
	User          notif.UserID   `json:"user"`
	Notifications []Notification `json:"notifications"`
}

// Trace is a complete generated workload.
type Trace struct {
	Epoch      time.Time     `json:"epoch"`
	Rounds     int           `json:"rounds"`
	RoundLen   time.Duration `json:"round_len"`
	Users      []UserTrace   `json:"users"`
	MasterSeed int64         `json:"master_seed"`
}

// TotalNotifications counts records across users.
func (t *Trace) TotalNotifications() int {
	total := 0
	for _, u := range t.Users {
		total += len(u.Notifications)
	}
	return total
}

// ClickRate returns the fraction of clicked notifications.
func (t *Trace) ClickRate() float64 {
	clicked, total := 0, 0
	for _, u := range t.Users {
		for _, n := range u.Notifications {
			total++
			if n.Clicked {
				clicked++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(clicked) / float64(total)
}

// Config controls trace generation.
type Config struct {
	// Users defaults to 200. The paper simulates the top 10k users; the
	// shape of every experiment is invariant in the population size
	// because scheduling is per-user.
	Users int
	// Rounds defaults to 168 (one week of hourly rounds).
	Rounds int
	// RoundLen defaults to one hour.
	RoundLen time.Duration
	// Epoch defaults to 2015-01-01 (the paper's trace window).
	Epoch time.Time
	// FriendListenRate is the expected number of friend-feed notifications
	// per user per round; defaults to 4 (the paper simulates the top 10k
	// users by notification volume, i.e. heavy receivers).
	FriendListenRate float64
	// SessionTracksMin/Max bound the burst size of a friend listening
	// session: when a friend streams, they stream several tracks in a row,
	// so friend-feed notifications arrive in bursts. Defaults 3..8.
	SessionTracksMin int
	SessionTracksMax int
	// AlbumReleaseRate is the expected album-release notifications per
	// user per day; defaults to 0.6.
	AlbumReleaseRate float64
	// PlaylistUpdateRate is the expected playlist-update notifications per
	// user per day; defaults to 0.4.
	PlaylistUpdateRate float64
	// Catalog configures the music catalog; zero value uses defaults.
	Catalog catalog.Config
	// GraphAttach is the BA attachment parameter m; defaults to 4.
	GraphAttach int
	// Seed is the master RNG seed.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Users <= 0 {
		c.Users = 200
	}
	if c.Rounds <= 0 {
		c.Rounds = 168
	}
	if c.RoundLen <= 0 {
		c.RoundLen = time.Hour
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.FriendListenRate == 0 {
		c.FriendListenRate = 4
	}
	if c.SessionTracksMin <= 0 {
		c.SessionTracksMin = 3
	}
	if c.SessionTracksMax < c.SessionTracksMin {
		c.SessionTracksMax = c.SessionTracksMin + 5
	}
	if c.AlbumReleaseRate == 0 {
		c.AlbumReleaseRate = 0.6
	}
	if c.PlaylistUpdateRate == 0 {
		c.PlaylistUpdateRate = 0.4
	}
	if c.GraphAttach <= 0 {
		c.GraphAttach = 4
	}
}

// Generator owns the substrates a trace is drawn from and is reusable for
// feature extraction at scheduling time.
type Generator struct {
	cfg     Config
	Catalog *catalog.Catalog
	Graph   *socialgraph.Graph

	// genreAffinity[user][genre] in [0, 1].
	genreAffinity [][]float64
	// activity[user] scales the user's inbound notification volume,
	// producing the user-category spread of Fig. 5(d).
	activity []float64

	labelRNG *rand.Rand
	nextItem notif.ItemID
}

// ErrTooFewUsers mirrors the social graph constraint.
var ErrTooFewUsers = errors.New("trace: need at least 2 users")

// NewGenerator builds the catalog, social graph and per-user preference
// state for the given configuration.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg.applyDefaults()
	if cfg.Users < 2 {
		return nil, fmt.Errorf("%w: %d", ErrTooFewUsers, cfg.Users)
	}
	cat, err := catalog.Generate(cfg.Catalog, sim.NewRNG(cfg.Seed, sim.StreamCatalog))
	if err != nil {
		return nil, fmt.Errorf("trace: catalog: %w", err)
	}
	graphRNG := sim.NewRNG(cfg.Seed, sim.StreamSocialGraph)
	graph, err := socialgraph.GenerateBA(cfg.Users, cfg.GraphAttach, graphRNG)
	if err != nil {
		return nil, fmt.Errorf("trace: social graph: %w", err)
	}
	if err := graph.AssignFollowedArtists(cat.PopularArtists(len(cat.Artists)), 3, 12, graphRNG); err != nil {
		return nil, fmt.Errorf("trace: follows: %w", err)
	}

	prefRNG := sim.NewRNG(cfg.Seed, sim.StreamWorkload)
	gen := &Generator{
		cfg:           cfg,
		Catalog:       cat,
		Graph:         graph,
		genreAffinity: make([][]float64, cfg.Users),
		activity:      make([]float64, cfg.Users),
		labelRNG:      sim.NewRNG(cfg.Seed, sim.StreamLabels),
		nextItem:      1,
	}
	for u := 0; u < cfg.Users; u++ {
		aff := make([]float64, catalog.NumGenres)
		// Each user likes a few genres strongly.
		for g := range aff {
			aff[g] = 0.1 + 0.2*prefRNG.Float64()
		}
		for k := 0; k < 3; k++ {
			aff[prefRNG.Intn(catalog.NumGenres)] = 0.7 + 0.3*prefRNG.Float64()
		}
		gen.genreAffinity[u] = aff
		// Log-normal-ish activity spread: most users light, a few heavy.
		gen.activity[u] = math.Exp(prefRNG.NormFloat64() * 0.8)
	}
	return gen, nil
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// GenreAffinity returns the recipient's affinity for a genre.
func (g *Generator) GenreAffinity(u notif.UserID, genre int) float64 {
	if int(u) < 0 || int(u) >= len(g.genreAffinity) || genre < 0 || genre >= catalog.NumGenres {
		return 0
	}
	return g.genreAffinity[u][genre]
}

// latentClickProbability is the ground-truth interest model. It blends the
// paper's feature families: social tie, follows-artist, popularity, genre
// affinity and context. Coefficients are chosen so the base click rate is
// ~1/3 and a well-trained classifier reaches accuracy ~0.7 (the Bernoulli
// label noise bounds attainable accuracy).
func (g *Generator) latentClickProbability(n *Notification, hourOfDay int, weekend bool) float64 {
	z := -3.6
	z += 3.2 * n.Item.TieStrength
	if n.FollowsArtist {
		z += 1.4
	}
	z += 1.8 * (n.Item.Meta.TrackPopularity / 100)
	z += 0.6 * (n.Item.Meta.ArtistPopularity / 100)
	z += 2.4 * n.GenreAffinity
	if weekend {
		z += 0.3
	}
	// Evening hours see higher engagement.
	if hourOfDay >= 18 && hourOfDay <= 23 {
		z += 0.4
	}
	return 1 / (1 + math.Exp(-z))
}

// poisson draws a Poisson variate via inversion (rates here are small).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Generate draws a full trace.
func (g *Generator) Generate() (*Trace, error) {
	cfg := g.cfg
	rng := sim.NewRNG(cfg.Seed, sim.StreamTrace)
	tr := &Trace{
		Epoch:      cfg.Epoch,
		Rounds:     cfg.Rounds,
		RoundLen:   cfg.RoundLen,
		MasterSeed: cfg.Seed,
		Users:      make([]UserTrace, cfg.Users),
	}
	roundsPerDay := int(24 * time.Hour / cfg.RoundLen)
	if roundsPerDay < 1 {
		roundsPerDay = 1
	}
	for u := 0; u < cfg.Users; u++ {
		user := notif.UserID(u)
		ut := UserTrace{User: user}
		act := g.activity[u]
		friends, err := g.Graph.Friends(socialgraph.UserID(u))
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		for round := 0; round < cfg.Rounds; round++ {
			when := cfg.Epoch.Add(time.Duration(round) * cfg.RoundLen)
			// Friend-feed events arrive in listening-session bursts: a
			// friend streaming music generates several track notifications
			// within the same round.
			meanSession := float64(cfg.SessionTracksMin+cfg.SessionTracksMax) / 2
			nSessions := poisson(rng, cfg.FriendListenRate*act/meanSession)
			for s := 0; s < nSessions && len(friends) > 0; s++ {
				edge := friends[rng.Intn(len(friends))]
				tracks := cfg.SessionTracksMin + rng.Intn(cfg.SessionTracksMax-cfg.SessionTracksMin+1)
				for i := 0; i < tracks; i++ {
					track, err := g.Catalog.RandomTrack(rng)
					if err != nil {
						return nil, fmt.Errorf("trace: %w", err)
					}
					n, err := g.newNotification(user, notif.UserID(edge.Peer), notif.TopicFriendFeed, track, when, round, rng)
					if err != nil {
						return nil, err
					}
					ut.Notifications = append(ut.Notifications, n)
				}
			}
			// Album releases and playlist updates arrive on day boundaries.
			if round%roundsPerDay == 0 {
				nAlbum := poisson(rng, cfg.AlbumReleaseRate*act)
				for i := 0; i < nAlbum; i++ {
					track, err := g.Catalog.RandomTrack(rng)
					if err != nil {
						return nil, fmt.Errorf("trace: %w", err)
					}
					n, err := g.newNotification(user, 0, notif.TopicArtistPage, track, when, round, rng)
					if err != nil {
						return nil, err
					}
					ut.Notifications = append(ut.Notifications, n)
				}
				nPlaylist := poisson(rng, cfg.PlaylistUpdateRate*act)
				for i := 0; i < nPlaylist && len(friends) > 0; i++ {
					edge := friends[rng.Intn(len(friends))]
					track, err := g.Catalog.RandomTrack(rng)
					if err != nil {
						return nil, fmt.Errorf("trace: %w", err)
					}
					n, err := g.newNotification(user, notif.UserID(edge.Peer), notif.TopicPlaylist, track, when, round, rng)
					if err != nil {
						return nil, err
					}
					ut.Notifications = append(ut.Notifications, n)
				}
			}
		}
		tr.Users[u] = ut
	}
	return tr, nil
}

// newNotification assembles one record with features and ground truth.
func (g *Generator) newNotification(recipient, sender notif.UserID, topic notif.TopicKind, track catalog.Track, when time.Time, round int, rng *rand.Rand) (Notification, error) {
	album, err := g.Catalog.Album(track.AlbumID)
	if err != nil {
		return Notification{}, fmt.Errorf("trace: %w", err)
	}
	artist, err := g.Catalog.Artist(track.ArtistID)
	if err != nil {
		return Notification{}, fmt.Errorf("trace: %w", err)
	}
	item := notif.Item{
		ID:        g.nextItem,
		Kind:      notif.KindAudio,
		Topic:     topic,
		Sender:    sender,
		Recipient: recipient,
		CreatedAt: when,
		Meta: notif.Metadata{
			TrackID:          track.ID,
			AlbumID:          album.ID,
			ArtistID:         artist.ID,
			TrackPopularity:  track.Popularity,
			AlbumPopularity:  album.Popularity,
			ArtistPopularity: artist.Popularity,
			Genre:            track.Genre,
			URL:              fmt.Sprintf("https://open.example.com/track/%d", track.ID),
		},
		TieStrength: g.Graph.TieStrength(socialgraph.UserID(recipient), socialgraph.UserID(sender)),
	}
	g.nextItem++

	n := Notification{
		Item:          item,
		Round:         round,
		GenreAffinity: g.GenreAffinity(recipient, track.Genre),
		FollowsArtist: g.Graph.FollowsArtist(socialgraph.UserID(recipient), artist.ID),
	}
	hour := when.Hour()
	weekend := when.Weekday() == time.Saturday || when.Weekday() == time.Sunday
	n.LatentP = g.latentClickProbability(&n, hour, weekend)
	n.Clicked = g.labelRNG.Float64() < n.LatentP
	if n.Clicked {
		// Users notice clicked notifications within a few rounds;
		// geometric delay with mean ~2 rounds.
		delay := 1
		for g.labelRNG.Float64() < 0.5 && delay < 12 {
			delay++
		}
		n.ClickRound = round + delay
	}
	return n, nil
}

// Features extracts the classifier feature vector of Section V-A from a
// trace record. The same extraction is used for training and for scoring
// at scheduling time. FeatureNames documents the layout.
func Features(n *Notification) []float64 {
	hour := float64(n.Item.CreatedAt.Hour())
	weekend := 0.0
	switch n.Item.CreatedAt.Weekday() {
	case time.Saturday, time.Sunday:
		weekend = 1
	}
	topic := 0.0
	switch n.Item.Topic {
	case notif.TopicArtistPage:
		topic = 0.5
	case notif.TopicPlaylist:
		topic = 1
	}
	follows := 0.0
	if n.FollowsArtist {
		follows = 1
	}
	return []float64{
		n.Item.TieStrength,
		follows,
		n.Item.Meta.TrackPopularity / 100,
		n.Item.Meta.AlbumPopularity / 100,
		n.Item.Meta.ArtistPopularity / 100,
		n.GenreAffinity,
		hour / 24,
		weekend,
		topic,
	}
}

// FeatureNames labels the columns of Features, for importance reports.
func FeatureNames() []string {
	return []string{
		"tie_strength",
		"follows_artist",
		"track_popularity",
		"album_popularity",
		"artist_popularity",
		"genre_affinity",
		"hour_of_day",
		"weekend",
		"topic_kind",
	}
}

// Dataset flattens a trace into the classifier's training matrix.
func Dataset(tr *Trace) (features [][]float64, labels []int) {
	for ui := range tr.Users {
		for ni := range tr.Users[ui].Notifications {
			n := &tr.Users[ui].Notifications[ni]
			features = append(features, Features(n))
			label := 0
			if n.Clicked {
				label = 1
			}
			labels = append(labels, label)
		}
	}
	return features, labels
}
