package trace

import (
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(&Trace{})
	if st.Users != 0 || st.Records != 0 || st.ClickRate != 0 {
		t.Fatalf("empty trace stats not zero: %+v", st)
	}
}

func TestComputeStatsHandBuilt(t *testing.T) {
	tr := &Trace{
		Rounds: 10,
		Users: []UserTrace{
			{User: 0, Notifications: []Notification{
				{Item: notif.Item{Topic: notif.TopicFriendFeed}, Round: 1, Clicked: true, ClickRound: 3, LatentP: 0.8},
				{Item: notif.Item{Topic: notif.TopicFriendFeed}, Round: 1, LatentP: 0.2},
				{Item: notif.Item{Topic: notif.TopicArtistPage}, Round: 5, LatentP: 0.4},
			}},
			{User: 1, Notifications: []Notification{
				{Item: notif.Item{Topic: notif.TopicPlaylist}, Round: 2, Clicked: true, ClickRound: 4, LatentP: 0.6},
			}},
		},
	}
	st := ComputeStats(tr)
	if st.Users != 2 || st.Records != 4 || st.Clicked != 2 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.ClickRate != 0.5 {
		t.Fatalf("click rate %f, want 0.5", st.ClickRate)
	}
	if st.PerTopic[notif.TopicFriendFeed] != 2 || st.PerTopic[notif.TopicArtistPage] != 1 || st.PerTopic[notif.TopicPlaylist] != 1 {
		t.Fatalf("per-topic wrong: %v", st.PerTopic)
	}
	if st.VolumeMin != 1 || st.VolumeMax != 3 || st.VolumeMean != 2 {
		t.Fatalf("volume stats wrong: %+v", st)
	}
	if st.MeanClickDelayRounds != 2 {
		t.Fatalf("mean click delay %f, want 2", st.MeanClickDelayRounds)
	}
	if st.MeanLatentP != 0.5 {
		t.Fatalf("mean latent %f, want 0.5", st.MeanLatentP)
	}
	// User 0 has a burst of 2 at round 1.
	if st.BurstP95 < 2 {
		t.Fatalf("burst p95 %d, want >= 2", st.BurstP95)
	}
}

func TestComputeStatsOnGeneratedTrace(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	st := ComputeStats(tr)
	if st.Records != tr.TotalNotifications() {
		t.Fatalf("records %d != %d", st.Records, tr.TotalNotifications())
	}
	if st.ClickRate != tr.ClickRate() {
		t.Fatalf("click rate mismatch: %f vs %f", st.ClickRate, tr.ClickRate())
	}
	if st.VolumeMin > st.VolumeP50 || st.VolumeP50 > st.VolumeP95 || st.VolumeP95 > st.VolumeMax {
		t.Fatalf("volume percentiles out of order: %+v", st)
	}
	total := 0
	for _, n := range st.PerTopic {
		total += n
	}
	if total != st.Records {
		t.Fatalf("per-topic sum %d != records %d", total, st.Records)
	}
	// Friend-feed sessions make bursts of at least the minimum session.
	if st.BurstP95 < 2 {
		t.Fatalf("burst p95 %d; generated traces should be bursty", st.BurstP95)
	}
	if st.MeanClickDelayRounds <= 0 {
		t.Fatal("clicked records must have positive mean click delay")
	}
	if st.ArrivalsPerRound <= 0 {
		t.Fatal("zero arrivals per round")
	}
}
