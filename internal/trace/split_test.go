package trace

import (
	"testing"
	"time"
)

func TestSplitByRoundValidation(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	if _, _, err := SplitByRound(tr, 0); err == nil {
		t.Error("split at 0 accepted")
	}
	if _, _, err := SplitByRound(tr, tr.Rounds); err == nil {
		t.Error("split at end accepted")
	}
	if _, _, err := SplitByRound(tr, -3); err == nil {
		t.Error("negative split accepted")
	}
}

func TestSplitByRoundPartitions(t *testing.T) {
	_, tr := genTrace(t, smallConfig())
	split := tr.Rounds / 2
	head, tail, err := SplitByRound(tr, split)
	if err != nil {
		t.Fatalf("SplitByRound: %v", err)
	}
	if head.Rounds != split || tail.Rounds != tr.Rounds-split {
		t.Fatalf("round counts %d/%d, want %d/%d", head.Rounds, tail.Rounds, split, tr.Rounds-split)
	}
	if head.TotalNotifications()+tail.TotalNotifications() != tr.TotalNotifications() {
		t.Fatalf("records lost: %d + %d != %d",
			head.TotalNotifications(), tail.TotalNotifications(), tr.TotalNotifications())
	}
	for _, ut := range head.Users {
		for _, n := range ut.Notifications {
			if n.Round >= split {
				t.Fatalf("head contains round %d >= split %d", n.Round, split)
			}
		}
	}
	for _, ut := range tail.Users {
		for _, n := range ut.Notifications {
			if n.Round < 0 || n.Round >= tail.Rounds {
				t.Fatalf("tail round %d outside [0, %d)", n.Round, tail.Rounds)
			}
			if n.Clicked && n.ClickRound < n.Round {
				t.Fatalf("tail click round %d before arrival %d", n.ClickRound, n.Round)
			}
		}
	}
	// Tail epoch advanced by the head duration.
	wantEpoch := tr.Epoch.Add(time.Duration(split) * tr.RoundLen)
	if !tail.Epoch.Equal(wantEpoch) {
		t.Fatalf("tail epoch %s, want %s", tail.Epoch, wantEpoch)
	}
	// User alignment preserved.
	for ui := range tr.Users {
		if head.Users[ui].User != tr.Users[ui].User || tail.Users[ui].User != tr.Users[ui].User {
			t.Fatal("user identity lost across split")
		}
	}
}
