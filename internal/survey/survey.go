// Package survey reproduces the two subjective user studies of Section V-B
// with a synthetic respondent population:
//
//  1. A presentation-rating survey over a grid of (sampling rate, duration)
//     audio presentations, rated 0..5. Pareto pruning of the resulting
//     (size, utility) points yields the "useful presentations" of
//     Figure 2(a) — the paper found 6 useful presentations out of 20 with
//     scores ranging 0.3..3.3.
//  2. A stop-duration study: respondents listen to tracks (average 276 s)
//     and stop when the sample is "barely enough for a good notification".
//     The CDF of stop durations is the utility curve util(d); fitting the
//     logarithmic and polynomial families of Equations 8 and 9 and keeping
//     the better R² reproduces Figure 2(b).
//
// The synthetic population is constructed so that its ground-truth taste
// follows the paper's published fit (Equation 8) plus individual noise;
// the package's job is to regenerate the paper's *pipeline*, demonstrating
// that the fitted constants are recovered from raw survey responses.
package survey

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/ml/regress"
)

// Equation8 is the paper's published logarithmic utility fit:
// util(d) = −0.397 + 0.352·ln(1 + d).
func Equation8(d float64) float64 { return -0.397 + 0.352*math.Log(1+d) }

// Equation9 is the paper's published polynomial utility fit:
// util(d) = 0.253·(1 − d/40)^2.087.
func Equation9(d float64) float64 {
	base := 1 - d/40
	if base <= 0 {
		return 0
	}
	return 0.253 * math.Pow(base, 2.087)
}

// RatingConfig configures the presentation-rating survey.
type RatingConfig struct {
	// SampleRatesKHz defaults to the paper's {8, 16, 32, 44}.
	SampleRatesKHz []int
	// DurationsSec defaults to the paper's {5, 10, 20, 30, 40}.
	DurationsSec []float64
	// Respondents defaults to 40.
	Respondents int
	// NoiseSD is the per-response rating noise; defaults to 0.35.
	NoiseSD float64
}

func (c *RatingConfig) applyDefaults() {
	if len(c.SampleRatesKHz) == 0 {
		c.SampleRatesKHz = []int{8, 16, 32, 44}
	}
	if len(c.DurationsSec) == 0 {
		c.DurationsSec = []float64{5, 10, 20, 30, 40}
	}
	if c.Respondents <= 0 {
		c.Respondents = 40
	}
	if c.NoiseSD == 0 {
		c.NoiseSD = 0.35
	}
}

// RatedPresentation is one surveyed grid cell with its mean rating.
type RatedPresentation struct {
	SampleRateKHz int
	DurationSec   float64
	SizeBytes     int64
	MeanScore     float64 // 0..5
}

// Name renders the grid cell label.
func (r RatedPresentation) Name() string {
	return fmt.Sprintf("%dkHz/%.0fs", r.SampleRateKHz, r.DurationSec)
}

// RatingResult is the outcome of the presentation-rating survey.
type RatingResult struct {
	Grid []RatedPresentation
}

// qualityFactor maps a sampling rate to perceived quality in (0, 1]. 44 kHz
// is transparent; 8 kHz is phone quality.
func qualityFactor(rateKHz int) float64 {
	return math.Min(1, 0.35+0.65*math.Log1p(float64(rateKHz)-7)/math.Log1p(37))
}

// presentationSize models a d-second sample at the given rate: 16-bit mono
// PCM (the paper's survey samples are uncompressed).
func presentationSize(rateKHz int, durationSec float64) int64 {
	return int64(durationSec * float64(rateKHz) * 1000 * 2)
}

// ErrNoRespondents is returned by surveys with an empty population.
var ErrNoRespondents = errors.New("survey: no respondents")

// RunRatingSurvey simulates the grid-rating study. Each respondent's latent
// satisfaction with a presentation is duration utility (Equation 8) times
// the rate's quality factor, scaled to the 0..5 scale, plus noise.
func RunRatingSurvey(cfg RatingConfig, rng *rand.Rand) (*RatingResult, error) {
	cfg.applyDefaults()
	if rng == nil {
		return nil, errors.New("survey: nil rng")
	}
	maxLatent := Equation8(cfg.DurationsSec[len(cfg.DurationsSec)-1])
	res := &RatingResult{}
	for _, rate := range cfg.SampleRatesKHz {
		for _, d := range cfg.DurationsSec {
			latent := 5 * (Equation8(d) / maxLatent) * qualityFactor(rate)
			var sum float64
			for r := 0; r < cfg.Respondents; r++ {
				score := latent + rng.NormFloat64()*cfg.NoiseSD
				sum += math.Max(0, math.Min(5, score))
			}
			res.Grid = append(res.Grid, RatedPresentation{
				SampleRateKHz: rate,
				DurationSec:   d,
				SizeBytes:     presentationSize(rate, d),
				MeanScore:     sum / float64(cfg.Respondents),
			})
		}
	}
	return res, nil
}

// Points converts the grid to the size/utility trade-off space.
func (r *RatingResult) Points() []media.Point {
	pts := make([]media.Point, 0, len(r.Grid))
	for _, g := range r.Grid {
		pts = append(pts, media.Point{Name: g.Name(), Size: g.SizeBytes, Utility: g.MeanScore})
	}
	return pts
}

// UsefulPresentations Pareto-prunes the surveyed grid, reproducing
// Figure 2(a)'s reduction from the full grid to the useful ladder.
func (r *RatingResult) UsefulPresentations() []media.Point {
	return media.ParetoPrune(r.Points())
}

// StopConfig configures the stop-duration study.
type StopConfig struct {
	// Respondents defaults to the paper's 80.
	Respondents int
	// TrackDurationSec defaults to the paper's average of 276 s.
	TrackDurationSec float64
	// NoiseSD jitters each respondent's stop point; defaults to 2 s.
	NoiseSD float64
}

func (c *StopConfig) applyDefaults() {
	if c.Respondents <= 0 {
		c.Respondents = 80
	}
	if c.TrackDurationSec <= 0 {
		c.TrackDurationSec = 276
	}
	if c.NoiseSD == 0 {
		c.NoiseSD = 2
	}
}

// StopResult holds the raw stop durations of the study.
type StopResult struct {
	// Durations are stop points in seconds, one per respondent, sorted
	// ascending.
	Durations []float64
}

// RunStopSurvey simulates the stop-duration study. Stop points are drawn by
// inverting the paper's utility CDF (Equation 8): the fraction of users
// preferring a notification no longer than d equals util(d), so sampling
// u ~ U(util(0⁺), util(40)) and applying the inverse CDF reproduces the
// population whose empirical CDF the paper fitted.
func RunStopSurvey(cfg StopConfig, rng *rand.Rand) (*StopResult, error) {
	cfg.applyDefaults()
	if rng == nil {
		return nil, errors.New("survey: nil rng")
	}
	lo, hi := Equation8(2), Equation8(40)
	out := make([]float64, 0, cfg.Respondents)
	for i := 0; i < cfg.Respondents; i++ {
		u := lo + rng.Float64()*(hi-lo)
		// Invert util(d) = A + B·ln(1+d):  d = exp((u−A)/B) − 1.
		d := math.Exp((u+0.397)/0.352) - 1
		d += rng.NormFloat64() * cfg.NoiseSD
		d = math.Max(1, math.Min(cfg.TrackDurationSec, d))
		out = append(out, d)
	}
	sort.Float64s(out)
	return &StopResult{Durations: out}, nil
}

// CDF evaluates the empirical CDF at the given durations: the fraction of
// respondents whose stop point is <= d. This is the paper's util(d).
func (s *StopResult) CDF(durations []float64) []float64 {
	out := make([]float64, len(durations))
	for i, d := range durations {
		idx := sort.SearchFloat64s(s.Durations, d+1e-12)
		out[i] = float64(idx) / float64(len(s.Durations))
	}
	return out
}

// FitResult compares the two model families on the survey data.
type FitResult struct {
	Log   regress.LogModel
	Power regress.PowerModel
	// LogBetter is true when the logarithmic family has the higher R²,
	// which is the paper's finding.
	LogBetter bool
}

// Fit evaluates the empirical CDF on the sample grid (the paper's survey
// durations by default) and fits both families.
func (s *StopResult) Fit(gridDurations []float64, horizon float64) (FitResult, error) {
	if len(s.Durations) == 0 {
		return FitResult{}, ErrNoRespondents
	}
	if len(gridDurations) == 0 {
		gridDurations = []float64{5, 10, 20, 30, 40}
	}
	utils := s.CDF(gridDurations)
	lm, err := regress.FitLog(gridDurations, utils)
	if err != nil {
		return FitResult{}, fmt.Errorf("survey: log fit: %w", err)
	}
	pm, err := regress.FitPower(gridDurations, utils, horizon)
	if err != nil {
		return FitResult{}, fmt.Errorf("survey: power fit: %w", err)
	}
	return FitResult{Log: lm, Power: pm, LogBetter: lm.R2 > pm.R2}, nil
}
