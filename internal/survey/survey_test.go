package survey

import (
	"math"
	"testing"

	"github.com/richnote/richnote/internal/sim"
)

func TestEquation8Values(t *testing.T) {
	// util(40) = −0.397 + 0.352·ln(41) ≈ 0.910.
	if got := Equation8(40); math.Abs(got-0.9102) > 0.001 {
		t.Fatalf("Equation8(40) = %f, want ~0.910", got)
	}
	// Monotone increasing.
	prev := Equation8(1)
	for d := 2.0; d <= 40; d++ {
		cur := Equation8(d)
		if cur <= prev {
			t.Fatalf("Equation8 not increasing at d=%f", d)
		}
		prev = cur
	}
}

func TestEquation9Values(t *testing.T) {
	if got := Equation9(0); math.Abs(got-0.253) > 1e-9 {
		t.Fatalf("Equation9(0) = %f, want 0.253", got)
	}
	if got := Equation9(40); got != 0 {
		t.Fatalf("Equation9(40) = %f, want 0", got)
	}
	if got := Equation9(45); got != 0 {
		t.Fatalf("Equation9(>40) = %f, want 0", got)
	}
	// Monotone decreasing on [0, 40].
	prev := Equation9(0)
	for d := 1.0; d <= 40; d++ {
		cur := Equation9(d)
		if cur > prev {
			t.Fatalf("Equation9 not decreasing at d=%f", d)
		}
		prev = cur
	}
}

func TestRunRatingSurveyGrid(t *testing.T) {
	rng := sim.NewRNG(1, sim.StreamSurvey)
	res, err := RunRatingSurvey(RatingConfig{}, rng)
	if err != nil {
		t.Fatalf("RunRatingSurvey: %v", err)
	}
	if len(res.Grid) != 20 {
		t.Fatalf("grid size %d, want 20 (4 rates x 5 durations)", len(res.Grid))
	}
	for _, g := range res.Grid {
		if g.MeanScore < 0 || g.MeanScore > 5 {
			t.Fatalf("mean score %f outside [0,5] for %s", g.MeanScore, g.Name())
		}
		if g.SizeBytes <= 0 {
			t.Fatalf("non-positive size for %s", g.Name())
		}
	}
}

func TestRatingSurveyScoreRangeMatchesPaper(t *testing.T) {
	rng := sim.NewRNG(2, sim.StreamSurvey)
	res, err := RunRatingSurvey(RatingConfig{}, rng)
	if err != nil {
		t.Fatalf("RunRatingSurvey: %v", err)
	}
	min, max := 5.0, 0.0
	for _, g := range res.Grid {
		if g.MeanScore < min {
			min = g.MeanScore
		}
		if g.MeanScore > max {
			max = g.MeanScore
		}
	}
	// Paper: scores varied from 0.3 to 3.3. Accept a generous band around
	// that shape: low scores near or below ~1.5, top scores between 2.5
	// and 5.
	if min > 1.6 {
		t.Fatalf("lowest mean score %f, want <= 1.6", min)
	}
	if max < 2.5 {
		t.Fatalf("highest mean score %f, want >= 2.5", max)
	}
}

func TestUsefulPresentationsPrunedLikePaper(t *testing.T) {
	rng := sim.NewRNG(3, sim.StreamSurvey)
	res, err := RunRatingSurvey(RatingConfig{}, rng)
	if err != nil {
		t.Fatalf("RunRatingSurvey: %v", err)
	}
	useful := res.UsefulPresentations()
	// Paper: 20 presentations reduce to 6 useful ones. The synthetic
	// population should land nearby; require a substantial reduction and a
	// valid ladder.
	if len(useful) < 3 || len(useful) > 10 {
		t.Fatalf("%d useful presentations, want roughly 6 (3..10)", len(useful))
	}
	for i := 1; i < len(useful); i++ {
		if useful[i].Size <= useful[i-1].Size || useful[i].Utility <= useful[i-1].Utility {
			t.Fatalf("useful ladder not monotone at %d: %+v", i, useful)
		}
	}
}

func TestRunStopSurveyPopulation(t *testing.T) {
	rng := sim.NewRNG(4, sim.StreamSurvey)
	res, err := RunStopSurvey(StopConfig{}, rng)
	if err != nil {
		t.Fatalf("RunStopSurvey: %v", err)
	}
	if len(res.Durations) != 80 {
		t.Fatalf("%d respondents, want 80", len(res.Durations))
	}
	for i, d := range res.Durations {
		if d < 1 || d > 276 {
			t.Fatalf("stop duration %f outside [1, 276]", d)
		}
		if i > 0 && d < res.Durations[i-1] {
			t.Fatal("durations not sorted")
		}
	}
}

func TestStopSurveyCDFMonotone(t *testing.T) {
	rng := sim.NewRNG(5, sim.StreamSurvey)
	res, err := RunStopSurvey(StopConfig{Respondents: 500}, rng)
	if err != nil {
		t.Fatalf("RunStopSurvey: %v", err)
	}
	grid := []float64{5, 10, 20, 30, 40}
	cdf := res.CDF(grid)
	for i := range cdf {
		if cdf[i] < 0 || cdf[i] > 1 {
			t.Fatalf("CDF value %f outside [0,1]", cdf[i])
		}
		if i > 0 && cdf[i] < cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

// The headline reproduction: fitting the synthetic survey recovers
// constants near the paper's Equation 8 and the log family fits better
// than the power family.
func TestFitRecoversPaperConstants(t *testing.T) {
	rng := sim.NewRNG(6, sim.StreamSurvey)
	res, err := RunStopSurvey(StopConfig{Respondents: 2000, NoiseSD: 1}, rng)
	if err != nil {
		t.Fatalf("RunStopSurvey: %v", err)
	}
	fit, err := res.Fit([]float64{5, 10, 15, 20, 25, 30, 35, 40}, 45)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(fit.Log.A+0.397) > 0.12 {
		t.Errorf("fitted A = %f, want ~-0.397", fit.Log.A)
	}
	if math.Abs(fit.Log.B-0.352) > 0.08 {
		t.Errorf("fitted B = %f, want ~0.352", fit.Log.B)
	}
	if !fit.LogBetter {
		t.Errorf("power fit (R²=%f) beat log fit (R²=%f); paper found log better",
			fit.Power.R2, fit.Log.R2)
	}
	if fit.Log.R2 < 0.95 {
		t.Errorf("log fit R² = %f, want >= 0.95 on clean synthetic data", fit.Log.R2)
	}
}

func TestFitEmptySurvey(t *testing.T) {
	s := &StopResult{}
	if _, err := s.Fit(nil, 45); err == nil {
		t.Fatal("empty survey accepted")
	}
}

func TestSurveyNilRNG(t *testing.T) {
	if _, err := RunRatingSurvey(RatingConfig{}, nil); err == nil {
		t.Error("rating survey accepted nil rng")
	}
	if _, err := RunStopSurvey(StopConfig{}, nil); err == nil {
		t.Error("stop survey accepted nil rng")
	}
}

func TestSurveyDeterminism(t *testing.T) {
	r1, err := RunStopSurvey(StopConfig{}, sim.NewRNG(7, sim.StreamSurvey))
	if err != nil {
		t.Fatalf("RunStopSurvey: %v", err)
	}
	r2, err := RunStopSurvey(StopConfig{}, sim.NewRNG(7, sim.StreamSurvey))
	if err != nil {
		t.Fatalf("RunStopSurvey: %v", err)
	}
	for i := range r1.Durations {
		if r1.Durations[i] != r2.Durations[i] {
			t.Fatal("same-seed surveys differ")
		}
	}
}
