// Package server implements richnote-serve: an online delivery-service
// runtime that runs the paper's Algorithm 2 control loop against wall-clock
// rounds and concurrent HTTP ingest instead of replayed traces.
//
// Users are partitioned across N independent scheduler shards by
// consistent hashing on notif.UserID. Each shard owns its users' pub/sub
// buffers, scheduling queues Q(t), virtual energy queues P(t) and
// device/network state, and runs the round loop — drain round-mode broker
// buffers, build the adjusted-utility MCKP instance, select greedily,
// charge device budgets, record outcomes — on a configurable wall-clock
// tick. Shard state is goroutine-confined: the HTTP layer talks to a shard
// only through its bounded ingest channel (backpressure: 429 once the
// buffer crosses a high-water mark) and reads only atomically published
// snapshots, so no scheduling structure is ever locked on the hot path.
//
// Wall-clock ticks pace the loop; budget and battery accounting advance in
// virtual time (one VirtualRound, an hour by default, per tick), so a
// server ticking every second compresses a paper round per second rather
// than starving every device of budget.
package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/media"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/survey"
	"github.com/richnote/richnote/internal/utility"
	"github.com/richnote/richnote/internal/wal"
)

// UserConfig describes one registered device; Config.Default is the
// template applied to users auto-registered on first publish.
type UserConfig struct {
	User notif.UserID
	// Strategy defaults to RichNote.
	Strategy core.StrategyKind
	// FixedLevel is the FIFO/UTIL presentation level; defaults to 3.
	FixedLevel int
	// WeeklyBudgetBytes defaults to 100 MB/week.
	WeeklyBudgetBytes int64
	// V and KappaJ tune the Lyapunov controller; zero selects the paper
	// defaults.
	V      float64
	KappaJ float64
	// NetworkMatrix defaults to the paper's WIFI/CELL/OFF model;
	// StartState defaults to CELL.
	NetworkMatrix *network.Matrix
	StartState    network.State
	// MaxDeliveriesPerRound caps per-round pushes; 0 means unlimited.
	MaxDeliveriesPerRound int
	// MaxAttempts bounds failed transfer attempts per item before the
	// device drops it; 0 retries forever. Only meaningful when the server
	// injects faults (Config.Faults).
	MaxAttempts int
	// DegradeOnFailure lowers a failed item's presentation-level cap one
	// level per retry, trading richness for delivery probability.
	DegradeOnFailure bool
}

func (c *UserConfig) applyDefaults() {
	if c.Strategy == 0 {
		c.Strategy = core.StrategyRichNote
	}
	if c.FixedLevel == 0 {
		c.FixedLevel = 3
	}
	if c.WeeklyBudgetBytes <= 0 {
		c.WeeklyBudgetBytes = 100 << 20
	}
	if c.V == 0 {
		c.V = core.DefaultV
	}
	if c.KappaJ == 0 {
		c.KappaJ = core.DefaultKappaJ
	}
	if c.NetworkMatrix == nil {
		m := network.PaperMatrix()
		c.NetworkMatrix = &m
	}
	if c.StartState == 0 {
		c.StartState = network.StateCell
	}
}

// Config configures the service.
type Config struct {
	// Shards is the number of independent scheduler shards; defaults to 4.
	Shards int
	// RoundEvery is the wall-clock tick driving each shard's round loop.
	// Zero disables self-ticking: rounds advance only through Tick (manual
	// mode, used by tests and drained on shutdown either way).
	RoundEvery time.Duration
	// VirtualRound is the round length in virtual time, used for data
	// budget accrual, battery diurnal cycles and delivery timestamps;
	// defaults to one hour (the paper's round). Decoupling it from
	// RoundEvery lets a wall-clock server tick fast without shrinking
	// per-round budgets to nothing.
	VirtualRound time.Duration
	// Epoch anchors virtual time; defaults to 2015-01-01 UTC.
	Epoch time.Time
	// IngestBuffer is the per-shard publication buffer; defaults to 1024.
	IngestBuffer int
	// HighWater is the ingest depth at which the shard starts rejecting
	// publishes with 429; defaults to 3/4 of IngestBuffer.
	HighWater int
	// RecentDeliveries bounds the per-user delivery feed; defaults to 32.
	RecentDeliveries int
	// Scorer provides content utility Uc for incoming items; defaults to a
	// neutral constant scorer. Must be safe for concurrent use (shards
	// share it).
	Scorer utility.ContentScorer
	// Generator builds presentation ladders; defaults to the paper's
	// six-level audio generator. Must be safe for concurrent use.
	Generator media.Generator
	// Seed drives per-user randomness (network walks, battery jitter).
	Seed int64
	// Faults injects per-transfer failures into every device, with
	// deterministic per-user outcome streams derived from Seed. The zero
	// value injects none and keeps the delivery path identical to a
	// fault-free build.
	Faults network.FaultConfig
	// Default is the template for users auto-registered on first publish.
	Default UserConfig
	// DisableAutoRegister drops publications for unknown users instead of
	// registering them with the Default template.
	DisableAutoRegister bool
	// Users are registered at construction time.
	Users []UserConfig

	// WALDir enables crash recovery (DESIGN.md §12): each shard keeps an
	// append-only log of accepted publishes and round outcomes plus
	// periodic compacted snapshots under this directory, and New restores
	// from them when present. Empty disables durability entirely — the
	// round loop then runs byte-identically to a build without WAL support.
	WALDir string
	// WALFsync selects when log records reach stable storage; defaults to
	// wal.SyncRound (fsync once per round).
	WALFsync wal.SyncPolicy
	// SnapshotEvery compacts the log into a snapshot every N rounds;
	// defaults to 64. Smaller values bound replay time, larger values
	// reduce snapshot I/O.
	SnapshotEvery int

	// ForceFullScan disables dirty-set scheduling: every round steps every
	// registered user in ascending order, the pre-event-driven reference
	// behavior. The two modes produce byte-identical canonical state (the
	// equivalence tests pin this); full scan exists as the comparison
	// baseline for those tests and for the capacity benchmark, not for
	// production use.
	ForceFullScan bool

	// OwnedShards restricts this process to a subset of the shard space
	// (cluster node mode, DESIGN.md §13). nil means own everything — the
	// standalone behavior, bit-identical to a build without cluster
	// support. A non-nil (possibly empty) list owns exactly those shards:
	// only they get WAL files, goroutines and users; publishes routed to
	// any other shard return ErrNotOwner so the caller (the router) can
	// forward them to the owning node. Shards outside the list can still
	// be adopted later via AdoptShardBytes/AdoptShardFromWAL.
	OwnedShards []int
}

func (c *Config) applyDefaults() error {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 1 {
		return fmt.Errorf("server: shards must be >= 1, got %d", c.Shards)
	}
	if c.RoundEvery < 0 {
		return fmt.Errorf("server: negative round interval %s", c.RoundEvery)
	}
	if c.VirtualRound <= 0 {
		c.VirtualRound = time.Hour
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 1024
	}
	if c.HighWater <= 0 {
		c.HighWater = c.IngestBuffer * 3 / 4
	}
	if c.HighWater > c.IngestBuffer {
		c.HighWater = c.IngestBuffer
	}
	if c.RecentDeliveries <= 0 {
		c.RecentDeliveries = 32
	}
	if c.Scorer == nil {
		c.Scorer = utility.ConstantScorer{Value: 0.5}
	}
	if c.Generator == nil {
		g, err := media.NewAudioGenerator(media.AudioConfig{Utility: survey.Equation8})
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		c.Generator = g
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.WALFsync == 0 {
		c.WALFsync = wal.SyncRound
	}
	if err := c.WALFsync.Validate(); err != nil {
		return err
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("server: negative snapshot interval %d", c.SnapshotEvery)
	}
	return nil
}

// Server lifecycle states.
const (
	stateNew = iota
	stateStarted
	stateStopping
)

// Server is the sharded delivery service.
type Server struct {
	cfg           Config
	ring          *ring
	shards        []*shard
	roundsPerWeek int

	state    atomic.Int32
	stopOnce sync.Once

	// adopted records the canonical state bytes each adopted shard restored
	// to, keyed by shard id — the byte string handoff tests compare against
	// the source's final snapshot.
	adoptedMu sync.Mutex
	adopted   map[int][]byte

	// Cluster identity surfaced on /healthz: the role label ("standalone"
	// unless the CLI sets router/node) and the version of the last cluster
	// map this process acknowledged.
	role       atomic.Value  // richnote:atomic
	mapVersion atomic.Uint64 // richnote:atomic
}

// Role returns the cluster role label; "standalone" unless SetRole was
// called.
func (s *Server) Role() string {
	if v := s.role.Load(); v != nil {
		return v.(string)
	}
	return "standalone"
}

// SetRole labels this process's cluster role for /healthz.
func (s *Server) SetRole(role string) { s.role.Store(role) }

// MapVersion returns the last acknowledged cluster map version (0 when
// standalone).
func (s *Server) MapVersion() uint64 { return s.mapVersion.Load() }

// SetMapVersion records a newly acknowledged cluster map version.
func (s *Server) SetMapVersion(v uint64) { s.mapVersion.Store(v) }

// New validates the configuration, builds the shards and registers any
// configured users. Call Start to begin serving rounds.
func New(cfg Config) (*Server, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	enricher, err := utility.NewEnricher(cfg.Scorer, cfg.Generator)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:           cfg,
		ring:          newRing(cfg.Shards, 0),
		roundsPerWeek: int(7 * 24 * time.Hour / cfg.VirtualRound),
		adopted:       make(map[int][]byte),
	}
	if s.roundsPerWeek < 1 {
		s.roundsPerWeek = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, s, enricher))
	}
	// Ownership: nil OwnedShards owns everything (standalone); a list owns
	// exactly those shards. Everything below — WAL restore, registration,
	// compaction, Start — iterates owned shards only.
	if cfg.OwnedShards == nil {
		for _, sh := range s.shards {
			sh.owned.Store(true)
		}
	} else {
		if cfg.WALDir == "" {
			return nil, errors.New("server: cluster node mode (OwnedShards set) requires WALDir — shard handoff ships WAL snapshots")
		}
		for _, id := range cfg.OwnedShards {
			if id < 0 || id >= cfg.Shards {
				return nil, fmt.Errorf("server: owned shard %d out of range [0,%d)", id, cfg.Shards)
			}
			s.shards[id].owned.Store(true)
		}
	}
	// Restore before registration: a shard with a snapshot rebuilds every
	// user it knew (including auto-registered ones) from its own stored
	// configs, replays its log, and re-opens it for appending. The shard
	// goroutines have not started, so direct mutation is safe here.
	restored := make(map[notif.UserID]bool)
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: wal dir: %w", err)
		}
		for _, sh := range s.shards {
			if !sh.owned.Load() {
				continue
			}
			if err := sh.openWAL(); err != nil {
				return nil, err
			}
			for _, u := range sh.users() {
				restored[u] = true
			}
		}
	}
	// Pre-registered users go onto their shard unless a restore already
	// rebuilt them — the snapshot's accumulated state is authoritative.
	// Each config entry may claim the restore exemption once, so duplicate
	// entries in cfg.Users still fail in addUser like they always did.
	// Users routed to unowned shards are skipped: the owning node
	// registers them from its own config.
	for _, uc := range cfg.Users {
		sh := s.shards[s.ring.shardFor(uc.User)]
		if !sh.owned.Load() {
			continue
		}
		if restored[uc.User] {
			delete(restored, uc.User)
			continue
		}
		if err := sh.addUser(uc); err != nil {
			return nil, err
		}
		sh.publishSnapshot(0)
	}
	// Compact once construction is complete: the fresh snapshot covers the
	// replayed history and the just-registered users, so recovery never
	// replays more than one interval and user registrations — which are
	// snapshotted, never logged — survive a crash before the first
	// scheduled compaction.
	if cfg.WALDir != "" {
		for _, sh := range s.shards {
			if !sh.owned.Load() {
				continue
			}
			if err := sh.writeSnapshot(); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.shards) }

// Start launches the goroutines of the owned shards. It is an error to
// start twice.
func (s *Server) Start() error {
	if !s.state.CompareAndSwap(stateNew, stateStarted) {
		return errors.New("server: already started")
	}
	for _, sh := range s.shards {
		if !sh.owned.Load() {
			continue
		}
		sh.started.Store(true)
		go sh.run(s.cfg.RoundEvery)
	}
	return nil
}

// Tick forces one synchronized round on every shard and waits for all of
// them to finish, returning the first round error. It works in both manual
// and wall-clock modes.
func (s *Server) Tick(ctx context.Context) error {
	if s.state.Load() != stateStarted {
		return errors.New("server: not running")
	}
	var replies []chan error
	for _, sh := range s.shards {
		if !sh.started.Load() {
			continue // unowned or frozen: nothing to tick
		}
		reply := make(chan error, 1)
		select {
		case sh.ticks <- tickReq{reply: reply}:
			replies = append(replies, reply)
		case <-sh.doneCh():
			// Frozen or crashed between the started check and the send;
			// its rounds now belong to another node.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	var firstErr error
	for _, reply := range replies {
		select {
		case err := <-reply:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return firstErr
}

// Shutdown gracefully stops the shards: each drains its buffered ingest,
// runs a final round so accepted publications get their delivery
// opportunity, and exits. It returns once every shard has finished or the
// context expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.state.Load() == stateNew {
		return nil
	}
	s.state.Store(stateStopping)
	s.stopOnce.Do(func() {
		for _, sh := range s.shards {
			close(sh.stop)
		}
	})
	for _, sh := range s.shards {
		if !sh.started.Load() {
			continue // never ran (unowned): no goroutine to wait for
		}
		select {
		case <-sh.doneCh():
		case <-ctx.Done():
			return fmt.Errorf("server: shutdown: shard %d still draining: %w", sh.id, ctx.Err())
		}
	}
	return nil
}

// CrashStop kills the shard goroutines without draining: no final round,
// no snapshot flush, buffered (un-synced) log records discarded — the
// in-process emulation of kill -9. Crash-recovery tests use it to exercise
// the restore path; production shutdown is Shutdown.
func (s *Server) CrashStop() {
	if s.state.Load() == stateNew {
		return
	}
	s.state.Store(stateStopping)
	s.stopOnce.Do(func() {
		for _, sh := range s.shards {
			close(sh.crash)
		}
	})
	for _, sh := range s.shards {
		if !sh.started.Load() {
			continue
		}
		<-sh.doneCh()
	}
}

// Publish routes one publication to its recipient's shard. It returns
// ErrBackpressure when the shard's ingest buffer is over the high-water
// mark (the HTTP layer maps this to 429 + Retry-After).
func (s *Server) Publish(topic pubsub.TopicID, recipient notif.UserID, item notif.Item) error {
	if recipient == 0 {
		return errors.New("server: publication has no recipient")
	}
	sh := s.shards[s.ring.shardFor(recipient)]
	if !sh.owned.Load() {
		return ErrNotOwner
	}
	if len(sh.ingest) >= s.cfg.HighWater {
		sh.backpressured.Add(1)
		return ErrBackpressure
	}
	select {
	case sh.ingest <- envelope{topic: topic, user: recipient, item: item}:
		return nil
	default:
		sh.backpressured.Add(1)
		return ErrBackpressure
	}
}

// ErrBackpressure signals that a shard's ingest buffer is saturated.
var ErrBackpressure = errors.New("server: shard ingest over high-water mark")

// ErrNotOwner signals that the recipient's shard is not owned by this
// process; the router maps it to a forward to the owning node.
var ErrNotOwner = errors.New("server: shard not owned by this node")

// Deliveries returns a user's recent deliveries, newest last.
func (s *Server) Deliveries(user notif.UserID) []notif.Delivery {
	return s.shards[s.ring.shardFor(user)].Deliveries(user)
}

// SnapshotEvery reports the effective snapshot cadence (rounds between
// compacted WAL snapshots) after defaulting.
func (s *Server) SnapshotEvery() int { return s.cfg.SnapshotEvery }

// Snapshots returns the latest per-shard views of the owned shards, in
// shard order (all shards in standalone mode). Each entry is a deep copy:
// the published snapshot's reference fields (DelayBuckets,
// Report.LevelCounts) are cloned so one reader mutating its result cannot
// corrupt what other readers — or the next publish — observe.
func (s *Server) Snapshots() []ShardSnapshot {
	out := make([]ShardSnapshot, 0, len(s.shards))
	for _, sh := range s.shards {
		if !sh.owned.Load() {
			continue
		}
		out = append(out, sh.snapshot().clone())
	}
	return out
}

// ShardFor maps a user to its shard index — the same consistent-hash ring
// every node and router computes, so routing decisions agree everywhere.
func (s *Server) ShardFor(user notif.UserID) int { return s.ring.shardFor(user) }

// Owns reports whether this process currently owns a shard.
func (s *Server) Owns(shard int) bool {
	return shard >= 0 && shard < len(s.shards) && s.shards[shard].owned.Load()
}

// OwnedShardIDs returns the ascending list of shards this process owns.
func (s *Server) OwnedShardIDs() []int {
	owned := []int{}
	for _, sh := range s.shards {
		if sh.owned.Load() {
			owned = append(owned, sh.id)
		}
	}
	return owned
}

// clone deep-copies the snapshot's reference fields. Lyapunov and the
// remaining Report fields are value types and copy with the struct.
func (sn *ShardSnapshot) clone() ShardSnapshot {
	out := *sn
	out.DelayBuckets = append([]metrics.Bucket(nil), sn.DelayBuckets...)
	if sn.Report.LevelCounts != nil {
		lc := make(map[int]int, len(sn.Report.LevelCounts))
		for k, v := range sn.Report.LevelCounts {
			lc[k] = v
		}
		out.Report.LevelCounts = lc
	}
	return out
}

// Backpressured sums publishes turned away by ingest overload (HTTP 429)
// across shards.
func (s *Server) Backpressured() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.backpressured.Load()
	}
	return total
}

// Dropped sums publications discarded inside the shards — unknown users
// with auto-registration disabled, or registration/subscription failures —
// across shards. Distinct from Backpressured: these were accepted over HTTP
// but could not be routed to a device.
func (s *Server) Dropped() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.droppedIngest.Load()
	}
	return total
}

// Rejected sums every publication turned away for any reason: backpressure
// plus in-shard drops. Kept as the historical aggregate counter.
func (s *Server) Rejected() uint64 {
	return s.Backpressured() + s.Dropped()
}

// RetryAfter suggests how long a backpressured client should wait: one
// wall-clock round when self-ticking, else one second.
func (s *Server) RetryAfter() time.Duration {
	if s.cfg.RoundEvery > 0 {
		return s.cfg.RoundEvery
	}
	return time.Second
}

// newSeededRand mirrors the simulator's deterministic seeding for
// components (battery jitter) that take a bare *rand.Rand.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
