package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		value string
		want  time.Duration
		ok    bool
	}{
		{"empty", "", 0, false},
		{"delta seconds", "7", 7 * time.Second, true},
		{"zero delta", "0", 0, true},
		{"negative delta", "-3", 0, false},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http date past clamps to zero", now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
		{"malformed", "soon", 0, false},
		{"fractional seconds rejected", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.value, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)",
					tc.value, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestTransportBackoffCapped(t *testing.T) {
	if d := transportBackoff(0); d != 100*time.Millisecond {
		t.Errorf("attempt 0: %v, want 100ms", d)
	}
	if d := transportBackoff(1); d != 200*time.Millisecond {
		t.Errorf("attempt 1: %v, want 200ms", d)
	}
	prev := time.Duration(0)
	for attempt := 0; attempt < 100; attempt++ {
		d := transportBackoff(attempt)
		if d <= 0 || d > 2*time.Second {
			t.Fatalf("attempt %d: backoff %v outside (0, 2s]", attempt, d)
		}
		if d < prev {
			t.Fatalf("attempt %d: backoff %v shrank below %v", attempt, d, prev)
		}
		prev = d
	}
}

// flakyTransport fails every other request at the transport layer before it
// reaches the server, simulating connection resets.
type flakyTransport struct {
	inner http.RoundTripper
	calls atomic.Int64
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.calls.Add(1)%2 == 1 {
		return nil, errors.New("simulated connection reset")
	}
	return f.inner.RoundTrip(req)
}

// TestRunLoadRetriesTransportErrors drives the closed loop through a
// transport that drops every other request: every event must still be
// delivered (Failed == 0), and Sent must count only the exchanges that
// actually reached the server, not the errored attempts.
func TestRunLoadRetriesTransportErrors(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusAccepted)
	}))
	defer ts.Close()

	ft := &flakyTransport{inner: ts.Client().Transport}
	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Events:      20,
		Concurrency: 4,
		Users:       5,
		Seed:        1,
		Client:      &http.Client{Transport: ft, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d, want 0: transport errors must be retried", res.Failed)
	}
	if res.Accepted != 20 {
		t.Errorf("Accepted = %d, want 20", res.Accepted)
	}
	if got := served.Load(); int64(res.Sent) != got {
		t.Errorf("Sent = %d but server handled %d requests: errored attempts must not count", res.Sent, got)
	}
	if calls := ft.calls.Load(); calls <= int64(res.Sent) {
		t.Errorf("transport saw %d calls for %d sent: expected retried failures on top", calls, res.Sent)
	}
}

// TestRunLoadGivesUpAfterMaxRetries pins the abandonment path: a transport
// that always fails must exhaust MaxRetries and report the event failed,
// with nothing counted as sent.
func TestRunLoadGivesUpAfterMaxRetries(t *testing.T) {
	dead := &http.Client{
		Transport: roundTripFunc(func(*http.Request) (*http.Response, error) {
			return nil, errors.New("simulated network partition")
		}),
		Timeout: time.Second,
	}
	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     "http://127.0.0.1:0",
		Events:      2,
		Concurrency: 2,
		Users:       2,
		Seed:        1,
		MaxRetries:  2,
		Client:      dead,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Failed != 2 {
		t.Errorf("Failed = %d, want 2", res.Failed)
	}
	if res.Sent != 0 || res.Accepted != 0 {
		t.Errorf("Sent = %d, Accepted = %d, want 0/0: no request ever completed", res.Sent, res.Accepted)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
