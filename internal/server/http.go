package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
)

// The HTTP/JSON API of richnote-serve:
//
//	POST /v1/publish                  ingest a publication (429 on backpressure)
//	GET  /v1/users/{id}/deliveries    recent deliveries for one user
//	POST /v1/tick                     force one synchronized round
//	GET  /healthz                     liveness + per-shard round progress
//	GET  /metrics                     Prometheus text exposition

// PublishRequest is the POST /v1/publish body. The topic kind accepts the
// canonical names ("friend-feed", "artist-page", "playlist"). Recipients
// defaults to the item's recipient field; each recipient is routed to its
// own shard and accepted or rejected independently.
type PublishRequest struct {
	Topic struct {
		Kind   string `json:"kind"`
		Entity int64  `json:"entity"`
	} `json:"topic"`
	Recipients []notif.UserID `json:"recipients,omitempty"`
	Item       notif.Item     `json:"item"`
}

// PublishResponse reports per-recipient routing outcomes.
type PublishResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// DeliveriesResponse is the GET /v1/users/{id}/deliveries body.
type DeliveriesResponse struct {
	User       notif.UserID     `json:"user"`
	Deliveries []notif.Delivery `json:"deliveries"`
}

// HealthResponse is the GET /healthz body. Role, MapVersion and
// OwnedShards report the cluster view: standalone processes own every
// shard at map version 0, cluster nodes own the subset the coordinator
// assigned them, and the router aggregates these per node (see
// RouterHealthResponse).
type HealthResponse struct {
	Status      string   `json:"status"`
	Role        string   `json:"role"`
	MapVersion  uint64   `json:"map_version"`
	Shards      int      `json:"shards"`
	OwnedShards []int    `json:"owned_shards"`
	Rounds      []int    `json:"rounds"`
	Errors      []string `json:"errors,omitempty"`
}

func parseTopicKind(s string) (notif.TopicKind, error) {
	switch s {
	case "friend-feed":
		return notif.TopicFriendFeed, nil
	case "artist-page":
		return notif.TopicArtistPage, nil
	case "playlist":
		return notif.TopicPlaylist, nil
	default:
		return 0, fmt.Errorf("unknown topic kind %q", s)
	}
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/publish", s.handlePublish)
	mux.HandleFunc("GET /v1/users/{id}/deliveries", s.handleDeliveries)
	mux.HandleFunc("POST /v1/tick", s.handleTick)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed publish request: "+err.Error())
		return
	}
	kind, err := parseTopicKind(req.Topic.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	recipients := req.Recipients
	if len(recipients) == 0 {
		if req.Item.Recipient == 0 {
			httpError(w, http.StatusBadRequest, "publish needs recipients or item.recipient")
			return
		}
		recipients = []notif.UserID{req.Item.Recipient}
	}
	if req.Item.Topic == 0 {
		req.Item.Topic = kind
	}
	if req.Item.CreatedAt.IsZero() {
		req.Item.CreatedAt = time.Now().UTC() //lint:allow wallclock ingest timestamps are real arrival times
	}
	topic := pubsub.TopicID{Kind: kind, Entity: req.Topic.Entity}
	var resp PublishResponse
	for _, rcpt := range recipients {
		if err := s.Publish(topic, rcpt, req.Item); err != nil {
			resp.Rejected++
		} else {
			resp.Accepted++
		}
	}
	if resp.Rejected > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.RetryAfter())))
		writeJSON(w, http.StatusTooManyRequests, resp)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// retryAfterSeconds renders a duration as the integral seconds HTTP
// Retry-After requires, rounding sub-second waits up to 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleDeliveries(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		httpError(w, http.StatusBadRequest, "bad user id")
		return
	}
	user := notif.UserID(id)
	ds := s.Deliveries(user)
	if ds == nil {
		ds = []notif.Delivery{}
	}
	writeJSON(w, http.StatusOK, DeliveriesResponse{User: user, Deliveries: ds})
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	if err := s.Tick(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	// Indexed by shard id (zero for unowned shards in cluster node mode),
	// so the standalone response shape is unchanged.
	rounds := make([]int, len(s.shards))
	for _, snap := range s.Snapshots() {
		rounds[snap.Shard] = snap.Round
	}
	writeJSON(w, http.StatusOK, map[string]any{"rounds": rounds})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Shards:      len(s.shards),
		Role:        s.Role(),
		MapVersion:  s.MapVersion(),
		OwnedShards: s.OwnedShardIDs(),
	}
	for _, snap := range s.Snapshots() {
		resp.Rounds = append(resp.Rounds, snap.Round)
		if snap.Err != "" {
			resp.Errors = append(resp.Errors, fmt.Sprintf("shard %d: %s", snap.Shard, snap.Err))
		}
	}
	status := http.StatusOK
	if s.state.Load() == stateStarted {
		resp.Status = "ok"
	} else {
		resp.Status = "stopped"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snaps := s.Snapshots()
	var total metrics.Report
	var buckets []metrics.Bucket
	for _, snap := range snaps {
		total.Merge(snap.Report)
		merged, err := metrics.MergeBuckets(buckets, snap.DelayBuckets)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		buckets = merged
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := metrics.WriteExposition(w, total, buckets); err != nil {
		return // client went away mid-write; nothing to salvage
	}
	writeShardGauges(w, snaps, s)
}

// writeShardGauges appends the per-shard serving gauges to the exposition:
// queue depth, round count and latency, Lyapunov queue totals, ingest
// depth and backpressure rejections.
func writeShardGauges(w http.ResponseWriter, snaps []ShardSnapshot, s *Server) {
	printf := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	gaugeHeader := func(name, help string) {
		printf("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gaugeHeader("richnote_shard_queue_depth", "Scheduling-queue entries (device queues + staged inboxes) per shard.")
	for _, sn := range snaps {
		printf("richnote_shard_queue_depth{shard=\"%d\"} %d\n", sn.Shard, sn.QueueDepth)
	}
	gaugeHeader("richnote_shard_broker_pending", "Publications buffered in round-mode subscriptions per shard.")
	for _, sn := range snaps {
		printf("richnote_shard_broker_pending{shard=\"%d\"} %d\n", sn.Shard, sn.BrokerPending)
	}
	gaugeHeader("richnote_shard_users", "Registered users per shard.")
	for _, sn := range snaps {
		printf("richnote_shard_users{shard=\"%d\"} %d\n", sn.Shard, sn.Users)
	}
	gaugeHeader("richnote_shard_round_latency_seconds", "Wall-clock latency of the shard's most recent round.")
	for _, sn := range snaps {
		printf("richnote_shard_round_latency_seconds{shard=\"%d\"} %g\n", sn.Shard, sn.LastRound.Seconds())
	}
	gaugeHeader("richnote_shard_round_latency_avg_seconds", "Mean wall-clock round latency per shard.")
	for _, sn := range snaps {
		printf("richnote_shard_round_latency_avg_seconds{shard=\"%d\"} %g\n", sn.Shard, sn.AvgRound.Seconds())
	}
	gaugeHeader("richnote_shard_lyapunov_q_mb", "Sum of Lyapunov scheduling-queue backlogs Q(t) across the shard's users, in MB.")
	for _, sn := range snaps {
		printf("richnote_shard_lyapunov_q_mb{shard=\"%d\"} %g\n", sn.Shard, sn.Lyapunov.FinalQ)
	}
	gaugeHeader("richnote_shard_lyapunov_p_joules", "Sum of virtual energy queues P(t) across the shard's users, in joules.")
	for _, sn := range snaps {
		printf("richnote_shard_lyapunov_p_joules{shard=\"%d\"} %g\n", sn.Shard, sn.Lyapunov.FinalP)
	}
	gaugeHeader("richnote_shard_ingest_depth", "Publications waiting in the shard's ingest buffer.")
	for _, sn := range snaps {
		// Index by the snapshot's shard id, not slice position: in cluster
		// node mode Snapshots returns only the owned subset.
		printf("richnote_shard_ingest_depth{shard=\"%d\"} %d\n", sn.Shard, len(s.shards[sn.Shard].ingest))
	}

	printf("# HELP richnote_shard_rounds_total Completed scheduling rounds per shard.\n# TYPE richnote_shard_rounds_total counter\n")
	for _, sn := range snaps {
		printf("richnote_shard_rounds_total{shard=\"%d\"} %d\n", sn.Shard, sn.Round)
	}
	printf("# HELP richnote_shard_ingest_rejected_total Publications rejected for any reason (backpressure + in-shard drops) per shard.\n# TYPE richnote_shard_ingest_rejected_total counter\n")
	for _, sn := range snaps {
		printf("richnote_shard_ingest_rejected_total{shard=\"%d\"} %d\n", sn.Shard, sn.Backpressured+sn.Dropped)
	}
	printf("# HELP richnote_shard_ingest_backpressured_total Publications rejected with 429 because the ingest buffer crossed its high-water mark.\n# TYPE richnote_shard_ingest_backpressured_total counter\n")
	for _, sn := range snaps {
		printf("richnote_shard_ingest_backpressured_total{shard=\"%d\"} %d\n", sn.Shard, sn.Backpressured)
	}
	printf("# HELP richnote_shard_ingest_dropped_total Publications discarded in-shard: unknown user with auto-registration disabled, or registration/subscription failure.\n# TYPE richnote_shard_ingest_dropped_total counter\n")
	for _, sn := range snaps {
		printf("richnote_shard_ingest_dropped_total{shard=\"%d\"} %d\n", sn.Shard, sn.Dropped)
	}
}
