package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/obs"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/sched"
	"github.com/richnote/richnote/internal/trace"
	"github.com/richnote/richnote/internal/utility"
	"github.com/richnote/richnote/internal/wal"
)

// envelope is one routed publication: a topic plus the item, addressed to
// a single recipient on this shard.
type envelope struct {
	topic pubsub.TopicID
	user  notif.UserID
	item  notif.Item
}

// tickReq is a synchronous round request: the shard runs one round and
// replies with its error.
type tickReq struct {
	reply chan error
}

// stagedNotif is one broker-flushed publication awaiting batch scoring
// and enrichment at the round boundary.
type stagedNotif struct {
	user notif.UserID
	n    trace.Notification
}

// feedEntry is one confirmed delivery awaiting the round's single
// feed-lock flush.
type feedEntry struct {
	user notif.UserID
	d    notif.Delivery
}

// userAgg caches one user's last contribution to the shard's running
// aggregates, so refreshAgg can fold in deltas.
type userAgg struct {
	queued int
	lyap   lyapunov.Stats
}

// freezeReq asks the shard to stop serving and hand its state over
// (cluster handoff, handoff.go): drain ingest, compact into a final
// snapshot, close the log and exit. The reply carries the snapshot file
// bytes (what ships to the adopting node) and the canonical state bytes
// at freeze (what handoff tests compare against the adopter).
type freezeReq struct {
	reply chan freezeResp
}

type freezeResp struct {
	snapBytes []byte
	state     []byte
	err       error
}

// shard owns a disjoint subset of users: their pub/sub buffers, scheduling
// queues Q(t), virtual energy queues P(t), device/network/battery state and
// the per-round control loop. All of that state is confined to the shard
// goroutine started by run; the HTTP layer communicates through the ingest
// channel and reads only the atomically published ShardSnapshot and the
// mutex-guarded recent-delivery feeds.
type shard struct {
	id  int
	srv *Server

	broker   *pubsub.Broker     // richnote:confined(shard)
	enricher *utility.Enricher  // richnote:confined(shard)
	col      *metrics.Collector // richnote:confined(shard)
	rec      *obs.Recorder      // richnote:confined(shard)

	// Goroutine-confined scheduling state: richnote-lint's confined
	// analyzer enforces that only shard methods touch these.
	devices map[notif.UserID]*sched.Device           // richnote:confined(shard)
	inbox   map[notif.UserID][]sched.Queued          // richnote:confined(shard)
	subs    map[notif.UserID]map[pubsub.TopicID]bool // richnote:confined(shard)
	round   int                                      // richnote:confined(shard)
	lastErr error                                    // richnote:confined(shard)
	// userOrder keeps the registered users sorted ascending; maintained
	// incrementally by addUser so full scans iterate deterministically
	// without rebuilding and re-sorting the key set every round.
	userOrder []notif.UserID // richnote:confined(shard)

	// Event-driven round state (DESIGN.md §14). dirty lists the users the
	// next round must step — everyone else is parked, to be caught up
	// bit-identically on wake via Device.CatchUp. The invariant: a user is
	// dirty iff its device is not quiescent or its inbox is non-empty,
	// except that a quiescent device may linger in the set until the next
	// round parks it (stepping a quiescent device is itself equivalent to
	// parking it, so the slack never changes exported state). dirty stays
	// ascending: survivors keep their order and flushStaged appends set
	// dirtyUnsorted, resorted once at the round boundary.
	dirty         []notif.UserID        // richnote:confined(shard)
	isDirty       map[notif.UserID]bool // richnote:confined(shard)
	dirtyUnsorted bool                  // richnote:confined(shard)

	// staged collects the round's broker-flushed publications in handler
	// order so content scoring runs as one cross-user batch (tree-major
	// forest walk) instead of per item; stagedNs/stagedScores are the
	// reusable batch buffers.
	staged       []stagedNotif         // richnote:confined(shard)
	stagedNs     []*trace.Notification // richnote:confined(shard)
	stagedScores []float64             // richnote:confined(shard)

	// pendingFeed batches the round's confirmed deliveries so feedMu is
	// taken once per round (flushFeeds) instead of once per delivery.
	pendingFeed []feedEntry // richnote:confined(shard)

	// Running per-shard aggregates, maintained by delta each time a device
	// is stepped so publishSnapshot is O(dirty) instead of O(users):
	// aggQueue sums queue depth + inbox backlog, aggLyap folds controller
	// telemetry, and aggByUser caches each user's last contribution.
	// Parked devices contribute their park-time stats (the Rounds
	// denominator lags until they wake) — snapshot telemetry, not
	// canonical state.
	aggByUser map[notif.UserID]*userAgg // richnote:confined(shard)
	aggQueue  int                       // richnote:confined(shard)
	aggLyap   lyapunov.Stats            // richnote:confined(shard)

	// Durability state (walstate.go), active when Config.WALDir is set:
	// the per-shard append-only log, reusable encode scratch for log
	// records and snapshots, the per-user configs needed to rebuild
	// devices at restore time, and the replay flag that keeps recovery
	// from re-logging the records it is replaying.
	log       *wal.Writer                 // richnote:confined(shard)
	walEnc    wal.Encoder                 // richnote:confined(shard)
	snapEnc   wal.Encoder                 // richnote:confined(shard)
	userCfgs  map[notif.UserID]UserConfig // richnote:confined(shard)
	replaying bool                        // richnote:confined(shard)

	ingest chan envelope
	ticks  chan tickReq
	freeze chan freezeReq
	stateq chan chan []byte
	stop   chan struct{}
	crash  chan struct{}

	// done is closed by the shard goroutine on exit. Its identity is the
	// one piece of slot lifecycle that changes across a recycle (the old
	// channel is closed and a re-adopted slot needs a fresh one), so every
	// reader goes through doneCh and the replacement happens under doneMu.
	doneMu sync.Mutex
	done   chan struct{}

	// owned gates the publish path: only an owned shard accepts envelopes
	// (ErrNotOwner otherwise) and appears in Snapshots. started records
	// whether the shard goroutine was ever launched, so shutdown paths
	// know which done channels will actually close. Both flip during the
	// cluster handoff protocol (handoff.go). frozen marks a slot this
	// process froze for a planned handoff whose goroutine has fully
	// exited — the one non-virgin state adoptable may recycle, so a failed
	// move can roll the shard back without a process restart.
	owned   atomic.Bool // richnote:atomic
	started atomic.Bool // richnote:atomic
	frozen  atomic.Bool // richnote:atomic

	// backpressured counts publishes turned away with HTTP 429 because the
	// ingest buffer crossed the high-water mark (overload); droppedIngest
	// counts publications accepted into the shard but discarded there —
	// unknown users with auto-registration disabled, or registration/
	// subscription failures (misrouted traffic). Split so /metrics can
	// distinguish "we are overloaded" from "someone is publishing garbage".
	backpressured atomic.Uint64 // richnote:atomic
	droppedIngest atomic.Uint64 // richnote:atomic

	snap atomic.Pointer[ShardSnapshot] // richnote:atomic

	feedMu sync.Mutex
	feeds  map[notif.UserID][]notif.Delivery // newest last, capped
}

// ShardSnapshot is the read side of a shard, published atomically at
// startup and after every round so HTTP handlers never touch live
// scheduling state.
type ShardSnapshot struct {
	Shard int
	// Round is the number of completed rounds.
	Round int
	Users int
	// QueueDepth sums the scheduling-queue lengths across the shard's
	// devices; BrokerPending counts publications still buffered in
	// round-mode subscriptions.
	QueueDepth    int
	BrokerPending int
	// Backpressured counts publishes rejected for ingest overload (429);
	// Dropped counts publications discarded in-shard (unknown user with
	// auto-registration disabled, or registration/subscription failures).
	Backpressured uint64
	Dropped       uint64
	// Report aggregates the shard's delivery metrics from the collector's
	// running mirror (see metrics.Collector.Running: counters exact, delay
	// percentiles at bucket resolution); DelayBuckets holds the
	// queuing-delay histogram at metrics.DefaultDelayBucketBounds.
	Report       metrics.Report
	DelayBuckets []metrics.Bucket
	// Lyapunov sums controller telemetry across the shard's RichNote
	// devices (see lyapunov.Stats.Add), maintained incrementally by delta
	// as devices step; parked devices contribute their last-stepped stats.
	Lyapunov lyapunov.Stats
	// LastRound and AvgRound are round-loop wall-clock latencies.
	LastRound time.Duration
	AvgRound  time.Duration
	// Err carries the most recent round error, if any.
	Err string
}

func newShard(id int, srv *Server, enricher *utility.Enricher) *shard {
	sh := &shard{
		id:        id,
		srv:       srv,
		broker:    pubsub.NewBroker(),
		enricher:  enricher,
		col:       metrics.NewCollector(),
		rec:       obs.NewRecorder(),
		devices:   make(map[notif.UserID]*sched.Device),
		inbox:     make(map[notif.UserID][]sched.Queued),
		subs:      make(map[notif.UserID]map[pubsub.TopicID]bool),
		isDirty:   make(map[notif.UserID]bool),
		aggByUser: make(map[notif.UserID]*userAgg),
		userCfgs:  make(map[notif.UserID]UserConfig),
		ingest:    make(chan envelope, srv.cfg.IngestBuffer),
		ticks:     make(chan tickReq),
		freeze:    make(chan freezeReq),
		stateq:    make(chan chan []byte),
		stop:      make(chan struct{}),
		crash:     make(chan struct{}),
		done:      make(chan struct{}),
		feeds:     make(map[notif.UserID][]notif.Delivery),
	}
	sh.publishSnapshot(0)
	return sh
}

// doneCh returns the current generation's done channel. Callers about to
// wait must capture it once and reuse the captured value — reading the
// field again after a recycle would observe a different generation.
func (sh *shard) doneCh() chan struct{} {
	sh.doneMu.Lock()
	d := sh.done
	sh.doneMu.Unlock()
	return d
}

// recycle returns a frozen slot to the virgin state so it can be adopted
// again in this process — the planned-handoff rollback path, where the
// source re-adopts the snapshot it just froze after the target failed to
// take it. Only legal once FreezeShard completed: ownership is off and
// the old goroutine has exited, so nothing races the rebuild. The
// channels other goroutines hold references to (ingest, ticks, freeze,
// stateq, stop, crash) keep their identity — ingest is drained, the rest
// are unbuffered and idle — and only done is replaced, under doneMu,
// because the old one is closed. The process-lifetime ingest counters
// (backpressured, droppedIngest) survive; everything else is rebuilt by
// the restore that follows.
func (sh *shard) recycle() {
	<-sh.doneCh() // already closed by the exited goroutine; never blocks
	for {
		select {
		case <-sh.ingest:
			continue
		default:
		}
		break
	}
	sh.broker = pubsub.NewBroker()
	sh.col = metrics.NewCollector()
	sh.rec = obs.NewRecorder()
	sh.devices = make(map[notif.UserID]*sched.Device)
	sh.inbox = make(map[notif.UserID][]sched.Queued)
	sh.subs = make(map[notif.UserID]map[pubsub.TopicID]bool)
	sh.round = 0
	sh.lastErr = nil
	sh.userOrder = nil
	sh.dirty = nil
	sh.isDirty = make(map[notif.UserID]bool)
	sh.dirtyUnsorted = false
	sh.staged = nil
	sh.stagedNs = nil
	sh.stagedScores = nil
	sh.pendingFeed = nil
	sh.aggByUser = make(map[notif.UserID]*userAgg)
	sh.aggQueue = 0
	sh.aggLyap = lyapunov.Stats{}
	sh.log = nil
	sh.walEnc = wal.Encoder{}
	sh.snapEnc = wal.Encoder{}
	sh.userCfgs = make(map[notif.UserID]UserConfig)
	sh.replaying = false
	sh.doneMu.Lock()
	sh.done = make(chan struct{})
	sh.doneMu.Unlock()
	sh.feedMu.Lock()
	sh.feeds = make(map[notif.UserID][]notif.Delivery)
	sh.feedMu.Unlock()
	sh.frozen.Store(false)
	sh.publishSnapshot(0)
}

// run is the shard goroutine: it owns every scheduling mutation. When
// every is positive the shard self-ticks on a wall clock; ticks requests
// force a synchronous round either way. On stop the shard drains whatever
// ingest has buffered and runs one final round so accepted publications
// are not stranded.
func (sh *shard) run(every time.Duration) {
	done := sh.doneCh()
	defer close(done)
	var tickC <-chan time.Time
	if every > 0 {
		//lint:allow wallclock the self-tick cadence is wall-clock by design; rounds it triggers use virtual time
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case env := <-sh.ingest:
			sh.accept(env)
		case <-tickC:
			sh.runRound()
		case req := <-sh.ticks:
			req.reply <- sh.runRound()
		case reply := <-sh.stateq:
			// Canonical state read on the owning goroutine: the only safe
			// way to call stateBytes on a running shard.
			reply <- sh.stateBytes()
		case req := <-sh.freeze:
			req.reply <- sh.doFreeze()
			return
		case <-sh.stop:
			sh.drainAndFinish()
			return
		case <-sh.crash:
			// Crash emulation (Server.CrashStop): no drain, no final round,
			// buffered log records discarded — the state a kill -9 leaves.
			sh.crashAbort()
			return
		}
	}
}

// drainAndFinish runs one last round (which drains the ingest buffer
// first) so every accepted publication gets a delivery opportunity before
// shutdown, then flushes a final snapshot and closes the log so a clean
// restart never needs replay.
func (sh *shard) drainAndFinish() {
	sh.runRound()
	sh.closeWAL()
}

// drainIngest empties whatever the ingest buffer holds right now, so a
// round boundary always schedules every publication accepted before it.
func (sh *shard) drainIngest() {
	for {
		select {
		case env := <-sh.ingest:
			sh.accept(env)
		default:
			return
		}
	}
}

// accept registers the recipient if needed, subscribes it to the topic and
// publishes the item into the shard broker, where it buffers until the
// next round drain.
func (sh *shard) accept(env envelope) {
	// Log-on-accept: the envelope is durable before any of its effects.
	// Everything below is deterministic given shard state, so replaying the
	// logged envelope reproduces registration, subscription and drop
	// decisions exactly. Suppressed during replay — the record exists.
	if sh.log != nil && !sh.replaying {
		sh.logPublish(env)
	}
	if _, ok := sh.devices[env.user]; !ok {
		if sh.srv.cfg.DisableAutoRegister {
			sh.droppedIngest.Add(1)
			return
		}
		tmpl := sh.srv.cfg.Default
		tmpl.User = env.user
		if err := sh.addUser(tmpl); err != nil {
			sh.lastErr = err
			sh.droppedIngest.Add(1)
			return
		}
	}
	if err := sh.subscribe(env.user, env.topic); err != nil {
		sh.lastErr = err
		sh.droppedIngest.Add(1)
		return
	}
	item := env.item
	item.Recipient = env.user
	sh.broker.Publish(env.topic, item)
}

// kindCadence implements the paper's Section II round tuning: frequent
// friend feeds drain every round, artist pages every other round, playlist
// updates every fourth.
func kindCadence(k notif.TopicKind) int {
	switch k {
	case notif.TopicArtistPage:
		return 2
	case notif.TopicPlaylist:
		return 4
	default:
		return 1
	}
}

// subscribe idempotently connects a user to a topic in round mode; the
// handler stages publications for the round's batch scoring pass
// (flushStaged), which enriches them into the user's inbox in the same
// handler order the historical per-item path used.
func (sh *shard) subscribe(user notif.UserID, topic pubsub.TopicID) error {
	if sh.subs[user][topic] {
		return nil
	}
	err := sh.broker.SubscribeCadence(user, topic, pubsub.ModeRound, kindCadence(topic.Kind), func(items []notif.Item) {
		for _, item := range items {
			// The broker fans a topic publication out to every subscriber,
			// but server envelopes are addressed: accept stamps the
			// recipient, and each subscription keeps only its own items.
			if item.Recipient != user {
				continue
			}
			sh.staged = append(sh.staged, stagedNotif{
				user: user,
				n:    trace.Notification{Item: item, Round: sh.round},
			})
		}
	})
	if err != nil {
		return err
	}
	set := sh.subs[user]
	if set == nil {
		set = make(map[pubsub.TopicID]bool)
		sh.subs[user] = set
	}
	set[topic] = true
	return nil
}

// users returns the registered users in ascending order. Only safe
// before the shard goroutine starts (New's registration/restore phase).
func (sh *shard) users() []notif.UserID {
	return append([]notif.UserID(nil), sh.userOrder...)
}

// addUser builds the device stack for one user: seeded network model,
// battery, strategy and (for RichNote) Lyapunov controller.
func (sh *shard) addUser(cfg UserConfig) error {
	if _, dup := sh.devices[cfg.User]; dup {
		return fmt.Errorf("server: user %d already registered", cfg.User)
	}
	cfg.applyDefaults()

	userSeed := sh.srv.cfg.Seed ^ (int64(cfg.User+1) * 0x9e3779b9)
	netModel, err := network.NewModelSeeded(*cfg.NetworkMatrix, cfg.StartState, userSeed)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	battery, err := energy.NewBattery(energy.BatteryConfig{}, newSeededRand(userSeed+1))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	// Per-device fault model on its own seed offset, mirroring the
	// simulator's dedicated fault stream: enabling faults must not perturb
	// the network walk (userSeed) or battery jitter (userSeed+1).
	var faults *network.FaultModel
	if sh.srv.cfg.Faults.Enabled() {
		faults, err = network.NewFaultModelSeeded(sh.srv.cfg.Faults, userSeed+2)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}

	var strategy sched.Strategy
	var ctl *lyapunov.Controller
	switch cfg.Strategy {
	case core.StrategyRichNote:
		ctl, err = lyapunov.New(lyapunov.Config{V: cfg.V, Kappa: cfg.KappaJ})
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		strategy = &sched.RichNote{}
	case core.StrategyFIFO:
		strategy, err = sched.NewFIFO(cfg.FixedLevel)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	case core.StrategyUtil:
		strategy, err = sched.NewUtil(cfg.FixedLevel)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	default:
		return fmt.Errorf("server: unknown strategy %d", cfg.Strategy)
	}

	user := cfg.User
	device, err := sched.NewDevice(sched.DeviceConfig{
		User:                  user,
		Strategy:              strategy,
		WeeklyBudgetBytes:     cfg.WeeklyBudgetBytes,
		RoundsPerWeek:         sh.srv.roundsPerWeek,
		Epoch:                 sh.srv.cfg.Epoch,
		RoundLen:              sh.srv.cfg.VirtualRound,
		Network:               netModel,
		Capacity:              network.DefaultCapacity(),
		Battery:               battery,
		Transfer:              energy.DefaultTransferModel(),
		Controller:            ctl,
		Collector:             sh.col,
		Faults:                faults,
		MaxAttempts:           cfg.MaxAttempts,
		DegradeOnFailure:      cfg.DegradeOnFailure,
		MaxDeliveriesPerRound: cfg.MaxDeliveriesPerRound,
		// Mid-run registrations start at the shard clock: they never ran the
		// earlier rounds, so CatchUp must not replay them.
		StartRound: sh.round,
		OnDelivery: func(d notif.Delivery) { sh.stageDelivery(user, d) },
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	sh.devices[user] = device
	sh.aggByUser[user] = &userAgg{}
	sh.refreshAgg(user, device)
	// New devices start dirty: a RichNote controller needs rounds to climb
	// P above κ before it can park, and any pending publish will want the
	// first round anyway. The first quiescent round parks it.
	sh.markDirty(user)
	// Remember the applied config (defaults resolved, matrix copied so the
	// caller's pointer cannot alias): snapshots store it to rebuild the
	// device stack at restore time.
	matrix := *cfg.NetworkMatrix
	cfg.NetworkMatrix = &matrix
	sh.userCfgs[user] = cfg
	// Keep userOrder sorted: binary-search the insertion point and shift.
	at := sort.Search(len(sh.userOrder), func(i int) bool { return sh.userOrder[i] >= user })
	sh.userOrder = append(sh.userOrder, 0)
	copy(sh.userOrder[at+1:], sh.userOrder[at:])
	sh.userOrder[at] = user
	return nil
}

// runRound executes one scheduling round: drain the broker's round-mode
// buffers, batch-score and enrich the flushed publications into inboxes,
// then run Algorithm 2 on the dirty set — every device, in ascending user
// order, when Config.ForceFullScan pins the reference loop. WAL replay
// drives this same path, so recovery reproduces the event-driven
// trajectory record for record.
func (sh *shard) runRound() error {
	start := time.Now() //lint:allow wallclock round-latency telemetry, not scheduling time
	sh.drainIngest()
	sh.broker.EndRoundIndex(sh.round)
	sh.flushStaged()

	var firstErr error
	if sh.srv.cfg.ForceFullScan {
		firstErr = sh.stepAll()
	} else {
		if sh.dirtyUnsorted {
			// Survivors stay sorted; only flushStaged appends disorder the
			// tail. One sort at the boundary keeps stepDirty allocation-free.
			sort.Slice(sh.dirty, func(i, j int) bool { return sh.dirty[i] < sh.dirty[j] })
			sh.dirtyUnsorted = false
		}
		firstErr = sh.stepDirty()
	}
	sh.flushFeeds()
	sh.round++
	if firstErr != nil {
		sh.lastErr = firstErr
	}
	if sh.log != nil && !sh.replaying {
		sh.logRound(sh.round - 1)
	}
	elapsed := time.Since(start) //lint:allow wallclock round-latency telemetry, not scheduling time
	sh.rec.Observe("round", elapsed)
	sh.publishSnapshot(elapsed)
	return firstErr
}

// markDirty queues a user for the next round step. No-op in full-scan
// mode, where every round visits every user anyway.
func (sh *shard) markDirty(u notif.UserID) {
	if sh.srv.cfg.ForceFullScan || sh.isDirty[u] {
		return
	}
	sh.isDirty[u] = true
	sh.dirty = append(sh.dirty, u)
	sh.dirtyUnsorted = true
}

// flushStaged turns the round's broker-flushed publications into inbox
// entries: one batch scoring call across all users (amortizing the
// forest's tree-major arena walk), then per-item enrichment in the same
// staged (handler-invocation) order the historical inline path appended
// in — so inbox order, and every downstream queue order, is unchanged.
// Recipients of new inbox items are marked dirty.
func (sh *shard) flushStaged() {
	if len(sh.staged) == 0 {
		return
	}
	ns := sh.stagedNs[:0]
	for i := range sh.staged {
		ns = append(ns, &sh.staged[i].n)
	}
	sh.stagedNs = ns
	scorer := sh.enricher.Scorer()
	if bs, ok := scorer.(utility.BatchScorer); ok {
		sh.stagedScores = bs.ScoreBatch(ns, sh.stagedScores[:0])
	} else {
		scores := sh.stagedScores[:0]
		for _, n := range ns {
			scores = append(scores, scorer.Score(n))
		}
		sh.stagedScores = scores
	}
	for i := range sh.staged {
		st := &sh.staged[i]
		rich, err := sh.enricher.EnrichScored(&st.n, sh.stagedScores[i])
		if err != nil {
			continue // malformed publications are dropped, not fatal
		}
		sh.inbox[st.user] = append(sh.inbox[st.user], sched.Queued{Rich: rich})
		sh.markDirty(st.user)
	}
	for i := range sh.staged {
		sh.staged[i] = stagedNotif{}
		sh.stagedNs[i] = nil
	}
	sh.staged = sh.staged[:0]
	sh.stagedNs = sh.stagedNs[:0]
}

// stepDirty is the event-driven steady-state core: step exactly the dirty
// users, park the ones that went quiescent, keep the rest. The dirty
// list is compacted in place and the loop allocates nothing — idle
// resident users cost zero here, which is what makes round cost O(dirty)
// instead of O(users).
//
// richnote:allocfree
func (sh *shard) stepDirty() error {
	var firstErr error
	keep := sh.dirty[:0]
	for _, u := range sh.dirty {
		stillDirty, err := sh.stepUser(u)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if stillDirty {
			keep = append(keep, u)
		} else {
			delete(sh.isDirty, u)
		}
	}
	sh.dirty = keep
	return firstErr
}

// stepAll is the full-scan reference loop (Config.ForceFullScan): every
// registered user, every round, in ascending order. It shares stepUser
// with the event-driven path — CatchUp is a no-op because no device ever
// falls behind — so the two modes differ only in which users they visit,
// and the equivalence test pins their exported state byte-equal.
func (sh *shard) stepAll() error {
	var firstErr error
	for _, u := range sh.userOrder {
		if _, err := sh.stepUser(u); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// stepUser runs one user's round: wake the device (CatchUp replays any
// parked rounds bit-identically), flush its inbox into the scheduling
// queue, execute Algorithm 2, refresh the shard aggregates, and report
// whether the user must stay dirty. An inbox flush that fails validation
// preserves the legacy full-scan behavior: the device sits the round out
// (SkipRound) with its inbox intact.
//
// richnote:allocfree
func (sh *shard) stepUser(u notif.UserID) (bool, error) {
	dev := sh.devices[u]
	if err := dev.CatchUp(sh.round); err != nil {
		// Unreachable: dirty-tracked devices are either current or parked
		// with empty queues. Stay dirty so the error cannot recur silently.
		sh.refreshAgg(u, dev)
		return true, err
	}
	if batch := sh.inbox[u]; len(batch) > 0 {
		if err := dev.Enqueue(batch); err != nil {
			dev.SkipRound(sh.round)
			sh.refreshAgg(u, dev)
			return true, err
		}
		for i := range batch {
			batch[i] = sched.Queued{}
		}
		sh.inbox[u] = batch[:0]
	}
	_, err := dev.RunRound(sh.round)
	sh.refreshAgg(u, dev)
	return !dev.Quiescent(), err
}

// refreshAgg folds the user's current queue depth and controller
// telemetry into the shard's running aggregates by delta against the
// user's cached last contribution. The MaxQ/Rounds running maxima are
// exact because both are per-user monotone; the float sums accumulate in
// step order rather than one deterministic fold order, which is fine for
// what they feed (snapshot telemetry).
//
// richnote:allocfree
func (sh *shard) refreshAgg(u notif.UserID, dev *sched.Device) {
	a := sh.aggByUser[u]
	q := dev.QueueLen() + len(sh.inbox[u])
	sh.aggQueue += q - a.queued
	a.queued = q
	if st, ok := dev.ControllerStats(); ok {
		sh.aggLyap.AvgQ += st.AvgQ - a.lyap.AvgQ
		sh.aggLyap.AvgDrift += st.AvgDrift - a.lyap.AvgDrift
		sh.aggLyap.FinalQ += st.FinalQ - a.lyap.FinalQ
		sh.aggLyap.FinalP += st.FinalP - a.lyap.FinalP
		sh.aggLyap.FinalLyap += st.FinalLyap - a.lyap.FinalLyap
		if st.MaxQ > sh.aggLyap.MaxQ {
			sh.aggLyap.MaxQ = st.MaxQ
		}
		if st.Rounds > sh.aggLyap.Rounds {
			sh.aggLyap.Rounds = st.Rounds
		}
		a.lyap = st
	}
}

// rebuildAgg recomputes the running aggregates from scratch — restore
// and settle paths, where an O(users) walk is already being paid.
func (sh *shard) rebuildAgg() {
	sh.aggQueue = 0
	sh.aggLyap = lyapunov.Stats{}
	for _, u := range sh.userOrder {
		*sh.aggByUser[u] = userAgg{}
		sh.refreshAgg(u, sh.devices[u])
	}
}

// rebuildDirty derives the dirty set from device state: dirty iff the
// device is not quiescent or holds inbox items. This is exactly the
// live set's invariant (modulo quiescent stragglers the next round would
// park, whose stepping is equivalent to parking), so a restored shard
// resumes the same trajectory the crashed one was on.
func (sh *shard) rebuildDirty() {
	sh.dirty = sh.dirty[:0]
	clear(sh.isDirty)
	sh.dirtyUnsorted = false
	if sh.srv.cfg.ForceFullScan {
		return
	}
	for _, u := range sh.userOrder {
		if !sh.devices[u].Quiescent() || len(sh.inbox[u]) > 0 {
			sh.isDirty[u] = true
			sh.dirty = append(sh.dirty, u) // userOrder ascending ⇒ sorted
		}
	}
}

// settleAll catches every parked device up to the shard clock so exported
// state is identical to a full-scan run's. Called before canonical state
// encodes (stateBytes, writeSnapshot); the amortized O(users) cost rides
// on paths that are already O(users). Aggregates are rebuilt afterwards
// since catch-up advances controller round counters.
func (sh *shard) settleAll() {
	settled := false
	for _, u := range sh.userOrder {
		dev := sh.devices[u]
		if dev.NextRound() >= sh.round {
			continue
		}
		if err := dev.CatchUp(sh.round); err != nil && sh.lastErr == nil {
			sh.lastErr = err // unreachable: parked devices have empty queues
		}
		settled = true
	}
	if settled {
		sh.rebuildAgg()
	}
}

// stageDelivery buffers a confirmed delivery for the round's single
// feed-lock flush. Runs on the shard goroutine via Device.OnDelivery.
func (sh *shard) stageDelivery(user notif.UserID, d notif.Delivery) {
	sh.pendingFeed = append(sh.pendingFeed, feedEntry{user: user, d: d})
}

// flushFeeds applies the round's staged deliveries to the recent-delivery
// feeds under one feedMu acquisition, keeping the newest RecentDeliveries
// entries per user in delivery order — byte-for-byte what the historical
// per-delivery locking produced, at one lock round-trip per round.
func (sh *shard) flushFeeds() {
	if len(sh.pendingFeed) == 0 {
		return
	}
	limit := sh.srv.cfg.RecentDeliveries
	sh.feedMu.Lock()
	for i := range sh.pendingFeed {
		en := &sh.pendingFeed[i]
		feed := append(sh.feeds[en.user], en.d)
		if len(feed) > limit {
			feed = append(feed[:0], feed[len(feed)-limit:]...)
		}
		sh.feeds[en.user] = feed
	}
	sh.feedMu.Unlock()
	for i := range sh.pendingFeed {
		sh.pendingFeed[i] = feedEntry{}
	}
	sh.pendingFeed = sh.pendingFeed[:0]
}

// Deliveries returns the user's recent deliveries, newest last.
func (sh *shard) Deliveries(user notif.UserID) []notif.Delivery {
	sh.feedMu.Lock()
	defer sh.feedMu.Unlock()
	return append([]notif.Delivery(nil), sh.feeds[user]...)
}

// publishSnapshot recomputes the shard's read-side view from running
// aggregates: QueueDepth and Lyapunov come from the per-user delta cache
// refreshAgg maintains, Report/DelayBuckets from the collector's running
// mirror. The historical version walked every device and re-folded every
// metric sample per round — O(users + samples); this is O(1) plus the
// snapshot copy, so snapshot cost no longer grows with resident idle
// users. Called on the shard goroutine only.
func (sh *shard) publishSnapshot(lastRound time.Duration) {
	snap := &ShardSnapshot{
		Shard:         sh.id,
		Round:         sh.round,
		Users:         len(sh.devices),
		BrokerPending: sh.broker.PendingRound(),
		Backpressured: sh.backpressured.Load(),
		Dropped:       sh.droppedIngest.Load(),
		Report:        sh.col.Running(),
		DelayBuckets:  sh.col.RunningDelayBuckets(),
		QueueDepth:    sh.aggQueue,
		Lyapunov:      sh.aggLyap,
		LastRound:     lastRound,
	}
	if span, ok := sh.rec.Span("round"); ok && span.Count > 0 {
		snap.AvgRound = span.Duration / time.Duration(span.Count)
	}
	if sh.lastErr != nil {
		snap.Err = sh.lastErr.Error()
	}
	sh.snap.Store(snap)
}

// snapshot returns the most recently published view.
func (sh *shard) snapshot() *ShardSnapshot { return sh.snap.Load() }
