package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/energy"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/obs"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/sched"
	"github.com/richnote/richnote/internal/trace"
	"github.com/richnote/richnote/internal/utility"
	"github.com/richnote/richnote/internal/wal"
)

// envelope is one routed publication: a topic plus the item, addressed to
// a single recipient on this shard.
type envelope struct {
	topic pubsub.TopicID
	user  notif.UserID
	item  notif.Item
}

// tickReq is a synchronous round request: the shard runs one round and
// replies with its error.
type tickReq struct {
	reply chan error
}

// freezeReq asks the shard to stop serving and hand its state over
// (cluster handoff, handoff.go): drain ingest, compact into a final
// snapshot, close the log and exit. The reply carries the snapshot file
// bytes (what ships to the adopting node) and the canonical state bytes
// at freeze (what handoff tests compare against the adopter).
type freezeReq struct {
	reply chan freezeResp
}

type freezeResp struct {
	snapBytes []byte
	state     []byte
	err       error
}

// shard owns a disjoint subset of users: their pub/sub buffers, scheduling
// queues Q(t), virtual energy queues P(t), device/network/battery state and
// the per-round control loop. All of that state is confined to the shard
// goroutine started by run; the HTTP layer communicates through the ingest
// channel and reads only the atomically published ShardSnapshot and the
// mutex-guarded recent-delivery feeds.
type shard struct {
	id  int
	srv *Server

	broker   *pubsub.Broker     // richnote:confined(shard)
	enricher *utility.Enricher  // richnote:confined(shard)
	col      *metrics.Collector // richnote:confined(shard)
	rec      *obs.Recorder      // richnote:confined(shard)

	// Goroutine-confined scheduling state: richnote-lint's confined
	// analyzer enforces that only shard methods touch these.
	devices map[notif.UserID]*sched.Device           // richnote:confined(shard)
	inbox   map[notif.UserID][]sched.Queued          // richnote:confined(shard)
	subs    map[notif.UserID]map[pubsub.TopicID]bool // richnote:confined(shard)
	round   int                                      // richnote:confined(shard)
	lastErr error                                    // richnote:confined(shard)
	// userOrder keeps the registered users sorted ascending; maintained
	// incrementally by addUser so runRound iterates deterministically
	// without rebuilding and re-sorting the key set every round.
	userOrder []notif.UserID // richnote:confined(shard)

	// Durability state (walstate.go), active when Config.WALDir is set:
	// the per-shard append-only log, reusable encode scratch for log
	// records and snapshots, the per-user configs needed to rebuild
	// devices at restore time, and the replay flag that keeps recovery
	// from re-logging the records it is replaying.
	log       *wal.Writer                 // richnote:confined(shard)
	walEnc    wal.Encoder                 // richnote:confined(shard)
	snapEnc   wal.Encoder                 // richnote:confined(shard)
	userCfgs  map[notif.UserID]UserConfig // richnote:confined(shard)
	replaying bool                        // richnote:confined(shard)

	ingest chan envelope
	ticks  chan tickReq
	freeze chan freezeReq
	stateq chan chan []byte
	stop   chan struct{}
	crash  chan struct{}
	done   chan struct{}

	// owned gates the publish path: only an owned shard accepts envelopes
	// (ErrNotOwner otherwise) and appears in Snapshots. started records
	// whether the shard goroutine was ever launched, so shutdown paths
	// know which done channels will actually close. Both flip during the
	// cluster handoff protocol (handoff.go).
	owned   atomic.Bool // richnote:atomic
	started atomic.Bool // richnote:atomic

	// backpressured counts publishes turned away with HTTP 429 because the
	// ingest buffer crossed the high-water mark (overload); droppedIngest
	// counts publications accepted into the shard but discarded there —
	// unknown users with auto-registration disabled, or registration/
	// subscription failures (misrouted traffic). Split so /metrics can
	// distinguish "we are overloaded" from "someone is publishing garbage".
	backpressured atomic.Uint64 // richnote:atomic
	droppedIngest atomic.Uint64 // richnote:atomic

	snap atomic.Pointer[ShardSnapshot] // richnote:atomic

	feedMu sync.Mutex
	feeds  map[notif.UserID][]notif.Delivery // newest last, capped
}

// ShardSnapshot is the read side of a shard, published atomically at
// startup and after every round so HTTP handlers never touch live
// scheduling state.
type ShardSnapshot struct {
	Shard int
	// Round is the number of completed rounds.
	Round int
	Users int
	// QueueDepth sums the scheduling-queue lengths across the shard's
	// devices; BrokerPending counts publications still buffered in
	// round-mode subscriptions.
	QueueDepth    int
	BrokerPending int
	// Backpressured counts publishes rejected for ingest overload (429);
	// Dropped counts publications discarded in-shard (unknown user with
	// auto-registration disabled, or registration/subscription failures).
	Backpressured uint64
	Dropped       uint64
	// Report aggregates the shard's delivery metrics; DelayBuckets holds
	// the queuing-delay histogram at metrics.DefaultDelayBucketBounds.
	Report       metrics.Report
	DelayBuckets []metrics.Bucket
	// Lyapunov sums controller telemetry across the shard's RichNote
	// devices (see lyapunov.Stats.Add).
	Lyapunov lyapunov.Stats
	// LastRound and AvgRound are round-loop wall-clock latencies.
	LastRound time.Duration
	AvgRound  time.Duration
	// Err carries the most recent round error, if any.
	Err string
}

func newShard(id int, srv *Server, enricher *utility.Enricher) *shard {
	sh := &shard{
		id:       id,
		srv:      srv,
		broker:   pubsub.NewBroker(),
		enricher: enricher,
		col:      metrics.NewCollector(),
		rec:      obs.NewRecorder(),
		devices:  make(map[notif.UserID]*sched.Device),
		inbox:    make(map[notif.UserID][]sched.Queued),
		subs:     make(map[notif.UserID]map[pubsub.TopicID]bool),
		userCfgs: make(map[notif.UserID]UserConfig),
		ingest:   make(chan envelope, srv.cfg.IngestBuffer),
		ticks:    make(chan tickReq),
		freeze:   make(chan freezeReq),
		stateq:   make(chan chan []byte),
		stop:     make(chan struct{}),
		crash:    make(chan struct{}),
		done:     make(chan struct{}),
		feeds:    make(map[notif.UserID][]notif.Delivery),
	}
	sh.publishSnapshot(0)
	return sh
}

// run is the shard goroutine: it owns every scheduling mutation. When
// every is positive the shard self-ticks on a wall clock; ticks requests
// force a synchronous round either way. On stop the shard drains whatever
// ingest has buffered and runs one final round so accepted publications
// are not stranded.
func (sh *shard) run(every time.Duration) {
	defer close(sh.done)
	var tickC <-chan time.Time
	if every > 0 {
		//lint:allow wallclock the self-tick cadence is wall-clock by design; rounds it triggers use virtual time
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case env := <-sh.ingest:
			sh.accept(env)
		case <-tickC:
			sh.runRound()
		case req := <-sh.ticks:
			req.reply <- sh.runRound()
		case reply := <-sh.stateq:
			// Canonical state read on the owning goroutine: the only safe
			// way to call stateBytes on a running shard.
			reply <- sh.stateBytes()
		case req := <-sh.freeze:
			req.reply <- sh.doFreeze()
			return
		case <-sh.stop:
			sh.drainAndFinish()
			return
		case <-sh.crash:
			// Crash emulation (Server.CrashStop): no drain, no final round,
			// buffered log records discarded — the state a kill -9 leaves.
			sh.crashAbort()
			return
		}
	}
}

// drainAndFinish runs one last round (which drains the ingest buffer
// first) so every accepted publication gets a delivery opportunity before
// shutdown, then flushes a final snapshot and closes the log so a clean
// restart never needs replay.
func (sh *shard) drainAndFinish() {
	sh.runRound()
	sh.closeWAL()
}

// drainIngest empties whatever the ingest buffer holds right now, so a
// round boundary always schedules every publication accepted before it.
func (sh *shard) drainIngest() {
	for {
		select {
		case env := <-sh.ingest:
			sh.accept(env)
		default:
			return
		}
	}
}

// accept registers the recipient if needed, subscribes it to the topic and
// publishes the item into the shard broker, where it buffers until the
// next round drain.
func (sh *shard) accept(env envelope) {
	// Log-on-accept: the envelope is durable before any of its effects.
	// Everything below is deterministic given shard state, so replaying the
	// logged envelope reproduces registration, subscription and drop
	// decisions exactly. Suppressed during replay — the record exists.
	if sh.log != nil && !sh.replaying {
		sh.logPublish(env)
	}
	if _, ok := sh.devices[env.user]; !ok {
		if sh.srv.cfg.DisableAutoRegister {
			sh.droppedIngest.Add(1)
			return
		}
		tmpl := sh.srv.cfg.Default
		tmpl.User = env.user
		if err := sh.addUser(tmpl); err != nil {
			sh.lastErr = err
			sh.droppedIngest.Add(1)
			return
		}
	}
	if err := sh.subscribe(env.user, env.topic); err != nil {
		sh.lastErr = err
		sh.droppedIngest.Add(1)
		return
	}
	item := env.item
	item.Recipient = env.user
	sh.broker.Publish(env.topic, item)
}

// kindCadence implements the paper's Section II round tuning: frequent
// friend feeds drain every round, artist pages every other round, playlist
// updates every fourth.
func kindCadence(k notif.TopicKind) int {
	switch k {
	case notif.TopicArtistPage:
		return 2
	case notif.TopicPlaylist:
		return 4
	default:
		return 1
	}
}

// subscribe idempotently connects a user to a topic in round mode; the
// handler enriches publications and stages them in the user's inbox, to be
// enqueued at the round boundary that drains them.
func (sh *shard) subscribe(user notif.UserID, topic pubsub.TopicID) error {
	if sh.subs[user][topic] {
		return nil
	}
	err := sh.broker.SubscribeCadence(user, topic, pubsub.ModeRound, kindCadence(topic.Kind), func(items []notif.Item) {
		for _, item := range items {
			// The broker fans a topic publication out to every subscriber,
			// but server envelopes are addressed: accept stamps the
			// recipient, and each subscription keeps only its own items.
			if item.Recipient != user {
				continue
			}
			n := &trace.Notification{Item: item, Round: sh.round}
			rich, err := sh.enricher.Enrich(n)
			if err != nil {
				continue // malformed publications are dropped, not fatal
			}
			sh.inbox[user] = append(sh.inbox[user], sched.Queued{Rich: rich})
		}
	})
	if err != nil {
		return err
	}
	set := sh.subs[user]
	if set == nil {
		set = make(map[pubsub.TopicID]bool)
		sh.subs[user] = set
	}
	set[topic] = true
	return nil
}

// users returns the registered users in ascending order. Only safe
// before the shard goroutine starts (New's registration/restore phase).
func (sh *shard) users() []notif.UserID {
	return append([]notif.UserID(nil), sh.userOrder...)
}

// addUser builds the device stack for one user: seeded network model,
// battery, strategy and (for RichNote) Lyapunov controller.
func (sh *shard) addUser(cfg UserConfig) error {
	if _, dup := sh.devices[cfg.User]; dup {
		return fmt.Errorf("server: user %d already registered", cfg.User)
	}
	cfg.applyDefaults()

	userSeed := sh.srv.cfg.Seed ^ (int64(cfg.User+1) * 0x9e3779b9)
	netModel, err := network.NewModelSeeded(*cfg.NetworkMatrix, cfg.StartState, userSeed)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	battery, err := energy.NewBattery(energy.BatteryConfig{}, newSeededRand(userSeed+1))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	// Per-device fault model on its own seed offset, mirroring the
	// simulator's dedicated fault stream: enabling faults must not perturb
	// the network walk (userSeed) or battery jitter (userSeed+1).
	var faults *network.FaultModel
	if sh.srv.cfg.Faults.Enabled() {
		faults, err = network.NewFaultModelSeeded(sh.srv.cfg.Faults, userSeed+2)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}

	var strategy sched.Strategy
	var ctl *lyapunov.Controller
	switch cfg.Strategy {
	case core.StrategyRichNote:
		ctl, err = lyapunov.New(lyapunov.Config{V: cfg.V, Kappa: cfg.KappaJ})
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		strategy = &sched.RichNote{}
	case core.StrategyFIFO:
		strategy, err = sched.NewFIFO(cfg.FixedLevel)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	case core.StrategyUtil:
		strategy, err = sched.NewUtil(cfg.FixedLevel)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
	default:
		return fmt.Errorf("server: unknown strategy %d", cfg.Strategy)
	}

	user := cfg.User
	device, err := sched.NewDevice(sched.DeviceConfig{
		User:                  user,
		Strategy:              strategy,
		WeeklyBudgetBytes:     cfg.WeeklyBudgetBytes,
		RoundsPerWeek:         sh.srv.roundsPerWeek,
		Epoch:                 sh.srv.cfg.Epoch,
		RoundLen:              sh.srv.cfg.VirtualRound,
		Network:               netModel,
		Capacity:              network.DefaultCapacity(),
		Battery:               battery,
		Transfer:              energy.DefaultTransferModel(),
		Controller:            ctl,
		Collector:             sh.col,
		Faults:                faults,
		MaxAttempts:           cfg.MaxAttempts,
		DegradeOnFailure:      cfg.DegradeOnFailure,
		MaxDeliveriesPerRound: cfg.MaxDeliveriesPerRound,
		OnDelivery:            func(d notif.Delivery) { sh.recordDelivery(user, d) },
	})
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	sh.devices[user] = device
	// Remember the applied config (defaults resolved, matrix copied so the
	// caller's pointer cannot alias): snapshots store it to rebuild the
	// device stack at restore time.
	matrix := *cfg.NetworkMatrix
	cfg.NetworkMatrix = &matrix
	sh.userCfgs[user] = cfg
	// Keep userOrder sorted: binary-search the insertion point and shift.
	at := sort.Search(len(sh.userOrder), func(i int) bool { return sh.userOrder[i] >= user })
	sh.userOrder = append(sh.userOrder, 0)
	copy(sh.userOrder[at+1:], sh.userOrder[at:])
	sh.userOrder[at] = user
	return nil
}

// runRound executes one scheduling round: drain the broker's round-mode
// buffers, flush inboxes into scheduling queues and run Algorithm 2 on
// every device, in ascending user order for determinism.
func (sh *shard) runRound() error {
	start := time.Now() //lint:allow wallclock round-latency telemetry, not scheduling time
	sh.drainIngest()
	sh.broker.EndRoundIndex(sh.round)

	var firstErr error
	for _, u := range sh.userOrder {
		device := sh.devices[u]
		if batch := sh.inbox[u]; len(batch) > 0 {
			if err := device.Enqueue(batch); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			sh.inbox[u] = nil
		}
		if _, err := device.RunRound(sh.round); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	sh.round++
	if firstErr != nil {
		sh.lastErr = firstErr
	}
	if sh.log != nil && !sh.replaying {
		sh.logRound(sh.round - 1)
	}
	elapsed := time.Since(start) //lint:allow wallclock round-latency telemetry, not scheduling time
	sh.rec.Observe("round", elapsed)
	sh.publishSnapshot(elapsed)
	return firstErr
}

// recordDelivery appends to the user's recent-delivery feed, keeping the
// newest RecentDeliveries entries.
func (sh *shard) recordDelivery(user notif.UserID, d notif.Delivery) {
	sh.feedMu.Lock()
	defer sh.feedMu.Unlock()
	feed := append(sh.feeds[user], d)
	if limit := sh.srv.cfg.RecentDeliveries; len(feed) > limit {
		feed = append(feed[:0], feed[len(feed)-limit:]...)
	}
	sh.feeds[user] = feed
}

// Deliveries returns the user's recent deliveries, newest last.
func (sh *shard) Deliveries(user notif.UserID) []notif.Delivery {
	sh.feedMu.Lock()
	defer sh.feedMu.Unlock()
	return append([]notif.Delivery(nil), sh.feeds[user]...)
}

// publishSnapshot recomputes the shard's read-side view. Called on the
// shard goroutine only.
func (sh *shard) publishSnapshot(lastRound time.Duration) {
	snap := &ShardSnapshot{
		Shard:         sh.id,
		Round:         sh.round,
		Users:         len(sh.devices),
		BrokerPending: sh.broker.PendingRound(),
		Backpressured: sh.backpressured.Load(),
		Dropped:       sh.droppedIngest.Load(),
		Report:        sh.col.Aggregate(),
		DelayBuckets:  sh.col.DelayHistogram().CumulativeBuckets(metrics.DefaultDelayBucketBounds),
		LastRound:     lastRound,
	}
	for u, dev := range sh.devices {
		snap.QueueDepth += dev.QueueLen() + len(sh.inbox[u])
		if st, ok := dev.ControllerStats(); ok {
			snap.Lyapunov.Add(st)
		}
	}
	if span, ok := sh.rec.Span("round"); ok && span.Count > 0 {
		snap.AvgRound = span.Duration / time.Duration(span.Count)
	}
	if sh.lastErr != nil {
		snap.Err = sh.lastErr.Error()
	}
	sh.snap.Store(snap)
}

// snapshot returns the most recently published view.
func (sh *shard) snapshot() *ShardSnapshot { return sh.snap.Load() }
