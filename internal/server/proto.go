package server

import (
	"fmt"
	"sort"

	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/wal"
)

// The cluster RPC set carried over internal/transport frames (DESIGN.md
// §13). Requests are even-numbered responses minus one; payloads use the
// internal/wal codec like every other persistent byte string in the
// system. The transport reserves 0xFF for handler errors.
const (
	FramePing           byte = 1
	FramePong           byte = 2
	FramePublish        byte = 3
	FramePublishResp    byte = 4
	FrameDeliveries     byte = 5
	FrameDeliveriesResp byte = 6
	FrameTick           byte = 7
	FrameTickResp       byte = 8
	FrameHealth         byte = 9
	FrameHealthResp     byte = 10
	FrameMapUpdate      byte = 11
	FrameMapAck         byte = 12
	FrameFreeze         byte = 13
	FrameFreezeResp     byte = 14
	FrameAdopt          byte = 15
	FrameAdoptResp      byte = 16
	FrameShardState     byte = 17
	FrameShardStateResp byte = 18
	FrameStats          byte = 19
	FrameStatsResp      byte = 20
	FrameJoin           byte = 21
	FrameJoinResp       byte = 22
)

// Publish-forward outcome codes (FramePublishResp status byte).
const (
	publishAccepted     = 0
	publishBackpressure = 1
	publishNotOwner     = 2
	publishError        = 3
)

// Adopt modes (FrameAdopt mode byte).
const (
	adoptFromWAL byte = 0 // crash takeover: restore from shared-storage files
	adoptBytes   byte = 1 // planned handoff: snapshot bytes ride the frame
)

// Join outcome codes (FrameJoinResp status byte).
const (
	joinAccepted      byte = 0 // admitted; the coordinator schedules the rebalance
	joinAlreadyMember byte = 1 // live at this address already; announces are idempotent
	joinRejected      byte = 2 // validation failed; ErrText says why
)

// joinReq is a node's announce payload (DESIGN.md §15): its identity, the
// transport address it serves, and the agreement checks the coordinator
// validates before admitting it.
type joinReq struct {
	Name   string
	Addr   string
	Shards int
	WALDir string
}

func encodeJoinReq(e *wal.Encoder, j joinReq) {
	e.Str(j.Name)
	e.Str(j.Addr)
	e.U32(uint32(j.Shards))
	e.Str(j.WALDir)
}

func decodeJoinReq(d *wal.Decoder) joinReq {
	return joinReq{
		Name:   d.Str(),
		Addr:   d.Str(),
		Shards: int(d.U32()),
		WALDir: d.Str(),
	}
}

// joinResp is the coordinator's verdict on an announce.
type joinResp struct {
	Status     byte
	MapVersion uint64
	ErrText    string
}

func encodeJoinResp(e *wal.Encoder, j joinResp) {
	e.U8(j.Status)
	e.U64(j.MapVersion)
	e.Str(j.ErrText)
}

func decodeJoinResp(d *wal.Decoder) joinResp {
	return joinResp{
		Status:     d.U8(),
		MapVersion: d.U64(),
		ErrText:    d.Str(),
	}
}

func encodePublishReq(e *wal.Encoder, topic pubsub.TopicID, user notif.UserID, item notif.Item) {
	e.I64(int64(topic.Kind))
	e.I64(topic.Entity)
	e.I64(int64(user))
	encodeItem(e, item)
}

func decodePublishReq(d *wal.Decoder) (pubsub.TopicID, notif.UserID, notif.Item) {
	topic := pubsub.TopicID{Kind: notif.TopicKind(d.I64()), Entity: d.I64()}
	user := notif.UserID(d.I64())
	return topic, user, decodeItem(d)
}

// publishOutcome is the decoded FramePublishResp.
type publishOutcome struct {
	status     byte
	retryAfter int // seconds, meaningful for backpressure
	mapVer     uint64
	errText    string
}

func encodePublishResp(e *wal.Encoder, o publishOutcome) {
	e.U8(o.status)
	e.U32(uint32(o.retryAfter))
	e.U64(o.mapVer)
	e.Str(o.errText)
}

func decodePublishResp(d *wal.Decoder) publishOutcome {
	return publishOutcome{
		status:     d.U8(),
		retryAfter: int(d.U32()),
		mapVer:     d.U64(),
		errText:    d.Str(),
	}
}

func encodeDeliveriesResp(e *wal.Encoder, owned bool, ds []notif.Delivery) {
	e.Bool(owned)
	e.U32(uint32(len(ds)))
	for i := range ds {
		encodeDelivery(e, &ds[i])
	}
}

func decodeDeliveriesResp(d *wal.Decoder) (bool, []notif.Delivery) {
	owned := d.Bool()
	n := d.Count(80, "deliveries")
	ds := make([]notif.Delivery, 0, n)
	for i := 0; i < n; i++ {
		ds = append(ds, decodeDelivery(d))
	}
	return owned, ds
}

// nodeHealth is the wire form of one node's health report.
type nodeHealth struct {
	Name        string
	Role        string
	MapVersion  uint64
	OwnedShards []int
	Rounds      []int // parallel to OwnedShards
	Users       int
	QueueDepth  int
	Errs        []string
}

func encodeNodeHealth(e *wal.Encoder, h nodeHealth) {
	e.Str(h.Name)
	e.Str(h.Role)
	e.U64(h.MapVersion)
	e.U32(uint32(len(h.OwnedShards)))
	for i, s := range h.OwnedShards {
		e.U32(uint32(s))
		e.I64(int64(h.Rounds[i]))
	}
	e.U32(uint32(h.Users))
	e.U32(uint32(h.QueueDepth))
	e.U32(uint32(len(h.Errs)))
	for _, s := range h.Errs {
		e.Str(s)
	}
}

func decodeNodeHealth(d *wal.Decoder) nodeHealth {
	h := nodeHealth{
		Name:       d.Str(),
		Role:       d.Str(),
		MapVersion: d.U64(),
	}
	n := d.Count(12, "owned shards")
	for i := 0; i < n; i++ {
		h.OwnedShards = append(h.OwnedShards, int(d.U32()))
		h.Rounds = append(h.Rounds, int(d.I64()))
	}
	h.Users = int(d.U32())
	h.QueueDepth = int(d.U32())
	ne := d.Count(4, "health errors")
	for i := 0; i < ne; i++ {
		h.Errs = append(h.Errs, d.Str())
	}
	return h
}

// encodeReport serializes a metrics.Report with LevelCounts in ascending
// level order, so identical reports encode identically.
func encodeReport(e *wal.Encoder, r metrics.Report) {
	e.I64(int64(r.Users))
	e.I64(int64(r.Arrived))
	e.I64(int64(r.ClickedTotal))
	e.I64(int64(r.Delivered))
	e.I64(r.DeliveredBytes)
	e.F64(r.UtilitySum)
	e.F64(r.TrueUtilitySum)
	e.I64(int64(r.ClickedAndDelivered))
	e.I64(int64(r.DeliveredBeforeClick))
	e.F64(r.EnergyJ)
	e.I64(int64(r.DelayRoundsSum))
	levels := make([]int, 0, len(r.LevelCounts))
	for lvl := range r.LevelCounts {
		levels = append(levels, lvl)
	}
	sort.Ints(levels)
	e.U32(uint32(len(levels)))
	for _, lvl := range levels {
		e.I64(int64(lvl))
		e.I64(int64(r.LevelCounts[lvl]))
	}
	e.I64(int64(r.TransferFailures))
	e.I64(int64(r.RetriedDeliveries))
	e.I64(int64(r.DegradedDeliveries))
	e.I64(int64(r.Dropped))
	e.F64(r.WastedEnergyJ)
	e.F64(r.DelayP50Rounds)
	e.F64(r.DelayP95Rounds)
}

func decodeReport(d *wal.Decoder) metrics.Report {
	r := metrics.Report{
		Users:                int(d.I64()),
		Arrived:              int(d.I64()),
		ClickedTotal:         int(d.I64()),
		Delivered:            int(d.I64()),
		DeliveredBytes:       d.I64(),
		UtilitySum:           d.F64(),
		TrueUtilitySum:       d.F64(),
		ClickedAndDelivered:  int(d.I64()),
		DeliveredBeforeClick: int(d.I64()),
		EnergyJ:              d.F64(),
		DelayRoundsSum:       int(d.I64()),
	}
	n := d.Count(16, "level counts")
	if n > 0 {
		r.LevelCounts = make(map[int]int, n)
	}
	for i := 0; i < n; i++ {
		lvl := int(d.I64())
		r.LevelCounts[lvl] = int(d.I64())
	}
	r.TransferFailures = int(d.I64())
	r.RetriedDeliveries = int(d.I64())
	r.DegradedDeliveries = int(d.I64())
	r.Dropped = int(d.I64())
	r.WastedEnergyJ = d.F64()
	r.DelayP50Rounds = d.F64()
	r.DelayP95Rounds = d.F64()
	return r
}

func encodeBuckets(e *wal.Encoder, bs []metrics.Bucket) {
	e.U32(uint32(len(bs)))
	for _, b := range bs {
		e.F64(b.UpperBound)
		e.U64(b.Count)
	}
}

func decodeBuckets(d *wal.Decoder) []metrics.Bucket {
	n := d.Count(16, "buckets")
	bs := make([]metrics.Bucket, 0, n)
	for i := 0; i < n; i++ {
		bs = append(bs, metrics.Bucket{UpperBound: d.F64(), Count: d.U64()})
	}
	return bs
}

// nodeStats is the wire form of one node's FrameStatsResp: the merged
// report + delay histogram of its owned shards plus the ingest rejection
// counters, ready for the router's Report.Merge/MergeBuckets aggregation.
type nodeStats struct {
	Report        metrics.Report
	DelayBuckets  []metrics.Bucket
	Backpressured uint64
	Dropped       uint64
}

func encodeNodeStats(e *wal.Encoder, s nodeStats) {
	encodeReport(e, s.Report)
	encodeBuckets(e, s.DelayBuckets)
	e.U64(s.Backpressured)
	e.U64(s.Dropped)
}

func decodeNodeStats(d *wal.Decoder) nodeStats {
	return nodeStats{
		Report:        decodeReport(d),
		DelayBuckets:  decodeBuckets(d),
		Backpressured: d.U64(),
		Dropped:       d.U64(),
	}
}

// decodeErr finishes a decode, converting a latched decoder error into a
// labeled error value.
func decodeErr(d *wal.Decoder, what string) error {
	if err := d.Err(); err != nil {
		return fmt.Errorf("server: decoding %s: %w", what, err)
	}
	return nil
}
