package server

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/lyapunov"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/sched"
	"github.com/richnote/richnote/internal/wal"
)

// Per-shard durability (DESIGN.md §12). Two files per shard under
// Config.WALDir:
//
//   - shard-<id>.wal — append-only log of accepted publishes (recPublish)
//     and completed rounds (recRound), framed by internal/wal.
//   - shard-<id>.snap — the latest compacted snapshot: a header binding it
//     to this shard and configuration, the log sequence number it
//     supersedes, the full canonical shard state, and a trailing CRC.
//
// Recovery loads the snapshot, replays log records with seq beyond the
// snapshot's, truncates any torn tail, and rewrites a fresh snapshot so a
// crash loop never re-replays unbounded history. Replay re-runs the exact
// code paths of the original run (accept, runRound) on re-seeded RNG
// streams fast-forwarded to their snapshotted draw counts, which is what
// makes the recovered state bit-identical rather than merely equivalent.

// WAL record types.
const (
	recPublish byte = 1
	recRound   byte = 2
)

// Snapshot header framing.
const (
	snapMagic = "RNSNAP"
	// snapVersion 2: DeviceState's materialized BudgetBalance became the
	// lazy (BudgetBase, BudgetPendingRounds) pair and gained NextRound, so
	// a recovered device materializes accrual at the same future operation
	// the crashed one would have — a bit-identity requirement, not just a
	// format change. v1 snapshots are not readable.
	snapVersion = 2
)

func (sh *shard) walPath() string {
	return filepath.Join(sh.srv.cfg.WALDir, fmt.Sprintf("shard-%d.wal", sh.id))
}

func (sh *shard) snapPath() string {
	return filepath.Join(sh.srv.cfg.WALDir, fmt.Sprintf("shard-%d.snap", sh.id))
}

// logPublish appends one accepted publication to the shard log. Called at
// the top of accept outside replay; the encoder and the writer's own
// scratch are reused, so the steady-state append allocates nothing.
//
// richnote:allocfree
// richnote:codecpair(publishRecord) — replayed by decodeEnvelope.
func (sh *shard) logPublish(env envelope) {
	sh.walEnc.Reset()
	e := &sh.walEnc
	e.I64(int64(env.topic.Kind))
	e.I64(env.topic.Entity)
	e.I64(int64(env.user))
	encodeItem(e, env.item)
	if _, err := sh.log.Append(recPublish, e.Bytes()); err != nil {
		sh.lastErr = fmt.Errorf("server: wal: %w", err)
	}
}

// logRound appends the just-completed round index and either compacts into
// a snapshot (every SnapshotEvery rounds) or commits the round boundary
// per the fsync policy.
func (sh *shard) logRound(completed int) {
	sh.walEnc.Reset()
	sh.walEnc.I64(int64(completed))
	if _, err := sh.log.Append(recRound, sh.walEnc.Bytes()); err != nil {
		sh.lastErr = fmt.Errorf("server: wal: %w", err)
		return
	}
	if every := sh.srv.cfg.SnapshotEvery; every > 0 && sh.round%every == 0 {
		if err := sh.writeSnapshot(); err != nil {
			sh.lastErr = err
			// Snapshot failed: fall back to syncing the log so this round
			// is durable the replay way.
			if serr := sh.log.Sync(); serr != nil {
				sh.lastErr = fmt.Errorf("server: wal: %w", serr)
			}
		}
		return
	}
	if err := sh.log.Commit(); err != nil {
		sh.lastErr = fmt.Errorf("server: wal: %w", err)
	}
}

// writeSnapshot atomically writes the shard's full state to the snapshot
// file and compacts the log. The snapshot records the log's current
// sequence number: a crash between the snapshot rename and the log
// truncation leaves stale records in the log, and replay skips them by
// sequence comparison.
func (sh *shard) writeSnapshot() error {
	sh.settleAll()
	sh.snapEnc.Reset()
	e := &sh.snapEnc
	e.Str(snapMagic)
	e.U32(snapVersion)
	e.U32(uint32(sh.id))
	e.I64(sh.srv.cfg.Seed)
	f := sh.srv.cfg.Faults
	e.F64(f.CellLoss)
	e.F64(f.WifiLoss)
	e.F64(f.CellDisconnect)
	e.F64(f.WifiDisconnect)
	e.U64(sh.log.Seq())
	sh.encodeState(e)
	e.U32(crc32.ChecksumIEEE(e.Bytes()))
	buf := e.Bytes()
	if err := wal.WriteFileAtomic(sh.snapPath(), func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	}); err != nil {
		return fmt.Errorf("server: snapshot shard %d: %w", sh.id, err)
	}
	if err := sh.log.Reset(); err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	return nil
}

// closeWAL flushes durability state on graceful shutdown: a final snapshot
// (so a clean restart never replays) with a log-sync fallback, then closes
// the log.
func (sh *shard) closeWAL() {
	if sh.log == nil {
		return
	}
	if err := sh.writeSnapshot(); err != nil {
		sh.lastErr = err
		if serr := sh.log.Sync(); serr != nil {
			sh.lastErr = fmt.Errorf("server: wal: %w", serr)
		}
	}
	if err := sh.log.Close(); err != nil {
		sh.lastErr = fmt.Errorf("server: wal: %w", err)
	}
	sh.log = nil
}

// crashAbort emulates the process dying without warning: the log file is
// closed with its user-space buffer discarded, exactly what kill -9 leaves
// on disk. Only reachable through Server.CrashStop (tests).
func (sh *shard) crashAbort() {
	if sh.log == nil {
		return
	}
	if err := sh.log.Abort(); err != nil {
		sh.lastErr = err
	}
	sh.log = nil
}

// openWAL restores the shard from its snapshot (if any), replays the log
// on top, truncates any torn tail and leaves the shard with an open log
// and a fresh snapshot. Called from New before the shard goroutine starts,
// so direct state mutation is safe.
func (sh *shard) openWAL() error {
	snapSeq, err := sh.loadSnapshot()
	if err != nil {
		return err
	}
	maxSeq := snapSeq
	sh.replaying = true
	res, err := wal.ReplayFile(sh.walPath(), func(seq uint64, typ byte, payload []byte) error {
		if seq <= snapSeq {
			return nil // superseded: the snapshot already contains its effect
		}
		d := wal.NewDecoder(payload)
		switch typ {
		case recPublish:
			env := decodeEnvelope(d)
			if d.Err() != nil {
				return fmt.Errorf("server: wal replay shard %d seq %d: %w", sh.id, seq, d.Err())
			}
			sh.accept(env)
		case recRound:
			want := int(d.I64())
			if d.Err() != nil {
				return fmt.Errorf("server: wal replay shard %d seq %d: %w", sh.id, seq, d.Err())
			}
			if sh.round != want {
				return fmt.Errorf("server: wal replay shard %d: round record %d but shard at round %d (snapshot/log mismatch)",
					sh.id, want, sh.round)
			}
			if err := sh.runRound(); err != nil {
				return fmt.Errorf("server: wal replay shard %d round %d: %w", sh.id, want, err)
			}
		default:
			return fmt.Errorf("server: wal replay shard %d seq %d: unknown record type %d", sh.id, seq, typ)
		}
		return nil
	})
	sh.replaying = false
	if err != nil {
		return err
	}
	if res.LastSeq > maxSeq {
		maxSeq = res.LastSeq
	}
	w, err := wal.OpenWriter(sh.walPath(), res.GoodSize, maxSeq, sh.srv.cfg.WALFsync)
	if err != nil {
		return err
	}
	sh.log = w
	// New re-compacts every shard (writeSnapshot) once registration is
	// done: the replayed history AND the pre-registered users are folded
	// into a fresh snapshot, so a crash loop never replays more than one
	// interval and a crash before the first compaction cannot lose
	// registrations (they are never logged, only snapshotted).
	sh.publishSnapshot(0)
	return nil
}

// loadSnapshot reads and verifies the snapshot file, restores the shard
// state from it, and returns the log sequence number it supersedes. A
// missing file is an empty (round-zero) shard.
func (sh *shard) loadSnapshot() (uint64, error) {
	path := sh.snapPath()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("server: read snapshot %s: %w", path, err)
	}
	if len(data) < 4 {
		return 0, fmt.Errorf("server: snapshot %s: too short (%d bytes)", path, len(data))
	}
	body := data[:len(data)-4]
	wantCRC := wal.NewDecoder(data[len(data)-4:]).U32()
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, fmt.Errorf("server: snapshot %s: checksum mismatch", path)
	}
	d := wal.NewDecoder(body)
	if magic := d.Str(); magic != snapMagic {
		return 0, fmt.Errorf("server: snapshot %s: bad magic %q", path, magic)
	}
	if v := d.U32(); v != snapVersion {
		return 0, fmt.Errorf("server: snapshot %s: unsupported version %d", path, v)
	}
	if id := d.U32(); id != uint32(sh.id) {
		return 0, fmt.Errorf("server: snapshot %s: belongs to shard %d, not %d", path, id, sh.id)
	}
	if seed := d.I64(); seed != sh.srv.cfg.Seed {
		return 0, fmt.Errorf("server: snapshot %s: seed %d does not match configured %d — restored RNG streams would diverge",
			path, seed, sh.srv.cfg.Seed)
	}
	got := network.FaultConfig{
		CellLoss:       d.F64(),
		WifiLoss:       d.F64(),
		CellDisconnect: d.F64(),
		WifiDisconnect: d.F64(),
	}
	if got != sh.srv.cfg.Faults {
		return 0, fmt.Errorf("server: snapshot %s: fault config %+v does not match configured %+v",
			path, got, sh.srv.cfg.Faults)
	}
	lastSeq := d.U64()
	if d.Err() != nil {
		return 0, fmt.Errorf("server: snapshot %s: %w", path, d.Err())
	}
	if err := sh.restoreState(d); err != nil {
		return 0, fmt.Errorf("server: snapshot %s: %w", path, err)
	}
	if d.Err() != nil {
		return 0, fmt.Errorf("server: snapshot %s: %w", path, d.Err())
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("server: snapshot %s: %d trailing bytes", path, d.Remaining())
	}
	return lastSeq, nil
}

// stateBytes returns the shard's canonical state encoding — the exact
// payload a snapshot would store. Crash-recovery tests compare these byte
// strings between a recovered shard and an uninterrupted reference.
// Parked devices are settled to the shard clock first so the encoding is
// independent of which users the event-driven loop happened to skip.
func (sh *shard) stateBytes() []byte {
	sh.settleAll()
	var e wal.Encoder
	sh.encodeState(&e)
	return append([]byte(nil), e.Bytes()...)
}

// encodeState writes every piece of shard state that must survive a crash,
// in canonical order (users ascending throughout; see each component's
// ExportState for its own ordering guarantees). Excluded on purpose:
// wall-clock telemetry (obs.Recorder spans, LastRound/AvgRound) and
// lastErr, which describe the process, not the schedule.
//
// richnote:codecpair(shardState) — read back by restoreState.
func (sh *shard) encodeState(e *wal.Encoder) {
	e.I64(int64(sh.round))
	e.U64(sh.backpressured.Load())
	e.U64(sh.droppedIngest.Load())

	e.U32(uint32(len(sh.userOrder)))
	for _, u := range sh.userOrder {
		encodeUserConfig(e, sh.userCfgs[u])
		topics := sortedTopics(sh.subs[u])
		e.U32(uint32(len(topics)))
		for _, t := range topics {
			e.I64(int64(t.Kind))
			e.I64(t.Entity)
		}
		encodeDeviceState(e, sh.devices[u].ExportState())
	}

	inboxUsers := make([]notif.UserID, 0, len(sh.inbox))
	for u := range sh.inbox {
		if len(sh.inbox[u]) > 0 {
			inboxUsers = append(inboxUsers, u)
		}
	}
	sortUserIDs(inboxUsers)
	e.U32(uint32(len(inboxUsers)))
	for _, u := range inboxUsers {
		e.I64(int64(u))
		batch := sh.inbox[u]
		e.U32(uint32(len(batch)))
		for i := range batch {
			encodeQueued(e, &batch[i])
		}
	}

	bs := sh.broker.ExportState()
	e.U64(bs.Published)
	e.U64(bs.Delivered)
	e.U32(uint32(len(bs.Pending)))
	for _, p := range bs.Pending {
		e.I64(int64(p.Topic.Kind))
		e.I64(p.Topic.Entity)
		e.I64(int64(p.User))
		e.U32(uint32(len(p.Items)))
		for _, it := range p.Items {
			encodeItem(e, it)
		}
	}

	cs := sh.col.ExportState()
	e.U32(uint32(len(cs.Users)))
	for i := range cs.Users {
		encodeUserMetrics(e, &cs.Users[i])
	}
	e.U32(uint32(len(cs.DelaySamples)))
	for _, v := range cs.DelaySamples {
		e.F64(v)
	}

	sh.feedMu.Lock()
	feedUsers := make([]notif.UserID, 0, len(sh.feeds))
	for u := range sh.feeds {
		if len(sh.feeds[u]) > 0 {
			feedUsers = append(feedUsers, u)
		}
	}
	sortUserIDs(feedUsers)
	e.U32(uint32(len(feedUsers)))
	for _, u := range feedUsers {
		e.I64(int64(u))
		feed := sh.feeds[u]
		e.U32(uint32(len(feed)))
		for i := range feed {
			encodeDelivery(e, &feed[i])
		}
	}
	sh.feedMu.Unlock()
}

// restoreState rebuilds the shard from an encoded snapshot: devices are
// re-created from their stored configs (re-seeding their RNG streams),
// subscriptions re-registered, and every component's state restored
// through its own owner method. Must run on a freshly constructed shard.
//
// richnote:codecpair(shardState)
func (sh *shard) restoreState(d *wal.Decoder) error {
	if len(sh.devices) != 0 {
		return fmt.Errorf("server: restore into shard %d with %d users already registered", sh.id, len(sh.devices))
	}
	sh.round = int(d.I64())
	sh.backpressured.Store(d.U64())
	sh.droppedIngest.Store(d.U64())

	nUsers := d.Count(8, "users")
	for i := 0; i < nUsers; i++ {
		cfg := decodeUserConfig(d)
		if d.Err() != nil {
			return d.Err()
		}
		if err := sh.addUser(cfg); err != nil {
			return err
		}
		nTopics := d.Count(16, "topics")
		for j := 0; j < nTopics; j++ {
			topic := pubsub.TopicID{Kind: notif.TopicKind(d.I64()), Entity: d.I64()}
			if d.Err() != nil {
				return d.Err()
			}
			if err := sh.subscribe(cfg.User, topic); err != nil {
				return err
			}
		}
		ds := decodeDeviceState(d)
		if d.Err() != nil {
			return d.Err()
		}
		if err := sh.devices[cfg.User].RestoreState(ds); err != nil {
			return err
		}
	}

	nInbox := d.Count(12, "inbox users")
	for i := 0; i < nInbox; i++ {
		u := notif.UserID(d.I64())
		n := d.Count(8, "inbox items")
		batch := make([]sched.Queued, 0, n)
		for j := 0; j < n; j++ {
			batch = append(batch, decodeQueued(d))
		}
		if d.Err() != nil {
			return d.Err()
		}
		sh.inbox[u] = batch
	}

	var bs pubsub.BrokerState
	bs.Published = d.U64()
	bs.Delivered = d.U64()
	nPending := d.Count(28, "pending buffers")
	for i := 0; i < nPending; i++ {
		p := pubsub.PendingState{
			Topic: pubsub.TopicID{Kind: notif.TopicKind(d.I64()), Entity: d.I64()},
			User:  notif.UserID(d.I64()),
		}
		n := d.Count(8, "pending items")
		for j := 0; j < n; j++ {
			p.Items = append(p.Items, decodeItem(d))
		}
		bs.Pending = append(bs.Pending, p)
	}
	if d.Err() != nil {
		return d.Err()
	}
	if err := sh.broker.RestoreState(bs); err != nil {
		return err
	}

	var cs metrics.CollectorState
	nMetrics := d.Count(16, "metric users")
	for i := 0; i < nMetrics; i++ {
		cs.Users = append(cs.Users, decodeUserMetrics(d))
	}
	nSamples := d.Count(8, "delay samples")
	for i := 0; i < nSamples; i++ {
		cs.DelaySamples = append(cs.DelaySamples, d.F64())
	}
	if d.Err() != nil {
		return d.Err()
	}
	if err := sh.col.RestoreState(cs); err != nil {
		return err
	}

	nFeeds := d.Count(12, "feed users")
	for i := 0; i < nFeeds; i++ {
		u := notif.UserID(d.I64())
		n := d.Count(16, "feed entries")
		feed := make([]notif.Delivery, 0, n)
		for j := 0; j < n; j++ {
			feed = append(feed, decodeDelivery(d))
		}
		if d.Err() != nil {
			return d.Err()
		}
		sh.setFeed(u, feed)
	}
	if err := d.Err(); err != nil {
		return err
	}
	// Derive the event-driven bookkeeping from the restored ground truth:
	// the dirty set is exactly {¬quiescent ∨ inbox≠∅} and the running
	// aggregates re-fold from per-device state, so replay drives the same
	// dirty-set path the crashed process was on.
	sh.rebuildAgg()
	sh.rebuildDirty()
	return nil
}

// setFeed installs one restored recent-delivery feed.
func (sh *shard) setFeed(u notif.UserID, feed []notif.Delivery) {
	sh.feedMu.Lock()
	sh.feeds[u] = feed
	sh.feedMu.Unlock()
}

func sortUserIDs(ids []notif.UserID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func sortedTopics(set map[pubsub.TopicID]bool) []pubsub.TopicID {
	topics := make([]pubsub.TopicID, 0, len(set))
	for t := range set {
		topics = append(topics, t)
	}
	for i := 1; i < len(topics); i++ {
		for j := i; j > 0; j-- {
			a, b := topics[j], topics[j-1]
			if a.Kind > b.Kind || (a.Kind == b.Kind && a.Entity >= b.Entity) {
				break
			}
			topics[j], topics[j-1] = b, a
		}
	}
	return topics
}

// --- value codecs -----------------------------------------------------------

func encodeItem(e *wal.Encoder, it notif.Item) {
	e.I64(int64(it.ID))
	e.I64(int64(it.Kind))
	e.I64(int64(it.Topic))
	e.I64(int64(it.Sender))
	e.I64(int64(it.Recipient))
	e.Time(it.CreatedAt)
	e.I64(it.Meta.TrackID)
	e.I64(it.Meta.AlbumID)
	e.I64(it.Meta.ArtistID)
	e.F64(it.Meta.TrackPopularity)
	e.F64(it.Meta.AlbumPopularity)
	e.F64(it.Meta.ArtistPopularity)
	e.I64(int64(it.Meta.Genre))
	e.Str(it.Meta.URL)
	e.F64(it.TieStrength)
}

func decodeItem(d *wal.Decoder) notif.Item {
	return notif.Item{
		ID:        notif.ItemID(d.I64()),
		Kind:      notif.ContentKind(d.I64()),
		Topic:     notif.TopicKind(d.I64()),
		Sender:    notif.UserID(d.I64()),
		Recipient: notif.UserID(d.I64()),
		CreatedAt: d.Time(),
		Meta: notif.Metadata{
			TrackID:          d.I64(),
			AlbumID:          d.I64(),
			ArtistID:         d.I64(),
			TrackPopularity:  d.F64(),
			AlbumPopularity:  d.F64(),
			ArtistPopularity: d.F64(),
			Genre:            int(d.I64()),
			URL:              d.Str(),
		},
		TieStrength: d.F64(),
	}
}

// richnote:codecpair(publishRecord)
func decodeEnvelope(d *wal.Decoder) envelope {
	return envelope{
		topic: pubsub.TopicID{Kind: notif.TopicKind(d.I64()), Entity: d.I64()},
		user:  notif.UserID(d.I64()),
		item:  decodeItem(d),
	}
}

func encodeQueued(e *wal.Encoder, q *sched.Queued) {
	encodeItem(e, q.Rich.Item)
	e.F64(q.Rich.ContentUtility)
	e.U32(uint32(len(q.Rich.Presentations)))
	for _, p := range q.Rich.Presentations {
		e.I64(int64(p.Level))
		e.I64(p.Size)
		e.F64(p.Utility)
		e.F64(p.DurationSec)
		e.I64(int64(p.SampleRateHz))
		e.I64(int64(p.BitrateKbps))
		e.Str(p.Label)
	}
	e.I64(int64(q.Rich.ArrivedRound))
	e.Bool(q.Clicked)
	e.I64(int64(q.ClickRound))
	e.F64(q.TrueUc)
	e.I64(int64(q.Attempts))
	e.I64(int64(q.LevelCap))
}

func decodeQueued(d *wal.Decoder) sched.Queued {
	var q sched.Queued
	q.Rich.Item = decodeItem(d)
	q.Rich.ContentUtility = d.F64()
	n := d.Count(44, "presentations")
	q.Rich.Presentations = make([]notif.Presentation, 0, n)
	for i := 0; i < n; i++ {
		q.Rich.Presentations = append(q.Rich.Presentations, notif.Presentation{
			Level:        int(d.I64()),
			Size:         d.I64(),
			Utility:      d.F64(),
			DurationSec:  d.F64(),
			SampleRateHz: int(d.I64()),
			BitrateKbps:  int(d.I64()),
			Label:        d.Str(),
		})
	}
	q.Rich.ArrivedRound = int(d.I64())
	q.Clicked = d.Bool()
	q.ClickRound = int(d.I64())
	q.TrueUc = d.F64()
	q.Attempts = int(d.I64())
	q.LevelCap = int(d.I64())
	return q
}

func encodeDelivery(e *wal.Encoder, dl *notif.Delivery) {
	e.I64(int64(dl.ItemID))
	e.I64(int64(dl.Recipient))
	e.I64(int64(dl.Level))
	e.I64(dl.Size)
	e.F64(dl.Utility)
	e.F64(dl.TrueUtility)
	e.F64(dl.EnergyJ)
	e.I64(int64(dl.Retries))
	e.Bool(dl.Degraded)
	e.I64(int64(dl.ArrivedRound))
	e.I64(int64(dl.DeliveredRound))
	e.Time(dl.DeliveredAt)
}

func decodeDelivery(d *wal.Decoder) notif.Delivery {
	return notif.Delivery{
		ItemID:         notif.ItemID(d.I64()),
		Recipient:      notif.UserID(d.I64()),
		Level:          int(d.I64()),
		Size:           d.I64(),
		Utility:        d.F64(),
		TrueUtility:    d.F64(),
		EnergyJ:        d.F64(),
		Retries:        int(d.I64()),
		Degraded:       d.Bool(),
		ArrivedRound:   int(d.I64()),
		DeliveredRound: int(d.I64()),
		DeliveredAt:    d.Time(),
	}
}

func encodeUserConfig(e *wal.Encoder, cfg UserConfig) {
	e.I64(int64(cfg.User))
	e.I64(int64(cfg.Strategy))
	e.I64(int64(cfg.FixedLevel))
	e.I64(cfg.WeeklyBudgetBytes)
	e.F64(cfg.V)
	e.F64(cfg.KappaJ)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			e.F64(cfg.NetworkMatrix[r][c])
		}
	}
	e.I64(int64(cfg.StartState))
	e.I64(int64(cfg.MaxDeliveriesPerRound))
	e.I64(int64(cfg.MaxAttempts))
	e.Bool(cfg.DegradeOnFailure)
}

func decodeUserConfig(d *wal.Decoder) UserConfig {
	cfg := UserConfig{
		User:              notif.UserID(d.I64()),
		Strategy:          core.StrategyKind(d.I64()),
		FixedLevel:        int(d.I64()),
		WeeklyBudgetBytes: d.I64(),
		V:                 d.F64(),
		KappaJ:            d.F64(),
	}
	var m network.Matrix
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			m[r][c] = d.F64()
		}
	}
	cfg.NetworkMatrix = &m
	cfg.StartState = network.State(d.I64())
	cfg.MaxDeliveriesPerRound = int(d.I64())
	cfg.MaxAttempts = int(d.I64())
	cfg.DegradeOnFailure = d.Bool()
	return cfg
}

func encodeDeviceState(e *wal.Encoder, s sched.DeviceState) {
	e.U32(uint32(len(s.Queue)))
	for i := range s.Queue {
		encodeQueued(e, &s.Queue[i])
	}
	e.F64(s.BudgetBase)
	e.I64(s.BudgetPendingRounds)
	e.F64(s.BudgetDebited)
	e.F64(s.BudgetRefunded)
	e.F64(s.BatteryLevel)
	e.U64(s.BatteryDraws)
	e.I64(int64(s.NetworkState))
	e.U64(s.NetworkDraws)
	e.U64(s.FaultDraws)
	e.I64(int64(s.NextRound))
	e.Bool(s.HasController)
	if s.HasController {
		e.F64(s.Controller.Q)
		e.F64(s.Controller.P)
		e.F64(s.Controller.MaxQ)
		e.F64(s.Controller.SumQ)
		e.I64(int64(s.Controller.Rounds))
		e.F64(s.Controller.DriftSum)
		e.F64(s.Controller.LastL)
		e.Bool(s.Controller.Initialized)
	}
}

func decodeDeviceState(d *wal.Decoder) sched.DeviceState {
	var s sched.DeviceState
	n := d.Count(120, "device queue")
	s.Queue = make([]sched.Queued, 0, n)
	for i := 0; i < n; i++ {
		s.Queue = append(s.Queue, decodeQueued(d))
	}
	s.BudgetBase = d.F64()
	s.BudgetPendingRounds = d.I64()
	s.BudgetDebited = d.F64()
	s.BudgetRefunded = d.F64()
	s.BatteryLevel = d.F64()
	s.BatteryDraws = d.U64()
	s.NetworkState = network.State(d.I64())
	s.NetworkDraws = d.U64()
	s.FaultDraws = d.U64()
	s.NextRound = int(d.I64())
	s.HasController = d.Bool()
	if s.HasController {
		s.Controller = lyapunov.State{
			Q:           d.F64(),
			P:           d.F64(),
			MaxQ:        d.F64(),
			SumQ:        d.F64(),
			Rounds:      int(d.I64()),
			DriftSum:    d.F64(),
			LastL:       d.F64(),
			Initialized: d.Bool(),
		}
	}
	return s
}

func encodeUserMetrics(e *wal.Encoder, u *metrics.UserState) {
	e.I64(int64(u.User))
	e.I64(int64(u.Arrived))
	e.I64(int64(u.ClickedTotal))
	e.I64(int64(u.Delivered))
	e.I64(u.DeliveredBytes)
	e.F64(u.UtilitySum)
	e.F64(u.TrueUtilitySum)
	e.I64(int64(u.ClickedAndDelivered))
	e.I64(int64(u.DeliveredBeforeClick))
	e.F64(u.EnergyJ)
	e.I64(int64(u.DelayRoundsSum))
	e.U32(uint32(len(u.LevelCounts)))
	for _, lc := range u.LevelCounts {
		e.I64(int64(lc.Level))
		e.I64(int64(lc.Count))
	}
	e.I64(int64(u.TransferFailures))
	e.I64(int64(u.RetriedDeliveries))
	e.I64(int64(u.DegradedDeliveries))
	e.I64(int64(u.Dropped))
	e.F64(u.WastedEnergyJ)
}

func decodeUserMetrics(d *wal.Decoder) metrics.UserState {
	u := metrics.UserState{
		User:                 notif.UserID(d.I64()),
		Arrived:              int(d.I64()),
		ClickedTotal:         int(d.I64()),
		Delivered:            int(d.I64()),
		DeliveredBytes:       d.I64(),
		UtilitySum:           d.F64(),
		TrueUtilitySum:       d.F64(),
		ClickedAndDelivered:  int(d.I64()),
		DeliveredBeforeClick: int(d.I64()),
		EnergyJ:              d.F64(),
		DelayRoundsSum:       int(d.I64()),
	}
	n := d.Count(16, "level counts")
	u.LevelCounts = make([]metrics.LevelCount, 0, n)
	for i := 0; i < n; i++ {
		u.LevelCounts = append(u.LevelCounts, metrics.LevelCount{Level: int(d.I64()), Count: int(d.I64())})
	}
	u.TransferFailures = int(d.I64())
	u.RetriedDeliveries = int(d.I64())
	u.DegradedDeliveries = int(d.I64())
	u.Dropped = int(d.I64())
	u.WastedEnergyJ = d.F64()
	return u
}
