package server

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/wal"
)

// dirtyWorkload is a pre-generated publish script: pubs[r] lists the
// publications to issue before ticking round r. Generating the script up
// front (instead of publishing from a shared rng while driving) lets
// several servers replay the identical workload.
type dirtyWorkload struct {
	pubs [][]dirtyPub
}

type dirtyPub struct {
	topic pubsub.TopicID
	user  notif.UserID
	item  notif.Item
}

// genDirtyWorkload builds a seeded bursty workload over nUsers users and
// nRounds rounds: short publish bursts separated by long idle gaps, which
// is exactly the shape where the event-driven loop parks users for many
// rounds and the lazy fast-forward path has real distance to cover.
func genDirtyWorkload(seed int64, nUsers, nRounds int) dirtyWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := dirtyWorkload{pubs: make([][]dirtyPub, nRounds)}
	id := 0
	r := 0
	for r < nRounds {
		// A burst: 1-3 rounds of publishes to a random handful of users,
		// across all three topic cadences.
		burst := 1 + rng.Intn(3)
		for b := 0; b < burst && r < nRounds; b++ {
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				user := notif.UserID(1 + rng.Intn(nUsers))
				var topic pubsub.TopicID
				switch rng.Intn(3) {
				case 0:
					topic = pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 1}
				case 1:
					topic = pubsub.TopicID{Kind: notif.TopicArtistPage, Entity: 2}
				default:
					topic = pubsub.TopicID{Kind: notif.TopicPlaylist, Entity: 3}
				}
				id++
				w.pubs[r] = append(w.pubs[r], dirtyPub{topic: topic, user: user, item: audioItem(id, 99)})
			}
			r++
		}
		// A gap: up to ~12 idle rounds where parked users stay parked.
		r += rng.Intn(13)
	}
	return w
}

// drive replays workload rounds [from, to) against a server.
func (w dirtyWorkload) drive(t *testing.T, s *Server, from, to int) {
	t.Helper()
	ctx := context.Background()
	for r := from; r < to; r++ {
		if r < len(w.pubs) {
			for _, p := range w.pubs[r] {
				if err := s.Publish(p.topic, p.user, p.item); err != nil {
					t.Fatalf("round %d publish: %v", r, err)
				}
			}
		}
		if err := s.Tick(ctx); err != nil {
			t.Fatalf("tick %d: %v", r, err)
		}
	}
}

// dirtyConfig is the equivalence-test config: faults on (so RNG draw
// counters and retry state matter), the paper's three-state walk, a mix
// of strategies, and small snapshot intervals so crashes land both on
// and between compaction boundaries.
func dirtyConfig(walDir string, fullScan bool) Config {
	m := network.PaperMatrix()
	return Config{
		Shards:        2,
		Seed:          42,
		WALDir:        walDir,
		WALFsync:      wal.SyncAlways,
		SnapshotEvery: 7,
		ForceFullScan: fullScan,
		Faults:        network.FaultConfig{CellLoss: 0.2, CellDisconnect: 0.1},
		Default: UserConfig{
			NetworkMatrix:     &m,
			WeeklyBudgetBytes: 1 << 30,
		},
		Users: []UserConfig{
			{User: 1, NetworkMatrix: &m, WeeklyBudgetBytes: 1 << 30},
			{User: 2, NetworkMatrix: &m, Strategy: core.StrategyFIFO, FixedLevel: 2, WeeklyBudgetBytes: 1 << 30},
			{User: 3, NetworkMatrix: &m, Strategy: core.StrategyUtil, WeeklyBudgetBytes: 1 << 29},
		},
	}
}

// TestDirtySetEquivalence is the event-driven acceptance test: over
// randomized seeded traces (bursty publishes, long idle gaps, faults on)
// the dirty-set server must export canonical state byte-identical to a
// full-scan reference running the same script — including across a WAL
// crash and replay at a random round, which must drive the same
// dirty-set path.
func TestDirtySetEquivalence(t *testing.T) {
	const nUsers, nRounds = 9, 40
	for _, seed := range []int64{1, 7331, 902245} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := genDirtyWorkload(seed, nUsers, nRounds)

			full, err := New(dirtyConfig("", true))
			if err != nil {
				t.Fatal(err)
			}
			event, err := New(dirtyConfig("", false))
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			cfg := dirtyConfig(dir, false)
			crashed, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []*Server{full, event, crashed} {
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}
			}

			// Crash the WAL-backed event-driven server at a random round,
			// restore it, and check the recovered shard state matches what
			// the crashed process held.
			crashAt := 5 + rand.New(rand.NewSource(seed^0x5ca1ab1e)).Intn(nRounds-10)
			w.drive(t, crashed, 0, crashAt)
			crashed.CrashStop()
			captured := shardStates(crashed)
			crashed, err = New(cfg)
			if err != nil {
				t.Fatalf("recovery New at round %d: %v", crashAt, err)
			}
			compareStates(t, fmt.Sprintf("recovered at round %d", crashAt), shardStates(crashed), captured)
			if err := crashed.Start(); err != nil {
				t.Fatal(err)
			}
			w.drive(t, crashed, crashAt, nRounds)

			w.drive(t, full, 0, nRounds)
			w.drive(t, event, 0, nRounds)

			full.CrashStop()
			event.CrashStop()
			crashed.CrashStop()

			fullStates := shardStates(full)
			compareStates(t, "event-driven vs full-scan", shardStates(event), fullStates)
			compareStates(t, "crash-recovered event-driven vs full-scan", shardStates(crashed), fullStates)
		})
	}
}

// TestDirtySetInvariant checks the bookkeeping directly: after every
// round of a bursty run, the live dirty set must cover exactly the
// non-quiescent-or-inboxed users (modulo quiescent stragglers the next
// round will park — those may be in the set but never missing from it).
func TestDirtySetInvariant(t *testing.T) {
	w := genDirtyWorkload(99, 6, 25)
	s, err := New(dirtyConfig("", false))
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the shard goroutines are not running, so Tick-free
	// direct driving from the test goroutine is safe (the confined
	// analyzer exempts tests for exactly this pattern).
	for r := 0; r < 25; r++ {
		for _, p := range w.pubs[r] {
			sh := s.shards[s.ShardFor(p.user)]
			sh.accept(envelope{topic: p.topic, user: p.user, item: p.item})
		}
		for _, sh := range s.shards {
			if err := sh.runRound(); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		for _, sh := range s.shards {
			for _, u := range sh.userOrder {
				needsStep := !sh.devices[u].Quiescent() || len(sh.inbox[u]) > 0
				if needsStep && !sh.isDirty[u] {
					t.Fatalf("round %d: user %d needs stepping but is parked", r, u)
				}
			}
			if len(sh.dirty) != len(sh.isDirty) {
				t.Fatalf("round %d: dirty list (%d) and index (%d) diverged", r, len(sh.dirty), len(sh.isDirty))
			}
		}
	}
}

// TestStepDirtyZeroAlloc pins the steady-state allocation budget of the
// event-driven core: with a stable dirty set (always-offline devices
// holding undeliverable queues), stepDirty — catch-up, inbox flush,
// Algorithm 2, aggregate refresh, park/keep bookkeeping — must not
// allocate.
func TestStepDirtyZeroAlloc(t *testing.T) {
	off := network.Matrix{
		{1, 0, 0},
		{1, 0, 0},
		{1, 0, 0},
	}
	cfg := Config{
		Shards: 1,
		Seed:   7,
		Default: UserConfig{
			NetworkMatrix:     &off,
			StartState:        network.StateOff,
			WeeklyBudgetBytes: 1 << 30,
		},
	}
	for u := 1; u <= 8; u++ {
		cfg.Users = append(cfg.Users, UserConfig{
			User:              notif.UserID(u),
			NetworkMatrix:     &off,
			StartState:        network.StateOff,
			WeeklyBudgetBytes: 1 << 30,
		})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shard goroutine never started; drive the confined path directly.
	sh := s.shards[0]
	for u := 1; u <= 8; u++ {
		sh.accept(envelope{topic: friendTopic(1), user: notif.UserID(u), item: audioItem(u, 99)})
	}
	// Warm up: flush the staged publications into queues and let every
	// scratch buffer reach steady-state capacity. The devices are
	// permanently offline, so the queues never drain and all 8 users stay
	// dirty forever.
	for i := 0; i < 8; i++ {
		if err := sh.runRound(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sh.dirty) != 8 {
		t.Fatalf("dirty set is %d users, want all 8 (offline devices cannot drain)", len(sh.dirty))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := sh.stepDirty(); err != nil {
			t.Fatal(err)
		}
		sh.round++
	})
	if allocs != 0 {
		t.Fatalf("stepDirty allocated %.1f objects/op in steady state, want 0", allocs)
	}
}
