package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/core"
	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/wal"
)

// recoveryConfig builds a deterministic config that exercises every
// restorable surface: the paper's three-state network walk and injected
// faults (so RNG draw counters matter), a mix of pre-registered
// strategies, and auto-registration for users first seen via publish.
func recoveryConfig(shards int, walDir string) Config {
	m := network.PaperMatrix()
	return Config{
		Shards:        shards,
		Seed:          42,
		WALDir:        walDir,
		WALFsync:      wal.SyncAlways,
		SnapshotEvery: 5,
		Faults:        network.FaultConfig{CellLoss: 0.2, CellDisconnect: 0.1},
		Default: UserConfig{
			NetworkMatrix:     &m,
			WeeklyBudgetBytes: 1 << 30,
		},
		Users: []UserConfig{
			{User: 1, NetworkMatrix: &m, WeeklyBudgetBytes: 1 << 30},
			{User: 2, NetworkMatrix: &m, Strategy: core.StrategyFIFO, FixedLevel: 2, WeeklyBudgetBytes: 1 << 30},
		},
	}
}

// driveRounds publishes a deterministic workload and ticks rounds
// [from, to). The topic mix spans all three cadences so pending broker
// buffers straddle crash points, and recipients beyond cfg.Users force
// auto-registration.
func driveRounds(t *testing.T, s *Server, from, to int) {
	t.Helper()
	ctx := context.Background()
	for r := from; r < to; r++ {
		for i := 0; i < 3; i++ {
			user := notif.UserID(r%5 + 1)
			topic := pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: 1}
			switch i {
			case 1:
				topic = pubsub.TopicID{Kind: notif.TopicArtistPage, Entity: 2}
			case 2:
				topic = pubsub.TopicID{Kind: notif.TopicPlaylist, Entity: 3}
			}
			if err := s.Publish(topic, user, audioItem(r*100+i, 99)); err != nil {
				t.Fatalf("round %d publish %d: %v", r, i, err)
			}
		}
		if err := s.Tick(ctx); err != nil {
			t.Fatalf("tick %d: %v", r, err)
		}
	}
}

// shardStates captures every shard's canonical state encoding. Only safe
// once the shard goroutines have stopped (or never started).
func shardStates(s *Server) [][]byte {
	out := make([][]byte, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.stateBytes()
	}
	return out
}

func compareStates(t *testing.T, what string, got, want [][]byte) {
	t.Helper()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("%s: shard %d state differs (%d vs %d bytes)", what, i, len(got[i]), len(want[i]))
		}
	}
}

// TestCrashRecoveryBitIdentical is the tentpole acceptance test: a server
// is killed at several points (before its first compaction, mid-interval
// after one, and deep into the run), restored from snapshot + WAL each
// time, and must (a) come back bit-identical to the state the crashed
// process held, and (b) finish the workload bit-identical to a reference
// server that ran the same script uninterrupted with durability off —
// queues, ledgers, Lyapunov Q/P, RNG positions and metrics counters all
// encoded in the compared bytes.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := recoveryConfig(2, dir)

	ref, err := New(recoveryConfig(2, ""))
	if err != nil {
		t.Fatalf("New reference: %v", err)
	}
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// Randomized (seeded) crash points: with SnapshotEvery 5 and three
	// cuts drawn from disjoint windows, the run crashes before its first
	// compaction (pure replay), one interval in (snapshot + replay), and
	// deep into the run with a mid-interval tail.
	rng := rand.New(rand.NewSource(987))
	crashRounds := []int{
		1 + rng.Intn(4),  // [1, 4]: before the first compaction
		6 + rng.Intn(4),  // [6, 9]: one snapshot behind us
		12 + rng.Intn(6), // [12, 17]: several compactions in
	}
	round := 0
	for _, crashAt := range crashRounds {
		driveRounds(t, s, round, crashAt)
		driveRounds(t, ref, round, crashAt)
		round = crashAt

		s.CrashStop()
		captured := shardStates(s)
		s, err = New(cfg)
		if err != nil {
			t.Fatalf("recovery New after crash at round %d: %v", crashAt, err)
		}
		compareStates(t, fmt.Sprintf("recovered at round %d", crashAt), shardStates(s), captured)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}

	driveRounds(t, s, round, 20)
	driveRounds(t, ref, round, 20)
	s.CrashStop()
	ref.CrashStop()
	compareStates(t, "crashed/recovered run vs uninterrupted WAL-off run", shardStates(s), shardStates(ref))
}

// TestWALLoggingDoesNotPerturbSchedule pins the hot-path isolation
// property from the other side: with no crash at all, a WAL-enabled run
// must be bit-identical to a WAL-off run of the same script — logging is
// pure observation.
func TestWALLoggingDoesNotPerturbSchedule(t *testing.T) {
	on, err := New(recoveryConfig(2, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	off, err := New(recoveryConfig(2, ""))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Server{on, off} {
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
	}
	driveRounds(t, on, 0, 8)
	driveRounds(t, off, 0, 8)
	on.CrashStop()
	off.CrashStop()
	compareStates(t, "WAL on vs off", shardStates(on), shardStates(off))
}

// TestCleanShutdownNeedsNoReplay pins the graceful-drain satellite:
// Shutdown must flush a final snapshot and compact the log, so a clean
// restart recovers purely from the snapshot with an empty WAL.
func TestCleanShutdownNeedsNoReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := recoveryConfig(1, dir)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	driveRounds(t, s, 0, 6)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	captured := shardStates(s)

	fi, err := os.Stat(filepath.Join(dir, "shard-0.wal"))
	if err != nil {
		t.Fatalf("stat wal: %v", err)
	}
	if fi.Size() != 0 {
		t.Errorf("wal is %d bytes after clean shutdown, want 0 (compacted into snapshot)", fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0.snap")); err != nil {
		t.Fatalf("snapshot missing after clean shutdown: %v", err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	compareStates(t, "clean restart", shardStates(s2), captured)
}

// crashWithLiveLog runs a single-shard server with compaction pushed out
// of reach, crashes it, and returns the config and the captured state —
// leaving a WAL full of records for the corruption tests to damage.
func crashWithLiveLog(t *testing.T, dir string) (Config, [][]byte) {
	t.Helper()
	cfg := recoveryConfig(1, dir)
	cfg.SnapshotEvery = 1000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	driveRounds(t, s, 0, 5)
	s.CrashStop()
	return cfg, shardStates(s)
}

// TestTornTailTolerated: a partial record at the end of the log is the
// signature of dying mid-write; recovery must drop it, restore the state
// of the durable prefix, and keep the log usable.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	cfg, captured := crashWithLiveLog(t, dir)

	walFile := filepath.Join(dir, "shard-0.wal")
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame header declaring 32 payload bytes, followed by only two:
	// exactly what a crash mid-append leaves behind.
	if _, err := f.Write([]byte{41, 0, 0, 0, 0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	compareStates(t, "torn tail", shardStates(s), captured)

	// The reopened log must keep working past the truncated tail.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	driveRounds(t, s, 5, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after torn-tail recovery: %v", err)
	}
}

// TestTornMidFileRejected: damage with intact records after it is not a
// lost tail but a hole; recovery must refuse the log with a clear error
// instead of silently skipping history.
func TestTornMidFileRejected(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := crashWithLiveLog(t, dir)

	walFile := filepath.Join(dir, "shard-0.wal")
	data, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 64 {
		t.Fatalf("wal only %d bytes; workload too small to corrupt mid-file", len(data))
	}
	data[20] ^= 0xFF // inside the first record's payload, far from the end
	if err := os.WriteFile(walFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := New(cfg); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("recovery from mid-file corruption returned %v, want wal.ErrCorrupt", err)
	}
}

// TestSnapshotsDeepCopy is the aliasing regression test: mutating one
// Snapshots() result must not bleed into later reads.
func TestSnapshotsDeepCopy(t *testing.T) {
	s := startServer(t, testConfig(1))
	ctx := context.Background()
	for i := 1; i <= 4; i++ {
		if err := s.Publish(friendTopic(1), 1, audioItem(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}

	first := s.Snapshots()[0]
	if len(first.DelayBuckets) == 0 {
		t.Fatal("no delay buckets to exercise")
	}
	if len(first.Report.LevelCounts) == 0 {
		t.Fatal("no level counts to exercise; workload delivered nothing")
	}
	first.DelayBuckets[0].Count += 999
	for k := range first.Report.LevelCounts {
		first.Report.LevelCounts[k] += 999
	}

	second := s.Snapshots()[0]
	if second.DelayBuckets[0].Count == first.DelayBuckets[0].Count {
		t.Error("DelayBuckets aliased between Snapshots() reads")
	}
	for k, v := range second.Report.LevelCounts {
		if v == first.Report.LevelCounts[k] {
			t.Errorf("Report.LevelCounts[%d] aliased between Snapshots() reads", k)
		}
	}
}

// TestLogPublishZeroAlloc pins the hot-path budget: logging an accepted
// publish reuses the shard's encoder scratch and the writer's buffers,
// so the steady state allocates nothing.
func TestLogPublishZeroAlloc(t *testing.T) {
	cfg := recoveryConfig(1, t.TempDir())
	cfg.WALFsync = wal.SyncRound
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The shard goroutine is never started, so driving the confined
	// durability path from the test goroutine is safe.
	sh := s.shards[0]
	env := envelope{
		topic: friendTopic(1),
		user:  1,
		item:  audioItem(7, 99),
	}
	for i := 0; i < 8; i++ {
		sh.logPublish(env) // warm the encoder and write buffer
	}
	allocs := testing.AllocsPerRun(200, func() {
		sh.logPublish(env)
	})
	if allocs != 0 {
		t.Fatalf("logPublish allocated %.1f objects/op in steady state, want 0", allocs)
	}
	if sh.lastErr != nil {
		t.Fatalf("logPublish error: %v", sh.lastErr)
	}
}
