package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/richnote/richnote/internal/wal"
)

// Shard handoff (DESIGN.md §13) moves one shard between processes with
// bit-identical state, built on the PR 6 snapshot/restore substrate:
//
//	planned:  source FreezeShard → snapshot bytes over the transport →
//	          target AdoptShardBytes → openWAL restore → goroutine starts
//	crash:    source is dead; target AdoptShardFromWAL reads the shard's
//	          snapshot + WAL tail from shared storage and replays
//
// A shard slot can be adopted only while it is "virgin" in this process —
// never owned, never started, no users — with one exception: a slot this
// process froze for a planned handoff, whose goroutine has fully exited
// (FreezeShard waits on done before returning). Such a slot is recycled
// back to virgin on adopt, which is what lets a failed mid-move adopt
// roll the shard back onto its source instead of wedging it until a
// process restart. Any other used slot still refuses adoption: reviving
// it would race its old goroutine's teardown.

// doFreeze runs on the shard goroutine (the freeze case in run): it
// drains the ingest buffer so every accepted publication is folded into
// broker state, captures the canonical state bytes, compacts everything
// into a final snapshot, closes the log and reports the snapshot file
// bytes for shipment. The goroutine exits right after replying.
func (sh *shard) doFreeze() freezeResp {
	// FreezeShard flipped owned=false before sending the request, so no
	// new publishes are being accepted. Drain whatever arrived before the
	// flip; the loop re-checks because a publish that passed the ownership
	// gate concurrently may complete its buffered send a beat later.
	sh.drainIngest()
	for len(sh.ingest) > 0 {
		sh.drainIngest()
	}
	if sh.log == nil {
		return freezeResp{err: fmt.Errorf("server: freeze shard %d: no WAL (handoff requires durability)", sh.id)}
	}
	state := sh.stateBytes()
	if err := sh.writeSnapshot(); err != nil {
		return freezeResp{err: fmt.Errorf("server: freeze shard %d: %w", sh.id, err)}
	}
	snap, err := os.ReadFile(sh.snapPath())
	if err != nil {
		return freezeResp{err: fmt.Errorf("server: freeze shard %d: read snapshot: %w", sh.id, err)}
	}
	if err := sh.log.Close(); err != nil {
		return freezeResp{err: fmt.Errorf("server: freeze shard %d: close log: %w", sh.id, err)}
	}
	sh.log = nil
	sh.publishSnapshot(0)
	return freezeResp{snapBytes: snap, state: state}
}

// FreezeShard stops serving a shard and returns its final compacted
// snapshot bytes plus the canonical state bytes at freeze. The shard's
// publishes reject with ErrNotOwner from the moment this is called; the
// shard goroutine exits before FreezeShard returns. The snapshot is the
// complete state — the log is compacted into it, so there is no WAL tail
// to ship separately on the planned path.
func (s *Server) FreezeShard(id int) (snap, state []byte, err error) {
	if id < 0 || id >= len(s.shards) {
		return nil, nil, fmt.Errorf("server: freeze: shard %d out of range [0,%d)", id, len(s.shards))
	}
	sh := s.shards[id]
	if !sh.owned.Load() {
		return nil, nil, ErrNotOwner
	}
	if !sh.started.Load() {
		return nil, nil, fmt.Errorf("server: freeze shard %d: not running", id)
	}
	// Ownership off first: the publish path stops accepting before the
	// drain inside doFreeze, so nothing accepted after this line can miss
	// the snapshot.
	sh.owned.Store(false)
	done := sh.doneCh()
	req := freezeReq{reply: make(chan freezeResp, 1)}
	select {
	case sh.freeze <- req:
	case <-done:
		return nil, nil, fmt.Errorf("server: freeze shard %d: already stopped", id)
	}
	resp := <-req.reply
	<-done
	sh.started.Store(false)
	if resp.err == nil {
		// The goroutine exited with the state compacted on disk: this slot
		// is eligible for recycling if the move it was frozen for fails.
		sh.frozen.Store(true)
	}
	return resp.snapBytes, resp.state, resp.err
}

// adoptable validates that a shard slot can receive a handoff.
func (s *Server) adoptable(id int) (*shard, error) {
	if id < 0 || id >= len(s.shards) {
		return nil, fmt.Errorf("server: adopt: shard %d out of range [0,%d)", id, len(s.shards))
	}
	if s.cfg.WALDir == "" {
		return nil, errors.New("server: adopt requires WALDir")
	}
	if s.state.Load() != stateStarted {
		return nil, errors.New("server: adopt: server not running")
	}
	sh := s.shards[id]
	if sh.owned.Load() || sh.started.Load() {
		return nil, fmt.Errorf("server: adopt: shard %d already owned by this process", id)
	}
	if sh.frozen.Load() {
		// Not virgin, but this process froze it and the goroutine has
		// fully exited, so nothing races the reset: recycle the slot so a
		// failed planned move can re-adopt the frozen snapshot here.
		sh.recycle()
	}
	// Safe off-goroutine read: the slot was never owned or started (checked
	// above), so no shard goroutine has ever touched this map.
	users := len(sh.devices) //lint:allow confined virgin-slot check precedes any shard goroutine
	if users != 0 {
		return nil, fmt.Errorf("server: adopt: shard %d slot is not virgin (%d users)", id, users)
	}
	return sh, nil
}

// finishAdopt records the restored state, marks ownership and launches
// the shard goroutine. The restored-state capture happens before the
// goroutine starts, so reading it here is race-free.
func (s *Server) finishAdopt(sh *shard) {
	state := sh.stateBytes()
	s.adoptedMu.Lock()
	s.adopted[sh.id] = state
	s.adoptedMu.Unlock()
	sh.publishSnapshot(0)
	sh.owned.Store(true)
	sh.started.Store(true)
	go sh.run(s.cfg.RoundEvery)
}

// AdoptShardBytes installs a shipped snapshot (the planned-handoff path):
// the bytes are written as the shard's snapshot file in this process's
// WALDir, any stale log file is removed, and the shard restores and
// starts serving. The restored state is byte-checked against the snapshot
// by construction (openWAL's loadSnapshot verifies magic, CRC, seed and
// fault config) and recorded for AdoptedState.
func (s *Server) AdoptShardBytes(id int, snap []byte) error {
	sh, err := s.adoptable(id)
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(sh.snapPath(), func(w io.Writer) error {
		_, werr := w.Write(snap)
		return werr
	}); err != nil {
		return fmt.Errorf("server: adopt shard %d: write snapshot: %w", id, err)
	}
	if err := os.Remove(sh.walPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: adopt shard %d: clear stale log: %w", id, err)
	}
	if err := sh.openWAL(); err != nil {
		return fmt.Errorf("server: adopt shard %d: %w", id, err)
	}
	s.finishAdopt(sh)
	return nil
}

// AdoptShardFromWAL restores a shard from files already present in this
// process's WALDir — the crash-takeover path, which requires the cluster
// to run nodes against shared storage. The dead node's snapshot plus its
// un-compacted WAL tail replay through the standard recovery path, giving
// the same bit-identical guarantee as a restart of the dead node itself.
func (s *Server) AdoptShardFromWAL(id int) error {
	sh, err := s.adoptable(id)
	if err != nil {
		return err
	}
	if err := sh.openWAL(); err != nil {
		return fmt.Errorf("server: adopt shard %d: %w", id, err)
	}
	s.finishAdopt(sh)
	return nil
}

// AdoptedState returns the canonical state bytes a shard restored to when
// it was adopted, or nil if the shard was never adopted by this process.
// Handoff tests compare this against the source's freeze-time state.
func (s *Server) AdoptedState(id int) []byte {
	s.adoptedMu.Lock()
	defer s.adoptedMu.Unlock()
	return append([]byte(nil), s.adopted[id]...)
}

// ShardState returns the canonical state bytes of a running owned shard,
// read on the shard goroutine. Used by the cluster debug frame and the
// handoff integration tests.
func (s *Server) ShardState(ctx context.Context, id int) ([]byte, error) {
	if id < 0 || id >= len(s.shards) {
		return nil, fmt.Errorf("server: shard %d out of range [0,%d)", id, len(s.shards))
	}
	sh := s.shards[id]
	if !sh.owned.Load() {
		return nil, ErrNotOwner
	}
	if !sh.started.Load() {
		// Before Start (or in tests), the shard goroutine is not serving;
		// direct access is the construction-time convention.
		return sh.stateBytes(), nil
	}
	reply := make(chan []byte, 1)
	select {
	case sh.stateq <- reply:
	case <-sh.doneCh():
		return nil, fmt.Errorf("server: shard %d stopped", id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case state := <-reply:
		return state, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
