package server

import (
	"testing"

	"github.com/richnote/richnote/internal/notif"
)

func TestRingDeterministic(t *testing.T) {
	a := newRing(4, 0)
	b := newRing(4, 0)
	for u := notif.UserID(1); u <= 1000; u++ {
		if a.shardFor(u) != b.shardFor(u) {
			t.Fatalf("user %d maps to %d and %d on identical rings", u, a.shardFor(u), b.shardFor(u))
		}
	}
}

func TestRingCoversAllShards(t *testing.T) {
	const shards = 4
	r := newRing(shards, 0)
	counts := make([]int, shards)
	for u := notif.UserID(1); u <= 10000; u++ {
		s := r.shardFor(u)
		if s < 0 || s >= shards {
			t.Fatalf("user %d mapped to out-of-range shard %d", u, s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no users: %v", s, counts)
		}
		// With 128 virtual nodes per shard the split should be roughly
		// uniform; allow a wide band to keep the test robust.
		if n < 10000/shards/3 || n > 10000*3/shards {
			t.Errorf("shard %d load %d is badly skewed: %v", s, n, counts)
		}
	}
}

func TestRingStabilityUnderGrowth(t *testing.T) {
	// Adding a shard should move roughly 1/new_shards of the users — the
	// consistent-hashing property that motivates the ring over a modulus.
	before := newRing(4, 0)
	after := newRing(5, 0)
	const users = 10000
	moved := 0
	for u := notif.UserID(1); u <= users; u++ {
		if before.shardFor(u) != after.shardFor(u) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no users moved when a shard was added; ring is degenerate")
	}
	if moved > users/2 {
		t.Errorf("adding one shard moved %d/%d users; want a minority", moved, users)
	}
}

func TestRingSingleShard(t *testing.T) {
	r := newRing(1, 8)
	for u := notif.UserID(1); u <= 100; u++ {
		if s := r.shardFor(u); s != 0 {
			t.Fatalf("single-shard ring mapped user %d to %d", u, s)
		}
	}
}
