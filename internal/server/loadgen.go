package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/notif"
)

// LoadConfig drives RunLoad, the closed-loop generator behind
// richnote-load: Concurrency workers each publish, wait for the response,
// honor Retry-After on 429, and repeat until Events requests have been
// accepted or the context expires.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs lists multiple fronts (e.g. several routers); requests
	// round-robin across them and a refused connection rotates to the next
	// front on retry. When set it supersedes BaseURL.
	BaseURLs []string
	// Events is the number of publications to deliver; required.
	Events int
	// Concurrency is the closed-loop worker count; defaults to 8.
	Concurrency int
	// Users is the recipient population; defaults to 50. Recipients are
	// drawn uniformly from 1..Users.
	Users int
	// Topics is the number of distinct topic entities per kind; defaults
	// to 10.
	Topics int
	// FriendShare is the fraction of events published on friend feeds
	// (the rest split between artist pages and playlists); defaults to
	// 0.7, matching the paper's feed-frequency skew.
	FriendShare float64
	// Seed makes the synthetic event mix reproducible.
	Seed int64
	// TickEvery forces a POST /v1/tick after every n accepted events, so
	// a manual-mode server advances rounds under load; 0 never ticks.
	TickEvery int
	// MaxRetries bounds per-event 429 retries; defaults to 10.
	MaxRetries int
	// Client defaults to a client with a 10 s timeout.
	Client *http.Client
}

func (c *LoadConfig) applyDefaults() error {
	if len(c.BaseURLs) == 0 {
		if c.BaseURL == "" {
			return errors.New("server: load needs a base URL")
		}
		c.BaseURLs = []string{c.BaseURL}
	}
	if c.Events <= 0 {
		return errors.New("server: load needs a positive event count")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Users <= 0 {
		c.Users = 50
	}
	if c.Topics <= 0 {
		c.Topics = 10
	}
	if c.FriendShare <= 0 || c.FriendShare > 1 {
		c.FriendShare = 0.7
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return nil
}

// LoadResult reports what the closed loop achieved.
type LoadResult struct {
	// Sent counts HTTP publish requests that completed an exchange with
	// the server (including backpressure retries, excluding transport
	// errors, which never reached it); Accepted counts 202 responses,
	// Backpressured counts 429s, Failed counts events abandoned after
	// MaxRetries.
	Sent          int
	Accepted      int
	Backpressured int
	// Unavailable counts 503 responses — a cluster router mid-handoff or a
	// node answering for a shard it no longer owns. Retried like 429s.
	Unavailable int
	Failed      int
	Ticks       int
	Elapsed     time.Duration
	// Throughput is accepted events per second of wall-clock time.
	Throughput float64
	// LatencyMs summarizes per-request publish latency in milliseconds
	// (accepted requests only).
	LatencyMs LatencySummary
}

// LatencySummary is the percentile digest of the publish path.
type LatencySummary struct {
	Count int
	Mean  float64
	P50   float64
	P95   float64
	P99   float64
	Max   float64
}

// String renders the result for CLI output.
func (r LoadResult) String() string {
	return fmt.Sprintf(
		"sent=%d accepted=%d backpressured=%d unavailable=%d failed=%d ticks=%d in %s (%.1f events/s)\n"+
			"publish latency: mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		r.Sent, r.Accepted, r.Backpressured, r.Unavailable, r.Failed, r.Ticks,
		r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.LatencyMs.Mean, r.LatencyMs.P50, r.LatencyMs.P95, r.LatencyMs.P99, r.LatencyMs.Max)
}

// RunLoad executes the closed loop and reports achieved throughput and
// latency percentiles.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if err := cfg.applyDefaults(); err != nil {
		return LoadResult{}, err
	}
	var (
		next        atomic.Int64 // next event index to claim
		sent        atomic.Int64
		accepted    atomic.Int64
		rejected    atomic.Int64
		unavailable atomic.Int64
		failed      atomic.Int64
		ticks       atomic.Int64
		rr          atomic.Int64 // round-robin cursor over BaseURLs
	)
	pick := func() string {
		return cfg.BaseURLs[int(rr.Add(1)-1)%len(cfg.BaseURLs)]
	}
	start := time.Now() //lint:allow wallclock load-generator throughput is measured against the real clock
	var wg sync.WaitGroup
	hists := make([]*metrics.Histogram, cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		hists[w] = &metrics.Histogram{}
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*1_000_003))
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Events || ctx.Err() != nil {
					return
				}
				ok := publishOne(ctx, &cfg, pick, rng, i, &sent, &rejected, &unavailable, hists[w])
				if !ok {
					failed.Add(1)
					continue
				}
				n := accepted.Add(1)
				if cfg.TickEvery > 0 && n%int64(cfg.TickEvery) == 0 {
					if tick(ctx, &cfg, pick()) {
						ticks.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:allow wallclock load-generator throughput is measured against the real clock

	var lat metrics.Histogram
	for _, h := range hists {
		lat.Merge(h)
	}
	res := LoadResult{
		Sent:          int(sent.Load()),
		Accepted:      int(accepted.Load()),
		Backpressured: int(rejected.Load()),
		Unavailable:   int(unavailable.Load()),
		Failed:        int(failed.Load()),
		Ticks:         int(ticks.Load()),
		Elapsed:       elapsed,
		LatencyMs: LatencySummary{
			Count: lat.Count(),
			Mean:  lat.Mean(),
			P50:   lat.Percentile(50),
			P95:   lat.Percentile(95),
			P99:   lat.Percentile(99),
			Max:   lat.Max(),
		},
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Accepted) / elapsed.Seconds()
	}
	return res, ctx.Err()
}

// event synthesizes publication i of the mix: recipient and topic entity
// uniform, topic kind split by FriendShare, audio items with plausible
// popularity scores.
func event(cfg *LoadConfig, rng *rand.Rand, i int) PublishRequest {
	var req PublishRequest
	switch u := rng.Float64(); {
	case u < cfg.FriendShare:
		req.Topic.Kind = "friend-feed"
	case u < cfg.FriendShare+(1-cfg.FriendShare)/2:
		req.Topic.Kind = "artist-page"
	default:
		req.Topic.Kind = "playlist"
	}
	req.Topic.Entity = int64(rng.Intn(cfg.Topics) + 1)
	req.Recipients = []notif.UserID{notif.UserID(rng.Intn(cfg.Users) + 1)}
	req.Item = notif.Item{
		ID:     notif.ItemID(i + 1),
		Kind:   notif.KindAudio,
		Sender: notif.UserID(rng.Intn(cfg.Users) + 1),
		Meta: notif.Metadata{
			TrackID:          int64(i + 1),
			TrackPopularity:  1 + rng.Float64()*99,
			ArtistPopularity: 1 + rng.Float64()*99,
		},
		TieStrength: rng.Float64(),
	}
	return req
}

// transportBackoff returns the capped exponential wait before retrying a
// failed transport attempt: 100 ms doubling per attempt, capped at 2 s.
func transportBackoff(attempt int) time.Duration {
	wait := 100 * time.Millisecond << uint(attempt)
	if wait > 2*time.Second || wait <= 0 {
		wait = 2 * time.Second
	}
	return wait
}

// parseRetryAfter interprets a Retry-After header per RFC 9110 §10.2.3:
// either non-negative delta-seconds or an HTTP-date, resolved against now.
// It returns ok=false for absent or malformed values.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// publishOne posts one event, retrying on backpressure (honoring the
// server's Retry-After), on 503 unavailability (a cluster mid-handoff) and
// on transport errors (capped exponential backoff) within the shared
// MaxRetries budget. Each attempt asks pick() for a front, so a refused
// connection rotates to the next -addr. Only requests that actually
// reached the server count toward sent, so the reported events/s rate is
// honest under connection failures. It records the latency of the accepted
// request and returns false when the event had to be abandoned.
func publishOne(ctx context.Context, cfg *LoadConfig, pick func() string, rng *rand.Rand, i int,
	sent, rejected, unavailable *atomic.Int64, lat *metrics.Histogram) bool {
	body, err := json.Marshal(event(cfg, rng, i))
	if err != nil {
		return false
	}
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if ctx.Err() != nil {
			return false
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, pick()+"/v1/publish", bytes.NewReader(body))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now() //lint:allow wallclock publish latency is real end-to-end time, not virtual time
		resp, err := cfg.Client.Do(req)
		if err != nil {
			// Transient transport error (connection reset, refused dial):
			// back off and retry instead of losing the event. The request
			// never completed, so it does not count as sent.
			select {
			//lint:allow wallclock transport-error backoff really waits on the wall clock
			case <-time.After(transportBackoff(attempt)):
			case <-ctx.Done():
				return false
			}
			continue
		}
		sent.Add(1)
		status := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch status {
		case http.StatusAccepted, http.StatusOK:
			//lint:allow wallclock publish latency is real end-to-end time, not virtual time
			lat.Add(float64(time.Since(t0)) / float64(time.Millisecond))
			return true
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if status == http.StatusTooManyRequests {
				rejected.Add(1)
			} else {
				unavailable.Add(1)
			}
			wait := time.Second
			//lint:allow wallclock RFC 9110 HTTP-date Retry-After is an absolute wall-clock instant
			if d, ok := parseRetryAfter(retryAfter, time.Now()); ok && d > 0 {
				wait = d
			}
			select {
			//lint:allow wallclock Retry-After backoff really waits on the wall clock
			case <-time.After(wait):
			case <-ctx.Done():
				return false
			}
		default:
			return false
		}
	}
	return false
}

// tick posts /v1/tick, returning whether the server advanced.
func tick(ctx context.Context, cfg *LoadConfig, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/tick", nil)
	if err != nil {
		return false
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
