package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/network"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
)

// testConfig builds a deterministic manual-mode config: always-on cellular
// so every round has connectivity, and a generous budget so selection is
// never budget-starved.
func testConfig(shards int) Config {
	m := network.AlwaysCellMatrix()
	return Config{
		Shards: shards,
		Seed:   42,
		Default: UserConfig{
			NetworkMatrix:     &m,
			StartState:        network.StateCell,
			WeeklyBudgetBytes: 1 << 30,
		},
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func friendTopic(entity int64) pubsub.TopicID {
	return pubsub.TopicID{Kind: notif.TopicFriendFeed, Entity: entity}
}

func audioItem(id int, sender notif.UserID) notif.Item {
	return notif.Item{
		ID:     notif.ItemID(id),
		Kind:   notif.KindAudio,
		Sender: sender,
		Meta: notif.Metadata{
			TrackID:          int64(id),
			TrackPopularity:  80,
			ArtistPopularity: 60,
		},
		TieStrength: 0.8,
	}
}

// TestIntegrationEndToEnd is the acceptance-criteria test: a two-shard
// server behind a real HTTP listener, driven by the closed-loop load
// generator — >=100 events, >=3 rounds — then deliveries, metrics and a
// clean shutdown drain are asserted over the API.
func TestIntegrationEndToEnd(t *testing.T) {
	s := startServer(t, testConfig(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Events:      120,
		Concurrency: 4,
		Users:       10,
		Seed:        7,
		TickEvery:   30, // 120 events => 4 synchronized rounds under load
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Accepted < 100 {
		t.Fatalf("accepted %d events, want >= 100 (result: %s)", res.Accepted, res)
	}
	if res.LatencyMs.Count != res.Accepted {
		t.Errorf("latency samples %d != accepted %d", res.LatencyMs.Count, res.Accepted)
	}

	// A few extra rounds flush the slower-cadence topics (artist pages
	// drain every 2nd round, playlists every 4th).
	for i := 0; i < 4; i++ {
		httpTick(t, ts.URL)
	}

	minRound := 1 << 30
	for _, snap := range s.Snapshots() {
		if snap.Round < minRound {
			minRound = snap.Round
		}
		if snap.Err != "" {
			t.Errorf("shard %d reported round error: %s", snap.Shard, snap.Err)
		}
	}
	if minRound < 3 {
		t.Fatalf("slowest shard advanced only %d rounds, want >= 3", minRound)
	}

	// Deliveries must be observable over the API for at least one user.
	total := 0
	for u := 1; u <= 10; u++ {
		var dr DeliveriesResponse
		getJSON(t, fmt.Sprintf("%s/v1/users/%d/deliveries", ts.URL, u), &dr)
		for _, d := range dr.Deliveries {
			if d.Recipient != notif.UserID(u) {
				t.Errorf("user %d feed contains delivery for %d", u, d.Recipient)
			}
		}
		total += len(dr.Deliveries)
	}
	if total == 0 {
		t.Fatal("no deliveries visible over the API after load + rounds")
	}

	// /metrics must expose nonzero service counters.
	body := httpGet(t, ts.URL+"/metrics")
	for _, metric := range []string{
		"richnote_notifications_arrived_total",
		"richnote_notifications_delivered_total",
		"richnote_shard_rounds_total",
	} {
		if !metricNonzero(body, metric) {
			t.Errorf("metric %s absent or zero in exposition:\n%s", metric, body)
		}
	}

	// Shutdown must drain cleanly and flip healthz to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after shutdown: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}
}

func httpTick(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatalf("tick: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tick status = %d", resp.StatusCode)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(httpGet(t, url)), v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

// metricNonzero reports whether any sample line for the metric carries a
// nonzero value.
func metricNonzero(exposition, metric string) bool {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, metric) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.0" {
			return true
		}
	}
	return false
}

func TestManualTicksAdvanceRounds(t *testing.T) {
	s := startServer(t, testConfig(3))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := s.Tick(ctx); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	for _, snap := range s.Snapshots() {
		if snap.Round != 3 {
			t.Errorf("shard %d at round %d after 3 ticks", snap.Shard, snap.Round)
		}
	}
}

func TestTickLifecycleErrors(t *testing.T) {
	s, err := New(testConfig(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Tick(context.Background()); err == nil {
		t.Error("Tick before Start should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := s.Start(); err == nil {
		t.Error("second Start should fail")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Tick(context.Background()); err == nil {
		t.Error("Tick after Shutdown should fail")
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestWallClockTicking(t *testing.T) {
	cfg := testConfig(2)
	cfg.RoundEvery = 5 * time.Millisecond
	s := startServer(t, cfg)
	deadline := time.Now().Add(5 * time.Second)
	for {
		minRound := 1 << 30
		for _, snap := range s.Snapshots() {
			if snap.Round < minRound {
				minRound = snap.Round
			}
		}
		if minRound >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards did not self-tick to round 2 in time (slowest at %d)", minRound)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShutdownDrainsIngest(t *testing.T) {
	s := startServer(t, testConfig(2))
	const events = 40
	for i := 1; i <= events; i++ {
		user := notif.UserID(i%5 + 1)
		if err := s.Publish(friendTopic(1), user, audioItem(i, 99)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	arrived := 0
	for _, snap := range s.Snapshots() {
		if snap.Round < 1 {
			t.Errorf("shard %d ran no final round on shutdown", snap.Shard)
		}
		arrived += snap.Report.Arrived
	}
	if arrived != events {
		t.Errorf("drain delivered %d arrivals to schedulers, want %d", arrived, events)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := testConfig(1)
	cfg.IngestBuffer = 8
	cfg.HighWater = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The shard goroutine is intentionally not started, so ingest only
	// fills; the high-water mark must start rejecting.
	var rejected int
	for i := 1; i <= 10; i++ {
		if err := s.Publish(friendTopic(1), 1, audioItem(i, 2)); err != nil {
			if err != ErrBackpressure {
				t.Fatalf("publish %d: unexpected error %v", i, err)
			}
			rejected++
		}
	}
	if rejected != 6 {
		t.Errorf("rejected %d publications, want 6 (4 fit under high water)", rejected)
	}
	if got := s.Rejected(); got != 6 {
		t.Errorf("Rejected() = %d, want 6", got)
	}

	// The HTTP layer must surface backpressure as 429 + Retry-After.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postPublish(t, ts.URL, PublishRequest{
		Recipients: []notif.UserID{1},
		Item:       audioItem(11, 2),
	}, "friend-feed", 1)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated publish status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

func postPublish(t *testing.T, base string, req PublishRequest, kind string, entity int64) *http.Response {
	t.Helper()
	req.Topic.Kind = kind
	req.Topic.Entity = entity
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/publish: %v", err)
	}
	return resp
}

func TestHTTPBadRequests(t *testing.T) {
	s := startServer(t, testConfig(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"topic":`},
		{"unknown topic kind", `{"topic":{"kind":"podcast","entity":1},"recipients":[1],"item":{"id":1}}`},
		{"no recipients", `{"topic":{"kind":"friend-feed","entity":1},"item":{"id":1}}`},
		{"unknown field", `{"topic":{"kind":"friend-feed","entity":1},"recipients":[1],"item":{"id":1},"extra":true}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/publish", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/users/zero/deliveries")
	if err != nil {
		t.Fatalf("bad user id: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad user id: status = %d, want 400", resp.StatusCode)
	}
}

func TestDeliveriesEmptyForUnknownUser(t *testing.T) {
	s := startServer(t, testConfig(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var dr DeliveriesResponse
	getJSON(t, ts.URL+"/v1/users/12345/deliveries", &dr)
	if dr.Deliveries == nil || len(dr.Deliveries) != 0 {
		t.Errorf("unknown user deliveries = %#v, want empty non-nil slice", dr.Deliveries)
	}
}

func TestAutoRegisterDisabled(t *testing.T) {
	cfg := testConfig(1)
	cfg.DisableAutoRegister = true
	cfg.Users = []UserConfig{{User: 1}}
	s := startServer(t, cfg)
	ctx := context.Background()

	if err := s.Publish(friendTopic(1), 2, audioItem(1, 1)); err != nil {
		t.Fatalf("publish to unknown user should buffer, got %v", err)
	}
	if err := s.Publish(friendTopic(1), 1, audioItem(2, 2)); err != nil {
		t.Fatalf("publish to registered user: %v", err)
	}
	if err := s.Tick(ctx); err != nil {
		t.Fatalf("tick: %v", err)
	}
	snap := s.Snapshots()[0]
	if snap.Users != 1 {
		t.Errorf("users = %d after publish to unknown user, want 1 (no auto-register)", snap.Users)
	}
	if s.Rejected() == 0 {
		t.Error("unknown-user publication was not counted as rejected")
	}
	if snap.Report.Arrived != 1 {
		t.Errorf("arrived = %d, want 1 (only the registered user's item)", snap.Report.Arrived)
	}
}

func TestPreRegisteredDuplicateUser(t *testing.T) {
	cfg := testConfig(2)
	cfg.Users = []UserConfig{{User: 7}, {User: 7}}
	if _, err := New(cfg); err == nil {
		t.Fatal("duplicate pre-registered user should fail New")
	}
}

func TestLoadConfigValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{Events: 10}); err == nil {
		t.Error("RunLoad without BaseURL should fail")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{BaseURL: "http://x"}); err == nil {
		t.Error("RunLoad without Events should fail")
	}
}
