package server

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/notif"
)

// TestMultiProcessCluster is the acceptance test for the multi-node
// deployment: real richnote-serve processes — one router, three shard-owner
// nodes sharing a WAL directory — driven by the real richnote-load binary
// through the router. One node is SIGKILLed mid-run; the router's probes
// must notice, command crash takeover of the orphaned shards from shared
// storage, and the load run must still deliver every event. Afterwards the
// cluster drains and the cross-node conservation invariant is checked over
// the router's aggregated /metrics.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}

	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	binDir := t.TempDir()
	serveBin := filepath.Join(binDir, "richnote-serve")
	loadBin := filepath.Join(binDir, "richnote-load")
	for bin, pkg := range map[string]string{
		serveBin: "./cmd/richnote-serve",
		loadBin:  "./cmd/richnote-load",
	} {
		cmd := exec.Command(goBin, "build", "-race", "-o", bin, pkg)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const shards = 6
	walDir := t.TempDir()
	names := []string{"a", "b", "c"}
	httpAddrs := make(map[string]string, len(names))
	clusterAddrs := make(map[string]string, len(names))
	procs := make(map[string]*exec.Cmd, len(names)+1)
	logs := make(map[string]*bytes.Buffer, len(names)+1)

	startProc := func(name string, args ...string) {
		cmd := exec.Command(serveBin, args...)
		var buf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &buf, &buf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		procs[name] = cmd
		logs[name] = &buf
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}

	// The router's cluster listener address is fixed up front so every
	// node can carry -join from boot: seed nodes announce idempotently,
	// and a restarted node (or router) finds the same rendezvous.
	routerClusterAddr := "127.0.0.1:" + freePort(t)
	startNode := func(name string) {
		startProc(name,
			"-role=node", "-node.name="+name,
			"-addr="+httpAddrs[name], "-cluster.listen="+clusterAddrs[name],
			"-shards="+strconv.Itoa(shards), "-round=0",
			"-wal.dir="+walDir, "-wal.fsync=always",
			"-network=cell",
			"-join="+routerClusterAddr, "-announce.every=250ms",
		)
	}
	for _, name := range names {
		httpAddrs[name] = "127.0.0.1:" + freePort(t)
		clusterAddrs[name] = "127.0.0.1:" + freePort(t)
		startNode(name)
	}
	for _, name := range names {
		waitHTTP(t, "http://"+httpAddrs[name]+"/healthz", 10*time.Second, logs[name])
	}

	routerAddr := "127.0.0.1:" + freePort(t)
	var peerParts []string
	for _, name := range names {
		peerParts = append(peerParts, name+"="+clusterAddrs[name])
	}
	startProc("router",
		"-role=router", "-addr="+routerAddr,
		"-shards="+strconv.Itoa(shards),
		"-peers="+strings.Join(peerParts, ","),
		"-cluster.listen="+routerClusterAddr,
	)
	routerURL := "http://" + routerAddr
	waitHTTP(t, routerURL+"/healthz", 15*time.Second, logs["router"])

	// Drive load through the router in the background.
	load := exec.Command(loadBin,
		"-addr="+routerURL,
		"-events=1500", "-concurrency=6", "-users=40",
		"-tick-every=100", "-timeout=120s",
	)
	var loadOut bytes.Buffer
	load.Stdout, load.Stderr = &loadOut, &loadOut
	if err := load.Start(); err != nil {
		t.Fatalf("starting richnote-load: %v", err)
	}
	loadDone := make(chan error, 1)
	go func() { loadDone <- load.Wait() }()
	t.Cleanup(func() { _ = load.Process.Kill() })

	// Wait until real traffic is flowing, then kill one node cold.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if metricSum(t, httpGetBody(t, routerURL+"/metrics"), "richnote_router_forwarded_publishes_total") >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never saw 200 forwarded publishes\nrouter log:\n%s\nload output:\n%s", logs["router"], &loadOut)
		}
		select {
		case err := <-loadDone:
			t.Fatalf("load finished before the kill (err %v); raise -events\n%s", err, &loadOut)
		case <-time.After(20 * time.Millisecond):
		}
	}
	if err := procs["b"].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL node b: %v", err)
	}
	_, _ = procs["b"].Process.Wait()

	// The router must notice the death, bump the map, and the survivors
	// must cover the whole shard space between them.
	deadline = time.Now().Add(20 * time.Second)
	for {
		var hr RouterHealthResponse
		if err := json.Unmarshal([]byte(httpGetBody(t, routerURL+"/healthz")), &hr); err == nil {
			covered := make(map[int]bool)
			bDown := false
			for _, nh := range hr.Nodes {
				if nh.Name == "b" {
					bDown = !nh.Up
					continue
				}
				for _, s := range nh.OwnedShards {
					covered[s] = true
				}
			}
			if hr.MapVersion >= 2 && bDown && len(covered) == shards {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("takeover never completed\nrouter log:\n%s", logs["router"])
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The load run must finish with every event accepted: events bound for
	// the dead node's shards ride 503 + Retry-After until the survivors own
	// them.
	select {
	case err := <-loadDone:
		if err != nil {
			t.Fatalf("richnote-load failed: %v\n%s", err, &loadOut)
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("richnote-load never finished\n%s", &loadOut)
	}
	out := loadOut.String()
	accepted := intField(t, out, "accepted")
	failed := intField(t, out, "failed")
	if accepted != 1500 || failed != 0 {
		t.Fatalf("load accepted=%d failed=%d, want 1500/0\n%s", accepted, failed, out)
	}

	// Drain every queue through the router, then check conservation on the
	// aggregated exposition: nothing the cluster accepted may be lost in
	// the handoff.
	drained := false
	for i := 0; i < 300; i++ {
		resp, err := http.Post(routerURL+"/v1/tick", "application/json", nil)
		if err != nil {
			t.Fatalf("tick: %v", err)
		}
		resp.Body.Close()
		body := httpGetBody(t, routerURL+"/metrics")
		if metricSum(t, body, "richnote_shard_queue_depth") == 0 &&
			metricSum(t, body, "richnote_shard_broker_pending") == 0 &&
			metricSum(t, body, "richnote_shard_ingest_depth") == 0 {
			drained = true
			break
		}
	}
	if !drained {
		t.Fatal("cluster queues never drained after the run")
	}
	body := httpGetBody(t, routerURL+"/metrics")
	arrived := metricSum(t, body, "richnote_notifications_arrived_total")
	delivered := metricSum(t, body, "richnote_notifications_delivered_total")
	dropped := metricSum(t, body, "richnote_dropped_total")
	if arrived == 0 || arrived != delivered+dropped {
		t.Errorf("conservation violated across processes: arrived %g != delivered %g + dropped %g",
			arrived, delivered, dropped)
	}
	if metricSum(t, body, "richnote_cluster_map_version") < 2 {
		t.Error("map version not bumped in metrics")
	}
	if metricSum(t, body, "richnote_router_handoffs_total") == 0 {
		t.Error("router reported no handoffs after a node death")
	}

	// ---- Rejoin arc: the SIGKILLed node comes back on fresh ports with
	// the same name and WAL dir, announces itself, and the coordinator
	// rebalances its consistent-hash share back onto it via byte-verified
	// planned handoffs (MoveShard fails internally on any byte mismatch,
	// so b owning shards again IS the byte-equality assertion).
	preRejoinVersion := metricSum(t, body, "richnote_cluster_map_version")
	preRejoinHandoffs := metricSum(t, body, "richnote_router_handoffs_total")
	httpAddrs["b"] = "127.0.0.1:" + freePort(t)
	clusterAddrs["b"] = "127.0.0.1:" + freePort(t)
	startNode("b")
	waitHTTP(t, "http://"+httpAddrs["b"]+"/healthz", 10*time.Second, logs["b"])

	deadline = time.Now().Add(30 * time.Second)
	for {
		var hr RouterHealthResponse
		if err := json.Unmarshal([]byte(httpGetBody(t, routerURL+"/healthz")), &hr); err == nil {
			covered := make(map[int]bool)
			bOwns := 0
			for _, nh := range hr.Nodes {
				for _, s := range nh.OwnedShards {
					covered[s] = true
				}
				if nh.Name == "b" && nh.Up {
					bOwns = len(nh.OwnedShards)
				}
			}
			if bOwns > 0 && len(covered) == shards && len(hr.UnassignedShards) == 0 &&
				float64(hr.MapVersion) > preRejoinVersion {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoin rebalance never completed\nrouter log:\n%s\nnode b log:\n%s",
				logs["router"], logs["b"])
		}
		time.Sleep(100 * time.Millisecond)
	}
	body = httpGetBody(t, routerURL+"/metrics")
	if got := metricSum(t, body, "richnote_router_handoffs_total"); got <= preRejoinHandoffs {
		t.Errorf("rejoin moved no shards: handoffs %g, was %g", got, preRejoinHandoffs)
	}
	if got := metricSum(t, body, "richnote_cluster_map_version"); got <= preRejoinVersion {
		t.Errorf("map version %g after rejoin, want > %g", got, preRejoinVersion)
	}

	// Zero lost events across the rejoin: the moved shards carried their
	// state, so the cluster-wide conservation totals still balance.
	arrived = metricSum(t, body, "richnote_notifications_arrived_total")
	delivered = metricSum(t, body, "richnote_notifications_delivered_total")
	dropped = metricSum(t, body, "richnote_dropped_total")
	if arrived == 0 || arrived != delivered+dropped {
		t.Errorf("conservation violated after rejoin: arrived %g != delivered %g + dropped %g",
			arrived, delivered, dropped)
	}

	// ---- Router restart recovery: kill the coordinator cold and start a
	// replacement on the same cluster listener. It must rebuild the map
	// from what the nodes report owning — including everything that moved
	// after the seed assignment — not recompute from seed placement.
	preRestartVersion := metricSum(t, body, "richnote_cluster_map_version")
	if err := procs["router"].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL router: %v", err)
	}
	_, _ = procs["router"].Process.Wait()

	routerAddr2 := "127.0.0.1:" + freePort(t)
	peerParts = peerParts[:0]
	for _, name := range names {
		peerParts = append(peerParts, name+"="+clusterAddrs[name])
	}
	startProc("router2",
		"-role=router", "-addr="+routerAddr2,
		"-shards="+strconv.Itoa(shards),
		"-peers="+strings.Join(peerParts, ","),
		"-cluster.listen="+routerClusterAddr,
	)
	router2URL := "http://" + routerAddr2
	waitHTTP(t, router2URL+"/healthz", 15*time.Second, logs["router2"])

	var hr RouterHealthResponse
	if err := json.Unmarshal([]byte(httpGetBody(t, router2URL+"/healthz")), &hr); err != nil {
		t.Fatalf("restarted router healthz: %v\n%s", err, logs["router2"])
	}
	if float64(hr.MapVersion) <= preRestartVersion {
		t.Errorf("recovered map version %d, want > %g (strictly increasing across router restarts)",
			hr.MapVersion, preRestartVersion)
	}
	if len(hr.UnassignedShards) != 0 {
		t.Errorf("recovery left shards unassigned: %v", hr.UnassignedShards)
	}
	covered := make(map[int]string)
	for _, nh := range hr.Nodes {
		if !nh.Up {
			t.Errorf("node %s down after router restart", nh.Name)
		}
		for _, s := range nh.OwnedShards {
			covered[s] = nh.Name
		}
	}
	if len(covered) != shards {
		t.Errorf("recovered map covers %d of %d shards: %v", len(covered), shards, covered)
	}

	// The replacement serves traffic immediately over the recovered map.
	var pub PublishRequest
	pub.Topic.Kind = "friend-feed"
	pub.Topic.Entity = 1
	pub.Recipients = []notif.UserID{1}
	pub.Item = audioItem(990001, 2)
	pubBody, _ := json.Marshal(pub)
	resp, err := http.Post(router2URL+"/v1/publish", "application/json", bytes.NewReader(pubBody))
	if err != nil {
		t.Fatalf("publish through restarted router: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("publish through restarted router: status %d, want 202\nrouter2 log:\n%s",
			resp.StatusCode, logs["router2"])
	}
}

// freePort reserves an ephemeral TCP port and returns it as a string.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, port, err := net.SplitHostPort(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return port
}

// waitHTTP polls a URL until it answers 200.
func waitHTTP(t *testing.T, url string, timeout time.Duration, log *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never answered 200\nprocess log:\n%s", url, log)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	return httpGet(t, url)
}

// metricSum sums every sample of one metric family in a Prometheus text
// exposition, across label sets.
func metricSum(t *testing.T, body, name string) float64 {
	t.Helper()
	sum := 0.0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Exact family match: next char must be a label brace or space,
		// not a longer metric name.
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// intField extracts `key=N` from richnote-load's summary line.
func intField(t *testing.T, out, key string) int {
	t.Helper()
	m := regexp.MustCompile(key + `=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no %s= in load output:\n%s", key, out)
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return v
}
