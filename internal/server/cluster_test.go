package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/cluster"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/wal"
)

// clusterNodeConfig is testConfig with durability on and no initial shard
// ownership — the router's coordinator assigns shards after startup, the
// way `richnote-serve -role=node` boots.
func clusterNodeConfig(shards int, walDir string) Config {
	cfg := testConfig(shards)
	cfg.WALDir = walDir
	cfg.WALFsync = wal.SyncAlways
	cfg.OwnedShards = []int{}
	return cfg
}

// testCluster is an in-process cluster: shard-owner nodes over real TCP
// transports plus a router, sharing one WAL directory (the shared-storage
// model crash takeover assumes).
type testCluster struct {
	router  *Router
	servers map[string]*Server
	nodes   map[string]*Node
	front   *httptest.Server
}

// startCluster boots named nodes and a router over them. Probing is manual
// (CheckNow) so tests control exactly when deaths are noticed.
func startCluster(t *testing.T, shards int, walDir string, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		servers: make(map[string]*Server, len(names)),
		nodes:   make(map[string]*Node, len(names)),
	}
	var peers []cluster.Node
	for _, name := range names {
		s, err := New(clusterNodeConfig(shards, walDir))
		if err != nil {
			t.Fatalf("New node %s: %v", name, err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("Start node %s: %v", name, err)
		}
		s.SetRole("node")
		n := NewNode(name, s)
		if err := n.Serve("127.0.0.1:0"); err != nil {
			t.Fatalf("Serve node %s: %v", name, err)
		}
		tc.servers[name] = s
		tc.nodes[name] = n
		peers = append(peers, cluster.Node{Name: name, Addr: n.Addr()})
	}
	r, err := NewRouter(RouterConfig{
		Shards:        shards,
		Peers:         peers,
		ProbeInterval: time.Hour, // tests drive probes via CheckNow
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("router Start: %v", err)
	}
	tc.router = r
	tc.front = httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		r.Stop()
		for _, n := range tc.nodes {
			_ = n.Close()
		}
		for _, s := range tc.servers {
			s.CrashStop()
		}
	})
	return tc
}

// publishVia posts one publication through the router and returns the
// response status code.
func publishVia(t *testing.T, base string, user notif.UserID, id int) int {
	t.Helper()
	var req PublishRequest
	req.Topic.Kind = "friend-feed"
	req.Topic.Entity = 1
	req.Recipients = []notif.UserID{user}
	req.Item = audioItem(id, 99)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("publish via router: %v", err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// userOnShard finds a user id the server's ring maps to the given shard.
// The user ring is plain FNV, so small scans can miss a shard entirely.
func userOnShard(t *testing.T, s *Server, shard int) notif.UserID {
	t.Helper()
	for u := 1; u <= 1_000_000; u++ {
		if s.ShardFor(notif.UserID(u)) == shard {
			return notif.UserID(u)
		}
	}
	t.Fatalf("no user in 1..1e6 maps to shard %d", shard)
	return 0
}

// drainCluster ticks through the router until every node's queues empty.
func drainCluster(t *testing.T, tc *testCluster) {
	t.Helper()
	for i := 0; i < 200; i++ {
		httpTick(t, tc.front.URL)
		depth := 0
		for _, s := range tc.servers {
			for _, snap := range s.Snapshots() {
				depth += snap.QueueDepth + snap.BrokerPending
			}
		}
		if depth == 0 {
			return
		}
	}
	t.Fatal("cluster queues never drained")
}

// TestClusterRouterEndToEnd drives the full multi-node data path: the
// router assigns the shard space across two nodes, forwards a closed-loop
// HTTP workload over the binary transport, aggregates health and metrics,
// and the usual conservation invariant holds across node boundaries.
func TestClusterRouterEndToEnd(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	m := tc.router.Map()
	if m == nil || m.Version != 1 {
		t.Fatalf("router map version = %v, want 1", m)
	}
	if got := len(m.OwnedBy("a")) + len(m.OwnedBy("b")); got != 4 {
		t.Fatalf("nodes own %d shards between them, want 4", got)
	}
	for name, s := range tc.servers {
		if want := m.OwnedBy(name); len(s.OwnedShardIDs()) != len(want) {
			t.Errorf("node %s owns %v, map says %v", name, s.OwnedShardIDs(), want)
		}
	}

	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURLs:    []string{tc.front.URL},
		Events:      120,
		Concurrency: 4,
		Users:       12,
		Seed:        7,
		TickEvery:   25,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Accepted != 120 {
		t.Fatalf("accepted %d of 120 events: %s", res.Accepted, res)
	}
	drainCluster(t, tc)

	// Conservation must hold over the union of both nodes' shards.
	var arrived, delivered, dropped int
	for _, s := range tc.servers {
		for _, snap := range s.Snapshots() {
			arrived += snap.Report.Arrived
			delivered += snap.Report.Delivered
			dropped += snap.Report.Dropped
		}
	}
	if arrived == 0 || arrived != delivered+dropped {
		t.Errorf("conservation violated across nodes: arrived %d != delivered %d + dropped %d",
			arrived, delivered, dropped)
	}

	// Deliveries are reachable for every user through the router.
	total := 0
	for u := 1; u <= 12; u++ {
		var dr DeliveriesResponse
		if err := json.Unmarshal([]byte(httpGet(t, tc.front.URL+"/v1/users/"+strconv.Itoa(u)+"/deliveries")), &dr); err != nil {
			t.Fatalf("deliveries user %d: %v", u, err)
		}
		total += len(dr.Deliveries)
	}
	if total == 0 {
		t.Error("no deliveries visible through the router")
	}

	// Aggregated health: router role, both nodes up, full shard coverage.
	var hr RouterHealthResponse
	if err := json.Unmarshal([]byte(httpGet(t, tc.front.URL+"/healthz")), &hr); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hr.Role != "router" || hr.Status != "ok" {
		t.Errorf("healthz role/status = %s/%s, want router/ok", hr.Role, hr.Status)
	}
	covered := 0
	for _, nh := range hr.Nodes {
		if !nh.Up {
			t.Errorf("node %s reported down", nh.Name)
		}
		covered += len(nh.OwnedShards)
	}
	if covered != 4 {
		t.Errorf("healthz covers %d shards, want 4", covered)
	}

	// Aggregated metrics carry both the merged simulation report and the
	// router-tier series.
	body := httpGet(t, tc.front.URL+"/metrics")
	for _, metric := range []string{
		"richnote_notifications_arrived_total",
		"richnote_delivery_delay_rounds_bucket",
		"richnote_router_forwarded_publishes_total",
		"richnote_router_transport_errors_total",
		"richnote_router_reconnects_total",
		"richnote_router_node_up",
		"richnote_cluster_map_version 1",
		"richnote_router_forward_latency_seconds_bucket",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("router metrics missing %s", metric)
		}
	}
}

// TestClusterPlannedHandoffBitIdentical exercises the freeze → ship bytes →
// restore path: after real load, a shard moves between live nodes and the
// restored state must be byte-identical to the frozen one (MoveShard
// verifies this internally and fails otherwise); ownership, the map
// version, and the publish path all follow the move.
func TestClusterPlannedHandoffBitIdentical(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 60; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}

	m := tc.router.Map()
	owned := m.OwnedBy("a")
	if len(owned) == 0 {
		t.Fatal("node a owns nothing; cannot test handoff")
	}
	shard := owned[0]

	if err := tc.router.MoveShard(shard, "b"); err != nil {
		t.Fatalf("MoveShard(%d, b): %v", shard, err)
	}

	next := tc.router.Map()
	if next.Version != m.Version+1 {
		t.Errorf("map version %d after move, want %d", next.Version, m.Version+1)
	}
	if got := next.Owner(shard).Name; got != "b" {
		t.Errorf("shard %d owner = %s, want b", shard, got)
	}
	if tc.servers["a"].Owns(shard) {
		t.Error("source still owns the shard after handoff")
	}
	if !tc.servers["b"].Owns(shard) {
		t.Error("target does not own the shard after handoff")
	}
	if len(tc.servers["b"].AdoptedState(shard)) == 0 {
		t.Error("target recorded no adopted state")
	}

	// The source now refuses the shard's users; the router routes to the
	// new owner and publishes keep flowing.
	user := userOnShard(t, tc.servers["a"], shard)
	if err := tc.servers["a"].Publish(friendTopic(1), user, audioItem(9001, 99)); err != ErrNotOwner {
		t.Errorf("source Publish after handoff = %v, want ErrNotOwner", err)
	}
	if code := publishVia(t, tc.front.URL, user, 9002); code != http.StatusAccepted {
		t.Errorf("publish via router after handoff: status %d", code)
	}
	httpTick(t, tc.front.URL)

	// Moving a shard to its current owner is a no-op, not an error.
	if err := tc.router.MoveShard(shard, "b"); err != nil {
		t.Errorf("MoveShard to current owner: %v", err)
	}
}

// TestClusterCrashTakeoverByteIdentical is the crash half of the handoff
// story: a node dies mid-run (kill -9 emulation), the router's probes
// notice, the survivor adopts the orphaned shards from shared storage, and
// the adopted state is byte-identical to what the dead node held — the WAL
// was fsynced, so nothing is lost.
func TestClusterCrashTakeoverByteIdentical(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 60; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}

	m := tc.router.Map()
	victim := m.OwnedBy("a")
	if len(victim) == 0 {
		t.Fatal("node a owns nothing; cannot test takeover")
	}

	// Kill node a: goroutines stop without draining, transport goes dark.
	sa := tc.servers["a"]
	sa.CrashStop()
	want := make(map[int][]byte, len(victim))
	for _, id := range victim {
		want[id] = sa.shards[id].stateBytes()
	}
	_ = tc.nodes["a"].Close()

	// Two failed probes cross the death threshold and trigger the
	// coordinator: recompute, adopt, broadcast.
	tc.router.Membership().CheckNow()
	tc.router.Membership().CheckNow()

	next := tc.router.Map()
	if next.Version != m.Version+1 {
		t.Fatalf("map version %d after death, want %d", next.Version, m.Version+1)
	}
	if got := len(next.OwnedBy("b")); got != 4 {
		t.Fatalf("survivor owns %d shards, want all 4", got)
	}
	if tc.router.Handoffs() == 0 {
		t.Error("coordinator recorded no handoffs")
	}

	sb := tc.servers["b"]
	for _, id := range victim {
		got := sb.AdoptedState(id)
		if len(got) == 0 {
			t.Errorf("shard %d: survivor has no adopted state", id)
			continue
		}
		if !bytes.Equal(got, want[id]) {
			t.Errorf("shard %d: adopted state differs from crashed node's (%d vs %d bytes)",
				id, len(got), len(want[id]))
		}
	}

	// The cluster serves again: publishes to the dead node's users land on
	// the survivor, rounds advance, conservation holds.
	user := userOnShard(t, sb, victim[0])
	if code := publishVia(t, tc.front.URL, user, 9100); code != http.StatusAccepted {
		t.Errorf("publish after takeover: status %d", code)
	}
	httpTick(t, tc.front.URL)

	var hr RouterHealthResponse
	if err := json.Unmarshal([]byte(httpGet(t, tc.front.URL+"/healthz")), &hr); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	for _, nh := range hr.Nodes {
		if nh.Name == "a" && nh.Up {
			t.Error("dead node still reported up")
		}
		if nh.Name == "b" && !nh.Up {
			t.Error("survivor reported down")
		}
	}
}

// TestClusterBackpressurePropagates pins the end-to-end 429 and 503 paths:
// a node's ErrBackpressure surfaces at the router as 429 + Retry-After,
// and a dead node surfaces as 503 + Retry-After.
func TestClusterBackpressurePropagates(t *testing.T) {
	walDir := t.TempDir()
	cfg := clusterNodeConfig(1, walDir)
	cfg.IngestBuffer = 4
	cfg.HighWater = 1
	// Own the shard from boot but never start its goroutine, so ingest
	// only fills (the same trick TestBackpressure uses) — the router's
	// adopt command no-ops on an already-owned shard.
	cfg.OwnedShards = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode("a", s)
	if err := n.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{
		Shards:        1,
		Peers:         []cluster.Node{{Name: "a", Addr: n.Addr()}},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		front.Close()
		r.Stop()
		_ = n.Close()
		s.CrashStop()
	})

	// No ticks drain the ingest buffer, so the second publish crosses the
	// high-water mark and must come back 429 with Retry-After.
	saw429 := false
	for i := 0; i < 10 && !saw429; i++ {
		var req PublishRequest
		req.Topic.Kind = "friend-feed"
		req.Topic.Entity = 1
		req.Recipients = []notif.UserID{1}
		req.Item = audioItem(i+1, 2)
		body, _ := json.Marshal(req)
		resp, err := http.Post(front.URL+"/v1/publish", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Error("backpressure never propagated as 429")
	}

	// Kill the node's transport: one probe marks it down, and publishes
	// turn into retryable 503s.
	_ = n.Close()
	r.Membership().CheckNow()
	var req PublishRequest
	req.Topic.Kind = "friend-feed"
	req.Topic.Entity = 1
	req.Recipients = []notif.UserID{1}
	req.Item = audioItem(999, 2)
	body, _ := json.Marshal(req)
	resp, err := http.Post(front.URL+"/v1/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("publish to dead node: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestStandaloneClusterFieldsDefault pins the standalone healthz shape the
// cluster fields extended: role standalone, map version 0, every shard
// owned — bit-compatible with single-process deployments.
func TestStandaloneClusterFieldsDefault(t *testing.T) {
	s := startServer(t, testConfig(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var hr HealthResponse
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/healthz")), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Role != "standalone" {
		t.Errorf("role = %q, want standalone", hr.Role)
	}
	if hr.MapVersion != 0 {
		t.Errorf("map_version = %d, want 0", hr.MapVersion)
	}
	if len(hr.OwnedShards) != 2 {
		t.Errorf("owned_shards = %v, want both", hr.OwnedShards)
	}
}
