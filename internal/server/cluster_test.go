package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/cluster"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/transport"
	"github.com/richnote/richnote/internal/wal"
)

// clusterNodeConfig is testConfig with durability on and no initial shard
// ownership — the router's coordinator assigns shards after startup, the
// way `richnote-serve -role=node` boots.
func clusterNodeConfig(shards int, walDir string) Config {
	cfg := testConfig(shards)
	cfg.WALDir = walDir
	cfg.WALFsync = wal.SyncAlways
	cfg.OwnedShards = []int{}
	return cfg
}

// testCluster is an in-process cluster: shard-owner nodes over real TCP
// transports plus a router, sharing one WAL directory (the shared-storage
// model crash takeover assumes).
type testCluster struct {
	router  *Router
	servers map[string]*Server
	nodes   map[string]*Node
	front   *httptest.Server
}

// startCluster boots named nodes and a router over them. Probing is manual
// (CheckNow) so tests control exactly when deaths are noticed.
func startCluster(t *testing.T, shards int, walDir string, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{
		servers: make(map[string]*Server, len(names)),
		nodes:   make(map[string]*Node, len(names)),
	}
	var peers []cluster.Node
	for _, name := range names {
		s, err := New(clusterNodeConfig(shards, walDir))
		if err != nil {
			t.Fatalf("New node %s: %v", name, err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("Start node %s: %v", name, err)
		}
		s.SetRole("node")
		n := NewNode(name, s)
		if err := n.Serve("127.0.0.1:0"); err != nil {
			t.Fatalf("Serve node %s: %v", name, err)
		}
		tc.servers[name] = s
		tc.nodes[name] = n
		peers = append(peers, cluster.Node{Name: name, Addr: n.Addr()})
	}
	r, err := NewRouter(RouterConfig{
		Shards:        shards,
		Peers:         peers,
		Listen:        "127.0.0.1:0", // join announces, ephemeral port
		ProbeInterval: time.Hour,     // tests drive probes via CheckNow
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("router Start: %v", err)
	}
	tc.router = r
	tc.front = httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		r.Stop()
		for _, n := range tc.nodes {
			_ = n.Close()
		}
		for _, s := range tc.servers {
			s.CrashStop()
		}
	})
	return tc
}

// publishVia posts one publication through the router and returns the
// response status code.
func publishVia(t *testing.T, base string, user notif.UserID, id int) int {
	t.Helper()
	var req PublishRequest
	req.Topic.Kind = "friend-feed"
	req.Topic.Entity = 1
	req.Recipients = []notif.UserID{user}
	req.Item = audioItem(id, 99)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("publish via router: %v", err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// userOnShard finds a user id the server's ring maps to the given shard.
// The user ring is plain FNV, so small scans can miss a shard entirely.
func userOnShard(t *testing.T, s *Server, shard int) notif.UserID {
	t.Helper()
	for u := 1; u <= 1_000_000; u++ {
		if s.ShardFor(notif.UserID(u)) == shard {
			return notif.UserID(u)
		}
	}
	t.Fatalf("no user in 1..1e6 maps to shard %d", shard)
	return 0
}

// drainCluster ticks through the router until every node's queues empty.
func drainCluster(t *testing.T, tc *testCluster) {
	t.Helper()
	for i := 0; i < 200; i++ {
		httpTick(t, tc.front.URL)
		depth := 0
		for _, s := range tc.servers {
			for _, snap := range s.Snapshots() {
				depth += snap.QueueDepth + snap.BrokerPending
			}
		}
		if depth == 0 {
			return
		}
	}
	t.Fatal("cluster queues never drained")
}

// TestClusterRouterEndToEnd drives the full multi-node data path: the
// router assigns the shard space across two nodes, forwards a closed-loop
// HTTP workload over the binary transport, aggregates health and metrics,
// and the usual conservation invariant holds across node boundaries.
func TestClusterRouterEndToEnd(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	m := tc.router.Map()
	if m == nil || m.Version != 1 {
		t.Fatalf("router map version = %v, want 1", m)
	}
	if got := len(m.OwnedBy("a")) + len(m.OwnedBy("b")); got != 4 {
		t.Fatalf("nodes own %d shards between them, want 4", got)
	}
	for name, s := range tc.servers {
		if want := m.OwnedBy(name); len(s.OwnedShardIDs()) != len(want) {
			t.Errorf("node %s owns %v, map says %v", name, s.OwnedShardIDs(), want)
		}
	}

	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURLs:    []string{tc.front.URL},
		Events:      120,
		Concurrency: 4,
		Users:       12,
		Seed:        7,
		TickEvery:   25,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Accepted != 120 {
		t.Fatalf("accepted %d of 120 events: %s", res.Accepted, res)
	}
	drainCluster(t, tc)

	// Conservation must hold over the union of both nodes' shards.
	var arrived, delivered, dropped int
	for _, s := range tc.servers {
		for _, snap := range s.Snapshots() {
			arrived += snap.Report.Arrived
			delivered += snap.Report.Delivered
			dropped += snap.Report.Dropped
		}
	}
	if arrived == 0 || arrived != delivered+dropped {
		t.Errorf("conservation violated across nodes: arrived %d != delivered %d + dropped %d",
			arrived, delivered, dropped)
	}

	// Deliveries are reachable for every user through the router.
	total := 0
	for u := 1; u <= 12; u++ {
		var dr DeliveriesResponse
		if err := json.Unmarshal([]byte(httpGet(t, tc.front.URL+"/v1/users/"+strconv.Itoa(u)+"/deliveries")), &dr); err != nil {
			t.Fatalf("deliveries user %d: %v", u, err)
		}
		total += len(dr.Deliveries)
	}
	if total == 0 {
		t.Error("no deliveries visible through the router")
	}

	// Aggregated health: router role, both nodes up, full shard coverage.
	var hr RouterHealthResponse
	if err := json.Unmarshal([]byte(httpGet(t, tc.front.URL+"/healthz")), &hr); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hr.Role != "router" || hr.Status != "ok" {
		t.Errorf("healthz role/status = %s/%s, want router/ok", hr.Role, hr.Status)
	}
	covered := 0
	for _, nh := range hr.Nodes {
		if !nh.Up {
			t.Errorf("node %s reported down", nh.Name)
		}
		covered += len(nh.OwnedShards)
	}
	if covered != 4 {
		t.Errorf("healthz covers %d shards, want 4", covered)
	}

	// Aggregated metrics carry both the merged simulation report and the
	// router-tier series.
	body := httpGet(t, tc.front.URL+"/metrics")
	for _, metric := range []string{
		"richnote_notifications_arrived_total",
		"richnote_delivery_delay_rounds_bucket",
		"richnote_router_forwarded_publishes_total",
		"richnote_router_transport_errors_total",
		"richnote_router_reconnects_total",
		"richnote_router_node_up",
		"richnote_cluster_map_version 1",
		"richnote_router_forward_latency_seconds_bucket",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("router metrics missing %s", metric)
		}
	}
}

// TestClusterPlannedHandoffBitIdentical exercises the freeze → ship bytes →
// restore path: after real load, a shard moves between live nodes and the
// restored state must be byte-identical to the frozen one (MoveShard
// verifies this internally and fails otherwise); ownership, the map
// version, and the publish path all follow the move.
func TestClusterPlannedHandoffBitIdentical(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 60; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}

	m := tc.router.Map()
	owned := m.OwnedBy("a")
	if len(owned) == 0 {
		t.Fatal("node a owns nothing; cannot test handoff")
	}
	shard := owned[0]

	if err := tc.router.MoveShard(shard, "b"); err != nil {
		t.Fatalf("MoveShard(%d, b): %v", shard, err)
	}

	next := tc.router.Map()
	if next.Version != m.Version+1 {
		t.Errorf("map version %d after move, want %d", next.Version, m.Version+1)
	}
	if got := next.Owner(shard).Name; got != "b" {
		t.Errorf("shard %d owner = %s, want b", shard, got)
	}
	if tc.servers["a"].Owns(shard) {
		t.Error("source still owns the shard after handoff")
	}
	if !tc.servers["b"].Owns(shard) {
		t.Error("target does not own the shard after handoff")
	}
	if len(tc.servers["b"].AdoptedState(shard)) == 0 {
		t.Error("target recorded no adopted state")
	}

	// The source now refuses the shard's users; the router routes to the
	// new owner and publishes keep flowing.
	user := userOnShard(t, tc.servers["a"], shard)
	if err := tc.servers["a"].Publish(friendTopic(1), user, audioItem(9001, 99)); err != ErrNotOwner {
		t.Errorf("source Publish after handoff = %v, want ErrNotOwner", err)
	}
	if code := publishVia(t, tc.front.URL, user, 9002); code != http.StatusAccepted {
		t.Errorf("publish via router after handoff: status %d", code)
	}
	httpTick(t, tc.front.URL)

	// Moving a shard to its current owner is a no-op, not an error.
	if err := tc.router.MoveShard(shard, "b"); err != nil {
		t.Errorf("MoveShard to current owner: %v", err)
	}
}

// TestClusterCrashTakeoverByteIdentical is the crash half of the handoff
// story: a node dies mid-run (kill -9 emulation), the router's probes
// notice, the survivor adopts the orphaned shards from shared storage, and
// the adopted state is byte-identical to what the dead node held — the WAL
// was fsynced, so nothing is lost.
func TestClusterCrashTakeoverByteIdentical(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 60; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}

	m := tc.router.Map()
	victim := m.OwnedBy("a")
	if len(victim) == 0 {
		t.Fatal("node a owns nothing; cannot test takeover")
	}

	// Kill node a: goroutines stop without draining, transport goes dark.
	sa := tc.servers["a"]
	sa.CrashStop()
	want := make(map[int][]byte, len(victim))
	for _, id := range victim {
		want[id] = sa.shards[id].stateBytes()
	}
	_ = tc.nodes["a"].Close()

	// Two failed probes cross the death threshold and trigger the
	// coordinator: recompute, adopt, broadcast.
	tc.router.Membership().CheckNow()
	tc.router.Membership().CheckNow()

	next := tc.router.Map()
	if next.Version != m.Version+1 {
		t.Fatalf("map version %d after death, want %d", next.Version, m.Version+1)
	}
	if got := len(next.OwnedBy("b")); got != 4 {
		t.Fatalf("survivor owns %d shards, want all 4", got)
	}
	if tc.router.Handoffs() == 0 {
		t.Error("coordinator recorded no handoffs")
	}

	sb := tc.servers["b"]
	for _, id := range victim {
		got := sb.AdoptedState(id)
		if len(got) == 0 {
			t.Errorf("shard %d: survivor has no adopted state", id)
			continue
		}
		if !bytes.Equal(got, want[id]) {
			t.Errorf("shard %d: adopted state differs from crashed node's (%d vs %d bytes)",
				id, len(got), len(want[id]))
		}
	}

	// The cluster serves again: publishes to the dead node's users land on
	// the survivor, rounds advance, conservation holds.
	user := userOnShard(t, sb, victim[0])
	if code := publishVia(t, tc.front.URL, user, 9100); code != http.StatusAccepted {
		t.Errorf("publish after takeover: status %d", code)
	}
	httpTick(t, tc.front.URL)

	var hr RouterHealthResponse
	if err := json.Unmarshal([]byte(httpGet(t, tc.front.URL+"/healthz")), &hr); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	for _, nh := range hr.Nodes {
		if nh.Name == "a" && nh.Up {
			t.Error("dead node still reported up")
		}
		if nh.Name == "b" && !nh.Up {
			t.Error("survivor reported down")
		}
	}
}

// TestClusterBackpressurePropagates pins the end-to-end 429 and 503 paths:
// a node's ErrBackpressure surfaces at the router as 429 + Retry-After,
// and a dead node surfaces as 503 + Retry-After.
func TestClusterBackpressurePropagates(t *testing.T) {
	walDir := t.TempDir()
	cfg := clusterNodeConfig(1, walDir)
	cfg.IngestBuffer = 4
	cfg.HighWater = 1
	// Own the shard from boot but never start its goroutine, so ingest
	// only fills (the same trick TestBackpressure uses) — the router's
	// adopt command no-ops on an already-owned shard.
	cfg.OwnedShards = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode("a", s)
	if err := n.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{
		Shards:        1,
		Peers:         []cluster.Node{{Name: "a", Addr: n.Addr()}},
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		front.Close()
		r.Stop()
		_ = n.Close()
		s.CrashStop()
	})

	// No ticks drain the ingest buffer, so the second publish crosses the
	// high-water mark and must come back 429 with Retry-After.
	saw429 := false
	for i := 0; i < 10 && !saw429; i++ {
		var req PublishRequest
		req.Topic.Kind = "friend-feed"
		req.Topic.Entity = 1
		req.Recipients = []notif.UserID{1}
		req.Item = audioItem(i+1, 2)
		body, _ := json.Marshal(req)
		resp, err := http.Post(front.URL+"/v1/publish", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
		resp.Body.Close()
	}
	if !saw429 {
		t.Error("backpressure never propagated as 429")
	}

	// Kill the node's transport: one probe marks it down, and publishes
	// turn into retryable 503s.
	_ = n.Close()
	r.Membership().CheckNow()
	var req PublishRequest
	req.Topic.Kind = "friend-feed"
	req.Topic.Entity = 1
	req.Recipients = []notif.UserID{1}
	req.Item = audioItem(999, 2)
	body, _ := json.Marshal(req)
	resp, err := http.Post(front.URL+"/v1/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("publish to dead node: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestStandaloneClusterFieldsDefault pins the standalone healthz shape the
// cluster fields extended: role standalone, map version 0, every shard
// owned — bit-compatible with single-process deployments.
func TestStandaloneClusterFieldsDefault(t *testing.T) {
	s := startServer(t, testConfig(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var hr HealthResponse
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/healthz")), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Role != "standalone" {
		t.Errorf("role = %q, want standalone", hr.Role)
	}
	if hr.MapVersion != 0 {
		t.Errorf("map_version = %d, want 0", hr.MapVersion)
	}
	if len(hr.OwnedShards) != 2 {
		t.Errorf("owned_shards = %v, want both", hr.OwnedShards)
	}
}

// TestRouterDuplicateAddrRejected pins the S4 fix: two peers sharing an
// address would make the probe's address→name resolution ambiguous, so
// construction refuses it.
func TestRouterDuplicateAddrRejected(t *testing.T) {
	_, err := NewRouter(RouterConfig{
		Shards: 2,
		Peers: []cluster.Node{
			{Name: "a", Addr: "127.0.0.1:9000"},
			{Name: "b", Addr: "127.0.0.1:9000"},
		},
	})
	if err == nil {
		t.Fatal("duplicate peer address accepted")
	}
}

// TestClusterMoveRollbackOnFailedAdopt pins the S1 fix: a planned move
// whose adopt fails mid-flight must roll the shard back onto its source —
// before the fix the source had already frozen the shard and the move
// returned, leaving it serving nobody until a process restart.
func TestClusterMoveRollbackOnFailedAdopt(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 40; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}

	m := tc.router.Map()
	owned := m.OwnedBy("a")
	if len(owned) == 0 {
		t.Fatal("node a owns nothing")
	}
	shard := owned[0]

	// Wedge the target: crash b's server but keep its transport answering,
	// so the freeze succeeds, the probe keeps passing, and only the adopt
	// fails ("server not running").
	tc.servers["b"].CrashStop()

	err := tc.router.MoveShard(shard, "b")
	if err == nil {
		t.Fatal("MoveShard onto a crashed server succeeded")
	}

	// The shard must still serve on the source with the map untouched.
	if got := tc.router.Map().Version; got != m.Version {
		t.Errorf("map version changed to %d on a rolled-back move, want %d", got, m.Version)
	}
	if got := tc.router.Map().Owner(shard).Name; got != "a" {
		t.Errorf("shard %d owner = %q after rollback, want a", shard, got)
	}
	if !tc.servers["a"].Owns(shard) {
		t.Fatal("source does not own the shard after rollback: wedged")
	}
	if len(tc.servers["a"].AdoptedState(shard)) == 0 {
		t.Error("rollback did not record adopted state on the source")
	}
	if got := tc.router.Pending(); len(got) != 0 {
		t.Errorf("successful rollback left shards pending: %v", got)
	}

	// Publishes to the shard's users keep landing.
	user := userOnShard(t, tc.servers["a"], shard)
	if code := publishVia(t, tc.front.URL, user, 9001); code != http.StatusAccepted {
		t.Errorf("publish after rollback: status %d, want 202", code)
	}
}

// TestClusterTakeoverMapDoesNotLie pins the S2 fix: when a crash
// takeover's adopt fails, the map must record the shard as unassigned
// and queue a retry — before the fix it broadcast the recomputed map
// anyway, claiming ownership the target had refused, and the shard's
// requests bounced off ErrNotOwner forever.
//
// Placement at 8 shards is pinned by the hash: a owns {0,2,5}; when a
// dies its shards rebalance 0,2→b and 5→c.
func TestClusterTakeoverMapDoesNotLie(t *testing.T) {
	tc := startCluster(t, 8, t.TempDir(), "a", "b", "c")

	for i := 0; i < 40; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%24+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}
	m := tc.router.Map()
	if got := m.OwnedBy("a"); !equalInts(got, []int{0, 2, 5}) {
		t.Fatalf("placement drifted: a owns %v, test assumes [0 2 5]", got)
	}

	// Wedge c (crashed server, live transport) and kill a outright.
	tc.servers["c"].CrashStop()
	tc.servers["a"].CrashStop()
	_ = tc.nodes["a"].Close()
	tc.router.Membership().CheckNow()
	tc.router.Membership().CheckNow() // threshold 2: a is now dead

	// Shards 0,2 adopt onto b; shard 5's adopt onto c fails, so the map
	// must say "nobody" — not "c".
	next := tc.router.Map()
	if next.Version <= m.Version {
		t.Fatalf("map version %d after takeover, want > %d", next.Version, m.Version)
	}
	if got := next.Unassigned(); !equalInts(got, []int{5}) {
		t.Fatalf("Unassigned = %v, want [5]", got)
	}
	if next.Owner(5).Name != "" {
		t.Fatalf("map claims %q owns shard 5, whose adopt failed", next.Owner(5).Name)
	}
	if got := tc.router.Pending(); !equalInts(got, []int{5}) {
		t.Fatalf("Pending = %v, want [5]", got)
	}
	for _, s := range []int{0, 2} {
		if next.Owner(s).Name != "b" || !tc.servers["b"].Owns(s) {
			t.Errorf("shard %d not adopted by b (map says %q)", s, next.Owner(s).Name)
		}
	}

	// The router is honest outward too: healthz lists the gap, and the
	// unassigned shard's users get a retryable 503, not silent loss.
	if body := httpGet(t, tc.front.URL+"/healthz"); !strings.Contains(body, "\"unassigned_shards\":[5]") {
		t.Errorf("healthz does not report the unassigned shard: %s", body)
	}
	user := userOnShard(t, tc.servers["b"], 5)
	var req PublishRequest
	req.Topic.Kind = "friend-feed"
	req.Topic.Entity = 1
	req.Recipients = []notif.UserID{user}
	req.Item = audioItem(9100, 99)
	body, _ := json.Marshal(req)
	resp, err := http.Post(tc.front.URL+"/v1/publish", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("publish to unassigned shard: status %d, want 503", resp.StatusCode)
	}

	// Heal: once c's transport dies too, the next probe passes rehash the
	// whole space onto b — including the pending shard, whose state adopts
	// from the shared WAL dir with nothing lost.
	_ = tc.nodes["c"].Close()
	tc.router.Membership().CheckNow()
	tc.router.Membership().CheckNow()
	final := tc.router.Map()
	if got := len(final.OwnedBy("b")); got != 8 {
		t.Fatalf("survivor owns %d of 8 shards after heal", got)
	}
	if got := tc.router.Pending(); len(got) != 0 {
		t.Fatalf("Pending = %v after heal, want empty", got)
	}
	if code := publishVia(t, tc.front.URL, user, 9101); code != http.StatusAccepted {
		t.Errorf("publish after heal: status %d, want 202", code)
	}
}

// TestRouterTickPartial pins the S5 fix (a tick with a dead node returns
// the partial results honestly, with last-known rounds for the dead
// node's shards) and the S3 fix (a forward-path transport error marks
// the node down immediately).
func TestRouterTickPartial(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 20; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
	}
	httpTick(t, tc.front.URL) // every shard reaches round 1; rounds cached

	bShards := tc.router.Map().OwnedBy("b")
	if len(bShards) == 0 {
		t.Fatal("node b owns nothing")
	}
	bUser := userOnShard(t, tc.servers["b"], bShards[0])

	// Kill b without letting the prober notice.
	tc.servers["b"].CrashStop()
	_ = tc.nodes["b"].Close()

	// S3: the failed forward itself must flip the node down — before the
	// fix only the prober did, so every publish in a probe interval ate a
	// fresh dial timeout.
	if code := publishVia(t, tc.front.URL, bUser, 9200); code != http.StatusServiceUnavailable {
		t.Fatalf("publish to killed node: status %d, want 503", code)
	}
	if tc.router.isUp("b") {
		t.Fatal("transport error on the forward path did not mark the node down")
	}

	// S5: the tick covers a, reports b's shards at their last-known round,
	// and says exactly what it missed.
	resp, err := http.Post(tc.front.URL+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("partial tick status = %d, want 503", resp.StatusCode)
	}
	var tr RouterTickResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Partial || len(tr.Errors) == 0 {
		t.Errorf("partial tick reported partial=%t errors=%v", tr.Partial, tr.Errors)
	}
	if len(tr.Rounds) != 4 {
		t.Fatalf("rounds = %v, want 4 entries", tr.Rounds)
	}
	for _, s := range tc.router.Map().OwnedBy("a") {
		if tr.Rounds[s] != 2 {
			t.Errorf("live shard %d at round %d, want 2 (it ticked)", s, tr.Rounds[s])
		}
	}
	for _, s := range bShards {
		if tr.Rounds[s] != 1 {
			t.Errorf("dead shard %d reports round %d, want last-known 1", s, tr.Rounds[s])
		}
	}
}

// TestClusterRouterRestartRecovery pins the coordinator-restart story: a
// new router over the same peers must rebuild the map from what the
// nodes actually own — recomputing from seed placement would silently
// disown every post-seed move.
func TestClusterRouterRestartRecovery(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")

	for i := 0; i < 40; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%12+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}

	// Diverge from seed placement with one planned move.
	m := tc.router.Map()
	owned := m.OwnedBy("a")
	if len(owned) == 0 {
		t.Fatal("node a owns nothing")
	}
	moved := owned[0]
	if err := tc.router.MoveShard(moved, "b"); err != nil {
		t.Fatalf("MoveShard: %v", err)
	}
	oldVersion := tc.router.Map().Version

	// The router dies; a replacement starts over the same seed peers.
	tc.router.Stop()
	var peers []cluster.Node
	for name, n := range tc.nodes {
		peers = append(peers, cluster.Node{Name: name, Addr: n.Addr()})
	}
	r2, err := NewRouter(RouterConfig{
		Shards:        4,
		Peers:         peers,
		Listen:        "127.0.0.1:0",
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Start(); err != nil {
		t.Fatalf("restarted router Start: %v", err)
	}
	front2 := httptest.NewServer(r2.Handler())
	t.Cleanup(func() {
		front2.Close()
		r2.Stop()
	})

	// Recovery must adopt the nodes' truth: the moved shard stays on b,
	// the version moves strictly forward, nothing is re-adopted.
	rm := r2.Map()
	if rm.Version <= oldVersion {
		t.Errorf("recovered map version %d, want > %d", rm.Version, oldVersion)
	}
	if got := rm.Owner(moved).Name; got != "b" {
		t.Errorf("recovered map says %q owns the moved shard, want b (seed recompute would say a)", got)
	}
	if len(rm.Unassigned()) != 0 {
		t.Errorf("recovery left shards unassigned: %v", rm.Unassigned())
	}
	if tc.servers["a"].Owns(moved) {
		t.Error("recovery disturbed node ownership: a re-owns the moved shard")
	}

	// The new front serves immediately.
	user := userOnShard(t, tc.servers["b"], moved)
	if code := publishVia(t, front2.URL, user, 9300); code != http.StatusAccepted {
		t.Errorf("publish through restarted router: status %d", code)
	}
}

// TestClusterJoinRebalance is the tentpole arc in-process: a brand-new
// node announces itself, the coordinator admits it and moves its
// consistent-hash share (pinned at 8 shards: {1,6} from a) onto it via
// byte-verified planned handoffs, each advancing the map version, with
// zero lost events.
func TestClusterJoinRebalance(t *testing.T) {
	walDir := t.TempDir()
	tc := startCluster(t, 8, walDir, "a", "b")

	for i := 0; i < 60; i++ {
		if code := publishVia(t, tc.front.URL, notif.UserID(i%24+1), i+1); code != http.StatusAccepted {
			t.Fatalf("publish %d: status %d", i, code)
		}
		if i%20 == 19 {
			httpTick(t, tc.front.URL)
		}
	}
	m := tc.router.Map()
	if got := m.OwnedBy("a"); !equalInts(got, []int{0, 1, 2, 5, 6}) {
		t.Fatalf("placement drifted: a owns %v, test assumes [0 1 2 5 6]", got)
	}

	// Boot c the way `richnote-serve -role=node -join=...` does: empty
	// ownership, same shared WAL dir, announce loop against the router's
	// cluster listener.
	sc, err := New(clusterNodeConfig(8, walDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Start(); err != nil {
		t.Fatal(err)
	}
	sc.SetRole("node")
	nc := NewNode("c", sc)
	if err := nc.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nc.Close()
		sc.CrashStop()
	})
	if err := nc.Announce(tc.router.ClusterAddr(), 25*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The rebalance runs on its own goroutine; wait for c's share.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cm := tc.router.Map(); len(cm.OwnedBy("c")) == 2 && nc.Joined() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("join rebalance never completed: c owns %v, joined=%t",
				tc.router.Map().OwnedBy("c"), nc.Joined())
		}
		time.Sleep(10 * time.Millisecond)
	}

	final := tc.router.Map()
	if got := final.OwnedBy("c"); !equalInts(got, []int{1, 6}) {
		t.Fatalf("c owns %v, want the hash share [1 6]", got)
	}
	// Version advanced strictly: +1 membership extension, +1 per move.
	if final.Version < m.Version+3 {
		t.Errorf("map version %d after join, want ≥ %d (extension + 2 moves)", final.Version, m.Version+3)
	}
	// Byte-verified handoffs recorded restored state on the joiner, and
	// the sources dropped ownership.
	for _, s := range []int{1, 6} {
		if len(sc.AdoptedState(s)) == 0 {
			t.Errorf("joiner has no adopted state for shard %d", s)
		}
		if !sc.Owns(s) {
			t.Errorf("joiner does not own shard %d", s)
		}
		if tc.servers["a"].Owns(s) || tc.servers["b"].Owns(s) {
			t.Errorf("a source still owns moved shard %d", s)
		}
	}
	// Untouched shards never moved.
	for _, s := range []int{0, 2, 5} {
		if got := final.Owner(s).Name; got != "a" {
			t.Errorf("shard %d moved to %q; only the joiner's share may move", s, got)
		}
	}

	// Zero lost events: publishes flow to the moved shards' users, and
	// conservation holds over all three nodes after a drain.
	user := userOnShard(t, sc, 1)
	if code := publishVia(t, tc.front.URL, user, 9400); code != http.StatusAccepted {
		t.Errorf("publish to moved shard after join: status %d", code)
	}
	servers := []*Server{tc.servers["a"], tc.servers["b"], sc}
	for i := 0; i < 200; i++ {
		httpTick(t, tc.front.URL)
		depth := 0
		for _, s := range servers {
			for _, snap := range s.Snapshots() {
				depth += snap.QueueDepth + snap.BrokerPending
			}
		}
		if depth == 0 {
			break
		}
	}
	var arrived, delivered, dropped int
	for _, s := range servers {
		for _, snap := range s.Snapshots() {
			arrived += snap.Report.Arrived
			delivered += snap.Report.Delivered
			dropped += snap.Report.Dropped
		}
	}
	if arrived == 0 || arrived != delivered+dropped {
		t.Errorf("conservation violated after join: arrived %d != delivered %d + dropped %d",
			arrived, delivered, dropped)
	}

	// The probe loop now covers c: kill it and the membership notices.
	if got := len(tc.router.Membership().Live()); got != 3 {
		t.Fatalf("membership probes %d nodes after join, want 3", got)
	}
}

// TestClusterJoinValidation pins the announce-time checks: wrong shard
// count, missing WAL dir, a live peer's name at a different address, and
// a live peer's address under a different name are all rejected; a live
// member re-announcing is answered idempotently.
func TestClusterJoinValidation(t *testing.T) {
	tc := startCluster(t, 4, t.TempDir(), "a", "b")
	c := transport.NewClient(tc.router.ClusterAddr(), transport.ClientConfig{})
	defer c.Close()

	announce := func(jr joinReq) joinResp {
		t.Helper()
		var e wal.Encoder
		encodeJoinReq(&e, jr)
		_, raw, err := c.Call(FrameJoin, e.Bytes())
		if err != nil {
			t.Fatalf("FrameJoin: %v", err)
		}
		d := wal.NewDecoder(raw)
		resp := decodeJoinResp(d)
		if err := decodeErr(d, "join response"); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	aAddr := tc.nodes["a"].Addr()
	cases := []struct {
		name string
		req  joinReq
	}{
		{"shard count mismatch", joinReq{Name: "x", Addr: "127.0.0.1:1", Shards: 7, WALDir: "/tmp/w"}},
		{"missing WAL dir", joinReq{Name: "x", Addr: "127.0.0.1:1", Shards: 4}},
		{"live name, new address", joinReq{Name: "a", Addr: "127.0.0.1:1", Shards: 4, WALDir: "/tmp/w"}},
		{"live address, new name", joinReq{Name: "x", Addr: aAddr, Shards: 4, WALDir: "/tmp/w"}},
		{"unreachable joiner", joinReq{Name: "x", Addr: "127.0.0.1:1", Shards: 4, WALDir: "/tmp/w"}},
	}
	for _, tt := range cases {
		if resp := announce(tt.req); resp.Status != joinRejected || resp.ErrText == "" {
			t.Errorf("%s: status=%d err=%q, want rejection with reason", tt.name, resp.Status, resp.ErrText)
		}
	}
	if got := len(tc.router.Membership().Live()); got != 2 {
		t.Fatalf("rejected joins changed membership: %d live", got)
	}

	// A live member's announce is idempotent, not an error.
	resp := announce(joinReq{Name: "a", Addr: aAddr, Shards: 4, WALDir: "/tmp/w"})
	if resp.Status != joinAlreadyMember {
		t.Errorf("re-announce of a live member: status=%d err=%q, want already-member", resp.Status, resp.ErrText)
	}
}

// equalInts compares two int slices (nil == empty).
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
