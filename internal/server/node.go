package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/cluster"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/transport"
	"github.com/richnote/richnote/internal/wal"
)

// Node wraps a Server in the cluster's node role: it owns a subset of the
// shard space (Config.OwnedShards, possibly empty until the coordinator
// assigns some) and serves the binary transport the router and its peers
// speak — publish forwarding, deliveries fetch, tick fan-out, health,
// freeze/adopt handoff commands and stats aggregation. The HTTP API can
// still run alongside for direct inspection; in cluster deployments the
// router is the only HTTP front.
type Node struct {
	name string
	srv  *Server
	ts   *transport.Server

	// Join announce loop (DESIGN.md §15): a node told where the
	// coordinator listens keeps announcing itself until admitted — and
	// keeps announcing after, so a restarted router re-learns it exists.
	announceStop chan struct{}
	announceDone chan struct{}
	joined       atomic.Bool // richnote:atomic — last announce was accepted
}

// NewNode names a server instance for cluster membership. Serve starts
// the transport listener.
func NewNode(name string, srv *Server) *Node {
	return &Node{name: name, srv: srv}
}

// Name returns the node's cluster-wide identity.
func (n *Node) Name() string { return n.name }

// Server returns the wrapped server.
func (n *Node) Server() *Server { return n.srv }

// Serve starts the transport listener on addr (":0" for ephemeral).
func (n *Node) Serve(addr string) error {
	ts, err := transport.Listen(addr, n)
	if err != nil {
		return fmt.Errorf("server: node %s: %w", n.name, err)
	}
	n.ts = ts
	return nil
}

// Addr returns the transport listener address; "" before Serve.
func (n *Node) Addr() string {
	if n.ts == nil {
		return ""
	}
	return n.ts.Addr()
}

// Announce starts the join loop: every interval the node announces
// itself to the coordinator's cluster listener until stopped (Close).
// The loop never gives up and never stops once joined — announces are
// idempotent on the router, cost one tiny frame, and a router restart
// silently un-joins every post-seed node until its next announce folds
// it back in. Requires Serve first (the announce carries the transport
// address the router will dial back).
func (n *Node) Announce(routerAddr string, every time.Duration) error {
	if n.ts == nil {
		return fmt.Errorf("server: node %s: Announce before Serve (no address to advertise)", n.name)
	}
	if n.announceStop != nil {
		return fmt.Errorf("server: node %s: announce loop already running", n.name)
	}
	if every <= 0 {
		every = time.Second
	}
	n.announceStop = make(chan struct{})
	n.announceDone = make(chan struct{})
	go n.announceLoop(routerAddr, every)
	return nil
}

// Joined reports whether the most recent announce was accepted (or
// answered "already a member").
func (n *Node) Joined() bool { return n.joined.Load() }

func (n *Node) announceLoop(routerAddr string, every time.Duration) {
	defer close(n.announceDone)
	c := transport.NewClient(routerAddr, transport.ClientConfig{})
	defer c.Close()
	//lint:allow wallclock announce cadence paces real network retries
	t := time.NewTicker(every)
	defer t.Stop()
	n.announceOnce(c)
	for {
		select {
		case <-n.announceStop:
			return
		case <-t.C:
			n.announceOnce(c)
		}
	}
}

// announceOnce sends one FrameJoin and records the verdict. CallOnce, not
// Call: the loop's own cadence is the retry policy, and doubling dials
// against a down router helps nobody.
func (n *Node) announceOnce(c *transport.Client) {
	var e wal.Encoder
	encodeJoinReq(&e, joinReq{
		Name:   n.name,
		Addr:   n.Addr(),
		Shards: n.srv.Shards(),
		WALDir: n.srv.cfg.WALDir,
	})
	_, resp, err := c.CallOnce(FrameJoin, e.Bytes())
	if err != nil {
		n.joined.Store(false)
		return
	}
	d := wal.NewDecoder(resp)
	jr := decodeJoinResp(d)
	if decodeErr(d, "join response") != nil {
		n.joined.Store(false)
		return
	}
	n.joined.Store(jr.Status == joinAccepted || jr.Status == joinAlreadyMember)
}

// Close stops the announce loop and the transport listener. The wrapped
// Server shuts down separately (Shutdown), so in-flight rounds finish
// cleanly.
func (n *Node) Close() error {
	if n.announceStop != nil {
		close(n.announceStop)
		<-n.announceDone
		n.announceStop = nil
		n.announceDone = nil
	}
	if n.ts == nil {
		return nil
	}
	return n.ts.Close()
}

// frameTimeout bounds the server work behind one frame; generous because
// adopt-time WAL replay is real work.
const frameTimeout = 30 * time.Second

// ServeFrame dispatches one cluster RPC. Implements transport.Handler;
// returning an error makes the transport answer with a FrameError frame.
func (n *Node) ServeFrame(typ byte, payload []byte) (byte, []byte, error) {
	//lint:allow wallclock RPC deadlines bound real I/O and replay work, not scheduling time
	ctx, cancel := context.WithTimeout(context.Background(), frameTimeout)
	defer cancel()
	var e wal.Encoder
	switch typ {
	case FramePing:
		e.Str(n.name)
		return FramePong, e.Bytes(), nil

	case FramePublish:
		d := wal.NewDecoder(payload)
		topic, user, item := decodePublishReq(d)
		if err := decodeErr(d, "publish request"); err != nil {
			return 0, nil, err
		}
		out := publishOutcome{status: publishAccepted, mapVer: n.srv.MapVersion()}
		switch err := n.srv.Publish(topic, user, item); {
		case err == nil:
		case err == ErrBackpressure:
			out.status = publishBackpressure
			out.retryAfter = retryAfterSeconds(n.srv.RetryAfter())
		case err == ErrNotOwner:
			out.status = publishNotOwner
		default:
			out.status = publishError
			out.errText = err.Error()
		}
		encodePublishResp(&e, out)
		return FramePublishResp, e.Bytes(), nil

	case FrameDeliveries:
		d := wal.NewDecoder(payload)
		user := notif.UserID(d.I64())
		if err := decodeErr(d, "deliveries request"); err != nil {
			return 0, nil, err
		}
		owned := n.srv.Owns(n.srv.ShardFor(user))
		var ds []notif.Delivery
		if owned {
			ds = n.srv.Deliveries(user)
		}
		encodeDeliveriesResp(&e, owned, ds)
		return FrameDeliveriesResp, e.Bytes(), nil

	case FrameTick:
		if err := n.srv.Tick(ctx); err != nil {
			return 0, nil, err
		}
		snaps := n.srv.Snapshots()
		e.U32(uint32(len(snaps)))
		for _, sn := range snaps {
			e.U32(uint32(sn.Shard))
			e.I64(int64(sn.Round))
		}
		return FrameTickResp, e.Bytes(), nil

	case FrameHealth:
		encodeNodeHealth(&e, n.health())
		return FrameHealthResp, e.Bytes(), nil

	case FrameMapUpdate:
		m, err := cluster.Decode(payload)
		if err != nil {
			return 0, nil, err
		}
		if m.Shards != n.srv.Shards() {
			return 0, nil, fmt.Errorf("server: node %s: map has %d shards, this node runs %d", n.name, m.Shards, n.srv.Shards())
		}
		n.srv.SetMapVersion(m.Version)
		e.U64(m.Version)
		return FrameMapAck, e.Bytes(), nil

	case FrameFreeze:
		d := wal.NewDecoder(payload)
		id := int(d.U32())
		if err := decodeErr(d, "freeze request"); err != nil {
			return 0, nil, err
		}
		snap, state, err := n.srv.FreezeShard(id)
		if err != nil {
			return 0, nil, err
		}
		e.Str(string(snap))
		e.Str(string(state))
		return FrameFreezeResp, e.Bytes(), nil

	case FrameAdopt:
		d := wal.NewDecoder(payload)
		id := int(d.U32())
		mode := d.U8()
		var snap string
		if mode == adoptBytes {
			snap = d.Str()
		}
		if err := decodeErr(d, "adopt request"); err != nil {
			return 0, nil, err
		}
		var err error
		switch mode {
		case adoptFromWAL:
			// Idempotent: a restarted coordinator re-commands the whole
			// assignment; shards this node already owns are a no-op.
			if id >= 0 && id < n.srv.Shards() && n.srv.Owns(id) {
				err = nil
			} else {
				err = n.srv.AdoptShardFromWAL(id)
			}
		case adoptBytes:
			err = n.srv.AdoptShardBytes(id, []byte(snap))
		default:
			err = fmt.Errorf("server: node %s: unknown adopt mode %d", n.name, mode)
		}
		if err != nil {
			return 0, nil, err
		}
		e.Str(string(n.srv.AdoptedState(id)))
		return FrameAdoptResp, e.Bytes(), nil

	case FrameShardState:
		d := wal.NewDecoder(payload)
		id := int(d.U32())
		if err := decodeErr(d, "shard state request"); err != nil {
			return 0, nil, err
		}
		state, err := n.srv.ShardState(ctx, id)
		if err != nil {
			return 0, nil, err
		}
		e.Str(string(state))
		return FrameShardStateResp, e.Bytes(), nil

	case FrameStats:
		encodeNodeStats(&e, n.stats())
		return FrameStatsResp, e.Bytes(), nil

	default:
		return 0, nil, fmt.Errorf("server: node %s: unknown frame type %d", n.name, typ)
	}
}

// health assembles this node's wire health report.
func (n *Node) health() nodeHealth {
	h := nodeHealth{
		Name:       n.name,
		Role:       "node",
		MapVersion: n.srv.MapVersion(),
	}
	for _, sn := range n.srv.Snapshots() {
		h.OwnedShards = append(h.OwnedShards, sn.Shard)
		h.Rounds = append(h.Rounds, sn.Round)
		h.Users += sn.Users
		h.QueueDepth += sn.QueueDepth
		if sn.Err != "" {
			h.Errs = append(h.Errs, fmt.Sprintf("shard %d: %s", sn.Shard, sn.Err))
		}
	}
	return h
}

// stats merges the owned shards' reports and delay histograms into the
// node's wire stats.
func (n *Node) stats() nodeStats {
	s := nodeStats{
		Backpressured: n.srv.Backpressured(),
		Dropped:       n.srv.Dropped(),
	}
	for _, sn := range n.srv.Snapshots() {
		s.Report.Merge(sn.Report)
		if merged, err := metrics.MergeBuckets(s.DelayBuckets, sn.DelayBuckets); err == nil {
			s.DelayBuckets = merged
		}
	}
	return s
}
