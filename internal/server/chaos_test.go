package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/richnote/richnote/internal/network"
)

// chaosConfig is testConfig plus heavy fault injection: 20% of cellular
// transfers lost outright, 10% disconnected mid-stream, items dropped after
// 5 failed attempts, degradation enabled.
func chaosConfig(shards int) Config {
	cfg := testConfig(shards)
	cfg.Faults = network.FaultConfig{CellLoss: 0.2, CellDisconnect: 0.1}
	cfg.Default.MaxAttempts = 5
	cfg.Default.DegradeOnFailure = true
	return cfg
}

// TestChaosFaultInjectedDelivery is the chaos integration test: a sharded
// server under concurrent HTTP load with a 30% cellular failure rate. Run
// under -race it exercises the ingest/shard-loop boundary; afterwards it
// asserts that nothing is stuck (every arrival is delivered or dropped
// within bounded retries), that refunds never exceed charges on any device
// (no double-spend), and that the failure counters actually moved.
func TestChaosFaultInjectedDelivery(t *testing.T) {
	s := startServer(t, chaosConfig(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Events:      150,
		Concurrency: 4,
		Users:       12,
		Seed:        9,
		TickEvery:   25,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Accepted == 0 {
		t.Fatalf("load accepted nothing: %s", res)
	}

	// Keep ticking until every queue drains. MaxAttempts bounds retries, so
	// a finite number of rounds must reach quiescence — a stuck queue shows
	// up here as the round cap expiring with depth still positive.
	drained := false
	for i := 0; i < 200; i++ {
		httpTick(t, ts.URL)
		depth := 0
		for _, snap := range s.Snapshots() {
			depth += snap.QueueDepth + snap.BrokerPending
		}
		if depth == 0 {
			drained = true
			break
		}
	}
	if !drained {
		for _, snap := range s.Snapshots() {
			t.Errorf("shard %d stuck: queue depth %d, broker pending %d after 200 drain rounds",
				snap.Shard, snap.QueueDepth, snap.BrokerPending)
		}
	}

	var arrived, delivered, dropped, failures int
	for _, snap := range s.Snapshots() {
		if snap.Err != "" {
			t.Errorf("shard %d reported round error: %s", snap.Shard, snap.Err)
		}
		arrived += snap.Report.Arrived
		delivered += snap.Report.Delivered
		dropped += snap.Report.Dropped
		failures += snap.Report.TransferFailures
	}
	if failures == 0 {
		t.Error("no transfer failures at 30% cellular fault rate: chaos was not injected")
	}
	if arrived != delivered+dropped {
		t.Errorf("conservation violated: arrived %d != delivered %d + dropped %d",
			arrived, delivered, dropped)
	}

	// The exposition must carry the new failure counters.
	body := httpGet(t, ts.URL+"/metrics")
	for _, metric := range []string{
		"richnote_transfer_failures_total",
		"richnote_dropped_total",
		"richnote_wasted_energy_joules_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics exposition missing %s", metric)
		}
	}

	// Shut down so the shard goroutines exit, then audit every device's
	// data-plan ledger: refunds must never exceed debits, and the running
	// balance must never have been driven negative.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	audited := 0
	for _, sh := range s.shards {
		for u, dev := range sh.devices {
			debited, refunded := dev.BudgetLedger()
			if refunded > debited {
				t.Errorf("user %d double-refunded: refunded %f > debited %f", u, refunded, debited)
			}
			if dev.Budget() < 0 {
				t.Errorf("user %d data budget overdrawn: %f", u, dev.Budget())
			}
			if dev.QueueLen() != 0 {
				t.Errorf("user %d still has %d queued items after drain", u, dev.QueueLen())
			}
			audited++
		}
	}
	if audited == 0 {
		t.Fatal("no devices to audit")
	}
}
