package server

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/richnote/richnote/internal/notif"
)

// ring is a consistent-hash ring over shard indices. Every shard owns
// replicas points on a 64-bit circle; a user maps to the first point at or
// after the hash of its ID. Consistent hashing (rather than a plain
// modulus) keeps most user→shard assignments stable when the shard count
// changes between deployments, so recent-delivery feeds and queue state
// survive a resharding restart for the majority of users.
type ring struct {
	points []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas balances lookup cost against assignment smoothness; 128
// virtual nodes per shard keeps the max/min shard load ratio within a few
// percent for realistic user counts.
const defaultReplicas = 128

// newRing builds a ring over shards 0..shards-1.
func newRing(shards, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard:%d:%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) tie-break by shard so the
		// ring order is deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// shardFor maps a user to its owning shard.
func (r *ring) shardFor(u notif.UserID) int {
	h := hash64(fmt.Sprintf("user:%d", u))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
