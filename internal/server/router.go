package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/richnote/richnote/internal/cluster"
	"github.com/richnote/richnote/internal/metrics"
	"github.com/richnote/richnote/internal/notif"
	"github.com/richnote/richnote/internal/pubsub"
	"github.com/richnote/richnote/internal/transport"
	"github.com/richnote/richnote/internal/wal"
)

// Router is the stateless HTTP front of a multi-node deployment (DESIGN.md
// §13). It serves the same HTTP/JSON API as a standalone Server but owns no
// shard state: each request is routed by the user ring to the owning node
// and forwarded over the binary transport. The router doubles as the
// cluster coordinator — it computes the initial shard map, probes node
// health, and on a node death recomputes the map over the survivors and
// commands the crash takeover (AdoptShardFromWAL on shared storage).
//
// Backpressure propagates end-to-end: a node's ErrBackpressure becomes the
// router's 429 with the node's Retry-After; an unreachable or non-owning
// node becomes a 503 with Retry-After, since a map update is usually
// seconds away.
type Router struct {
	shards     int
	ring       *ring
	cfg        RouterConfig
	membership *cluster.Membership

	cmap atomic.Pointer[cluster.Map] // richnote:atomic

	// rebalanceMu serializes map transitions (initial assignment, death
	// rebalances, planned moves) so versions advance linearly.
	rebalanceMu sync.Mutex

	// These maps are built once in NewRouter and never mutated after; the
	// pointed-to values carry their own atomicity.
	clients   map[string]*transport.Client // node name → transport client
	forwarded map[string]*atomic.Uint64    // node name → publishes forwarded
	nodeUp    map[string]*atomic.Bool      // node name → last probe verdict

	handoffs atomic.Uint64 // richnote:atomic — shards reassigned by this coordinator

	latMu      sync.Mutex
	fwdLatency metrics.Histogram // forward round-trip seconds; richnote:confined(latMu)
}

// RouterConfig configures a Router; Peers and Shards are required.
type RouterConfig struct {
	// Shards is the cluster-wide shard count; must match every node's
	// Config.Shards.
	Shards int
	// Peers is the static seed membership: every shard-owner node's name
	// and transport address.
	Peers []cluster.Node
	// ProbeInterval is the health-probe period; defaults to 500ms.
	ProbeInterval time.Duration
	// ProbeThreshold is the consecutive-failure count declaring a node
	// dead; defaults to 2.
	ProbeThreshold int
	// RetryAfter is advertised on 503 responses while the map is catching
	// up with a dead node; defaults to 1s.
	RetryAfter time.Duration
	// Client tunes the per-node transport clients.
	Client transport.ClientConfig
}

// NewRouter builds a router over a static peer set. Start performs the
// initial shard assignment and begins health probing.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("server: router needs a positive shard count, got %d", cfg.Shards)
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("server: router needs at least one peer")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeThreshold <= 0 {
		cfg.ProbeThreshold = 2
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	r := &Router{
		shards:    cfg.Shards,
		ring:      newRing(cfg.Shards, 0),
		cfg:       cfg,
		clients:   make(map[string]*transport.Client, len(cfg.Peers)),
		forwarded: make(map[string]*atomic.Uint64, len(cfg.Peers)),
		nodeUp:    make(map[string]*atomic.Bool, len(cfg.Peers)),
	}
	for _, p := range cfg.Peers {
		if _, dup := r.clients[p.Name]; dup {
			return nil, fmt.Errorf("server: duplicate peer name %q", p.Name)
		}
		r.clients[p.Name] = transport.NewClient(p.Addr, cfg.Client)
		r.forwarded[p.Name] = &atomic.Uint64{}
		up := &atomic.Bool{}
		up.Store(true)
		r.nodeUp[p.Name] = up
	}
	return r, nil
}

// Start computes map version 1 over the seed peers, commands each node to
// adopt its assigned shards from shared storage, broadcasts the map, and
// begins health probing. Nodes are expected to boot owning nothing
// (Config.OwnedShards = []int{}); a node that cannot adopt fails startup.
func (r *Router) Start() error {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	m, err := cluster.Compute(1, r.cfg.Peers, r.shards)
	if err != nil {
		return err
	}
	for _, n := range m.Nodes {
		for _, shard := range m.OwnedBy(n.Name) {
			if err := r.commandAdopt(n.Name, shard); err != nil {
				return fmt.Errorf("server: initial assignment of shard %d to %s: %w", shard, n.Name, err)
			}
		}
	}
	r.broadcastMap(m)
	r.cmap.Store(m)

	// The membership probe is a transport ping: one small frame through
	// the same pooled client the data path uses, so "healthy" means the
	// path requests take is healthy.
	probe := func(addr string) error {
		name := r.nameForAddr(addr)
		if name == "" {
			return fmt.Errorf("server: probe for unknown peer address %s", addr)
		}
		_, _, err := r.clients[name].Call(FramePing, nil)
		r.nodeUp[name].Store(err == nil)
		return err
	}
	r.membership = cluster.NewMembership(r.cfg.Peers, probe, cluster.MembershipConfig{
		Interval:  r.cfg.ProbeInterval,
		Threshold: r.cfg.ProbeThreshold,
	})
	r.membership.OnChange(r.onMembershipChange)
	r.membership.Start()
	return nil
}

// Stop halts probing and drops every node connection. Shard-owner nodes
// keep serving; only this front goes away.
func (r *Router) Stop() {
	if r.membership != nil {
		r.membership.Stop()
	}
	for _, c := range r.clients {
		c.Close()
	}
}

// Map returns the current cluster map (nil before Start completes).
func (r *Router) Map() *cluster.Map { return r.cmap.Load() }

// Handoffs returns how many shard reassignments this coordinator has
// commanded (crash takeovers + planned moves).
func (r *Router) Handoffs() uint64 { return r.handoffs.Load() }

// Membership exposes the health prober, mainly so tests can force a
// CheckNow instead of waiting out probe intervals.
func (r *Router) Membership() *cluster.Membership { return r.membership }

func (r *Router) nameForAddr(addr string) string {
	for _, p := range r.cfg.Peers {
		if p.Addr == addr {
			return p.Name
		}
	}
	return ""
}

// onMembershipChange is the coordinator: on node death it recomputes the
// map over the survivors, commands crash takeover of every orphaned shard,
// and broadcasts the new map. Runs on the membership's probe goroutine.
func (r *Router) onMembershipChange(live []cluster.Node) {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	old := r.cmap.Load()
	if old == nil || len(live) == 0 {
		return // nothing to reassign to; requests will 503 until nodes return
	}
	next, err := old.Rebalance(old.Version+1, live)
	if err != nil {
		return
	}
	liveNames := make(map[string]bool, len(live))
	for _, n := range live {
		liveNames[n.Name] = true
	}
	for s := 0; s < r.shards; s++ {
		was, now := old.Owner(s), next.Owner(s)
		if was.Name == now.Name {
			continue
		}
		if !liveNames[now.Name] {
			continue // both owners dead; shard stays orphaned until a restart
		}
		if err := r.commandAdopt(now.Name, s); err != nil {
			// The target could not take the shard (transport failure or
			// replay error). Publishing to it will 503 until the next
			// membership change retries; honest failure beats a map that
			// lies about ownership.
			continue
		}
		r.handoffs.Add(1)
	}
	r.broadcastMap(next)
	r.cmap.Store(next)
}

// commandAdopt tells a node to take over one shard from shared storage
// (crash takeover: snapshot + WAL tail replay).
func (r *Router) commandAdopt(node string, shard int) error {
	var e wal.Encoder
	e.U32(uint32(shard))
	e.U8(adoptFromWAL)
	_, _, err := r.clients[node].Call(FrameAdopt, e.Bytes())
	return err
}

// broadcastMap ships a map to every reachable node. A node that misses the
// update learns the version lag from forwarded publishes' map versions and
// the next broadcast; the router never blocks on a dead node here.
func (r *Router) broadcastMap(m *cluster.Map) {
	payload := m.Encode()
	for _, n := range m.Nodes {
		if c, ok := r.clients[n.Name]; ok {
			_, _, _ = c.Call(FrameMapUpdate, payload)
		}
	}
}

// MoveShard performs a planned handoff: freeze the shard on its current
// owner, ship the snapshot bytes to the target over the transport, verify
// the restored state is bit-identical, and publish the updated map. The
// source's frozen state and the target's restored state are compared
// byte-for-byte — a mismatch aborts with the map unchanged.
func (r *Router) MoveShard(shard int, target string) error {
	r.rebalanceMu.Lock()
	defer r.rebalanceMu.Unlock()

	m := r.cmap.Load()
	if m == nil {
		return fmt.Errorf("server: router has no map yet")
	}
	if shard < 0 || shard >= r.shards {
		return fmt.Errorf("server: shard %d out of range [0,%d)", shard, r.shards)
	}
	src := m.Owner(shard)
	if src.Name == target {
		return nil
	}
	targetClient, ok := r.clients[target]
	if !ok {
		return fmt.Errorf("server: unknown target node %q", target)
	}
	next, err := m.WithOwner(m.Version+1, shard, target)
	if err != nil {
		return err
	}

	var e wal.Encoder
	e.U32(uint32(shard))
	_, resp, err := r.clients[src.Name].Call(FrameFreeze, e.Bytes())
	if err != nil {
		return fmt.Errorf("server: freezing shard %d on %s: %w", shard, src.Name, err)
	}
	d := wal.NewDecoder(resp)
	snap, frozenState := d.Str(), d.Str()
	if err := decodeErr(d, "freeze response"); err != nil {
		return err
	}

	e.Reset()
	e.U32(uint32(shard))
	e.U8(adoptBytes)
	e.Str(snap)
	_, resp, err = targetClient.Call(FrameAdopt, e.Bytes())
	if err != nil {
		return fmt.Errorf("server: adopting shard %d on %s: %w", shard, target, err)
	}
	d = wal.NewDecoder(resp)
	adoptedState := d.Str()
	if err := decodeErr(d, "adopt response"); err != nil {
		return err
	}
	if adoptedState != frozenState {
		return fmt.Errorf("server: shard %d handoff state mismatch: source froze %d bytes, target restored %d bytes (not bit-identical)", shard, len(frozenState), len(adoptedState))
	}

	r.broadcastMap(next)
	r.cmap.Store(next)
	r.handoffs.Add(1)
	return nil
}

// RouterHealthResponse is the router's GET /healthz body: its own status
// plus one entry per node, aggregated live over the transport.
type RouterHealthResponse struct {
	Status     string             `json:"status"`
	Role       string             `json:"role"`
	MapVersion uint64             `json:"map_version"`
	Shards     int                `json:"shards"`
	Nodes      []RouterNodeHealth `json:"nodes"`
}

// RouterNodeHealth is one node's slice of the router's health report.
type RouterNodeHealth struct {
	Name        string   `json:"name"`
	Addr        string   `json:"addr"`
	Up          bool     `json:"up"`
	MapVersion  uint64   `json:"map_version,omitempty"`
	OwnedShards []int    `json:"owned_shards"`
	Rounds      []int    `json:"rounds"`
	Users       int      `json:"users"`
	QueueDepth  int      `json:"queue_depth"`
	Errors      []string `json:"errors,omitempty"`
}

// Handler returns the router's HTTP API — the same surface a standalone
// Server exposes, served by forwarding.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/publish", r.handlePublish)
	mux.HandleFunc("GET /v1/users/{id}/deliveries", r.handleDeliveries)
	mux.HandleFunc("POST /v1/tick", r.handleTick)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

func (r *Router) retrySeconds() int { return retryAfterSeconds(r.cfg.RetryAfter) }

// forwardPublish routes one recipient's publication to the owning node.
// The returned outcome folds transport failures into publishError so the
// caller only reasons about the four status codes.
func (r *Router) forwardPublish(topic pubsub.TopicID, user notif.UserID, item notif.Item) publishOutcome {
	m := r.cmap.Load()
	if m == nil {
		return publishOutcome{status: publishError, errText: "router has no shard map yet"}
	}
	shard := r.ring.shardFor(user)
	owner := m.Owner(shard)
	c := r.clients[owner.Name]
	if c == nil || !r.nodeUp[owner.Name].Load() {
		return publishOutcome{status: publishNotOwner, errText: fmt.Sprintf("node %s (shard %d) is down", owner.Name, shard)}
	}

	var e wal.Encoder
	encodePublishReq(&e, topic, user, item)
	start := time.Now() //lint:allow wallclock forward latency measures real network round trips
	_, resp, err := c.Call(FramePublish, e.Bytes())
	elapsed := time.Since(start) //lint:allow wallclock forward latency measures real network round trips
	r.latMu.Lock()
	r.fwdLatency.Add(elapsed.Seconds())
	r.latMu.Unlock()
	if err != nil {
		return publishOutcome{status: publishError, errText: err.Error()}
	}
	r.forwarded[owner.Name].Add(1)
	d := wal.NewDecoder(resp)
	out := decodePublishResp(d)
	if err := decodeErr(d, "publish response"); err != nil {
		return publishOutcome{status: publishError, errText: err.Error()}
	}
	return out
}

func (r *Router) handlePublish(w http.ResponseWriter, req *http.Request) {
	var body PublishRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, "malformed publish request: "+err.Error())
		return
	}
	kind, err := parseTopicKind(body.Topic.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	recipients := body.Recipients
	if len(recipients) == 0 {
		if body.Item.Recipient == 0 {
			httpError(w, http.StatusBadRequest, "publish needs recipients or item.recipient")
			return
		}
		recipients = []notif.UserID{body.Item.Recipient}
	}
	if body.Item.Topic == 0 {
		body.Item.Topic = kind
	}
	if body.Item.CreatedAt.IsZero() {
		body.Item.CreatedAt = time.Now().UTC() //lint:allow wallclock ingest timestamps are real arrival times
	}
	topic := pubsub.TopicID{Kind: kind, Entity: body.Topic.Entity}

	var resp PublishResponse
	backpressured, unavailable := false, false
	retryAfter := 0
	for _, rcpt := range recipients {
		out := r.forwardPublish(topic, rcpt, body.Item)
		switch out.status {
		case publishAccepted:
			resp.Accepted++
		case publishBackpressure:
			resp.Rejected++
			backpressured = true
			if out.retryAfter > retryAfter {
				retryAfter = out.retryAfter
			}
		default: // not-owner (stale map / node down) or error
			resp.Rejected++
			unavailable = true
		}
	}
	switch {
	case unavailable:
		// A map update is usually seconds away; tell the client when to retry.
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case backpressured:
		if retryAfter < 1 {
			retryAfter = r.retrySeconds()
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, resp)
	default:
		writeJSON(w, http.StatusAccepted, resp)
	}
}

func (r *Router) handleDeliveries(w http.ResponseWriter, req *http.Request) {
	id, err := strconv.ParseInt(req.PathValue("id"), 10, 64)
	if err != nil || id <= 0 {
		httpError(w, http.StatusBadRequest, "bad user id")
		return
	}
	user := notif.UserID(id)
	m := r.cmap.Load()
	if m == nil {
		httpError(w, http.StatusServiceUnavailable, "router has no shard map yet")
		return
	}
	owner := m.Owner(r.ring.shardFor(user))
	c := r.clients[owner.Name]
	if c == nil {
		httpError(w, http.StatusServiceUnavailable, "owning node unknown")
		return
	}
	var e wal.Encoder
	e.I64(int64(user))
	_, resp, err := c.Call(FrameDeliveries, e.Bytes())
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	d := wal.NewDecoder(resp)
	owned, ds := decodeDeliveriesResp(d)
	if err := decodeErr(d, "deliveries response"); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !owned {
		// The node's map lags ours (or ours lags the truth). Retryable.
		w.Header().Set("Retry-After", strconv.Itoa(r.retrySeconds()))
		httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("node %s no longer owns user %d's shard", owner.Name, user))
		return
	}
	if ds == nil {
		ds = []notif.Delivery{}
	}
	writeJSON(w, http.StatusOK, DeliveriesResponse{User: user, Deliveries: ds})
}

func (r *Router) handleTick(w http.ResponseWriter, req *http.Request) {
	m := r.cmap.Load()
	if m == nil {
		httpError(w, http.StatusServiceUnavailable, "router has no shard map yet")
		return
	}
	// Fan the tick out to every node in name order (deterministic), then
	// splice the per-shard rounds into the standalone response shape.
	rounds := make([]int, r.shards)
	for _, n := range m.Nodes {
		c := r.clients[n.Name]
		if c == nil || !r.nodeUp[n.Name].Load() {
			continue // dead node's shards report round 0 until takeover
		}
		_, resp, err := c.Call(FrameTick, nil)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("tick on node %s: %s", n.Name, err))
			return
		}
		d := wal.NewDecoder(resp)
		cnt := d.Count(12, "tick rounds")
		for i := 0; i < cnt; i++ {
			shard := int(d.U32())
			round := int(d.I64())
			if shard >= 0 && shard < r.shards {
				rounds[shard] = round
			}
		}
		if err := decodeErr(d, "tick response"); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"rounds": rounds})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	m := r.cmap.Load()
	resp := RouterHealthResponse{
		Status: "ok",
		Role:   "router",
		Shards: r.shards,
	}
	if m != nil {
		resp.MapVersion = m.Version
	}
	names := make([]string, 0, len(r.clients))
	for name := range r.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	anyUp := false
	for _, name := range names {
		nh := RouterNodeHealth{
			Name:        name,
			Addr:        r.clients[name].Addr(),
			OwnedShards: []int{},
			Rounds:      []int{},
		}
		if r.nodeUp[name].Load() {
			if _, raw, err := r.clients[name].Call(FrameHealth, nil); err == nil {
				d := wal.NewDecoder(raw)
				h := decodeNodeHealth(d)
				if decodeErr(d, "health response") == nil {
					nh.Up = true
					nh.MapVersion = h.MapVersion
					if h.OwnedShards != nil {
						nh.OwnedShards = h.OwnedShards
					}
					if h.Rounds != nil {
						nh.Rounds = h.Rounds
					}
					nh.Users = h.Users
					nh.QueueDepth = h.QueueDepth
					nh.Errors = h.Errs
				}
			}
		}
		anyUp = anyUp || nh.Up
		resp.Nodes = append(resp.Nodes, nh)
	}
	status := http.StatusOK
	if !anyUp {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// forwardLatencyBounds are the router's forward-latency histogram buckets,
// spanning loopback microseconds to cross-zone worst cases.
var forwardLatencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	m := r.cmap.Load()

	// Aggregate node stats over the transport, merging reports and delay
	// histograms exactly as a standalone server merges its shards.
	var total metrics.Report
	var delay []metrics.Bucket
	if m != nil {
		for _, n := range m.Nodes {
			c := r.clients[n.Name]
			if c == nil || !r.nodeUp[n.Name].Load() {
				continue
			}
			_, raw, err := c.Call(FrameStats, nil)
			if err != nil {
				continue // a dead node's stats are simply absent this scrape
			}
			d := wal.NewDecoder(raw)
			st := decodeNodeStats(d)
			if decodeErr(d, "stats response") != nil {
				continue
			}
			total.Merge(st.Report)
			if merged, err := metrics.MergeBuckets(delay, st.DelayBuckets); err == nil {
				delay = merged
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := metrics.WriteExposition(w, total, delay); err != nil {
		return
	}
	r.writeRouterGauges(w, m)
}

// writeRouterGauges appends the router-tier series: per-node forwarding
// counters, transport health, the map version and the forward-latency
// histogram.
func (r *Router) writeRouterGauges(w http.ResponseWriter, m *cluster.Map) {
	printf := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	names := make([]string, 0, len(r.clients))
	for name := range r.clients {
		names = append(names, name)
	}
	sort.Strings(names)

	printf("# HELP richnote_router_forwarded_publishes_total Publish requests forwarded to each node.\n# TYPE richnote_router_forwarded_publishes_total counter\n")
	for _, name := range names {
		printf("richnote_router_forwarded_publishes_total{node=%q} %d\n", name, r.forwarded[name].Load())
	}
	printf("# HELP richnote_router_transport_errors_total Transport-level failures (dial, write, read, corruption) per node client.\n# TYPE richnote_router_transport_errors_total counter\n")
	for _, name := range names {
		printf("richnote_router_transport_errors_total{node=%q} %d\n", name, r.clients[name].Errors())
	}
	printf("# HELP richnote_router_reconnects_total Re-dials after an established connection was lost, per node client.\n# TYPE richnote_router_reconnects_total counter\n")
	for _, name := range names {
		printf("richnote_router_reconnects_total{node=%q} %d\n", name, r.clients[name].Reconnects())
	}
	printf("# HELP richnote_router_node_up Last probe verdict per node (1 up, 0 down).\n# TYPE richnote_router_node_up gauge\n")
	for _, name := range names {
		up := 0
		if r.nodeUp[name].Load() {
			up = 1
		}
		printf("richnote_router_node_up{node=%q} %d\n", name, up)
	}
	printf("# HELP richnote_cluster_map_version Version of the shard assignment map this router serves from.\n# TYPE richnote_cluster_map_version gauge\n")
	version := uint64(0)
	if m != nil {
		version = m.Version
	}
	printf("richnote_cluster_map_version %d\n", version)
	printf("# HELP richnote_router_handoffs_total Shard reassignments commanded by this coordinator (crash takeovers + planned moves).\n# TYPE richnote_router_handoffs_total counter\n")
	printf("richnote_router_handoffs_total %d\n", r.handoffs.Load())

	r.latMu.Lock()
	buckets := r.fwdLatency.CumulativeBuckets(forwardLatencyBounds)
	count := r.fwdLatency.Count()
	sum := r.fwdLatency.Mean() * float64(count)
	r.latMu.Unlock()
	printf("# HELP richnote_router_forward_latency_seconds Round-trip latency of publish forwards to shard-owner nodes.\n# TYPE richnote_router_forward_latency_seconds histogram\n")
	for _, b := range buckets {
		printf("richnote_router_forward_latency_seconds_bucket{le=%q} %d\n", strconv.FormatFloat(b.UpperBound, 'g', -1, 64), b.Count)
	}
	printf("richnote_router_forward_latency_seconds_bucket{le=\"+Inf\"} %d\n", count)
	printf("richnote_router_forward_latency_seconds_sum %g\n", sum)
	printf("richnote_router_forward_latency_seconds_count %d\n", count)
}
